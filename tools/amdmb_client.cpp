// amdmb_client — CLI for the amdmb_serve daemon.
//
// Verbs:
//   submit <figure> [--quick] [--adaptive] [--priority N] [--quiet]
//       Submits one figure, streams progress/point events to stderr,
//       and prints the returned schema-v2 figure document (byte-
//       identical to the bench binary's BENCH_<slug>.json) to stdout.
//       Exit 0 done, 3 rejected (e.g. overloaded), 1 error.
//   characterize <file|-> [--quick] [--adaptive] [--priority N] [--quiet]
//       Reads kernel IL text from the file (or stdin with "-") and
//       submits it for characterization. Static per-arch analysis and
//       sweep progress stream to stderr; the figure document prints to
//       stdout. A payload whose request line would exceed the daemon's
//       8 MiB bound is rejected locally (typed code payload_too_large)
//       without connecting. Exit 0 done, 3 rejected (invalid_kernel /
//       overloaded / ...), 1 error.
//   stats
//       Prints the daemon's queue/cache/latency statistics.
//   drain
//       Asks the daemon to finish admitted sweeps and shut down.
//   bench --requests N --concurrency K --seed S [--full]
//         [--figures a,b,c] [--kill-worker N]
//       Deterministic closed-loop load generator: the request schedule
//       is a pure function of the seed. Reports throughput and tail
//       latency. --kill-worker N injects N seeded worker kills during
//       the run (fleet daemons only) and reports availability plus the
//       typed worker_lost / deadline_exceeded failure counts.
//
// Every verb accepts --socket PATH (default: AMDMB_SERVE_SOCKET, then
// /tmp/amdmb_serve.sock) and --connect-retries R (capped-backoff
// re-attempts when nothing listens yet; default fail-fast). --version
// prints the build's git describe.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "serve/client.hpp"

namespace {

using namespace amdmb;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <verb> [options]\n"
      << "  submit <figure> [--quick] [--adaptive] [--priority N]\n"
      << "         [--quiet]\n"
      << "  characterize <file|-> [--quick] [--adaptive] [--priority N]\n"
      << "         [--quiet]\n"
      << "  stats\n"
      << "  drain\n"
      << "  bench [--requests N] [--concurrency K] [--seed S] [--full]\n"
      << "        [--figures a,b,c] [--kill-worker N]\n"
      << "common options: --socket PATH, --connect-retries R, --version\n";
  return 2;
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::uint64_t ParseCount(const char* flag, const std::string& text) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw ConfigError(std::string(flag) + ": not a number: " + text);
  }
}

int RunSubmit(serve::Client& client, const std::string& figure, bool quick,
              bool adaptive, int priority, bool quiet) {
  const serve::Event final_event = client.Submit(
      figure, quick, adaptive, priority, [quiet](const serve::Event& event) {
        if (quiet) return;
        if (event.type == serve::EventType::kAccepted) {
          std::cerr << "accepted as request "
                    << event.body.NumberOr("request", 0.0) << "\n";
        } else if (event.type == serve::EventType::kRefine) {
          std::cerr << "refine " << event.body.StringOr("curve", "?")
                    << ": wave " << event.body.NumberOr("wave", 0.0)
                    << ", spent " << event.body.NumberOr("spent", 0.0)
                    << "/" << event.body.NumberOr("dense", 0.0) << "\n";
        } else if (event.type == serve::EventType::kProgress) {
          std::cerr << "curve " << (event.body.NumberOr("index", 0.0) + 1)
                    << "/" << event.body.NumberOr("count", 0.0) << ": "
                    << event.body.StringOr("curve", "?") << "\n";
        }
      });
  switch (final_event.type) {
    case serve::EventType::kDone:
      std::cout << final_event.body.StringOr("figure_json", "");
      if (!quiet) {
        std::cerr << "done in "
                  << FormatDouble(
                         final_event.body.NumberOr("wall_seconds", 0.0), 3)
                  << " s (cache hits "
                  << final_event.body.NumberOr("cache_hits", 0.0)
                  << ", misses "
                  << final_event.body.NumberOr("cache_misses", 0.0)
                  << ")\n";
      }
      return 0;
    case serve::EventType::kRejected:
      std::cerr << "rejected: " << final_event.body.StringOr("reason", "?")
                << "\n";
      return 3;
    default:
      std::cerr << "error: "
                << final_event.body.StringOr("message", "unknown") << "\n";
      return 1;
  }
}

std::string ReadIlSource(const std::string& path) {
  std::ostringstream text;
  if (path == "-") {
    text << std::cin.rdbuf();
  } else {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw ConfigError("characterize: cannot open " + path);
    text << file.rdbuf();
  }
  return text.str();
}

void StreamCharacterizeEvent(const serve::Event& event, bool quiet) {
  if (quiet) return;
  if (event.type == serve::EventType::kAccepted) {
    std::cerr << "accepted as request "
              << event.body.NumberOr("request", 0.0) << " (figure "
              << event.body.StringOr("figure", "?") << ")\n";
  } else if (event.type == serve::EventType::kStatic) {
    std::cerr << "static " << event.body.StringOr("arch", "?") << ": alu "
              << event.body.NumberOr("alu_ops", 0.0) << ", fetch "
              << event.body.NumberOr("fetch_ops", 0.0) << ", gpr "
              << event.body.NumberOr("gpr_count", 0.0) << ", wavefronts "
              << event.body.NumberOr("resident_wavefronts", 0.0) << ", "
              << event.body.StringOr("bound", "?") << "\n";
  } else if (event.type == serve::EventType::kRefine) {
    std::cerr << "refine " << event.body.StringOr("curve", "?") << ": wave "
              << event.body.NumberOr("wave", 0.0) << ", spent "
              << event.body.NumberOr("spent", 0.0) << "/"
              << event.body.NumberOr("dense", 0.0) << "\n";
  } else if (event.type == serve::EventType::kProgress) {
    std::cerr << "curve " << (event.body.NumberOr("index", 0.0) + 1) << "/"
              << event.body.NumberOr("count", 0.0) << ": "
              << event.body.StringOr("curve", "?") << "\n";
  }
}

int FinishCharacterize(const serve::Event& final_event, bool quiet) {
  switch (final_event.type) {
    case serve::EventType::kDone:
      std::cout << final_event.body.StringOr("figure_json", "");
      if (!quiet) {
        std::cerr << "done in "
                  << FormatDouble(
                         final_event.body.NumberOr("wall_seconds", 0.0), 3)
                  << " s\n";
      }
      return 0;
    case serve::EventType::kRejected: {
      std::cerr << "rejected: " << final_event.body.StringOr("reason", "?");
      const std::string code = final_event.body.StringOr("code", "");
      if (!code.empty()) std::cerr << " (" << code << ")";
      const std::string detail = final_event.body.StringOr("detail", "");
      if (!detail.empty()) std::cerr << ": " << detail;
      std::cerr << "\n";
      return 3;
    }
    default:
      std::cerr << "error: "
                << final_event.body.StringOr("message", "unknown") << "\n";
      return 1;
  }
}

int RunCharacterize(const std::string& socket_path, unsigned retries,
                    const std::string& path, bool quick, bool adaptive,
                    int priority, bool quiet) {
  const std::string il = ReadIlSource(path);
  // The oversize verdict must come back before any connect: the daemon
  // would only ever answer such a line with a protocol error.
  if (std::optional<serve::Event> oversized =
          serve::OversizedCharacterize(il, quick, priority)) {
    return FinishCharacterize(*oversized, quiet);
  }
  serve::Client client = serve::Client::Connect(socket_path, retries);
  const serve::Event final_event = client.Characterize(
      il, quick, adaptive, priority, [quiet](const serve::Event& event) {
        StreamCharacterizeEvent(event, quiet);
      });
  return FinishCharacterize(final_event, quiet);
}

int RunStats(serve::Client& client) {
  const serve::ServeStats stats = client.Stats();
  std::cout << "amdmb_serve " << stats.version << "\n"
            << "queue " << stats.queue_depth << "/" << stats.max_queue
            << ", in-flight " << stats.in_flight << "/"
            << stats.max_inflight << "\n"
            << "completed " << stats.completed << ", failed "
            << stats.failed << ", rejected " << stats.rejected << "\n"
            << "kernel cache: " << stats.cache_hits << " hits, "
            << stats.cache_misses << " misses (hit rate "
            << FormatDouble(stats.cache_hit_rate, 3) << "), "
            << stats.cache_size << " entries\n";
  for (const serve::FigureLatency& l : stats.latencies) {
    std::cout << "  " << l.figure << ": " << l.count << " done, p50 "
              << FormatDouble(l.p50_seconds, 3) << " s, p90 "
              << FormatDouble(l.p90_seconds, 3) << " s, p99 "
              << FormatDouble(l.p99_seconds, 3) << " s\n";
  }
  for (const serve::WorkerStatus& w : stats.workers) {
    std::cout << "  worker " << w.index << ": " << w.state << ", pid "
              << w.pid << ", restarts " << w.restarts << ", outstanding "
              << w.outstanding << ", generation " << w.generation << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string socket_path = env::Get().serve_socket.value_or(
        std::string(env::kDefaultServeSocket));
    std::string verb;
    std::string figure;
    bool quick = false;
    bool adaptive = false;
    bool quiet = false;
    int priority = 0;
    serve::LoadGenOptions load;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--version") {
        std::cout << "amdmb_client " << SuiteVersion() << "\n";
        return 0;
      } else if (arg == "--socket" && i + 1 < argc) {
        socket_path = argv[++i];
      } else if (arg == "--quick") {
        quick = true;
      } else if (arg == "--adaptive") {
        adaptive = true;
      } else if (arg == "--full") {
        load.quick = false;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--priority" && i + 1 < argc) {
        priority = static_cast<int>(ParseCount("--priority", argv[++i]));
      } else if (arg == "--requests" && i + 1 < argc) {
        load.requests =
            static_cast<std::size_t>(ParseCount("--requests", argv[++i]));
      } else if (arg == "--concurrency" && i + 1 < argc) {
        load.concurrency =
            static_cast<unsigned>(ParseCount("--concurrency", argv[++i]));
      } else if (arg == "--seed" && i + 1 < argc) {
        load.seed = ParseCount("--seed", argv[++i]);
      } else if (arg == "--figures" && i + 1 < argc) {
        load.figures = SplitCommaList(argv[++i]);
      } else if (arg == "--connect-retries" && i + 1 < argc) {
        load.connect_retries = static_cast<unsigned>(
            ParseCount("--connect-retries", argv[++i]));
      } else if (arg == "--kill-worker" && i + 1 < argc) {
        load.kill_workers = static_cast<unsigned>(
            ParseCount("--kill-worker", argv[++i]));
      } else if (arg.size() > 1 && arg[0] == '-') {
        return Usage(argv[0]);  // Bare "-" falls through: IL on stdin.
      } else if (verb.empty()) {
        verb = arg;
      } else if ((verb == "submit" || verb == "characterize") &&
                 figure.empty()) {
        figure = arg;  // Submit: slug. Characterize: IL path or "-".
      } else {
        return Usage(argv[0]);
      }
    }
    if (verb.empty()) return Usage(argv[0]);

    if (verb == "characterize") {
      if (figure.empty()) return Usage(argv[0]);
      return RunCharacterize(socket_path, load.connect_retries, figure,
                             quick, adaptive, priority, quiet);
    }

    if (verb == "bench") {
      load.socket_path = socket_path;
      const serve::LoadGenReport report = serve::RunLoadGenerator(load);
      std::cout << report.Render();
      // A chaos run expects typed failures; plain runs fail on any.
      if (load.kill_workers > 0) return 0;
      return report.failed == 0 ? 0 : 1;
    }

    serve::Client client =
        serve::Client::Connect(socket_path, load.connect_retries);
    if (verb == "submit") {
      if (figure.empty()) return Usage(argv[0]);
      return RunSubmit(client, figure, quick, adaptive, priority, quiet);
    }
    if (verb == "stats") return RunStats(client);
    if (verb == "drain") {
      const std::uint64_t completed = client.Drain();
      std::cout << "drained (" << completed << " requests completed)\n";
      return 0;
    }
    return Usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "amdmb_client: " << e.what() << "\n";
    return 1;
  }
}
