// amdmb_kerncap — standalone kernel characterization, no daemon needed.
//
//   amdmb_kerncap [--quick] [--version] <file|->
//
// Reads kernel IL text from the file (or stdin with "-"), runs the same
// intake -> static analysis -> profiled sweep pipeline the service's
// "characterize" op runs, and prints the schema-v2 figure document to
// stdout — byte-identical to the "figure_json" a daemon streams for the
// same kernel and quick flag (the kerncap-smoke CI job diffs the two).
// The per-arch static summary goes to stderr.
//
// Exit codes: 0 characterized, 3 rejected (typed intake verdict on
// stderr), 1 internal error, 2 usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "common/version.hpp"
#include "compiler/ska.hpp"
#include "kerncap/characterize.hpp"
#include "kerncap/intake.hpp"
#include "kerncap/static_analysis.hpp"
#include "report/json_sink.hpp"

namespace {

using namespace amdmb;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--quick] [--version] <file|->\n";
  return 2;
}

std::string ReadIlSource(const std::string& path) {
  std::ostringstream text;
  if (path == "-") {
    text << std::cin.rdbuf();
  } else {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      throw ConfigError("amdmb_kerncap: cannot open " + path);
    }
    text << file.rdbuf();
  }
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool quick = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--version") {
        std::cout << "amdmb_kerncap " << SuiteVersion() << "\n";
        return 0;
      } else if (arg == "--quick") {
        quick = true;
      } else if (arg.size() > 1 && arg[0] == '-') {
        return Usage(argv[0]);  // Bare "-" falls through: IL on stdin.
      } else if (path.empty()) {
        path = arg;
      } else {
        return Usage(argv[0]);
      }
    }
    if (path.empty()) return Usage(argv[0]);

    const std::string il = ReadIlSource(path);
    const kerncap::AnalyzeResult analysis = kerncap::Analyze(il);
    if (!analysis.ok()) {
      std::cerr << "rejected: invalid_kernel ("
                << kerncap::ToString(analysis.rejection->reason)
                << "): " << analysis.rejection->detail << "\n";
      return 3;
    }
    const kerncap::Prepared& prepared = *analysis.prepared;
    std::cerr << "kernel " << prepared.kernel.name << " ("
              << prepared.hash << ")\n";
    for (const kerncap::ArchStatic& s : prepared.statics) {
      std::cerr << "  " << kerncap::CardLabel(s.arch) << ": alu "
                << s.ska.alu_ops << ", fetch " << s.ska.fetch_ops
                << ", ratio " << FormatDouble(s.ska.alu_fetch_ratio, 2)
                << ", gpr " << s.ska.gpr_count << ", wavefronts "
                << s.ska.resident_wavefronts << "/SIMD, "
                << compiler::ToString(s.ska.bound) << "\n";
    }

    kerncap::CharacterizeOptions options;
    options.quick = quick;
    const report::Figure figure = kerncap::Characterize(
        prepared, options,
        [](std::size_t index, std::size_t count, const std::string& curve,
           const report::Figure&) {
          std::cerr << "curve " << (index + 1) << "/" << count << ": "
                    << curve << "\n";
        });
    std::cout << report::BenchJson(figure);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "amdmb_kerncap: " << e.what() << "\n";
    return 1;
  }
}
