// amdmb_report — the cross-figure aggregator.
//
// Loads every BENCH_*.json written by the bench binaries (point them at
// a directory with AMDMB_JSON_DIR), merges the typed records into one
// suite-wide markdown summary, and checks the findings against the
// paper expectations encoded in report/expectations.cpp. Consumes only
// the typed record model — no bench stdout scraping.
//
// Usage:
//   amdmb_report <json-dir> [--out FILE] [--strict] [--figure SLUG] [--list]
//
//   --out FILE     write the markdown summary to FILE instead of stdout
//   --strict       exit 1 when any expectation check fails or is missing
//   --figure SLUG  aggregate only BENCH_<SLUG>.json (e.g. fig_7)
//   --list         print the slug and title of every document, then exit
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/interrupt.hpp"
#include "common/status.hpp"
#include "common/version.hpp"
#include "report/aggregate.hpp"
#include "report/expectations.hpp"
#include "report/load.hpp"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <json-dir> [--out FILE] [--strict] [--figure SLUG]"
               " [--list] [--version]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  std::string out_path;
  std::string figure_slug;
  bool strict = false;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::cout << "amdmb_report " << amdmb::SuiteVersion() << "\n";
      return 0;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--figure") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      figure_slug = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (json_dir.empty()) {
      json_dir = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (json_dir.empty()) return Usage(argv[0]);

  // SIGINT/SIGTERM between load and write no longer truncates --out
  // files: the run is cut short at the next checkpoint and whatever is
  // complete is flushed with a visible interruption note.
  amdmb::InstallInterruptHandlers();

  try {
    using namespace amdmb::report;
    const std::vector<LoadedFigure> figures =
        LoadFigureDirectory(json_dir, figure_slug);
    if (figures.empty()) {
      std::cerr << "amdmb_report: no "
                << (figure_slug.empty()
                        ? std::string("BENCH_*.json documents")
                        : "BENCH_" + figure_slug + ".json")
                << " in " << json_dir << "\n";
      return 2;
    }
    if (list) {
      for (const LoadedFigure& figure : figures) {
        std::cout << figure.Slug() << "\t" << figure.id << "\n";
      }
      return 0;
    }
    const std::vector<ExpectationResult> checks = CheckExpectations(figures);
    std::string summary = SuiteSummaryMarkdown(figures, checks);
    if (amdmb::InterruptRequested()) {
      summary += "\n> **Interrupted** (";
      summary += amdmb::DescribeSignal(amdmb::InterruptSignal());
      summary += "): summary flushed before exit; re-run to regenerate.\n";
    }
    if (out_path.empty()) {
      std::cout << summary;
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "amdmb_report: cannot write " << out_path << "\n";
        return 2;
      }
      out << summary;
      std::cout << "Wrote " << out_path << "\n";
    }
    unsigned fail = 0, missing = 0;
    for (const ExpectationResult& check : checks) {
      if (check.status == ExpectationStatus::kFail) ++fail;
      if (check.status == ExpectationStatus::kMissing) ++missing;
    }
    if (fail != 0 || missing != 0) {
      std::cerr << "amdmb_report: " << fail << " failed, " << missing
                << " missing expectation check"
                << (fail + missing == 1 ? "" : "s") << "\n";
      if (strict) return 1;
    }
    return 0;
  } catch (const amdmb::ConfigError& e) {
    std::cerr << "amdmb_report: " << e.what() << "\n";
    return 2;
  }
}
