// amdmb_perf — minimal sim-throughput benchmark.
//
// Times the wall-clock cost of one representative sweep point (the
// Fig. 7 ALU:Fetch kernel on the 4870 at quick scale) with the standard
// robust recipe: a warmup burst, then G groups of R timed samples; the
// per-group medians are reduced by a median-of-medians so a noisy
// neighbour perturbs at most one group. The result is written as
// BENCH_PERF.json — `median_ns` / `p95_ns` per measured point plus the
// derived points_per_second — so adaptive-vs-dense capacity claims have
// machine-readable numbers to stand on.
//
// usage: amdmb_perf [--groups G] [--samples R] [--warmup W] [--out FILE]
//   --out -   write the JSON document to stdout only.
//   default   BENCH_PERF.json in AMDMB_JSON_DIR (falling back to the
//             working directory), summary line to stderr.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/status.hpp"
#include "common/version.hpp"
#include "report/json.hpp"
#include "suite/kernelgen.hpp"
#include "suite/microbench.hpp"

namespace {

using namespace amdmb;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--groups G] [--samples R] [--warmup W] [--out FILE]\n";
  return 2;
}

double MedianOf(std::vector<double> values) {
  Require(!values.empty(), "amdmb_perf: median of an empty sample set");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double PercentileOf(std::vector<double> values, double fraction) {
  Require(!values.empty(), "amdmb_perf: percentile of an empty sample set");
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      fraction * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

unsigned ParseCount(const char* text, const char* flag) {
  try {
    const long value = std::stol(text);
    Require(value > 0, std::string(flag) + ": must be positive");
    return static_cast<unsigned>(value);
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError(std::string(flag) + ": not a number: " + text);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    unsigned groups = 5;
    unsigned samples = 8;
    unsigned warmup = 3;
    std::string out_file;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--version") {
        std::cout << "amdmb_perf " << SuiteVersion() << "\n";
        return 0;
      } else if (arg == "--groups" && i + 1 < argc) {
        groups = ParseCount(argv[++i], "--groups");
      } else if (arg == "--samples" && i + 1 < argc) {
        samples = ParseCount(argv[++i], "--samples");
      } else if (arg == "--warmup" && i + 1 < argc) {
        warmup = ParseCount(argv[++i], "--warmup");
      } else if (arg == "--out" && i + 1 < argc) {
        out_file = argv[++i];
      } else {
        return Usage(argv[0]);
      }
    }

    // The representative point: the Fig. 7 kernel family at ratio 1.0
    // on the 4870, quick domain. One Measure() call = one sweep point.
    const suite::Runner runner(MakeRV770());
    suite::GenericSpec spec;
    spec.inputs = 16;
    spec.outputs = 1;
    spec.alu_ops = suite::AluOpsForRatio(1.0, spec.inputs);
    spec.name = "perf_probe";
    const il::Kernel kernel = suite::GenerateGeneric(spec);
    sim::LaunchConfig config;
    config.domain = Domain{256, 256};
    config.mode = ShaderMode::kPixel;
    config.repetitions = 100;

    const auto once = [&] {
      const auto start = std::chrono::steady_clock::now();
      const suite::Measurement m = runner.Measure(kernel, config);
      const auto stop = std::chrono::steady_clock::now();
      Require(m.stats.cycles > 0, "amdmb_perf: probe launch ran 0 cycles");
      return static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
              .count());
    };

    for (unsigned i = 0; i < warmup; ++i) once();

    std::vector<double> group_medians;
    std::vector<double> all_samples;
    for (unsigned g = 0; g < groups; ++g) {
      std::vector<double> group;
      for (unsigned s = 0; s < samples; ++s) {
        group.push_back(once());
        all_samples.push_back(group.back());
      }
      group_medians.push_back(MedianOf(std::move(group)));
    }

    const double median_ns = MedianOf(group_medians);
    const double p95_ns = PercentileOf(all_samples, 0.95);
    const double points_per_second =
        median_ns > 0.0 ? 1e9 / median_ns : 0.0;

    std::ostringstream json;
    json << "{\n"
         << "  \"schema_version\": 1,\n"
         << "  \"benchmark\": \"sim_point_throughput\",\n"
         << "  \"suite_version\": \"" << report::JsonEscape(SuiteVersion())
         << "\",\n"
         << "  \"probe\": \"alu_fetch ratio=1 4870 pixel 256x256\",\n"
         << "  \"warmup\": " << warmup << ",\n"
         << "  \"groups\": " << groups << ",\n"
         << "  \"samples_per_group\": " << samples << ",\n"
         << "  \"median_ns\": " << report::JsonNumber(median_ns) << ",\n"
         << "  \"p95_ns\": " << report::JsonNumber(p95_ns) << ",\n"
         << "  \"points_per_second\": "
         << report::JsonNumber(points_per_second) << "\n"
         << "}\n";

    if (out_file == "-") {
      std::cout << json.str();
      return 0;
    }
    std::filesystem::path path;
    if (!out_file.empty()) {
      path = out_file;
    } else {
      const env::Options& options = env::Get();
      path = options.json_dir ? std::filesystem::path(*options.json_dir)
                              : std::filesystem::path(".");
      path /= "BENCH_PERF.json";
    }
    if (path.has_parent_path()) {
      std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path);
    Require(out.good(), "amdmb_perf: cannot open " + path.string());
    out << json.str();
    std::cerr << "amdmb_perf: median " << report::JsonNumber(median_ns)
              << " ns/point, p95 " << report::JsonNumber(p95_ns)
              << " ns, " << report::JsonNumber(points_per_second)
              << " points/s -> " << path.string() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "amdmb_perf: " << e.what() << "\n";
    return 1;
  }
}
