// amdmb_adapt — the adaptive-sweep driver and cross-checker.
//
// Verbs:
//   figure <slug> [--quick] [--tol N] [--budget N] [--json]
//       Runs the registry figure twice — densely and adaptively — and
//       diffs every crossover finding between the two documents. Each
//       crossover must agree within the refinement tolerance (tol grid
//       steps); the points-spent ratio is reported. --json prints the
//       adaptive document's BENCH JSON to stdout. Exit 0 agreement,
//       4 disagreement.
//   budget <fig_7|fig_8|fig_9> [--max-ratio F] [--tol N]
//       Runs the Fig. 7-9 ALU:Fetch family at the full 32-ratio grid
//       (quick 256x256 domains) and asserts the adaptive run spends at
//       most F (default 0.2) of the dense point count while agreeing on
//       every crossover. Exit 0 ok, 4 disagreement, 5 over budget.
//   frontier [--dense] [--quick] [--budget N] [--json]
//       Builds the 2D ALU:Fetch x register-step bottleneck frontier map
//       (adapt/frontier.hpp) and prints it through the text sink, or as
//       BENCH JSON with --json. AMDMB_JSON_DIR / AMDMB_DUMP_DIR write
//       the document and the pm3d heatmap exactly like a bench binary.
//   --list
//       Prints every registry figure slug usable with `figure`.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "adapt/frontier.hpp"
#include "adapt/refiner.hpp"
#include "common/env.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "report/csv_sink.hpp"
#include "report/gnuplot_sink.hpp"
#include "report/json_sink.hpp"
#include "report/text_sink.hpp"
#include "suite/alu_fetch.hpp"
#include "suite/figures.hpp"
#include "suite/microbench.hpp"

namespace {

using namespace amdmb;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <verb> [options]\n"
      << "  figure <slug> [--quick] [--tol N] [--budget N] [--json]\n"
      << "  budget <fig_7|fig_8|fig_9> [--max-ratio F] [--tol N]\n"
      << "  frontier [--dense] [--quick] [--budget N] [--json]\n"
      << "  --list, --version\n";
  return 2;
}

/// Largest adjacent x spacing over every dense curve: the unit the
/// refinement tolerance is expressed in for this figure.
double DenseGridStep(const report::Figure& dense) {
  double step = 0.0;
  for (const Series& series : dense.set.All()) {
    const auto& points = series.Points();
    for (std::size_t i = 1; i < points.size(); ++i) {
      step = std::max(step, points[i].x - points[i - 1].x);
    }
  }
  return step;
}

struct CrossoverDiff {
  std::string curve;
  std::string label;
  std::optional<double> dense;
  std::optional<double> adaptive;
  bool agree = false;
};

/// Diffs every kCrossover finding of the dense document against the
/// adaptive one. Adaptive-only findings (transition_to_*, emitted by
/// AdaptiveFindings) are not expected densely and are skipped.
std::vector<CrossoverDiff> DiffCrossovers(const report::Figure& dense,
                                          const report::Figure& adaptive,
                                          double tolerance_x) {
  std::vector<CrossoverDiff> diffs;
  for (const report::Finding& d : dense.findings) {
    if (d.kind != report::FindingKind::kCrossover) continue;
    CrossoverDiff diff;
    diff.curve = d.curve;
    diff.label = d.label;
    diff.dense = d.value;
    const report::Finding* a =
        report::FindFinding(adaptive.findings, d.label, d.curve);
    if (a == nullptr) {
      diff.agree = false;  // The adaptive run lost the finding entirely.
    } else {
      diff.adaptive = a->value;
      if (!d.value.has_value() && !a->value.has_value()) {
        diff.agree = true;  // Censored in both runs.
      } else if (d.value.has_value() && a->value.has_value()) {
        diff.agree =
            std::abs(*d.value - *a->value) <= tolerance_x + 1e-9;
      } else {
        diff.agree = false;
      }
    }
    diffs.push_back(diff);
  }
  return diffs;
}

std::string RenderValue(const std::optional<double>& value) {
  return value.has_value() ? FormatDouble(*value, 4) : "censored";
}

/// Sum of the per-curve "adaptive_points" findings — the points the
/// refiner actually measured across the whole figure.
double AdaptivePointsSpent(const report::Figure& adaptive) {
  double spent = 0.0;
  for (const report::Finding& f : adaptive.findings) {
    if (f.label == "adaptive_points" && f.value.has_value()) {
      spent += *f.value;
    }
  }
  return spent;
}

int RunFigure(const std::string& slug, bool quick, adapt::Settings settings,
              bool json) {
  const suite::figures::FigureDef* def = suite::figures::Find(slug);
  if (def == nullptr) {
    std::cerr << "error: unknown figure slug: " << slug << "\n";
    return 2;
  }
  suite::figures::RunOptions dense_opts;
  dense_opts.quick = quick;
  const report::Figure dense = suite::figures::Build(*def, dense_opts);

  suite::figures::RunOptions adaptive_opts = dense_opts;
  adaptive_opts.adaptive = &settings;
  const report::Figure adaptive = suite::figures::Build(*def, adaptive_opts);

  const double step = DenseGridStep(dense);
  const double tolerance_x = settings.tol_steps * step;
  const std::vector<CrossoverDiff> diffs =
      DiffCrossovers(dense, adaptive, tolerance_x);

  std::size_t dense_points = 0;
  for (const Series& series : dense.set.All()) {
    dense_points += series.Points().size();
  }
  const double spent = AdaptivePointsSpent(adaptive);

  std::size_t disagreements = 0;
  std::cerr << def->slug << ": " << diffs.size() << " crossover(s), "
            << "tolerance " << FormatDouble(tolerance_x, 4) << " ("
            << settings.tol_steps << " grid steps)\n";
  for (const CrossoverDiff& diff : diffs) {
    if (!diff.agree) ++disagreements;
    std::cerr << "  " << (diff.agree ? "ok      " : "DISAGREE") << "  "
              << diff.curve << "/" << diff.label << ": dense "
              << RenderValue(diff.dense) << ", adaptive "
              << RenderValue(diff.adaptive) << "\n";
  }
  std::cerr << "  points: adaptive " << FormatDouble(spent, 0) << " of "
            << dense_points << " dense";
  if (dense_points > 0) {
    std::cerr << " ("
              << FormatDouble(100.0 * spent / dense_points, 1) << "%)";
  }
  std::cerr << "\n";
  if (json) std::cout << report::BenchJson(adaptive);
  return disagreements == 0 ? 0 : 4;
}

/// The registry's Fig. 7-9 sweep configs at full ratio resolution but
/// quick domains — the grid the <= 1/5 budget claim is stated on.
struct BudgetFamily {
  std::vector<suite::CurveKey> curves;
  suite::AluFetchConfig config;
};

std::optional<BudgetFamily> FamilyFor(const std::string& slug) {
  const std::string key = suite::figures::NormalizeSlug(slug);
  BudgetFamily family;
  family.config.domain = Domain{256, 256};
  if (key == suite::figures::NormalizeSlug("fig_7")) {
    family.curves = suite::PaperCurves();
    return family;
  }
  if (key == suite::figures::NormalizeSlug("fig_8")) {
    family.curves = suite::PaperCurves(/*include_pixel=*/false);
    family.config.block = BlockShape{4, 16};
    return family;
  }
  if (key == suite::figures::NormalizeSlug("fig_9")) {
    family.curves = suite::PaperCurves(/*include_pixel=*/true,
                                       /*include_compute=*/false);
    family.config.read_path = ReadPath::kGlobal;
    family.config.write_path = WritePath::kStream;
    return family;
  }
  return std::nullopt;
}

int RunBudget(const std::string& slug, double max_ratio,
              adapt::Settings settings) {
  const std::optional<BudgetFamily> family = FamilyFor(slug);
  if (!family.has_value()) {
    std::cerr << "error: budget verb covers fig_7, fig_8, fig_9; got "
              << slug << "\n";
    return 2;
  }
  std::size_t dense_total = 0;
  std::size_t adaptive_total = 0;
  std::size_t disagreements = 0;
  for (const suite::CurveKey& key : family->curves) {
    const suite::Runner runner(key.arch);
    const suite::AluFetchResult dense =
        suite::RunAluFetch(runner, key.mode, key.type, family->config);
    suite::AluFetchConfig adaptive_config = family->config;
    adaptive_config.adaptive = &settings;
    const suite::AluFetchResult adaptive =
        suite::RunAluFetch(runner, key.mode, key.type, adaptive_config);
    dense_total += dense.points.size();
    adaptive_total += adaptive.adaptive->points_spent;
    const double tolerance =
        settings.tol_steps * family->config.ratio_step + 1e-9;
    const bool agree =
        dense.crossover.has_value() == adaptive.crossover.has_value() &&
        (!dense.crossover.has_value() ||
         std::abs(*dense.crossover - *adaptive.crossover) <= tolerance);
    if (!agree) ++disagreements;
    std::cerr << "  " << (agree ? "ok      " : "DISAGREE") << "  "
              << key.Name() << ": dense " << RenderValue(dense.crossover)
              << " (" << dense.points.size() << " pts), adaptive "
              << RenderValue(adaptive.crossover) << " ("
              << adaptive.adaptive->points_spent << " pts)\n";
  }
  const double ratio =
      dense_total > 0
          ? static_cast<double>(adaptive_total) / dense_total
          : 0.0;
  std::cerr << slug << ": adaptive " << adaptive_total << " of "
            << dense_total << " dense points ("
            << FormatDouble(100.0 * ratio, 1) << "%), limit "
            << FormatDouble(100.0 * max_ratio, 1) << "%\n";
  if (disagreements > 0) return 4;
  return ratio <= max_ratio ? 0 : 5;
}

int RunFrontier(bool dense, bool quick, std::uint64_t budget, bool json) {
  adapt::FrontierConfig config;
  config.dense = dense;
  config.budget = budget;
  if (quick) {
    config.nx = 5;
    config.ny = 4;
    config.domain = Domain{128, 128};
    config.repetitions = 50;
  }
  const report::Figure figure = adapt::BuildFrontierFigure(config);
  if (json) {
    std::cout << report::BenchJson(figure);
  } else {
    report::TextSink(std::cout).Write(figure);
  }
  const env::Options& options = env::Get();
  if (options.dump_dir) {
    report::GnuplotSink sink(*options.dump_dir);
    sink.Write(figure);
    for (const auto& path : sink.Written()) {
      std::cerr << sink.Label() << ": " << path.string() << "\n";
    }
  }
  if (options.json_dir) {
    report::JsonSink sink(*options.json_dir);
    sink.Write(figure);
    for (const auto& path : sink.Written()) {
      std::cerr << sink.Label() << ": " << path.string() << "\n";
    }
  }
  return 0;
}

int RunList() {
  for (const suite::figures::FigureDef& def :
       suite::figures::Registry()) {
    std::cout << def.slug << "  " << def.what << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string verb;
    std::string slug;
    bool quick = false;
    bool json = false;
    bool dense = false;
    double max_ratio = 0.2;
    adapt::Settings settings = adapt::Settings::FromEnv();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--version") {
        std::cout << "amdmb_adapt " << SuiteVersion() << "\n";
        return 0;
      } else if (arg == "--list") {
        return RunList();
      } else if (arg == "--quick") {
        quick = true;
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--dense") {
        dense = true;
      } else if (arg == "--tol" && i + 1 < argc) {
        settings.tol_steps = env::ParseAdaptTol(argv[++i]);
      } else if (arg == "--budget" && i + 1 < argc) {
        settings.budget = env::ParseAdaptBudget(argv[++i]);
      } else if (arg == "--max-ratio" && i + 1 < argc) {
        try {
          max_ratio = std::stod(argv[++i]);
        } catch (const std::exception&) {
          throw ConfigError(std::string("--max-ratio: not a number: ") +
                            argv[i]);
        }
      } else if (!arg.empty() && arg[0] == '-') {
        return Usage(argv[0]);
      } else if (verb.empty()) {
        verb = arg;
      } else if (slug.empty()) {
        slug = arg;
      } else {
        return Usage(argv[0]);
      }
    }
    if (verb == "figure" && !slug.empty()) {
      return RunFigure(slug, quick, settings, json);
    }
    if (verb == "budget" && !slug.empty()) {
      return RunBudget(slug, max_ratio, settings);
    }
    if (verb == "frontier" && slug.empty()) {
      return RunFrontier(dense, quick, settings.budget, json);
    }
    return Usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "amdmb_adapt: " << e.what() << "\n";
    return 1;
  }
}
