// fuzz_il_parser — fuzz target for the kerncap intake boundary.
//
// The one invariant under test: kerncap::Analyze() never lets an
// exception escape, never crashes, and never hangs, whatever bytes it
// is fed. Every malformed input must come back as a typed Rejection.
//
// Two build flavors:
//   * Default: a replay binary. Each argument is a corpus file or a
//     directory of them; every file is fed through Analyze and the
//     verdict printed. --mutations N additionally derives N determinis-
//     tic mutants per file (truncations, byte flips — seeded from the
//     file bytes, no wall-clock randomness) so CI gets a bounded fuzz
//     pass without libFuzzer. Exit 0 when nothing escaped.
//   * -DAMDMB_FUZZER=ON (clang): links -fsanitize=fuzzer and exports
//     LLVMFuzzerTestOneInput for coverage-guided fuzzing:
//       ./fuzz_il_parser tests/corpus/il
#include <cstddef>
#include <cstdint>
#include <string>

#include "kerncap/intake.hpp"

namespace {

amdmb::kerncap::IntakeLimits FuzzLimits() {
  // Tighter than production so the size/line/instruction rejection arms
  // are reachable from small inputs.
  amdmb::kerncap::IntakeLimits limits;
  limits.max_bytes = 64u << 10;
  limits.max_lines = 512;
  limits.max_instructions = 256;
  return limits;
}

}  // namespace

// No try/catch: an escaping exception IS the bug this target exists to
// find, and the fuzzer (or the replay main below) reports it as a crash.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const amdmb::kerncap::AnalyzeResult result =
      amdmb::kerncap::Analyze(text, FuzzLimits());
  (void)result;
  return 0;
}

#ifndef AMDMB_FUZZER_BUILD

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

/// Deterministic per-input mutator: seeded from the bytes themselves,
/// so a corpus replay is identical on every run and every machine.
class XorShiftMutator {
 public:
  explicit XorShiftMutator(const std::string& bytes) {
    for (const char c : bytes) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= 6364136223846793005ull;
      state_ += 1442695040888963407ull;
    }
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  std::uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  std::string Mutate(const std::string& base) {
    std::string out = base;
    switch (Next() % 4) {
      case 0:  // Truncate.
        if (!out.empty()) out.resize(Next() % out.size());
        break;
      case 1:  // Flip one byte.
        if (!out.empty()) {
          out[Next() % out.size()] =
              static_cast<char>(static_cast<unsigned char>(Next()));
        }
        break;
      case 2:  // Duplicate a slice onto the end.
        if (!out.empty()) {
          const std::size_t at = Next() % out.size();
          out += out.substr(at, Next() % 64);
        }
        break;
      default:  // Splice random bytes into the middle.
        out.insert(out.empty() ? 0 : Next() % out.size(),
                   std::string(1 + Next() % 8,
                               static_cast<char>(
                                   static_cast<unsigned char>(Next()))));
        break;
    }
    return out;
  }

 private:
  std::uint64_t state_ = 0xdeadbeefcafef00dull;
};

int RunReplay(const std::vector<std::filesystem::path>& files,
              std::size_t mutations) {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t executed = 0;
  for (const std::filesystem::path& path : files) {
    const std::string bytes = ReadFile(path);
    const amdmb::kerncap::AnalyzeResult result =
        amdmb::kerncap::Analyze(bytes, FuzzLimits());
    ++executed;
    if (result.ok()) {
      ++accepted;
      std::cout << path.filename().string() << ": ok ("
                << result.prepared->kernel.name << ")\n";
    } else {
      ++rejected;
      std::cout << path.filename().string() << ": rejected "
                << amdmb::kerncap::ToString(result.rejection->reason)
                << "\n";
    }
    XorShiftMutator mutator(bytes);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::string mutant = mutator.Mutate(bytes);
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const std::uint8_t*>(mutant.data()),
          mutant.size());
      ++executed;
    }
  }
  std::cout << executed << " inputs analyzed (" << accepted << " ok, "
            << rejected << " rejected, "
            << (executed - accepted - rejected) << " mutants), 0 escapes\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t mutations = 0;
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutations" && i + 1 < argc) {
      mutations = static_cast<std::size_t>(std::stoull(argv[++i]));
      continue;
    }
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(path);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: " << argv[0]
              << " [--mutations N] <corpus-file-or-dir>...\n";
    return 2;
  }
  std::sort(files.begin(), files.end());
  return RunReplay(files, mutations);
}

#endif  // AMDMB_FUZZER_BUILD
