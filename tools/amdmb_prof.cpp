// amdmb_prof — profile one figure's sweep on the simulated GPU.
//
// Runs a single micro-benchmark sweep with hardware-counter profiling
// forced on, then prints the counter table, clause queue/service
// decomposition, and counter-based bottleneck attribution for one
// sweep point. Optionally writes the Chrome trace (loadable in
// chrome://tracing or Perfetto) for every profiled point, emits the
// selected profile as JSON, or diffs two previously saved profiles
// counter by counter.
//
// Usage:
//   amdmb_prof <figure> [--arch NAME] [--mode pixel|compute]
//              [--type float|float4] [--point LABEL]
//              [--trace-dir DIR] [--json]
//   amdmb_prof --diff A.json B.json
//   amdmb_prof --list
//
//   <figure>       slug of a supported figure (see --list), e.g. fig_7
//   --arch NAME    chip or card name (RV770, 4870, ...); default RV770
//   --mode M       shader mode; default pixel (fig_8 defaults compute)
//   --type T       data type; default float
//   --point LABEL  select the sweep point whose full profile to print
//                  (substring match); default: the last profiled point
//   --trace-dir D  write one <arch>_<mode>_<type>_<point>.trace.json
//                  Chrome trace per profiled point into D
//   --json         print the selected profile as JSON instead of text
//   --diff A B     compare two profile JSON documents; exit 1 when any
//                  counter or the attributed bottleneck differs
//
// Sweeps run at smoke scale (the AMDMB_QUICK shapes) — the point is
// counter inspection, not paper-scale timing.
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "amdmb.hpp"
#include "common/version.hpp"
#include "prof/chrome_trace.hpp"
#include "prof/profile_json.hpp"
#include "report/json_sink.hpp"

namespace {

using namespace amdmb;
using ProfilePtr = std::shared_ptr<const prof::Profile>;

struct FigureSpec {
  const char* slug;
  const char* what;
};

constexpr FigureSpec kFigures[] = {
    {"fig_7", "ALU:fetch ratio sweep, texture reads, 64x1 blocks"},
    {"fig_8", "ALU:fetch ratio sweep, 4x16 compute blocks"},
    {"fig_11", "texture-fetch read latency vs input count"},
    {"fig_12", "global-read latency vs input count"},
    {"fig_13", "stream-store write latency vs output count"},
    {"fig_14", "global-write latency vs output count"},
    {"fig_15", "domain-size sweep, ALU-bound kernel"},
    {"fig_16", "register-usage sweep"},
    {"ext_block_size", "block-shape explorer, fetch-bound kernel"},
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <figure> [--arch NAME] [--mode pixel|compute]"
               " [--type float|float4]\n"
               "       [--point LABEL] [--trace-dir DIR] [--json]\n"
               "   or: "
            << argv0 << " --diff A.json B.json\n   or: " << argv0
            << " --list\n";
  return 2;
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

/// Pulls the profiles out of a sweep's points, in sweep order.
template <typename Points>
std::vector<ProfilePtr> Collect(const Points& points) {
  std::vector<ProfilePtr> out;
  for (const auto& point : points) {
    if (point.m.profile != nullptr) out.push_back(point.m.profile);
  }
  return out;
}

std::vector<ProfilePtr> RunFigure(const std::string& slug,
                                  const GpuArch& arch, ShaderMode mode,
                                  DataType type) {
  using namespace amdmb::suite;
  const Runner runner(arch);
  if (slug == "fig_7" || slug == "fig_8") {
    AluFetchConfig c;
    c.profile = true;
    c.domain = Domain{256, 256};
    c.ratio_step = 1.0;
    if (slug == "fig_8") c.block = BlockShape{4, 16};
    return Collect(RunAluFetch(runner, mode, type, c).points);
  }
  if (slug == "fig_11" || slug == "fig_12") {
    ReadLatencyConfig c;
    c.profile = true;
    c.domain = Domain{256, 256};
    if (slug == "fig_12") c.read_path = ReadPath::kGlobal;
    return Collect(RunReadLatency(runner, mode, type, c).points);
  }
  if (slug == "fig_13" || slug == "fig_14") {
    WriteLatencyConfig c;
    c.profile = true;
    c.domain = Domain{256, 256};
    if (slug == "fig_14") c.write_path = WritePath::kGlobal;
    return Collect(RunWriteLatency(runner, mode, type, c).points);
  }
  if (slug == "fig_15") {
    DomainSizeConfig c;
    c.profile = true;
    c.max_size = 512;
    c.pixel_increment = 64;
    return Collect(RunDomainSize(runner, mode, type, c).points);
  }
  if (slug == "fig_16") {
    RegisterUsageConfig c;
    c.profile = true;
    c.domain = Domain{256, 256};
    return Collect(RunRegisterUsage(runner, mode, type, c).points);
  }
  if (slug == "ext_block_size") {
    BlockSizeConfig c;
    c.profile = true;
    c.type = type;
    c.domain = Domain{256, 256};
    return Collect(RunBlockSizeExplorer(runner, c).points);
  }
  throw ConfigError("amdmb_prof: unknown figure '" + slug +
                    "' (see --list)");
}

prof::Profile LoadProfile(const std::string& path) {
  std::ifstream in(path);
  Require(in.good(), "amdmb_prof: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return prof::ParseProfileJson(text.str());
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

std::string Identity(const prof::Profile& p) {
  return p.arch + " " + p.mode + " " + p.type + " " + p.point;
}

/// Counter-by-counter comparison; returns the number of differences
/// (differing counters plus a differing attributed bottleneck).
int DiffProfiles(const prof::Profile& a, const prof::Profile& b) {
  std::cout << "A: " << Identity(a) << "\nB: " << Identity(b) << "\n\n";
  int differences = 0;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(prof::CounterId::kCount); ++i) {
    const auto id = static_cast<prof::CounterId>(i);
    const std::uint64_t va = a.counters.Get(id);
    const std::uint64_t vb = b.counters.Get(id);
    if (va == vb) continue;
    ++differences;
    const auto delta = static_cast<std::int64_t>(vb - va);
    std::cout << "  " << prof::ToString(id) << ": " << va << " -> " << vb
              << " (" << (delta >= 0 ? "+" : "") << delta << ")\n";
  }
  const std::string_view ba = sim::ToString(a.attribution.bottleneck);
  const std::string_view bb = sim::ToString(b.attribution.bottleneck);
  if (ba != bb) {
    ++differences;
    std::cout << "  bottleneck: " << ba << " -> " << bb << "\n";
  }
  if (differences == 0) {
    std::cout << "identical: every counter and the attribution match\n";
  } else {
    std::cout << "\n" << differences << " difference"
              << (differences == 1 ? "" : "s") << "\n";
  }
  return differences;
}

ShaderMode ParseMode(const std::string& text) {
  const std::string mode = Lower(text);
  if (mode == "pixel") return ShaderMode::kPixel;
  if (mode == "compute") return ShaderMode::kCompute;
  throw ConfigError("amdmb_prof: --mode must be pixel or compute, got '" +
                    text + "'");
}

DataType ParseType(const std::string& text) {
  const std::string type = Lower(text);
  if (type == "float") return DataType::kFloat;
  if (type == "float4") return DataType::kFloat4;
  throw ConfigError("amdmb_prof: --type must be float or float4, got '" +
                    text + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string figure;
  std::string arch_name = "RV770";
  std::string mode_text;
  std::string type_text = "float";
  std::string point_label;
  std::string trace_dir;
  std::vector<std::string> diff_paths;
  bool json = false;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag) {
      if (i + 1 >= argc) {
        throw amdmb::ConfigError(std::string("amdmb_prof: ") + flag +
                                 " needs a value");
      }
      return std::string(argv[++i]);
    };
    try {
      if (std::strcmp(argv[i], "--version") == 0) {
        std::cout << "amdmb_prof " << amdmb::SuiteVersion() << "\n";
        return 0;
      } else if (std::strcmp(argv[i], "--list") == 0) {
        list = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else if (std::strcmp(argv[i], "--arch") == 0) {
        arch_name = value("--arch");
      } else if (std::strcmp(argv[i], "--mode") == 0) {
        mode_text = value("--mode");
      } else if (std::strcmp(argv[i], "--type") == 0) {
        type_text = value("--type");
      } else if (std::strcmp(argv[i], "--point") == 0) {
        point_label = value("--point");
      } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
        trace_dir = value("--trace-dir");
      } else if (std::strcmp(argv[i], "--diff") == 0) {
        diff_paths.push_back(value("--diff"));
        diff_paths.push_back(value("--diff"));
      } else if (argv[i][0] == '-') {
        return Usage(argv[0]);
      } else if (figure.empty()) {
        figure = argv[i];
      } else {
        return Usage(argv[0]);
      }
    } catch (const amdmb::ConfigError& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  if (list) {
    for (const FigureSpec& spec : kFigures) {
      std::cout << spec.slug << "\t" << spec.what << "\n";
    }
    return 0;
  }

  try {
    if (!diff_paths.empty()) {
      return DiffProfiles(LoadProfile(diff_paths[0]),
                          LoadProfile(diff_paths[1])) == 0
                 ? 0
                 : 1;
    }
    if (figure.empty()) return Usage(argv[0]);

    const GpuArch arch = ArchByName(arch_name);
    const ShaderMode mode =
        mode_text.empty()
            ? (figure == "fig_8" ? ShaderMode::kCompute : ShaderMode::kPixel)
            : ParseMode(mode_text);
    const DataType type = ParseType(type_text);
    Require(mode == ShaderMode::kPixel || arch.supports_compute,
            "amdmb_prof: " + arch.name + " has no compute-shader mode");
    if (!trace_dir.empty()) {
      report::EnsureWritableDirectory(trace_dir, "--trace-dir");
    }

    const std::vector<ProfilePtr> profiles =
        RunFigure(figure, arch, mode, type);
    if (profiles.empty()) {
      std::cerr << "amdmb_prof: the sweep produced no profiled points\n";
      return 1;
    }

    ProfilePtr selected = profiles.back();
    if (!point_label.empty()) {
      selected = nullptr;
      for (const ProfilePtr& p : profiles) {
        if (p->point.find(point_label) != std::string::npos) {
          selected = p;
          break;
        }
      }
      if (selected == nullptr) {
        std::cerr << "amdmb_prof: no sweep point matches '" << point_label
                  << "'; points are:\n";
        for (const ProfilePtr& p : profiles) {
          std::cerr << "  " << p->point << "\n";
        }
        return 1;
      }
    }

    for (const ProfilePtr& p : profiles) {
      if (!trace_dir.empty()) {
        std::cout << "trace: " << prof::WriteChromeTrace(*p, trace_dir)
                  << "\n";
      }
    }

    if (json) {
      std::cout << prof::ProfileJson(*selected);
      return 0;
    }

    std::cout << figure << " on " << Identity(*selected) << " ("
              << profiles.size() << " profiled point"
              << (profiles.size() == 1 ? "" : "s") << ")\n";
    for (const ProfilePtr& p : profiles) {
      std::cout << "  " << p->point << ": "
                << sim::ToString(p->attribution.bottleneck)
                << (p == selected ? "  <- selected" : "") << "\n";
    }
    std::cout << "\n" << selected->Render();
    return 0;
  } catch (const amdmb::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "amdmb_prof: " << e.what() << "\n";
    return 1;
  }
}
