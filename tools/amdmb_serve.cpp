// amdmb_serve — the benchmark-as-a-service daemon.
//
// Accepts sweep requests over a local Unix-domain socket (newline-
// delimited JSON; see src/serve/protocol.hpp), schedules them through a
// bounded FIFO-with-priority queue with explicit admission control, and
// executes them via the suite figure registry on the process-wide
// shared kernel cache — repeat requests skip compilation entirely. A
// completed request's "done" event carries the figure document
// byte-identical to the standalone bench binary's BENCH_<slug>.json.
//
// Usage:
//   amdmb_serve [--socket PATH] [--queue N] [--inflight K] [--workers W]
//               [--deadline-ms D] [--heartbeat-ms H] [--version]
//
// Flags override the environment (AMDMB_SERVE_SOCKET, AMDMB_SERVE_QUEUE,
// AMDMB_SERVE_INFLIGHT, AMDMB_WORKERS, AMDMB_DEADLINE_MS,
// AMDMB_HEARTBEAT_MS). Sweep knobs (AMDMB_THREADS, AMDMB_FAULTS,
// AMDMB_RETRY, ...) apply daemon-wide, exactly as for a bench binary.
//
// With --workers >= 1 the daemon runs as a supervised fleet: W forked
// worker processes (each with a private kernel cache) behind a
// supervisor that routes by figure slug, health-checks every worker,
// restarts crashed or hung ones, and fails requests over (see
// src/serve/supervisor.hpp). --workers 0 (default) is the classic
// single-process daemon.
//
// Shutdown contract: SIGTERM or SIGINT stops admission (later submits
// get "rejected"/"draining"), finishes every in-flight and queued
// sweep, flushes, and exits 0. A client's {"op":"drain"} does the same.
#include <csignal>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "common/env.hpp"
#include "common/status.hpp"
#include "common/version.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"

namespace {

// The daemon's own SIGTERM/SIGINT flag (not common/interrupt: the
// contract here is graceful drain, not cancel-and-flush-partial).
volatile std::sig_atomic_t g_drain_signal = 0;

extern "C" void RecordDrainSignal(int signal_number) {
  g_drain_signal = signal_number;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--socket PATH] [--queue N] [--inflight K] [--workers W]"
               " [--deadline-ms D] [--heartbeat-ms H] [--version]\n";
  return 2;
}

/// Shared signal-or-client-drain loop for both daemon flavors.
template <typename Daemon>
int ServeUntilDrained(Daemon& daemon, const std::string& banner) {
  std::signal(SIGTERM, RecordDrainSignal);
  std::signal(SIGINT, RecordDrainSignal);
  std::cout << banner << std::endl;
  while (g_drain_signal == 0 && !daemon.DrainRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "amdmb_serve: draining ("
            << (g_drain_signal != 0 ? "signal" : "client request")
            << ") — finishing admitted sweeps" << std::endl;
  daemon.Drain();
  std::cout << "amdmb_serve: drained, exiting" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amdmb;
  try {
    const env::Options& env_options = env::Get();
    serve::ServerConfig config;
    config.socket_path = env_options.serve_socket.value_or(
        std::string(env::kDefaultServeSocket));
    config.max_queue = env_options.serve_queue;
    config.max_inflight = env_options.serve_inflight;
    unsigned workers = env_options.workers;
    std::uint64_t deadline_ms = env_options.deadline_ms;
    std::uint64_t heartbeat_ms = env_options.heartbeat_ms;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--version") == 0) {
        std::cout << "amdmb_serve " << SuiteVersion() << "\n";
        return 0;
      } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
        config.socket_path = argv[++i];
      } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
        config.max_queue = env::ParseServeQueue(argv[++i]);
      } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
        config.max_inflight = env::ParseServeInflight(argv[++i]);
      } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
        workers = env::ParseWorkerCount(argv[++i]);
      } else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
                 i + 1 < argc) {
        deadline_ms = env::ParseDeadlineMs(argv[++i]);
      } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 &&
                 i + 1 < argc) {
        heartbeat_ms = env::ParseHeartbeatMs(argv[++i]);
      } else {
        return Usage(argv[0]);
      }
    }

    if (workers >= 1) {
      serve::SupervisorConfig fleet;
      fleet.socket_path = config.socket_path;
      fleet.workers = workers;
      fleet.worker_queue = config.max_queue;
      fleet.worker_inflight = config.max_inflight;
      fleet.deadline_ms = deadline_ms;
      fleet.health.heartbeat_ms = heartbeat_ms;
      serve::Supervisor supervisor(fleet);
      supervisor.Start();
      return ServeUntilDrained(
          supervisor,
          "amdmb_serve " + std::string(SuiteVersion()) + " supervising " +
              std::to_string(workers) + " worker(s) on " +
              supervisor.SocketPath() + " (per-worker queue " +
              std::to_string(config.max_queue) + ", inflight " +
              std::to_string(config.max_inflight) + ", heartbeat " +
              std::to_string(heartbeat_ms) + " ms)");
    }

    serve::Server server(config);
    server.Start();
    return ServeUntilDrained(
        server, "amdmb_serve " + std::string(SuiteVersion()) +
                    " listening on " + server.SocketPath() + " (queue " +
                    std::to_string(config.max_queue) + ", inflight " +
                    std::to_string(config.max_inflight) + ")");
  } catch (const std::exception& e) {
    std::cerr << "amdmb_serve: " << e.what() << "\n";
    return 1;
  }
}
