# Empty dependencies file for bench_ext_block_size.
# This may be replaced when dependencies are built.
