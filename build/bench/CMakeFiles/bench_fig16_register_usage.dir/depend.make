# Empty dependencies file for bench_fig16_register_usage.
# This may be replaced when dependencies are built.
