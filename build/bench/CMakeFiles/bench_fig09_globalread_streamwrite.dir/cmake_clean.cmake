file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_globalread_streamwrite.dir/bench_fig09_globalread_streamwrite.cpp.o"
  "CMakeFiles/bench_fig09_globalread_streamwrite.dir/bench_fig09_globalread_streamwrite.cpp.o.d"
  "bench_fig09_globalread_streamwrite"
  "bench_fig09_globalread_streamwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_globalread_streamwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
