# Empty compiler generated dependencies file for bench_fig09_globalread_streamwrite.
# This may be replaced when dependencies are built.
