# Empty compiler generated dependencies file for bench_fig08_alufetch_4x16.
# This may be replaced when dependencies are built.
