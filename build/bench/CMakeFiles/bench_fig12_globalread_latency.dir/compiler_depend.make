# Empty compiler generated dependencies file for bench_fig12_globalread_latency.
# This may be replaced when dependencies are built.
