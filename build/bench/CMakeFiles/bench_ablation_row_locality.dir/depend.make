# Empty dependencies file for bench_ablation_row_locality.
# This may be replaced when dependencies are built.
