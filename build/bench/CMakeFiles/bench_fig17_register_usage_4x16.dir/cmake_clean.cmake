file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_register_usage_4x16.dir/bench_fig17_register_usage_4x16.cpp.o"
  "CMakeFiles/bench_fig17_register_usage_4x16.dir/bench_fig17_register_usage_4x16.cpp.o.d"
  "bench_fig17_register_usage_4x16"
  "bench_fig17_register_usage_4x16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_register_usage_4x16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
