# Empty dependencies file for bench_fig17_register_usage_4x16.
# This may be replaced when dependencies are built.
