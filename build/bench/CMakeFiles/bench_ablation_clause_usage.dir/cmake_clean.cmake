file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clause_usage.dir/bench_ablation_clause_usage.cpp.o"
  "CMakeFiles/bench_ablation_clause_usage.dir/bench_ablation_clause_usage.cpp.o.d"
  "bench_ablation_clause_usage"
  "bench_ablation_clause_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clause_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
