# Empty dependencies file for bench_ablation_clause_usage.
# This may be replaced when dependencies are built.
