file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_alufetch.dir/bench_fig07_alufetch.cpp.o"
  "CMakeFiles/bench_fig07_alufetch.dir/bench_fig07_alufetch.cpp.o.d"
  "bench_fig07_alufetch"
  "bench_fig07_alufetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_alufetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
