file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_globalread_globalwrite.dir/bench_fig10_globalread_globalwrite.cpp.o"
  "CMakeFiles/bench_fig10_globalread_globalwrite.dir/bench_fig10_globalread_globalwrite.cpp.o.d"
  "bench_fig10_globalread_globalwrite"
  "bench_fig10_globalread_globalwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_globalread_globalwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
