# Empty dependencies file for bench_fig10_globalread_globalwrite.
# This may be replaced when dependencies are built.
