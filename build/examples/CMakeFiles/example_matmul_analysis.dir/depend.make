# Empty dependencies file for example_matmul_analysis.
# This may be replaced when dependencies are built.
