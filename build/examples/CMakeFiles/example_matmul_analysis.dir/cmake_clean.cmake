file(REMOVE_RECURSE
  "CMakeFiles/example_matmul_analysis.dir/matmul_analysis.cpp.o"
  "CMakeFiles/example_matmul_analysis.dir/matmul_analysis.cpp.o.d"
  "example_matmul_analysis"
  "example_matmul_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
