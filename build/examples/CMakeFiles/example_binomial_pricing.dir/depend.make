# Empty dependencies file for example_binomial_pricing.
# This may be replaced when dependencies are built.
