file(REMOVE_RECURSE
  "CMakeFiles/example_binomial_pricing.dir/binomial_pricing.cpp.o"
  "CMakeFiles/example_binomial_pricing.dir/binomial_pricing.cpp.o.d"
  "example_binomial_pricing"
  "example_binomial_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_binomial_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
