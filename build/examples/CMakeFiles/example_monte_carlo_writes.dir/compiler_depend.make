# Empty compiler generated dependencies file for example_monte_carlo_writes.
# This may be replaced when dependencies are built.
