file(REMOVE_RECURSE
  "CMakeFiles/example_monte_carlo_writes.dir/monte_carlo_writes.cpp.o"
  "CMakeFiles/example_monte_carlo_writes.dir/monte_carlo_writes.cpp.o.d"
  "example_monte_carlo_writes"
  "example_monte_carlo_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_monte_carlo_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
