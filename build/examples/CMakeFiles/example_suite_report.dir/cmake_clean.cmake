file(REMOVE_RECURSE
  "CMakeFiles/example_suite_report.dir/suite_report.cpp.o"
  "CMakeFiles/example_suite_report.dir/suite_report.cpp.o.d"
  "example_suite_report"
  "example_suite_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_suite_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
