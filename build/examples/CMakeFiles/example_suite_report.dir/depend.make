# Empty dependencies file for example_suite_report.
# This may be replaced when dependencies are built.
