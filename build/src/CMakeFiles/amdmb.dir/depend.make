# Empty dependencies file for amdmb.
# This may be replaced when dependencies are built.
