file(REMOVE_RECURSE
  "libamdmb.a"
)
