
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/gpu_arch.cpp" "src/CMakeFiles/amdmb.dir/arch/gpu_arch.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/arch/gpu_arch.cpp.o.d"
  "/root/repo/src/arch/occupancy.cpp" "src/CMakeFiles/amdmb.dir/arch/occupancy.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/arch/occupancy.cpp.o.d"
  "/root/repo/src/cal/cal.cpp" "src/CMakeFiles/amdmb.dir/cal/cal.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/cal/cal.cpp.o.d"
  "/root/repo/src/cal/interp.cpp" "src/CMakeFiles/amdmb.dir/cal/interp.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/cal/interp.cpp.o.d"
  "/root/repo/src/common/gnuplot.cpp" "src/CMakeFiles/amdmb.dir/common/gnuplot.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/common/gnuplot.cpp.o.d"
  "/root/repo/src/common/series.cpp" "src/CMakeFiles/amdmb.dir/common/series.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/common/series.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/amdmb.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/amdmb.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/common/status.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/amdmb.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/common/table.cpp.o.d"
  "/root/repo/src/compiler/binary.cpp" "src/CMakeFiles/amdmb.dir/compiler/binary.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/binary.cpp.o.d"
  "/root/repo/src/compiler/clause_builder.cpp" "src/CMakeFiles/amdmb.dir/compiler/clause_builder.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/clause_builder.cpp.o.d"
  "/root/repo/src/compiler/compiler.cpp" "src/CMakeFiles/amdmb.dir/compiler/compiler.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/compiler.cpp.o.d"
  "/root/repo/src/compiler/depgraph.cpp" "src/CMakeFiles/amdmb.dir/compiler/depgraph.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/depgraph.cpp.o.d"
  "/root/repo/src/compiler/isa.cpp" "src/CMakeFiles/amdmb.dir/compiler/isa.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/isa.cpp.o.d"
  "/root/repo/src/compiler/regalloc.cpp" "src/CMakeFiles/amdmb.dir/compiler/regalloc.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/regalloc.cpp.o.d"
  "/root/repo/src/compiler/ska.cpp" "src/CMakeFiles/amdmb.dir/compiler/ska.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/ska.cpp.o.d"
  "/root/repo/src/compiler/vliw_packer.cpp" "src/CMakeFiles/amdmb.dir/compiler/vliw_packer.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/compiler/vliw_packer.cpp.o.d"
  "/root/repo/src/il/builder.cpp" "src/CMakeFiles/amdmb.dir/il/builder.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/il/builder.cpp.o.d"
  "/root/repo/src/il/il.cpp" "src/CMakeFiles/amdmb.dir/il/il.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/il/il.cpp.o.d"
  "/root/repo/src/il/parser.cpp" "src/CMakeFiles/amdmb.dir/il/parser.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/il/parser.cpp.o.d"
  "/root/repo/src/il/printer.cpp" "src/CMakeFiles/amdmb.dir/il/printer.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/il/printer.cpp.o.d"
  "/root/repo/src/il/verifier.cpp" "src/CMakeFiles/amdmb.dir/il/verifier.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/il/verifier.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/amdmb.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/amdmb.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/texture_unit.cpp" "src/CMakeFiles/amdmb.dir/mem/texture_unit.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/mem/texture_unit.cpp.o.d"
  "/root/repo/src/mem/tiling.cpp" "src/CMakeFiles/amdmb.dir/mem/tiling.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/mem/tiling.cpp.o.d"
  "/root/repo/src/sim/dispatch.cpp" "src/CMakeFiles/amdmb.dir/sim/dispatch.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/sim/dispatch.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/CMakeFiles/amdmb.dir/sim/gpu.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/sim/gpu.cpp.o.d"
  "/root/repo/src/sim/simd_engine.cpp" "src/CMakeFiles/amdmb.dir/sim/simd_engine.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/sim/simd_engine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/amdmb.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/wavefront.cpp" "src/CMakeFiles/amdmb.dir/sim/wavefront.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/sim/wavefront.cpp.o.d"
  "/root/repo/src/suite/alu_fetch.cpp" "src/CMakeFiles/amdmb.dir/suite/alu_fetch.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/alu_fetch.cpp.o.d"
  "/root/repo/src/suite/block_size.cpp" "src/CMakeFiles/amdmb.dir/suite/block_size.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/block_size.cpp.o.d"
  "/root/repo/src/suite/bottleneck.cpp" "src/CMakeFiles/amdmb.dir/suite/bottleneck.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/bottleneck.cpp.o.d"
  "/root/repo/src/suite/domain_size.cpp" "src/CMakeFiles/amdmb.dir/suite/domain_size.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/domain_size.cpp.o.d"
  "/root/repo/src/suite/kernelgen.cpp" "src/CMakeFiles/amdmb.dir/suite/kernelgen.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/kernelgen.cpp.o.d"
  "/root/repo/src/suite/microbench.cpp" "src/CMakeFiles/amdmb.dir/suite/microbench.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/microbench.cpp.o.d"
  "/root/repo/src/suite/read_latency.cpp" "src/CMakeFiles/amdmb.dir/suite/read_latency.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/read_latency.cpp.o.d"
  "/root/repo/src/suite/register_usage.cpp" "src/CMakeFiles/amdmb.dir/suite/register_usage.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/register_usage.cpp.o.d"
  "/root/repo/src/suite/suite.cpp" "src/CMakeFiles/amdmb.dir/suite/suite.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/suite.cpp.o.d"
  "/root/repo/src/suite/write_latency.cpp" "src/CMakeFiles/amdmb.dir/suite/write_latency.cpp.o" "gcc" "src/CMakeFiles/amdmb.dir/suite/write_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
