# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_il[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_regalloc[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_dispatch[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cal[1]_include.cmake")
include("/root/repo/build/tests/test_kernelgen[1]_include.cmake")
include("/root/repo/build/tests/test_suite[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_block_size[1]_include.cmake")
include("/root/repo/build/tests/test_gnuplot[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_random_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_binary[1]_include.cmake")
