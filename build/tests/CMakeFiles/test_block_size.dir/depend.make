# Empty dependencies file for test_block_size.
# This may be replaced when dependencies are built.
