file(REMOVE_RECURSE
  "CMakeFiles/test_block_size.dir/test_block_size.cpp.o"
  "CMakeFiles/test_block_size.dir/test_block_size.cpp.o.d"
  "test_block_size"
  "test_block_size.pdb"
  "test_block_size[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
