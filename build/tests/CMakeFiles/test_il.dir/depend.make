# Empty dependencies file for test_il.
# This may be replaced when dependencies are built.
