file(REMOVE_RECURSE
  "CMakeFiles/test_il.dir/test_il.cpp.o"
  "CMakeFiles/test_il.dir/test_il.cpp.o.d"
  "test_il"
  "test_il.pdb"
  "test_il[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_il.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
