# Empty compiler generated dependencies file for test_binary.
# This may be replaced when dependencies are built.
