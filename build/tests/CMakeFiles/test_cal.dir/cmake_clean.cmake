file(REMOVE_RECURSE
  "CMakeFiles/test_cal.dir/test_cal.cpp.o"
  "CMakeFiles/test_cal.dir/test_cal.cpp.o.d"
  "test_cal"
  "test_cal.pdb"
  "test_cal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
