# Empty compiler generated dependencies file for test_cal.
# This may be replaced when dependencies are built.
