# Empty dependencies file for test_random_kernels.
# This may be replaced when dependencies are built.
