file(REMOVE_RECURSE
  "CMakeFiles/test_random_kernels.dir/test_random_kernels.cpp.o"
  "CMakeFiles/test_random_kernels.dir/test_random_kernels.cpp.o.d"
  "test_random_kernels"
  "test_random_kernels.pdb"
  "test_random_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
