file(REMOVE_RECURSE
  "CMakeFiles/test_kernelgen.dir/test_kernelgen.cpp.o"
  "CMakeFiles/test_kernelgen.dir/test_kernelgen.cpp.o.d"
  "test_kernelgen"
  "test_kernelgen.pdb"
  "test_kernelgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
