# Empty dependencies file for test_kernelgen.
# This may be replaced when dependencies are built.
