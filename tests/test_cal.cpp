// CAL runtime facade tests: device lookup, module compilation, launches.
#include <gtest/gtest.h>

#include "cal/cal.hpp"
#include "common/status.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::cal {
namespace {

il::Kernel SimpleKernel(DataType type = DataType::kFloat) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 32;
  spec.type = type;
  return suite::GenerateGeneric(spec);
}

TEST(DeviceTest, OpenByName) {
  EXPECT_EQ(Device::Open("4870").Info().name, "RV770");
  EXPECT_EQ(Device::Open("RV870").Info().name, "RV870");
  EXPECT_FALSE(Device::Open("3870").SupportsComputeShader());
  EXPECT_TRUE(Device::Open("5870").SupportsComputeShader());
  EXPECT_THROW(Device::Open("tesla"), ConfigError);
}

TEST(ContextTest, CompileProducesModuleWithSka) {
  const Device device = Device::Open("4870");
  Context ctx(device);
  const Module module = ctx.Compile(SimpleKernel());
  EXPECT_EQ(module.Ska().alu_ops, 32u);
  EXPECT_EQ(module.Ska().fetch_ops, 4u);
  EXPECT_DOUBLE_EQ(module.Ska().alu_fetch_ratio, 2.0);
  EXPECT_NE(module.Disassemble().find("END_OF_PROGRAM"), std::string::npos);
}

TEST(ContextTest, CompileRejectsInvalidKernel) {
  Context ctx(Device::Open("4870"));
  il::Kernel bad;
  bad.sig.inputs = 0;
  bad.sig.outputs = 0;
  EXPECT_THROW(ctx.Compile(bad), ConfigError);
}

TEST(ContextTest, RunReturnsTimerAndStats) {
  Context ctx(Device::Open("4870"));
  const Module module = ctx.Compile(SimpleKernel());
  sim::LaunchConfig config;
  config.domain = Domain{256, 256};
  const RunEvent ev = ctx.Run(module, config);
  EXPECT_GT(ev.seconds, 0.0);
  EXPECT_EQ(ev.seconds, ev.stats.seconds);
  EXPECT_GT(ev.stats.cycles, 0u);
  EXPECT_EQ(ev.stats.gpr_count, module.Program().gpr_count);
}

TEST(ContextTest, PixelAndComputeLaunchesDiffer) {
  Context ctx(Device::Open("5870"));
  suite::GenericSpec spec;
  spec.inputs = 8;
  spec.alu_ops = 8;  // Fetch-bound, so cache behaviour shows.
  spec.write_path = WritePath::kGlobal;
  const Module module = ctx.Compile(suite::GenerateGeneric(spec));
  sim::LaunchConfig config;
  config.domain = Domain{256, 256};
  config.mode = ShaderMode::kPixel;
  const RunEvent pixel = ctx.Run(module, config);
  config.mode = ShaderMode::kCompute;
  config.block = BlockShape{64, 1};
  const RunEvent compute = ctx.Run(module, config);
  // The naive 64x1 compute dispatch must not beat the rasterizer's tiled
  // order (paper Sec. IV-A).
  EXPECT_GE(compute.seconds, pixel.seconds * 0.95);
}

}  // namespace
}  // namespace amdmb::cal
