// Unit tests for src/common: stats, tables, series, RNG, status.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "report/series.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace amdmb {
namespace {

TEST(TypesTest, ElementBytesMatchHardwareFormats) {
  EXPECT_EQ(ElementBytes(DataType::kFloat), 4u);
  EXPECT_EQ(ElementBytes(DataType::kFloat4), 16u);
  EXPECT_EQ(ComponentCount(DataType::kFloat), 1u);
  EXPECT_EQ(ComponentCount(DataType::kFloat4), 4u);
}

TEST(TypesTest, DomainThreadCount) {
  EXPECT_EQ((Domain{1024, 1024}).ThreadCount(), 1024ull * 1024);
  EXPECT_EQ((Domain{0, 5}).ThreadCount(), 0ull);
  EXPECT_EQ((BlockShape{4, 16}).ThreadCount(), 64u);
}

TEST(StatusTest, CheckThrowsSimErrorWithLocation) {
  EXPECT_NO_THROW(Check(true));
  try {
    Check(false, "oops");
    FAIL() << "Check(false) must throw";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(StatusTest, RequireThrowsConfigError) {
  EXPECT_NO_THROW(Require(true, "fine"));
  EXPECT_THROW(Require(false, "bad config"), ConfigError);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  s.Add(3.5);
  EXPECT_EQ(s.Mean(), 3.5);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(LineFitTest, ExactLine) {
  const LineFit f = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LineFitTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).slope, 0.0);
  EXPECT_EQ(FitLine({1.0}, {2.0}).slope, 0.0);
  // Vertical data: zero x variance.
  EXPECT_EQ(FitLine({2, 2, 2}, {1, 2, 3}).slope, 0.0);
  EXPECT_THROW(FitLine({1, 2}, {1}), SimError);
}

TEST(LineFitTest, NoisyLineHasReasonableR2) {
  std::vector<double> xs, ys;
  XorShift128 rng(42);
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 10.0 + (rng.NextDouble() - 0.5));
  }
  const LineFit f = FitLine(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 0.05);
  EXPECT_GT(f.r2, 0.999);
}

TEST(SafeRatioTest, HandlesZeroDenominator) {
  EXPECT_EQ(SafeRatio(4.0, 2.0), 2.0);
  EXPECT_EQ(SafeRatio(4.0, 0.0), 0.0);
}

TEST(XorShiftTest, DeterministicAndBounded) {
  XorShift128 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  XorShift128 c(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.NextBelow(17), 17u);
    const double d = c.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XorShiftTest, DifferentSeedsDiverge) {
  XorShift128 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"GPU", "ALUs"});
  t.AddRow({"RV770", "800"});
  t.AddRow({"RV870", "1600"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| GPU"), std::string::npos);
  EXPECT_NE(out.find("RV870"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TextTableTest, RejectsMismatchedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), ConfigError);
  EXPECT_THROW(TextTable({}), ConfigError);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

TEST(SeriesTest, AddAndQuery) {
  Series s("curve");
  s.Add(1.0, 10.0);
  s.Add(2.0, 20.0);
  EXPECT_EQ(s.Points().size(), 2u);
  EXPECT_EQ(s.At(2.0), 20.0);
  EXPECT_FALSE(s.At(3.0).has_value());
  EXPECT_EQ(s.Xs(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.Ys(), (std::vector<double>{10.0, 20.0}));
}

TEST(SeriesSetTest, GetCreatesAndFinds) {
  SeriesSet set("fig", "x", "y");
  set.Get("a").Add(1, 2);
  set.Get("a").Add(2, 3);
  set.Get("b").Add(1, 5);
  EXPECT_EQ(set.All().size(), 2u);
  ASSERT_NE(set.Find("a"), nullptr);
  EXPECT_EQ(set.Find("a")->Points().size(), 2u);
  EXPECT_EQ(set.Find("missing"), nullptr);
}

TEST(SeriesSetTest, ColumnRenderingMergesXGrids) {
  SeriesSet set("fig", "x", "sec");
  set.Get("a").Add(1, 2);
  set.Get("b").Add(2, 5);
  const std::string cols = set.RenderColumns();
  EXPECT_NE(cols.find("# fig"), std::string::npos);
  EXPECT_NE(cols.find("a"), std::string::npos);
  // Missing cells render as '-'.
  EXPECT_NE(cols.find("-"), std::string::npos);
  const std::string csv = set.RenderCsv();
  EXPECT_NE(csv.find("x,a,b"), std::string::npos);
}


TEST(PercentileTest, HandlesEmptyAndSingleSamples) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_EQ(Percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(Percentile({7.5}, 50.0), 7.5);
  EXPECT_EQ(Percentile({7.5}, 100.0), 7.5);
}

TEST(PercentileTest, InterpolatesLinearlyOverSortedSamples) {
  // Input order must not matter: Percentile sorts its own copy.
  const std::vector<double> samples = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100.0), 40.0);
  // Rank 0.9 * 3 = 2.7 -> between 30 and 40, 70% of the way.
  EXPECT_DOUBLE_EQ(Percentile(samples, 90.0), 37.0);
}

}  // namespace
}  // namespace amdmb
