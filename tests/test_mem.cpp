// Unit tests for src/mem: tiling, the 2-D-indexed texture cache, the
// memory controller, and the texture unit block.
#include <gtest/gtest.h>

#include <set>

#include "arch/gpu_arch.hpp"
#include "common/status.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/texture_unit.hpp"
#include "mem/tiling.hpp"

namespace amdmb::mem {
namespace {

TEST(TilingTest, TileShapesForPaperFormats) {
  // 64B line: float -> 4x4 texels, float4 -> 2x2 (RV670/RV770).
  EXPECT_EQ(TileFor(64, 4).width, 4u);
  EXPECT_EQ(TileFor(64, 4).height, 4u);
  EXPECT_EQ(TileFor(64, 16).width, 2u);
  EXPECT_EQ(TileFor(64, 16).height, 2u);
  // 128B line (RV870): float -> 8x4, float4 -> 4x2.
  EXPECT_EQ(TileFor(128, 4).width, 8u);
  EXPECT_EQ(TileFor(128, 4).height, 4u);
  EXPECT_EQ(TileFor(128, 16).width, 4u);
  EXPECT_EQ(TileFor(128, 16).height, 2u);
  EXPECT_THROW(TileFor(60, 16), ConfigError);
}

TEST(TilingTest, LineIdsCoverTileRectangles) {
  const TileShape tile = TileFor(64, 4);
  const TiledLayout layout(0x1000, /*width_texels=*/64, tile, 64);
  // All texels of one 4x4 tile share a line.
  const LineId l00 = layout.LineOf(0, 0);
  EXPECT_EQ(layout.LineOf(3, 3).address, l00.address);
  EXPECT_NE(layout.LineOf(4, 0).address, l00.address);
  EXPECT_NE(layout.LineOf(0, 4).address, l00.address);
  // Tile row changes every `tile.height` rows.
  EXPECT_EQ(layout.LineOf(0, 3).tile_row, 0u);
  EXPECT_EQ(layout.LineOf(0, 4).tile_row, 1u);
  // Lines are 64B apart along a tile row.
  EXPECT_EQ(layout.LineOf(4, 0).address, l00.address + 64);
  EXPECT_EQ(layout.TilesPerRow(), 16u);
}

TEST(TilingTest, LinearAddressRowMajor) {
  EXPECT_EQ(LinearAddress(100, 10, 3, 2, 4), 100u + (2 * 10 + 3) * 4);
}

TEST(CacheTest, HitsAfterFill) {
  TextureCache cache({.size_bytes = 1024, .line_bytes = 64,
                      .associativity = 2, .two_d_index = false});
  const LineId line{0x1000, 0};
  EXPECT_FALSE(cache.Probe(line));
  EXPECT_TRUE(cache.Probe(line));
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.Stats().HitRate(), 0.5);
}

TEST(CacheTest, LruEvictionWithinSet) {
  // 2 ways, 8 sets: three lines mapping to one set evict LRU.
  TextureCache cache({.size_bytes = 1024, .line_bytes = 64,
                      .associativity = 2, .two_d_index = false});
  const auto set_stride = 8ull * 64;  // Same set every 8 lines.
  const LineId a{0 * set_stride, 0};
  const LineId b{1 * set_stride, 0};
  const LineId c{2 * set_stride, 0};
  cache.Probe(a);
  cache.Probe(b);
  cache.Probe(a);   // a is MRU.
  cache.Probe(c);   // Evicts b.
  EXPECT_TRUE(cache.Probe(a));
  EXPECT_FALSE(cache.Probe(b));
}

// The paper's "only half the cache is used" with 1-D access: a pattern
// confined to one tile row thrashes at half capacity under 2-D indexing
// but fits with plain indexing.
TEST(CacheTest, TwoDIndexHalvesCapacityForOneDimensionalPatterns) {
  const CacheConfig base{.size_bytes = 4096, .line_bytes = 64,
                         .associativity = 1, .two_d_index = true};
  TextureCache two_d(base);
  CacheConfig flat_cfg = base;
  flat_cfg.two_d_index = false;
  TextureCache flat(flat_cfg);
  // 64 distinct lines on tile row 0 (exactly the cache's line count):
  // fits flat (64 sets) but thrashes 2-D (32 usable sets) completely.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      const LineId line{i * 64, 0};
      two_d.Probe(line);
      flat.Probe(line);
    }
  }
  EXPECT_EQ(flat.Stats().hits, 64u);  // Second pass all hits.
  EXPECT_EQ(two_d.Stats().hits, 0u);  // Pure conflict misses.
}

TEST(CacheTest, TwoDPatternUsesBothSetGroups) {
  TextureCache cache({.size_bytes = 4096, .line_bytes = 64,
                      .associativity = 1, .two_d_index = true});
  // 64 lines spread over two tile rows: 32 per group, fills both halves
  // without a single conflict.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      cache.Probe(LineId{i * 64, static_cast<std::uint32_t>(i / 32)});
    }
  }
  EXPECT_EQ(cache.Stats().hits, 64u);
}

TEST(CacheTest, ResetClearsContentsAndStats) {
  TextureCache cache({.size_bytes = 1024, .line_bytes = 64,
                      .associativity = 2, .two_d_index = false});
  cache.Probe(LineId{0, 0});
  cache.Reset();
  EXPECT_EQ(cache.Stats().misses, 0u);
  EXPECT_FALSE(cache.Probe(LineId{0, 0}));
}

TEST(CacheTest, RejectsDegenerateGeometry) {
  EXPECT_THROW(TextureCache({.size_bytes = 64, .line_bytes = 64,
                             .associativity = 2, .two_d_index = false}),
               ConfigError);
}

TEST(DramTest, BandwidthAndOverheadAccounting) {
  GpuArch arch = MakeRV770();
  arch.dram.read_bytes_per_cycle = 64.0;
  arch.global_read_instr_overhead = 10;
  MemoryController mc(arch);
  const BatchResult r = mc.GlobalRead(100, 0x0, 640);
  EXPECT_EQ(r.start, 100u);
  EXPECT_EQ(r.end, 100u + 10 + 10);  // overhead + 640/64.
  EXPECT_EQ(mc.Stats().read_bytes, 640u);
  EXPECT_EQ(mc.Stats().batches, 1u);
}

TEST(DramTest, SerializesOverlappingBatches) {
  MemoryController mc(MakeRV770());
  const BatchResult a = mc.GlobalRead(0, 0, 1024);
  const BatchResult b = mc.GlobalRead(0, 4096, 1024);
  EXPECT_EQ(b.start, a.end);  // Second batch queues behind the first.
  EXPECT_EQ(mc.FreeAt(), b.end);
}

// Fig. 14: each 32-bit element writes at a constant rate, so a float4
// write (4x bytes) takes ~4x a float write once past the overhead.
TEST(DramTest, GlobalWriteScalesWithBytes) {
  GpuArch arch = MakeRV770();
  arch.global_write_instr_overhead = 0;
  MemoryController mc(arch);
  const Cycles t_float = mc.GlobalWrite(0, 0, 64 * 4).end;
  mc.Reset();
  const Cycles t_float4 = mc.GlobalWrite(0, 0, 64 * 16).end;
  EXPECT_NEAR(static_cast<double>(t_float4) / t_float, 4.0, 0.35);
}

// Fig. 13: streaming stores burst — the per-instruction cost is mostly
// overhead, so float4 is close to float.
TEST(DramTest, StreamStoreIsOverheadDominated) {
  const GpuArch arch = MakeRV770();
  MemoryController mc(arch);
  const Cycles t_float = mc.StreamStore(0, 0, 64 * 4).end;
  mc.Reset();
  const Cycles t_float4 = mc.StreamStore(0, 0, 64 * 16).end;
  EXPECT_LT(static_cast<double>(t_float4) / t_float, 2.0);
}

TEST(DramTest, RowSwitchPenaltyOnFills) {
  GpuArch arch = MakeRV770();
  arch.dram.row_switch_cycles = 50;
  arch.dram.row_bytes = 2048;
  MemoryController mc(arch);
  // Two lines in the same row: one switch. Then a different row: another.
  const std::uint64_t same_row[] = {0, 64};
  const std::uint64_t other_row[] = {4096};
  const BatchResult a = mc.FillLines(0, same_row, 64);
  EXPECT_EQ(mc.Stats().row_switches, 1u);
  const BatchResult b = mc.FillLines(a.end, other_row, 64);
  EXPECT_EQ(mc.Stats().row_switches, 2u);
  EXPECT_GT(b.end - b.start, 50u);
  EXPECT_GT(mc.Stats().fill_busy_cycles, 0u);
}

TEST(DramTest, EmptyFillIsFree) {
  MemoryController mc(MakeRV770());
  const BatchResult r = mc.FillLines(42, {}, 64);
  EXPECT_EQ(r.start, 42u);
  EXPECT_EQ(r.end, 42u);
  EXPECT_EQ(mc.Stats().batches, 0u);
}

// Texture unit service must be byte-proportional: one float4 fetch costs
// four float fetches (the Fig. 11 slope relationship).
TEST(TextureUnitTest, ServiceProportionalToBytes) {
  const GpuArch arch = MakeRV770();
  TextureCache cache({.size_bytes = arch.TotalTexCacheBytes(),
                      .line_bytes = 64, .associativity = 8,
                      .two_d_index = true});
  MemoryController mc(arch);
  TextureUnitBlock block(arch, cache, mc);
  EXPECT_EQ(block.ServicePerFetch(DataType::kFloat, 64), 16u);
  EXPECT_EQ(block.ServicePerFetch(DataType::kFloat4, 64), 64u);
}

TEST(TextureUnitTest, MissesStallAndHitsDoNot) {
  const GpuArch arch = MakeRV770();
  TextureCache cache({.size_bytes = arch.TotalTexCacheBytes(),
                      .line_bytes = 64, .associativity = 8,
                      .two_d_index = true});
  MemoryController mc(arch);
  TextureUnitBlock block(arch, cache, mc);
  std::vector<std::vector<LineId>> lines(1);
  for (std::uint64_t i = 0; i < 4; ++i) lines[0].push_back({i * 64, 0});

  const TexClauseTiming cold = block.ServeClause(0, DataType::kFloat, 64,
                                                 lines);
  EXPECT_EQ(cold.miss_instrs, 1u);
  EXPECT_EQ(cold.line_misses, 4u);

  const TexClauseTiming warm =
      block.ServeClause(cold.complete, DataType::kFloat, 64, lines);
  EXPECT_EQ(warm.miss_instrs, 0u);
  EXPECT_EQ(warm.line_hits, 4u);
  EXPECT_GT(cold.complete - cold.start, warm.complete - warm.start);
  // The stall does not occupy the units: service time is identical.
  EXPECT_EQ(cold.service_end - cold.start, warm.service_end - warm.start);
}

}  // namespace
}  // namespace amdmb::mem
