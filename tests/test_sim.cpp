// Simulator behaviour tests: timing sanity, occupancy effects,
// bottleneck classification, and launch validation.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "compiler/compiler.hpp"
#include "sim/gpu.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::sim {
namespace {

isa::Program CompileGeneric(const GpuArch& arch, unsigned inputs,
                            unsigned alu_ops, DataType type,
                            ReadPath read = ReadPath::kTexture,
                            WritePath write = WritePath::kStream,
                            unsigned outputs = 1) {
  suite::GenericSpec spec;
  spec.inputs = inputs;
  spec.outputs = outputs;
  spec.alu_ops = alu_ops;
  spec.type = type;
  spec.read_path = read;
  spec.write_path = write;
  return compiler::Compile(suite::GenerateGeneric(spec), arch);
}

LaunchConfig SmallLaunch(ShaderMode mode = ShaderMode::kPixel) {
  LaunchConfig config;
  config.domain = Domain{256, 256};
  config.mode = mode;
  config.repetitions = 5000;
  return config;
}

TEST(GpuTest, AluBoundTimeMatchesBundleArithmetic) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  // Heavily ALU-bound kernel: time ~= waves/SIMD * bundles * 4 cycles.
  const isa::Program p =
      CompileGeneric(arch, 4, 1024, DataType::kFloat);
  const KernelStats stats = gpu.Execute(p, SmallLaunch());
  const double waves_per_simd =
      256.0 * 256 / arch.wavefront_size / arch.simd_engines;
  const double expected = waves_per_simd * 1024 * 4;
  EXPECT_NEAR(static_cast<double>(stats.cycles), expected, expected * 0.15);
  EXPECT_EQ(stats.bottleneck, Bottleneck::kAlu);
  EXPECT_GT(stats.alu_utilization, 0.85);
}

TEST(GpuTest, SecondsScaleWithRepetitionsAndClock) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = CompileGeneric(arch, 4, 64, DataType::kFloat);
  LaunchConfig config = SmallLaunch();
  config.repetitions = 1;
  const KernelStats one = gpu.Execute(p, config);
  config.repetitions = 5000;
  const KernelStats many = gpu.Execute(p, config);
  EXPECT_NEAR(many.seconds / one.seconds, 5000.0, 1e-6);
  EXPECT_NEAR(one.seconds, one.cycles / 750.0e6, 1e-12);
}

TEST(GpuTest, LowRatioKernelIsFetchBound) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = CompileGeneric(arch, 16, 16, DataType::kFloat);
  const KernelStats stats = gpu.Execute(p, SmallLaunch());
  EXPECT_EQ(stats.bottleneck, Bottleneck::kFetch);
}

TEST(GpuTest, WriteHeavyKernelIsMemoryBound) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p =
      CompileGeneric(arch, 8, 16, DataType::kFloat4, ReadPath::kTexture,
                     WritePath::kGlobal, /*outputs=*/8);
  const KernelStats stats = gpu.Execute(p, SmallLaunch());
  EXPECT_EQ(stats.bottleneck, Bottleneck::kMemory);
  EXPECT_GT(stats.memory_utilization, 0.8);
}

// More ALU work must never make the kernel faster.
TEST(GpuTest, TimeMonotoneInAluOps) {
  const GpuArch arch = MakeRV870();
  Gpu gpu(arch);
  double prev = 0.0;
  for (unsigned ops : {16u, 64u, 256u, 1024u}) {
    const isa::Program p = CompileGeneric(arch, 16, ops, DataType::kFloat);
    const double t = gpu.Execute(p, SmallLaunch()).seconds;
    EXPECT_GE(t, prev) << "ops=" << ops;
    prev = t;
  }
}

// Time grows with the domain (more wavefronts).
TEST(GpuTest, TimeGrowsWithDomain) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = CompileGeneric(arch, 8, 320, DataType::kFloat);
  LaunchConfig config = SmallLaunch();
  const double t256 = gpu.Execute(p, config).seconds;
  config.domain = Domain{512, 512};
  const double t512 = gpu.Execute(p, config).seconds;
  EXPECT_NEAR(t512 / t256, 4.0, 0.5);
}

// The ALU-bound plateau: float and float4 cost the same cycles because
// the dependent chain defeats VLIW packing (paper Sec. IV-D).
TEST(GpuTest, AluBoundTimeIndependentOfDataType) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program pf =
      CompileGeneric(arch, 8, 320, DataType::kFloat);
  const isa::Program p4 =
      CompileGeneric(arch, 8, 320, DataType::kFloat4);
  const double tf = gpu.Execute(pf, SmallLaunch()).seconds;
  const double t4 = gpu.Execute(p4, SmallLaunch()).seconds;
  EXPECT_NEAR(t4 / tf, 1.0, 0.1);
}

// More SIMD engines finish ALU-bound work proportionally faster.
TEST(GpuTest, ScalesAcrossGenerations) {
  const isa::Program p670 =
      CompileGeneric(MakeRV670(), 8, 640, DataType::kFloat);
  const isa::Program p870 =
      CompileGeneric(MakeRV870(), 8, 640, DataType::kFloat);
  Gpu rv670(MakeRV670());
  Gpu rv870(MakeRV870());
  const double t670 = rv670.Execute(p670, SmallLaunch()).seconds;
  const double t870 = rv870.Execute(p870, SmallLaunch()).seconds;
  // 4 SIMDs @750 vs 20 SIMDs @850: ~5.7x.
  EXPECT_NEAR(t670 / t870, 5.7, 1.2);
}

TEST(GpuTest, ComputeModeRejectedOnRv670) {
  Gpu gpu(MakeRV670());
  const isa::Program p =
      CompileGeneric(MakeRV670(), 4, 16, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kGlobal);
  EXPECT_THROW(gpu.Execute(p, SmallLaunch(ShaderMode::kCompute)), ConfigError);
}

TEST(GpuTest, StreamingStoreRejectedInComputeMode) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = CompileGeneric(arch, 4, 16, DataType::kFloat);
  EXPECT_THROW(gpu.Execute(p, SmallLaunch(ShaderMode::kCompute)), ConfigError);
}

TEST(GpuTest, DeterministicAcrossRuns) {
  const GpuArch arch = MakeRV870();
  Gpu gpu(arch);
  const isa::Program p = CompileGeneric(arch, 16, 64, DataType::kFloat4);
  const KernelStats a = gpu.Execute(p, SmallLaunch());
  const KernelStats b = gpu.Execute(p, SmallLaunch());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.dram.read_bytes, b.dram.read_bytes);
}

// Occupancy lever: the same clause structure with fewer GPRs (more
// resident wavefronts) must not be slower on a fetch-latency-bound
// kernel (paper Sec. IV-E).
TEST(GpuTest, HigherOccupancyHidesFetchLatency) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  suite::RegisterUsageSpec spec;
  spec.step = 0;  // 64 inputs up front -> ~3 wavefronts.
  const isa::Program low_occ =
      compiler::Compile(suite::GenerateRegisterUsage(spec), arch);
  spec.step = 7;  // 8 inputs up front -> max wavefronts.
  const isa::Program high_occ =
      compiler::Compile(suite::GenerateRegisterUsage(spec), arch);
  const KernelStats slow = gpu.Execute(low_occ, SmallLaunch());
  const KernelStats fast = gpu.Execute(high_occ, SmallLaunch());
  EXPECT_GT(slow.resident_wavefronts, 0u);
  EXPECT_LT(slow.resident_wavefronts, fast.resident_wavefronts);
  EXPECT_GT(slow.seconds, fast.seconds * 1.05);
}

TEST(GpuTest, StatsRenderContainsKeyFields) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = CompileGeneric(arch, 4, 16, DataType::kFloat);
  const std::string text = gpu.Execute(p, SmallLaunch()).Render();
  for (const char* field : {"cycles/launch", "bottleneck", "GPRs",
                            "cache hit rate"}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace amdmb::sim
