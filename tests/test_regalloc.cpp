// Register-allocation tests: PV forwarding, clause temporaries, and the
// GPR counts the paper's kernels depend on (Sec. II-B, III, Fig. 2).
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "compiler/compiler.hpp"
#include "il/builder.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::compiler {
namespace {

using il::Operand;

unsigned CountLoc(const isa::Program& p, isa::Loc loc) {
  unsigned n = 0;
  for (const auto& clause : p.clauses) {
    for (const auto& bundle : clause.bundles) {
      for (const auto& op : bundle.ops) {
        for (const auto& src : op.srcs) n += src.loc == loc ? 1 : 0;
      }
    }
  }
  return n;
}

// The generic kernel samples all inputs up front, so its GPR usage tracks
// the input count (paper: Fig. 2's three inputs use three GPRs; the
// texture-fetch-latency kernel's GPRs grow with the input size).
TEST(RegallocTest, GenericKernelGprsTrackInputs) {
  for (unsigned inputs : {2u, 3u, 8u, 16u, 64u}) {
    suite::GenericSpec spec;
    spec.inputs = inputs;
    spec.alu_ops = inputs * 4;
    const isa::Program p = Compile(suite::GenerateGeneric(spec), MakeRV770());
    EXPECT_GE(p.gpr_count, inputs) << "inputs=" << inputs;
    EXPECT_LE(p.gpr_count, inputs + 2) << "inputs=" << inputs;
  }
}

// Paper Sec. III-C: with outputs below the (fixed) input size, GPR usage
// is pinned by the inputs and does not vary with the output count.
TEST(RegallocTest, WriteKernelGprsPinnedByInputs) {
  unsigned baseline = 0;
  for (unsigned outputs = 1; outputs <= 8; ++outputs) {
    suite::GenericSpec spec;
    spec.inputs = 8;
    spec.outputs = outputs;
    spec.alu_ops = 16;
    const isa::Program p = Compile(suite::GenerateGeneric(spec), MakeRV770());
    if (outputs == 1) baseline = p.gpr_count;
    EXPECT_EQ(p.gpr_count, baseline) << "outputs=" << outputs;
  }
}

// Paper Sec. III-E / Fig. 16: deferring sampling with space/step lowers
// the peak GPR count roughly by space per step.
TEST(RegallocTest, RegisterUsageKernelGprsFallWithStep) {
  std::vector<unsigned> gprs;
  for (unsigned step = 0; step <= 7; ++step) {
    suite::RegisterUsageSpec spec;
    spec.inputs = 64;
    spec.space = 8;
    spec.step = step;
    spec.alu_fetch_ratio = 4.0;
    const isa::Program p =
        Compile(suite::GenerateRegisterUsage(spec), MakeRV770());
    gprs.push_back(p.gpr_count);
  }
  for (std::size_t i = 1; i < gprs.size(); ++i) {
    EXPECT_LT(gprs[i], gprs[i - 1]) << "step=" << i;
  }
  // Paper x-axis runs 64 down to ~10.
  EXPECT_GE(gprs.front(), 63u);
  EXPECT_LE(gprs.back(), 12u);
}

// Fig. 5 control: sampling everything up front pins the GPR count at the
// input size regardless of step.
TEST(RegallocTest, ClauseControlKernelGprsConstant) {
  std::vector<unsigned> gprs;
  for (unsigned step = 0; step <= 7; ++step) {
    suite::RegisterUsageSpec spec;
    spec.step = step;
    const isa::Program p =
        Compile(suite::GenerateClauseUsage(spec), MakeRV770());
    gprs.push_back(p.gpr_count);
  }
  for (unsigned g : gprs) EXPECT_EQ(g, gprs.front());
  EXPECT_GE(gprs.front(), 63u);
}

// "Special 'previous' registers allow data dependency between alu
// operations without having to occupy a global purpose register."
TEST(RegallocTest, LinearChainUsesPvNotGprs) {
  il::Signature sig;
  sig.inputs = 2;
  sig.outputs = 1;
  il::Builder b("pv", sig);
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  // Linear chain: each value used exactly once, in the next op.
  unsigned acc = b.Add(Operand::Reg(a), Operand::Reg(c));
  for (int i = 0; i < 20; ++i) acc = b.Add(Operand::Reg(acc), Operand::Reg(acc));
  b.Write(0, acc);
  const isa::Program p = Compile(std::move(b).Build(), MakeRV770());
  // 2 input GPRs + 1 for the value carried into the export clause.
  EXPECT_LE(p.gpr_count, 3u);
  EXPECT_GT(CountLoc(p, isa::Loc::kPv), 15u);
}

// The r[reg-1] + r[reg-2] chain needs clause temporaries (values live two
// bundles) but still no extra GPRs.
TEST(RegallocTest, FibChainUsesClauseTemps) {
  suite::GenericSpec spec;
  spec.inputs = 2;
  spec.alu_ops = 30;
  const isa::Program p = Compile(suite::GenerateGeneric(spec), MakeRV770());
  EXPECT_LE(p.gpr_count, 4u);
  EXPECT_GT(CountLoc(p, isa::Loc::kTemp), 10u);
}

// Values crossing a clause boundary must live in GPRs: force a split and
// confirm the carried value is not a temp.
TEST(RegallocTest, CrossClauseValuesUseGprs) {
  il::Signature sig;
  sig.inputs = 2;
  sig.outputs = 1;
  il::Builder b("cross", sig);
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  unsigned acc = b.Add(Operand::Reg(a), Operand::Reg(c));
  b.ClauseBreak();
  acc = b.Add(Operand::Reg(acc), Operand::Reg(acc));
  b.Write(0, acc);
  const isa::Program p = Compile(std::move(b).Build(), MakeRV770());
  // The pre-break accumulator crosses a clause: must be a GPR read in the
  // second ALU clause.
  const isa::Clause& second_alu = p.clauses[2];
  ASSERT_EQ(second_alu.type, isa::ClauseType::kAlu);
  for (const auto& src : second_alu.bundles.front().ops.front().srcs) {
    EXPECT_EQ(src.loc, isa::Loc::kGpr);
  }
}

// The 256-GPR per-thread budget is enforced.
TEST(RegallocTest, GprBudgetEnforced) {
  suite::GenericSpec spec;
  spec.inputs = 300;  // Sampling 300 inputs up front cannot fit.
  spec.alu_ops = 600;
  EXPECT_THROW(Compile(suite::GenerateGeneric(spec), MakeRV770()), SimError);
}

// GPR indices must be reused once values die: a long sequence of
// short-lived cross-clause values should recycle a small set of GPRs.
TEST(RegallocTest, GprsAreRecycled) {
  il::Signature sig;
  sig.inputs = 2;
  sig.outputs = 1;
  il::Builder b("recycle", sig);
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  unsigned acc = b.Add(Operand::Reg(a), Operand::Reg(c));
  for (int i = 0; i < 10; ++i) {
    b.ClauseBreak();  // Forces each accumulator across a clause boundary.
    acc = b.Add(Operand::Reg(acc), Operand::Reg(acc));
  }
  b.Write(0, acc);
  const isa::Program p = Compile(std::move(b).Build(), MakeRV770());
  EXPECT_LE(p.gpr_count, 4u);
}

}  // namespace
}  // namespace amdmb::compiler
