// Failure-path tests for report::LoadFigureJson / LoadFigureDirectory:
// truncated documents, non-JSON bytes, unsupported schema versions, and
// mixed-version directories must produce typed ConfigErrors (or load
// cleanly where both versions are supported) — never a crash or a
// silently wrong record.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/status.hpp"
#include "report/load.hpp"

namespace amdmb::report {
namespace {

const char kValidV2Doc[] = R"({
  "figure": "Fig. 7 — ALU:Fetch Ratio for 16 Inputs",
  "title": "ALU:Fetch Ratio",
  "schema_version": 2,
  "meta": {"suite_version": "test", "threads": 1, "quick": true},
  "curves": [
    {"name": "4870 Pixel Float",
     "points": [{"x": 0.25, "sim_seconds": 0.3}],
     "sim_seconds_median": 0.3, "sim_seconds_min": 0.3,
     "sim_seconds_max": 0.3}
  ]
})";

std::string ErrorOf(std::string_view text) {
  try {
    LoadFigureJson(text, {});
  } catch (const ConfigError& e) {
    return e.what();
  }
  return {};
}

TEST(LoadErrors, TruncatedDocumentIsATypedError) {
  const std::string valid = kValidV2Doc;
  // Cutting a valid document anywhere (but before the closing brace)
  // must throw ConfigError, not crash or return a partial record.
  for (const std::size_t cut : {1ul, 20ul, valid.size() / 2,
                                valid.size() - 2}) {
    EXPECT_THROW(LoadFigureJson(valid.substr(0, cut), {}), ConfigError)
        << "cut at " << cut;
  }
}

TEST(LoadErrors, NonJsonBytesAreATypedError) {
  EXPECT_THROW(LoadFigureJson("not json at all", {}), ConfigError);
  EXPECT_THROW(LoadFigureJson("\x00\x01\x02\xff", {}), ConfigError);
  EXPECT_THROW(LoadFigureJson("", {}), ConfigError);
  // Valid JSON of the wrong shape: no "figure" key.
  EXPECT_NE(ErrorOf(R"({"title": "x"})").find("figure"), std::string::npos);
  EXPECT_THROW(LoadFigureJson("[1, 2, 3]", {}), ConfigError);
}

TEST(LoadErrors, UnsupportedSchemaVersionIsATypedError) {
  const std::string err =
      ErrorOf(R"({"figure": "Fig. 7 — X", "schema_version": 3})");
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
  EXPECT_NE(err.find("3"), std::string::npos) << err;
  EXPECT_THROW(
      LoadFigureJson(R"({"figure": "F", "schema_version": 0})", {}),
      ConfigError);
  EXPECT_THROW(
      LoadFigureJson(R"({"figure": "F", "schema_version": -1})", {}),
      ConfigError);
}

TEST(LoadErrors, NonNumericSchemaVersionIsATypedError) {
  const std::string err =
      ErrorOf(R"({"figure": "Fig. 7 — X", "schema_version": "two"})");
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
  EXPECT_THROW(
      LoadFigureJson(R"({"figure": "F", "schema_version": null})", {}),
      ConfigError);
}

TEST(LoadErrors, SupportedVersionsLoad) {
  // Absent = 1 (pre-versioning writers); explicit 1 and 2 both load.
  EXPECT_EQ(LoadFigureJson(R"({"figure": "Fig. 1 — A"})", {}).schema_version,
            1);
  EXPECT_EQ(LoadFigureJson(R"({"figure": "F", "schema_version": 1})", {})
                .schema_version,
            1);
  EXPECT_EQ(LoadFigureJson(kValidV2Doc, {}).schema_version, 2);
}

class LoadDirectoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("amdmb_load_errors_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteDoc(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name);
    out << text;
  }

  std::filesystem::path dir_;
};

TEST_F(LoadDirectoryTest, MixedV1AndV2DocumentsLoadTogether) {
  WriteDoc("BENCH_fig_1.json", R"({"figure": "Fig. 1 — Legacy"})");
  WriteDoc("BENCH_fig_7.json", kValidV2Doc);
  const auto figures = LoadFigureDirectory(dir_, "");
  ASSERT_EQ(figures.size(), 2u);
  EXPECT_EQ(figures[0].schema_version, 1);
  EXPECT_EQ(figures[1].schema_version, 2);
  EXPECT_EQ(figures[1].curves.size(), 1u);
}

TEST_F(LoadDirectoryTest, OneBadDocumentNamesItsFile) {
  WriteDoc("BENCH_fig_7.json", kValidV2Doc);
  WriteDoc("BENCH_fig_9.json", "{truncated");
  try {
    LoadFigureDirectory(dir_, "");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("BENCH_fig_9.json"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(LoadDirectoryTest, FutureSchemaVersionNamesItsFile) {
  WriteDoc("BENCH_fig_7.json",
           R"({"figure": "Fig. 7 — X", "schema_version": 99})");
  try {
    LoadFigureDirectory(dir_, "");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("BENCH_fig_7.json"), std::string::npos) << what;
    EXPECT_NE(what.find("schema_version"), std::string::npos) << what;
  }
}

TEST_F(LoadDirectoryTest, NonBenchFilesAreIgnored) {
  WriteDoc("BENCH_fig_7.json", kValidV2Doc);
  WriteDoc("notes.json", "not json");          // No BENCH_ prefix.
  WriteDoc("BENCH_fig_7.json.bak", "broken");  // Wrong extension.
  const auto figures = LoadFigureDirectory(dir_, "");
  ASSERT_EQ(figures.size(), 1u);
}

TEST_F(LoadDirectoryTest, MissingDirectoryIsATypedError) {
  EXPECT_THROW(LoadFigureDirectory(dir_ / "does_not_exist", ""),
               ConfigError);
}

}  // namespace
}  // namespace amdmb::report
