// Tests for the gnuplot figure emitter.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "report/gnuplot_sink.hpp"

namespace amdmb {
namespace {

SeriesSet SampleFigure() {
  SeriesSet set("Fig test", "x", "seconds");
  set.Get("a").Add(1, 2.5);
  set.Get("a").Add(2, 3.5);
  set.Get("b").Add(1, 1.0);
  return set;
}

TEST(GnuplotTest, ScriptReferencesEverySeries) {
  const std::string script = GnuplotScript(SampleFigure(), "f.dat", "f.svg");
  EXPECT_NE(script.find("set output 'f.svg'"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("title \"a\""), std::string::npos);
  EXPECT_NE(script.find("title \"b\""), std::string::npos);
}

TEST(GnuplotTest, WritesDatAndScriptFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_gnuplot_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path gp = WriteGnuplot(SampleFigure(), dir, "fig");
  EXPECT_TRUE(std::filesystem::exists(gp));
  EXPECT_TRUE(std::filesystem::exists(dir / "fig.dat"));

  // Both .dat header lines must be gnuplot comments.
  std::ifstream in(dir / "fig.dat");
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1.rfind("# ", 0), 0u);
  EXPECT_EQ(line2.rfind("# ", 0), 0u);
  std::filesystem::remove_all(dir);
}

report::Frontier SampleFrontier() {
  report::Frontier frontier;
  frontier.x_label = "ratio";
  frontier.y_label = "step";
  frontier.xs = {0.5, 1.0, 2.0};
  frontier.ys = {0.0, 1.0};
  frontier.cells = {"FETCH", "ALU", "ALU", "FETCH", "", "ALU"};
  frontier.measured = {true, true, false, true, false, true};
  frontier.points_measured = 4;
  frontier.points_dense = 6;
  return frontier;
}

TEST(GnuplotTest, WritesFrontierHeatmapWithStableCodes) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_gnuplot_frontier";
  std::filesystem::remove_all(dir);
  const std::filesystem::path gp =
      WriteFrontierGnuplot(SampleFrontier(), dir, "fig");
  EXPECT_TRUE(std::filesystem::exists(gp));
  const std::filesystem::path dat = dir / "fig_frontier.dat";
  ASSERT_TRUE(std::filesystem::exists(dat));

  std::ifstream in(dat);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Sorted distinct labels get codes 0..N-1; the unresolved "" cell
  // renders as -1 below the palette.
  EXPECT_NE(text.find("# class -1 = (unresolved)"), std::string::npos);
  EXPECT_NE(text.find("# class 0 = ALU"), std::string::npos);
  EXPECT_NE(text.find("# class 1 = FETCH"), std::string::npos);
  EXPECT_NE(text.find("1 0 0\n"), std::string::npos);   // x=1 y=0 ALU.
  EXPECT_NE(text.find("1 1 -1\n"), std::string::npos);  // Unresolved.

  std::ifstream script_in(gp);
  std::string script((std::istreambuf_iterator<char>(script_in)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(script.find("set view map"), std::string::npos);
  EXPECT_NE(script.find("with image"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(GnuplotTest, SinkEmitsFrontierAlongsideTheLinePlot) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_gnuplot_sink_frontier";
  std::filesystem::remove_all(dir);
  report::Figure figure("Fig. 99 — test", "t", "x", "y", "claim");
  figure.set.Get("a").Add(1, 2);
  figure.frontier = SampleFrontier();
  report::GnuplotSink sink(dir);
  sink.Write(figure);
  ASSERT_EQ(sink.Written().size(), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir / "fig_99.gp"));
  EXPECT_TRUE(std::filesystem::exists(dir / "fig_99_frontier.gp"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amdmb
