// Tests for the gnuplot figure emitter.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "report/gnuplot_sink.hpp"

namespace amdmb {
namespace {

SeriesSet SampleFigure() {
  SeriesSet set("Fig test", "x", "seconds");
  set.Get("a").Add(1, 2.5);
  set.Get("a").Add(2, 3.5);
  set.Get("b").Add(1, 1.0);
  return set;
}

TEST(GnuplotTest, ScriptReferencesEverySeries) {
  const std::string script = GnuplotScript(SampleFigure(), "f.dat", "f.svg");
  EXPECT_NE(script.find("set output 'f.svg'"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("title \"a\""), std::string::npos);
  EXPECT_NE(script.find("title \"b\""), std::string::npos);
}

TEST(GnuplotTest, WritesDatAndScriptFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_gnuplot_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path gp = WriteGnuplot(SampleFigure(), dir, "fig");
  EXPECT_TRUE(std::filesystem::exists(gp));
  EXPECT_TRUE(std::filesystem::exists(dir / "fig.dat"));

  // Both .dat header lines must be gnuplot comments.
  std::ifstream in(dir / "fig.dat");
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1.rfind("# ", 0), 0u);
  EXPECT_EQ(line2.rfind("# ", 0), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amdmb
