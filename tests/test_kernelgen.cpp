// Kernel-generator tests: the paper's generation rules (Figs. 3, 5, 6).
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "common/status.hpp"
#include "il/verifier.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::suite {
namespace {

TEST(AluOpsForRatioTest, FourToOneConvention) {
  // Paper Sec. III-A: 2 inputs at ratio 2.0 -> 16 ALU ops.
  EXPECT_EQ(AluOpsForRatio(2.0, 2), 16u);
  EXPECT_EQ(AluOpsForRatio(1.0, 16), 64u);
  EXPECT_EQ(AluOpsForRatio(0.25, 16), 16u);
  EXPECT_THROW(AluOpsForRatio(0.0, 4), ConfigError);
}

TEST(GenericTest, ExactOpCounts) {
  for (unsigned inputs : {2u, 5u, 16u}) {
    for (unsigned alu_ops : {inputs - 1, inputs + 7, 128u}) {
      GenericSpec spec;
      spec.inputs = inputs;
      spec.alu_ops = alu_ops;
      const il::Kernel k = GenerateGeneric(spec);
      EXPECT_EQ(k.CountFetchOps(), inputs);
      EXPECT_EQ(k.CountAluOps(), alu_ops);
      EXPECT_EQ(k.CountWriteOps(), 1u);
      EXPECT_TRUE(il::Verify(k).ok());
    }
  }
}

TEST(GenericTest, SamplingPrecedesAllAluOps) {
  GenericSpec spec;
  spec.inputs = 8;
  spec.alu_ops = 32;
  const il::Kernel k = GenerateGeneric(spec);
  bool seen_alu = false;
  for (const il::Inst& inst : k.code) {
    if (il::IsAlu(inst.op)) seen_alu = true;
    if (il::IsFetch(inst.op)) {
      EXPECT_FALSE(seen_alu);
    }
  }
}

// Paper Sec. III: "no input is used more than once".
TEST(GenericTest, EachInputUsedExactlyOnce) {
  GenericSpec spec;
  spec.inputs = 10;
  spec.alu_ops = 40;
  const il::Kernel k = GenerateGeneric(spec);
  std::vector<unsigned> fetch_regs;
  for (const il::Inst& inst : k.code) {
    if (il::IsFetch(inst.op)) fetch_regs.push_back(inst.dst);
  }
  for (unsigned reg : fetch_regs) {
    unsigned uses = 0;
    for (const il::Inst& inst : k.code) {
      for (const il::Operand& src : inst.srcs) {
        if (src.kind == il::OperandKind::kVirtualReg && src.index == reg) {
          ++uses;
        }
      }
    }
    EXPECT_EQ(uses, 1u) << "input register r" << reg;
  }
}

TEST(GenericTest, MultipleOutputsGetDistinctValues) {
  GenericSpec spec;
  spec.inputs = 8;
  spec.outputs = 8;
  spec.alu_ops = 16;
  const il::Kernel k = GenerateGeneric(spec);
  std::set<unsigned> sources;
  for (const il::Inst& inst : k.code) {
    if (il::IsWrite(inst.op)) {
      EXPECT_TRUE(sources.insert(inst.srcs.front().index).second);
    }
  }
  EXPECT_EQ(sources.size(), 8u);
  EXPECT_EQ(k.CountAluOps(), 16u);  // Output chaining stays in budget.
}

TEST(GenericTest, RejectsImpossibleSpecs) {
  GenericSpec spec;
  spec.inputs = 1;  // Chain needs two values.
  EXPECT_THROW(GenerateGeneric(spec), ConfigError);
  spec.inputs = 8;
  spec.alu_ops = 3;  // Cannot fold 8 inputs with 3 ops.
  EXPECT_THROW(GenerateGeneric(spec), ConfigError);
  spec.alu_ops = 8;
  spec.outputs = 0;
  EXPECT_THROW(GenerateGeneric(spec), ConfigError);
}

TEST(GenericTest, PathsPropagateToOpcodes) {
  GenericSpec spec;
  spec.inputs = 2;
  spec.alu_ops = 4;
  spec.read_path = ReadPath::kGlobal;
  spec.write_path = WritePath::kGlobal;
  const il::Kernel k = GenerateGeneric(spec);
  for (const il::Inst& inst : k.code) {
    EXPECT_NE(inst.op, il::Opcode::kSample);
    EXPECT_NE(inst.op, il::Opcode::kExport);
  }
}

TEST(RegisterUsageTest, TotalOpsConstantAcrossSteps) {
  std::optional<unsigned> alu_ops;
  for (unsigned step = 0; step <= 7; ++step) {
    RegisterUsageSpec spec;
    spec.step = step;
    const il::Kernel k = GenerateRegisterUsage(spec);
    EXPECT_EQ(k.CountFetchOps(), spec.inputs);
    if (!alu_ops) alu_ops = k.CountAluOps();
    EXPECT_EQ(k.CountAluOps(), *alu_ops) << "step=" << step;
    EXPECT_EQ(*alu_ops, AluOpsForRatio(spec.alu_fetch_ratio, spec.inputs));
  }
}

// Fig. 4 layout: Sample(inputs - space*step), then `step` groups of
// Sample(space).
TEST(RegisterUsageTest, LateSamplingLayout) {
  RegisterUsageSpec spec;
  spec.inputs = 64;
  spec.space = 8;
  spec.step = 4;
  const il::Kernel k = GenerateRegisterUsage(spec);
  std::vector<unsigned> group_sizes;
  unsigned run = 0;
  for (const il::Inst& inst : k.code) {
    if (il::IsFetch(inst.op)) {
      ++run;
    } else if (run > 0) {
      group_sizes.push_back(run);
      run = 0;
    }
  }
  ASSERT_EQ(group_sizes.size(), 5u);
  EXPECT_EQ(group_sizes[0], 64u - 8 * 4);
  for (std::size_t i = 1; i < group_sizes.size(); ++i) {
    EXPECT_EQ(group_sizes[i], 8u);
  }
}

TEST(RegisterUsageTest, RejectsTooLargeStep) {
  RegisterUsageSpec spec;
  spec.inputs = 16;
  spec.space = 8;
  spec.step = 2;  // 16 - 16 = 0 initial inputs: invalid.
  EXPECT_THROW(GenerateRegisterUsage(spec), ConfigError);
}

// Fig. 5 control: same ALU ops, same segmentation, all sampling first.
TEST(ClauseUsageTest, SamplesEverythingUpFront) {
  RegisterUsageSpec spec;
  spec.step = 5;
  const il::Kernel k = GenerateClauseUsage(spec);
  bool seen_alu = false;
  unsigned breaks = 0;
  for (const il::Inst& inst : k.code) {
    if (il::IsAlu(inst.op)) seen_alu = true;
    if (il::IsFetch(inst.op)) {
      EXPECT_FALSE(seen_alu);
    }
    if (inst.op == il::Opcode::kClauseBreak) ++breaks;
  }
  EXPECT_EQ(breaks, 5u);
  EXPECT_EQ(k.CountAluOps(),
            GenerateRegisterUsage(spec).CountAluOps());
}

}  // namespace
}  // namespace amdmb::suite
