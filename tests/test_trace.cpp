// Execution-trace tests: event capture, capping, and rendering.
#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::sim {
namespace {

isa::Program SmallProgram(const GpuArch& arch) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 70;  // > one interleave chunk: multiple ALU events/wave.
  return compiler::Compile(suite::GenerateGeneric(spec), arch);
}

TEST(TraceTest, CapturesEveryClauseOfEveryWavefront) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  Trace trace;
  LaunchConfig config;
  config.domain = Domain{64, 64};  // 64 wavefronts.
  gpu.Execute(p, config, &trace);

  const std::uint64_t waves = 64 * 64 / arch.wavefront_size;
  unsigned tex_events = 0, alu_events = 0, write_events = 0;
  for (const TraceEvent& e : trace.Events()) {
    EXPECT_LE(e.issue, e.start);
    EXPECT_LE(e.start, e.complete);
    EXPECT_LT(e.simd, arch.simd_engines);
    EXPECT_LT(e.wave, waves);
    switch (e.type) {
      case isa::ClauseType::kTex: ++tex_events; break;
      case isa::ClauseType::kAlu: ++alu_events; break;
      case isa::ClauseType::kExport: ++write_events; break;
      default: break;
    }
  }
  EXPECT_EQ(tex_events, waves);    // One TEX clause per wavefront.
  EXPECT_EQ(write_events, waves);  // One export clause per wavefront.
  // 70 bundles chunked at 32 -> 3 ALU events per wavefront.
  EXPECT_EQ(alu_events, waves * 3);
  EXPECT_EQ(trace.DroppedCount(), 0u);
}

TEST(TraceTest, CapsCapacityAndCountsDrops) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  Trace trace(/*capacity=*/10);
  LaunchConfig config;
  config.domain = Domain{64, 64};
  gpu.Execute(p, config, &trace);
  EXPECT_EQ(trace.Events().size(), 10u);
  EXPECT_GT(trace.DroppedCount(), 0u);
}

TEST(TraceTest, RendersSummaryAndTimeline) {
  const GpuArch arch = MakeRV870();
  Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  Trace trace;
  LaunchConfig config;
  config.domain = Domain{64, 64};
  gpu.Execute(p, config, &trace);

  const std::string summary = trace.RenderSummary();
  EXPECT_NE(summary.find("TEX"), std::string::npos);
  EXPECT_NE(summary.find("ALU"), std::string::npos);
  EXPECT_NE(summary.find("EXP_DONE"), std::string::npos);

  const std::string timeline = trace.RenderTimeline(5);
  EXPECT_NE(timeline.find("issue"), std::string::npos);
  EXPECT_NE(timeline.find("more events"), std::string::npos);
}

TEST(TraceTest, TracingDoesNotPerturbTiming) {
  const GpuArch arch = MakeRV770();
  Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  LaunchConfig config;
  config.domain = Domain{128, 128};
  Trace trace;
  const KernelStats with = gpu.Execute(p, config, &trace);
  const KernelStats without = gpu.Execute(p, config);
  EXPECT_EQ(with.cycles, without.cycles);
}

TEST(TraceTest, ClearResets) {
  Trace trace;
  trace.Record(TraceEvent{});
  EXPECT_EQ(trace.Events().size(), 1u);
  trace.Clear();
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.DroppedCount(), 0u);
}

}  // namespace
}  // namespace amdmb::sim
