// Unit tests for src/compiler: dependence analysis, VLIW packing, clause
// formation, SKA static analysis, and disassembly.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "compiler/clause_builder.hpp"
#include "compiler/compiler.hpp"
#include "compiler/depgraph.hpp"
#include "compiler/ska.hpp"
#include "compiler/vliw_packer.hpp"
#include "il/builder.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::compiler {
namespace {

using il::Operand;

il::Signature Sig(unsigned inputs, unsigned outputs, DataType type,
                  ReadPath read = ReadPath::kTexture,
                  WritePath write = WritePath::kStream) {
  il::Signature sig;
  sig.inputs = inputs;
  sig.outputs = outputs;
  sig.type = type;
  sig.read_path = read;
  sig.write_path = write;
  return sig;
}

/// inputs -> independent pairwise adds (packable) -> fold -> write.
il::Kernel PackableKernel(DataType type) {
  il::Builder b("packable", Sig(8, 1, type));
  std::vector<unsigned> in;
  for (unsigned i = 0; i < 8; ++i) in.push_back(b.Fetch(i));
  // Four independent adds: should co-issue for float.
  std::vector<unsigned> sums;
  for (unsigned i = 0; i < 8; i += 2) {
    sums.push_back(b.Add(Operand::Reg(in[i]), Operand::Reg(in[i + 1])));
  }
  const unsigned a = b.Add(Operand::Reg(sums[0]), Operand::Reg(sums[1]));
  const unsigned c = b.Add(Operand::Reg(sums[2]), Operand::Reg(sums[3]));
  const unsigned r = b.Add(Operand::Reg(a), Operand::Reg(c));
  b.Write(0, r);
  return std::move(b).Build();
}

TEST(DepGraphTest, DefAndUseSites) {
  il::Builder b("deps", Sig(2, 1, DataType::kFloat));
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  const unsigned s = b.Add(Operand::Reg(a), Operand::Reg(c));
  const unsigned t = b.Add(Operand::Reg(s), Operand::Reg(a));
  b.Write(0, t);
  const il::Kernel k = std::move(b).Build();
  const DepGraph deps(k);
  EXPECT_EQ(deps.DefSite(a), 0u);
  EXPECT_EQ(deps.DefSite(s), 2u);
  EXPECT_EQ(deps.UseSites(a), (std::vector<unsigned>{2, 3}));
  EXPECT_EQ(deps.UseSites(t), (std::vector<unsigned>{4}));
  EXPECT_TRUE(deps.DependsOn(3, 2));
  EXPECT_FALSE(deps.DependsOn(2, 3));
  EXPECT_EQ(deps.VirtualRegCount(), 4u);
}

TEST(VliwPackerTest, IndependentFloatOpsCoIssue) {
  const il::Kernel k = PackableKernel(DataType::kFloat);
  const DepGraph deps(k);
  std::vector<unsigned> alu;
  for (unsigned i = 0; i < k.code.size(); ++i) {
    if (il::IsAlu(k.code[i].op)) alu.push_back(i);
  }
  const auto bundles = PackVliw(k, deps, alu);
  // 4 independent adds in one bundle, then the dependent tree: 2, then 1.
  ASSERT_EQ(bundles.size(), 3u);
  EXPECT_EQ(bundles[0].size(), 4u);
  EXPECT_EQ(bundles[1].size(), 2u);
  EXPECT_EQ(bundles[2].size(), 1u);
}

// Paper Sec. III: the data dependency does not allow VLIW packing, so
// the bundle count equals the op count and is data-type independent.
TEST(VliwPackerTest, DependentChainNeverPacks) {
  for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
    suite::GenericSpec spec;
    spec.inputs = 4;
    spec.alu_ops = 32;
    spec.type = type;
    const il::Kernel k = suite::GenerateGeneric(spec);
    const isa::Program p = Compile(k, MakeRV770());
    EXPECT_EQ(p.stats.alu_ops, 32u) << ToString(type);
    EXPECT_EQ(p.stats.alu_bundles, 32u) << ToString(type);
  }
}

TEST(VliwPackerTest, Float4OccupiesWholeBundle) {
  const il::Kernel k = PackableKernel(DataType::kFloat4);
  const DepGraph deps(k);
  std::vector<unsigned> alu;
  for (unsigned i = 0; i < k.code.size(); ++i) {
    if (il::IsAlu(k.code[i].op)) alu.push_back(i);
  }
  const auto bundles = PackVliw(k, deps, alu);
  // Each float4 op needs all four general lanes: no co-issue at all.
  EXPECT_EQ(bundles.size(), 7u);
  for (const auto& bundle : bundles) EXPECT_EQ(bundle.size(), 1u);
}

TEST(VliwPackerTest, FiveIndependentScalarsFillAllLanes) {
  il::Builder b("five", Sig(2, 1, DataType::kFloat));
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  std::vector<unsigned> sums;
  for (int i = 0; i < 5; ++i) {
    sums.push_back(b.Add(Operand::Reg(a), Operand::Reg(c)));
  }
  unsigned acc = sums[0];
  for (int i = 1; i < 5; ++i) {
    acc = b.Add(Operand::Reg(acc), Operand::Reg(sums[i]));
  }
  b.Write(0, acc);
  const il::Kernel k = std::move(b).Build();
  const DepGraph deps(k);
  std::vector<unsigned> alu;
  for (unsigned i = 0; i < k.code.size(); ++i) {
    if (il::IsAlu(k.code[i].op)) alu.push_back(i);
  }
  const auto bundles = PackVliw(k, deps, alu);
  // 5 independent adds co-issue on x,y,z,w,t; the chain of 4 follows.
  ASSERT_GE(bundles.size(), 5u);
  EXPECT_EQ(bundles[0].size(), 5u);
}

TEST(VliwPackerTest, TranscendentalRequiresTLane) {
  il::Builder b("trans", Sig(1, 1, DataType::kFloat));
  const unsigned a = b.Fetch(0);
  const unsigned r1 = b.Alu1(il::Opcode::kRcp, Operand::Reg(a));
  const unsigned r2 = b.Alu1(il::Opcode::kSin, Operand::Reg(a));
  const unsigned s = b.Add(Operand::Reg(r1), Operand::Reg(r2));
  b.Write(0, s);
  const il::Kernel k = std::move(b).Build();
  const DepGraph deps(k);
  std::vector<unsigned> alu = {1, 2, 3};
  const auto bundles = PackVliw(k, deps, alu);
  // Two transcendentals cannot share the single t core.
  ASSERT_EQ(bundles.size(), 3u);
  EXPECT_EQ(bundles[0].size(), 1u);
  EXPECT_EQ(bundles[1].size(), 1u);
}

TEST(ClauseBuilderTest, GroupsByKindInProgramOrder) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 8;
  const il::Kernel k = suite::GenerateGeneric(spec);
  const isa::Program p = Compile(k, MakeRV770());
  ASSERT_EQ(p.clauses.size(), 3u);
  EXPECT_EQ(p.clauses[0].type, isa::ClauseType::kTex);
  EXPECT_EQ(p.clauses[0].fetches.size(), 4u);
  EXPECT_EQ(p.clauses[1].type, isa::ClauseType::kAlu);
  EXPECT_EQ(p.clauses[1].bundles.size(), 8u);
  EXPECT_EQ(p.clauses[2].type, isa::ClauseType::kExport);
  EXPECT_EQ(p.clauses[2].writes.size(), 1u);
}

TEST(ClauseBuilderTest, SplitsTexClausesAtCapacity) {
  suite::GenericSpec spec;
  spec.inputs = 40;
  spec.alu_ops = 64;
  const il::Kernel k = suite::GenerateGeneric(spec);
  CompileOptions opts = OptionsFor(MakeRV770());
  opts.max_tex_fetches_per_clause = 16;
  const isa::Program p = Compile(k, opts);
  // 40 fetches -> 16 + 16 + 8.
  ASSERT_GE(p.clauses.size(), 3u);
  EXPECT_EQ(p.clauses[0].fetches.size(), 16u);
  EXPECT_EQ(p.clauses[1].fetches.size(), 16u);
  EXPECT_EQ(p.clauses[2].fetches.size(), 8u);
}

TEST(ClauseBuilderTest, SplitsAluClausesAtCapacity) {
  suite::GenericSpec spec;
  spec.inputs = 2;
  spec.alu_ops = 300;
  const il::Kernel k = suite::GenerateGeneric(spec);
  CompileOptions opts = OptionsFor(MakeRV770());
  opts.max_alu_bundles_per_clause = 128;
  const isa::Program p = Compile(k, opts);
  unsigned alu_clauses = 0;
  for (const auto& c : p.clauses) {
    if (c.type == isa::ClauseType::kAlu) {
      ++alu_clauses;
      EXPECT_LE(c.bundles.size(), 128u);
    }
  }
  EXPECT_EQ(alu_clauses, 3u);  // 300 dependent ops -> 128 + 128 + 44.
}

TEST(ClauseBuilderTest, ClauseBreakForcesBoundary) {
  il::Builder b("brk", Sig(2, 1, DataType::kFloat));
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  unsigned acc = b.Add(Operand::Reg(a), Operand::Reg(c));
  acc = b.Add(Operand::Reg(acc), Operand::Reg(a));
  b.ClauseBreak();
  acc = b.Add(Operand::Reg(acc), Operand::Reg(c));
  b.Write(0, acc);
  const isa::Program p = Compile(std::move(b).Build(), MakeRV770());
  ASSERT_EQ(p.clauses.size(), 4u);
  EXPECT_EQ(p.clauses[1].type, isa::ClauseType::kAlu);
  EXPECT_EQ(p.clauses[1].bundles.size(), 2u);
  EXPECT_EQ(p.clauses[2].type, isa::ClauseType::kAlu);
  EXPECT_EQ(p.clauses[2].bundles.size(), 1u);
}

TEST(CompilerTest, GlobalPathsProduceMemClauses) {
  suite::GenericSpec spec;
  spec.inputs = 3;
  spec.alu_ops = 4;
  spec.read_path = ReadPath::kGlobal;
  spec.write_path = WritePath::kGlobal;
  const il::Kernel k = suite::GenerateGeneric(spec);
  const isa::Program p = Compile(k, MakeRV770());
  EXPECT_EQ(p.clauses.front().type, isa::ClauseType::kMemRead);
  EXPECT_EQ(p.clauses.back().type, isa::ClauseType::kMemWrite);
  EXPECT_EQ(p.stats.global_reads, 3u);
  EXPECT_EQ(p.stats.tex_fetches, 0u);
}

TEST(CompilerTest, RejectsInvalidKernels) {
  il::Kernel k;
  k.sig = Sig(1, 0, DataType::kFloat);
  EXPECT_THROW(Compile(k, MakeRV770()), ConfigError);
}

// Paper Sec. III-A: 16 ALU ops and 4 fetches report a 1.0 ratio; 48/12
// likewise.
TEST(SkaTest, RatioIsFourToOneNormalised) {
  const GpuArch arch = MakeRV770();
  suite::GenericSpec spec;
  spec.inputs = 12;
  spec.alu_ops = 48;
  const isa::Program p = Compile(suite::GenerateGeneric(spec), arch);
  const SkaReport r = Analyze(p, arch);
  EXPECT_EQ(r.alu_ops, 48u);
  EXPECT_EQ(r.fetch_ops, 12u);
  EXPECT_DOUBLE_EQ(r.alu_fetch_ratio, 1.0);
  EXPECT_EQ(r.bound, StaticBound::kBalanced);
}

TEST(SkaTest, BoundClassification) {
  const GpuArch arch = MakeRV770();
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 64;  // ratio 4.0
  SkaReport r = Analyze(Compile(suite::GenerateGeneric(spec), arch), arch);
  EXPECT_EQ(r.bound, StaticBound::kAlu);

  spec.alu_ops = 4;  // ratio 0.25
  r = Analyze(Compile(suite::GenerateGeneric(spec), arch), arch);
  EXPECT_EQ(r.bound, StaticBound::kFetch);
  EXPECT_FALSE(r.Render().empty());
}

TEST(SkaTest, OccupancyFromGpr) {
  const GpuArch arch = MakeRV770();
  suite::GenericSpec spec;
  spec.inputs = 16;
  spec.alu_ops = 64;
  const isa::Program p = Compile(suite::GenerateGeneric(spec), arch);
  const SkaReport r = Analyze(p, arch);
  EXPECT_EQ(r.gpr_count, p.gpr_count);
  EXPECT_EQ(r.theoretical_wavefronts, 256u / p.gpr_count);
}

TEST(DisassemblyTest, MatchesPaperFigTwoShape) {
  suite::GenericSpec spec;
  spec.inputs = 3;
  spec.alu_ops = 6;
  const isa::Program p = Compile(suite::GenerateGeneric(spec), MakeRV770());
  const std::string text = isa::Disassemble(p);
  EXPECT_NE(text.find("TEX:"), std::string::npos);
  EXPECT_NE(text.find("SAMPLE"), std::string::npos);
  EXPECT_NE(text.find("ALU:"), std::string::npos);
  EXPECT_NE(text.find("ADD"), std::string::npos);
  EXPECT_NE(text.find("EXP_DONE:"), std::string::npos);
  EXPECT_NE(text.find("END_OF_PROGRAM"), std::string::npos);
  EXPECT_NE(text.find("VALID_PIX"), std::string::npos);
}

}  // namespace
}  // namespace amdmb::compiler
