// Profiler subsystem tests: counter registry, collector determinism
// (thread widths, fault retries), counter-based bottleneck attribution
// cross-checked against the heuristic classifier, Chrome-trace export
// (golden document), and profile JSON round-trips.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "exec/sweep_executor.hpp"
#include "fault/fault.hpp"
#include "prof/chrome_trace.hpp"
#include "prof/collector.hpp"
#include "prof/profile_json.hpp"
#include "report/json.hpp"
#include "report/json_sink.hpp"
#include "report/load.hpp"
#include "suite/suite.hpp"

namespace amdmb::prof {
namespace {

constexpr Domain kSmall{256, 256};

isa::Program SmallProgram(const GpuArch& arch) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 70;  // > one interleave chunk: multiple ALU events/wave.
  return compiler::Compile(suite::GenerateGeneric(spec), arch);
}

/// One profiled launch through the suite Runner (the CAL path).
suite::Measurement ProfiledMeasurement() {
  suite::Runner runner(MakeRV770());
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 16;
  sim::LaunchConfig launch;
  launch.domain = kSmall;
  launch.profile = true;
  return runner.Measure(suite::GenerateGeneric(spec), launch);
}

// ---- Counter registry --------------------------------------------------

TEST(CounterRegistryTest, NamesRoundTripAndDescriptionsExist) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto id = static_cast<CounterId>(i);
    EXPECT_FALSE(ToString(id).empty());
    EXPECT_FALSE(Describe(id).empty());
    EXPECT_EQ(CounterIdFromString(ToString(id)), id);
  }
  EXPECT_EQ(CounterIdFromString("no_such_counter"), std::nullopt);
}

// ---- Collector on Gpu::Execute -----------------------------------------

TEST(CollectorTest, DoesNotPerturbKernelStats) {
  const GpuArch arch = MakeRV770();
  sim::Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  sim::LaunchConfig config;
  config.domain = Domain{128, 128};
  Collector collector(1u << 20);
  const sim::KernelStats with =
      gpu.Execute(p, config, nullptr, &collector);
  const sim::KernelStats without = gpu.Execute(p, config);
  EXPECT_EQ(with, without);
}

TEST(CollectorTest, CountersAgreeWithKernelStats) {
  const GpuArch arch = MakeRV770();
  sim::Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  sim::LaunchConfig config;
  config.domain = kSmall;
  Collector collector(1u << 20);
  const sim::KernelStats stats =
      gpu.Execute(p, config, nullptr, &collector);
  const Profile profile = collector.Take();
  const CounterSet& c = profile.counters;
  EXPECT_EQ(c.Get(CounterId::kCycles), stats.cycles);
  EXPECT_EQ(c.Get(CounterId::kWavefronts), stats.wavefront_count);
  EXPECT_EQ(c.Get(CounterId::kResidentWavefronts),
            stats.resident_wavefronts);
  EXPECT_EQ(c.Get(CounterId::kSimdEngines), arch.simd_engines);
  EXPECT_EQ(c.Get(CounterId::kTexCacheHits), stats.cache.hits);
  EXPECT_EQ(c.Get(CounterId::kTexCacheMisses), stats.cache.misses);
  EXPECT_EQ(c.Get(CounterId::kDramBatches), stats.dram.batches);
  EXPECT_EQ(c.Get(CounterId::kDramReadBytes), stats.dram.read_bytes);
  EXPECT_EQ(c.Get(CounterId::kDramWriteBytes), stats.dram.write_bytes);
  EXPECT_EQ(c.Get(CounterId::kDramBusyCycles), stats.dram.busy_cycles);
  EXPECT_EQ(c.Get(CounterId::kDramFillBusyCycles),
            stats.dram.fill_busy_cycles);
  EXPECT_EQ(c.Get(CounterId::kDramRowSwitches), stats.dram.row_switches);
  // Per-cache-set hit/miss totals must re-add to the cache counters.
  std::uint64_t set_hits = 0, set_misses = 0;
  for (const CacheSetStats& s : profile.per_cache_set) {
    set_hits += s.hits;
    set_misses += s.misses;
  }
  EXPECT_EQ(set_hits, stats.cache.hits);
  EXPECT_EQ(set_misses, stats.cache.misses);
  EXPECT_EQ(profile.dropped_events, 0u);
  EXPECT_GT(c.Get(CounterId::kAluBundles), 0u);
  EXPECT_LE(c.Get(CounterId::kAluSlotsUsed),
            c.Get(CounterId::kAluSlotsTotal));
}

TEST(CollectorTest, CapsEventStreamAndCountsDrops) {
  const GpuArch arch = MakeRV770();
  sim::Gpu gpu(arch);
  const isa::Program p = SmallProgram(arch);
  sim::LaunchConfig config;
  config.domain = kSmall;
  Collector collector(/*event_capacity=*/8);
  gpu.Execute(p, config, nullptr, &collector);
  const Profile profile = collector.Take();
  EXPECT_EQ(profile.events.size(), 8u);
  EXPECT_GT(profile.dropped_events, 0u);
  // Aggregated counters keep counting past the event cap.
  EXPECT_GT(profile.counters.Get(CounterId::kAluClauses), 8u);
}

TEST(CollectorTest, UnprofiledLaunchHasNullProfile) {
  suite::Runner runner(MakeRV770());
  suite::GenericSpec spec;
  spec.inputs = 2;
  sim::LaunchConfig launch;
  launch.domain = kSmall;
  const suite::Measurement m =
      runner.Measure(suite::GenerateGeneric(spec), launch);
  EXPECT_EQ(m.profile, nullptr);
}

// ---- Determinism -------------------------------------------------------

TEST(ProfDeterminismTest, CountersIdenticalAtAnyExecutorWidth) {
  const exec::SweepExecutor serial(1);
  const exec::SweepExecutor wide(8);
  const suite::Runner runner(MakeRV770());
  suite::AluFetchConfig config;
  config.domain = kSmall;
  config.ratio_step = 2.0;
  config.profile = true;
  config.executor = &serial;
  const suite::AluFetchResult a = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, config);
  config.executor = &wide;
  const suite::AluFetchResult b = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_FALSE(a.points.empty());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    ASSERT_NE(a.points[i].m.profile, nullptr);
    ASSERT_NE(b.points[i].m.profile, nullptr);
    EXPECT_EQ(a.points[i].m.profile->counters,
              b.points[i].m.profile->counters);
    EXPECT_EQ(a.points[i].m.profile->attribution,
              b.points[i].m.profile->attribution);
    EXPECT_EQ(a.points[i].m.profile->clauses,
              b.points[i].m.profile->clauses);
  }
}

TEST(ProfDeterminismTest, RetriedPointsDoNotDoubleCount) {
  const suite::Runner runner(MakeRV770());
  suite::ReadLatencyConfig config;
  config.domain = kSmall;
  config.min_inputs = 2;
  config.max_inputs = 6;
  config.profile = true;
  config.retry.max_attempts = 8;
  config.retry.backoff_base_ms = 0.0;
  config.retry.backoff_cap_ms = 0.0;
  const suite::ReadLatencyResult clean =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_FALSE(clean.points.empty());

  fault::ScopedFaultInjector scoped("launch:0.5,seed=11");
  const suite::ReadLatencyResult faulty =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat, config);

  unsigned retried = 0;
  for (const suite::ReadLatencyPoint& fp : faulty.points) {
    ASSERT_NE(fp.m.profile, nullptr);
    if (fp.m.profile->attempt > 1) ++retried;
    for (const suite::ReadLatencyPoint& cp : clean.points) {
      if (cp.inputs != fp.inputs) continue;
      // A fresh collector rides every attempt, so the surviving
      // attempt's counters match the fault-free run exactly.
      EXPECT_EQ(fp.m.profile->counters, cp.m.profile->counters)
          << "inputs=" << fp.inputs;
      EXPECT_EQ(fp.m.profile->attribution, cp.m.profile->attribution);
    }
  }
  EXPECT_GT(retried, 0u) << "fault plan injected no retries; the "
                            "no-double-count property went unexercised";
}

// ---- Attribution vs. the heuristic classifier --------------------------

template <typename Points>
void ExpectAttributionAgreement(const Points& points, const char* what) {
  ASSERT_FALSE(points.empty()) << what;
  for (const auto& point : points) {
    ASSERT_NE(point.m.profile, nullptr) << what;
    EXPECT_EQ(point.m.profile->attribution.bottleneck,
              point.m.stats.bottleneck)
        << what << " point " << point.m.profile->point;
  }
}

TEST(AttributionTest, AgreesWithHeuristicAcrossSweepFamilies) {
  const suite::Runner runner(MakeRV770());
  {
    suite::AluFetchConfig c;
    c.domain = kSmall;
    c.ratio_step = 1.0;
    c.profile = true;
    for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
      ExpectAttributionAgreement(
          RunAluFetch(runner, ShaderMode::kPixel, type, c).points,
          "alu_fetch pixel");
      ExpectAttributionAgreement(
          RunAluFetch(runner, ShaderMode::kCompute, type, c).points,
          "alu_fetch compute");
    }
  }
  {
    suite::ReadLatencyConfig c;
    c.domain = kSmall;
    c.max_inputs = 8;
    c.profile = true;
    ExpectAttributionAgreement(
        RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat, c)
            .points,
        "read_latency texture");
    c.read_path = ReadPath::kGlobal;
    ExpectAttributionAgreement(
        RunReadLatency(runner, ShaderMode::kCompute, DataType::kFloat, c)
            .points,
        "read_latency global");
  }
  {
    suite::WriteLatencyConfig c;
    c.domain = kSmall;
    c.profile = true;
    ExpectAttributionAgreement(
        RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat, c)
            .points,
        "write_latency stream");
    c.write_path = WritePath::kGlobal;
    ExpectAttributionAgreement(
        RunWriteLatency(runner, ShaderMode::kCompute, DataType::kFloat, c)
            .points,
        "write_latency global");
  }
  {
    suite::DomainSizeConfig c;
    c.max_size = 512;
    c.pixel_increment = 128;
    c.profile = true;
    ExpectAttributionAgreement(
        RunDomainSize(runner, ShaderMode::kPixel, DataType::kFloat, c)
            .points,
        "domain_size");
  }
  {
    suite::RegisterUsageConfig c;
    c.domain = kSmall;
    c.profile = true;
    ExpectAttributionAgreement(
        RunRegisterUsage(runner, ShaderMode::kPixel, DataType::kFloat, c)
            .points,
        "register_usage");
  }
  {
    suite::BlockSizeConfig c;
    c.domain = kSmall;
    c.profile = true;
    ExpectAttributionAgreement(RunBlockSizeExplorer(runner, c).points,
                               "block_size");
  }
}

TEST(AttributionTest, ZeroCyclesYieldsDefault) {
  const Attribution a = Attribute(CounterSet{});
  EXPECT_EQ(a.bottleneck, sim::Bottleneck::kAlu);
  EXPECT_EQ(a.alu_score, 0.0);
}

// ---- Chrome trace ------------------------------------------------------

TEST(ChromeTraceTest, GoldenDocumentForSyntheticProfile) {
  Profile p;
  p.kernel = "alufetch_r2.00";
  p.point = "alufetch_r2.00";
  p.arch = "RV770";
  p.mode = "Pixel";
  p.type = "Float";
  p.attempt = 1;
  p.counters.Set(CounterId::kCycles, 100);
  p.counters.Set(CounterId::kWavefronts, 2);
  p.attribution.bottleneck = sim::Bottleneck::kFetch;
  sim::TraceEvent e1;
  e1.type = isa::ClauseType::kTex;
  e1.simd = 0;
  e1.wave = 0;
  e1.clause = 0;
  e1.issue = 0;
  e1.start = 2;
  e1.complete = 10;
  sim::TraceEvent e2;
  e2.type = isa::ClauseType::kAlu;
  e2.simd = 1;
  e2.wave = 1;
  e2.clause = 1;
  e2.issue = 10;
  e2.start = 10;
  e2.complete = 42;
  p.events = {e1, e2};
  p.occupancy = {{0, 0, 1}, {42, 1, 0}};
  p.dropped_events = 3;

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"SIMD 0\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"SIMD 1\"}},\n"
      "{\"name\":\"TEX\",\"cat\":\"clause\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":0,\"ts\":2,\"dur\":8,"
      "\"args\":{\"wave\":0,\"clause\":0,\"queue_cycles\":2}},\n"
      "{\"name\":\"ALU\",\"cat\":\"clause\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":1,\"ts\":10,\"dur\":32,"
      "\"args\":{\"wave\":1,\"clause\":1,\"queue_cycles\":0}},\n"
      "{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0,"
      "\"args\":{\"resident_wavefronts\":1}},\n"
      "{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":1,"
      "\"ts\":42,\"args\":{\"resident_wavefronts\":0}}\n"
      "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
      "\"kernel\":\"alufetch_r2.00\",\"point\":\"alufetch_r2.00\","
      "\"arch\":\"RV770\",\"mode\":\"Pixel\",\"type\":\"Float\","
      "\"attempt\":1,\"dropped_events\":3,\"bottleneck\":\"FETCH\"}}\n";
  EXPECT_EQ(ChromeTraceJson(p), expected);
  EXPECT_EQ(TraceFileName(p), "rv770_pixel_float_alufetch_r2_00.trace.json");
}

TEST(ChromeTraceTest, RealLaunchProducesValidTraceEventJson) {
  const suite::Measurement m = ProfiledMeasurement();
  ASSERT_NE(m.profile, nullptr);
  const std::string json = ChromeTraceJson(*m.profile);
  const report::JsonValue doc = report::JsonValue::Parse(json);
  const report::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->AsArray().empty());
  bool saw_meta = false, saw_slice = false, saw_counter = false;
  for (const report::JsonValue& e : events->AsArray()) {
    const std::string ph = e.StringOr("ph", "");
    if (ph == "M") saw_meta = true;
    if (ph == "C") saw_counter = true;
    if (ph == "X") {
      saw_slice = true;
      EXPECT_NE(e.Find("ts"), nullptr);
      EXPECT_NE(e.Find("dur"), nullptr);
      EXPECT_NE(e.Find("args"), nullptr);
      EXPECT_EQ(e.StringOr("cat", ""), "clause");
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_counter);
  const report::JsonValue* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->StringOr("kernel", ""), m.profile->kernel);
}

TEST(ChromeTraceTest, FileNamesKeepFloatAndFloat4Apart) {
  Profile p;
  p.point = "alufetch_r0.25";
  p.arch = "RV770";
  p.mode = "Pixel";
  p.type = "Float";
  Profile q = p;
  q.type = "Float4";
  EXPECT_NE(TraceFileName(p), TraceFileName(q));
  // Retry attempts get their own file instead of clobbering attempt 1.
  Profile r = p;
  r.attempt = 2;
  EXPECT_NE(TraceFileName(p), TraceFileName(r));
  Profile empty;
  EXPECT_EQ(TraceFileName(empty), "launch.trace.json");
}

// ---- Profile JSON round-trip -------------------------------------------

TEST(ProfileJsonTest, RoundTripsThroughJson) {
  const suite::Measurement m = ProfiledMeasurement();
  ASSERT_NE(m.profile, nullptr);
  const Profile& p = *m.profile;
  const Profile q = ParseProfileJson(ProfileJson(p));
  EXPECT_EQ(q.kernel, p.kernel);
  EXPECT_EQ(q.point, p.point);
  EXPECT_EQ(q.arch, p.arch);
  EXPECT_EQ(q.mode, p.mode);
  EXPECT_EQ(q.type, p.type);
  EXPECT_EQ(q.attempt, p.attempt);
  EXPECT_EQ(q.counters, p.counters);
  EXPECT_EQ(q.clauses, p.clauses);
  EXPECT_EQ(q.per_simd, p.per_simd);
  EXPECT_EQ(q.row_switches_per_bank, p.row_switches_per_bank);
  EXPECT_EQ(q.per_cache_set, p.per_cache_set);
  EXPECT_EQ(q.dropped_events, p.dropped_events);
  EXPECT_EQ(q.attribution, p.attribution);
  // The document intentionally omits the raw streams (Chrome trace's
  // job), so a round-tripped profile carries none.
  EXPECT_TRUE(q.events.empty());
  EXPECT_TRUE(q.occupancy.empty());
}

TEST(ProfileJsonTest, CounterSetIgnoresUnknownKeys) {
  const CounterSet c = CounterSetFromJson(
      report::JsonValue::Parse("{\"cycles\": 7, \"from_the_future\": 9}"));
  EXPECT_EQ(c.Get(CounterId::kCycles), 7u);
}

// ---- Report-layer plumbing ---------------------------------------------

TEST(ProfileReportTest, BenchJsonCarriesProfileBlock) {
  const suite::Measurement m = ProfiledMeasurement();
  ASSERT_NE(m.profile, nullptr);
  report::Figure figure("Fig. 99 — Profiler Plumbing", "t", "x", "y",
                        "claim");
  figure.profiles.push_back(report::MakeProfileEntry(
      "4870 Pixel Float", *m.profile,
      sim::ToString(m.stats.bottleneck)));
  const std::string json = report::BenchJson(figure);
  const report::LoadedFigure loaded = report::LoadFigureJson(json);
  ASSERT_EQ(loaded.profiles.size(), 1u);
  const report::ProfileEntry& entry = loaded.profiles[0];
  EXPECT_EQ(entry.curve, "4870 Pixel Float");
  EXPECT_EQ(entry.point, m.profile->point);
  EXPECT_TRUE(entry.agree);
  EXPECT_EQ(entry.attributed, entry.heuristic);
  EXPECT_EQ(entry.counters, m.profile->counters);
}

TEST(ProfileReportTest, UnprofiledDocumentOmitsProfileKey) {
  report::Figure figure("Fig. 99 — Profiler Plumbing", "t", "x", "y",
                        "claim");
  EXPECT_EQ(report::BenchJson(figure).find("\"profile\""),
            std::string::npos);
}

TEST(ProfileReportTest, DivergenceRendersLoudly) {
  const suite::Measurement m = ProfiledMeasurement();
  ASSERT_NE(m.profile, nullptr);
  const report::ProfileEntry entry = report::MakeProfileEntry(
      "curve", *m.profile, "NOT_WHAT_THE_COUNTERS_SAY");
  EXPECT_FALSE(entry.agree);
  EXPECT_NE(entry.Render().find("DIVERGES"), std::string::npos);
}

}  // namespace
}  // namespace amdmb::prof
