// IL text parser tests: round-trips with the printer, hand-written
// kernels, and malformed-input diagnostics.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "il/builder.hpp"
#include "il/parser.hpp"
#include "il/printer.hpp"
#include "il/verifier.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::il {
namespace {

void ExpectSameKernel(const Kernel& a, const Kernel& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.sig.inputs, b.sig.inputs);
  EXPECT_EQ(a.sig.outputs, b.sig.outputs);
  EXPECT_EQ(a.sig.constants, b.sig.constants);
  EXPECT_EQ(a.sig.type, b.sig.type);
  EXPECT_EQ(a.sig.read_path, b.sig.read_path);
  EXPECT_EQ(a.sig.write_path, b.sig.write_path);
  ASSERT_EQ(a.code.size(), b.code.size());
  for (std::size_t i = 0; i < a.code.size(); ++i) {
    EXPECT_EQ(a.code[i].op, b.code[i].op) << "inst " << i;
    EXPECT_EQ(a.code[i].dst, b.code[i].dst) << "inst " << i;
    EXPECT_EQ(a.code[i].resource, b.code[i].resource) << "inst " << i;
    ASSERT_EQ(a.code[i].srcs.size(), b.code[i].srcs.size()) << "inst " << i;
    for (std::size_t s = 0; s < a.code[i].srcs.size(); ++s) {
      EXPECT_EQ(a.code[i].srcs[s].kind, b.code[i].srcs[s].kind);
      EXPECT_EQ(a.code[i].srcs[s].index, b.code[i].srcs[s].index);
      EXPECT_EQ(a.code[i].srcs[s].literal, b.code[i].srcs[s].literal);
    }
  }
}

TEST(ParserTest, RoundTripsGeneratedKernels) {
  for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
    for (const ReadPath read : {ReadPath::kTexture, ReadPath::kGlobal}) {
      suite::GenericSpec spec;
      spec.inputs = 6;
      spec.outputs = 2;
      spec.alu_ops = 24;
      spec.type = type;
      spec.read_path = read;
      spec.write_path = WritePath::kGlobal;
      const Kernel original = suite::GenerateGeneric(spec);
      const Kernel reparsed = Parse(Print(original));
      ExpectSameKernel(original, reparsed);
      EXPECT_TRUE(Verify(reparsed).ok());
    }
  }
}

TEST(ParserTest, RoundTripsRegisterUsageKernelWithClauseBreaks) {
  suite::RegisterUsageSpec spec;
  spec.step = 3;
  const Kernel control = suite::GenerateClauseUsage(spec);
  const Kernel reparsed = Parse(Print(control));
  ExpectSameKernel(control, reparsed);
}

TEST(ParserTest, ParsesHandWrittenKernel) {
  const Kernel k = Parse(R"(il_ps_2_0 ; mykernel
; type=Float read=Texture write=Stream
dcl_input i0..i1
dcl_cb cb0[2]
dcl_output o0
  sample r0, i0
  sample r1, i1
  mad    r2, r0, r1, cb0[1]
  add    r3, r2, l(1.5)
  export o0, r3
end
)");
  EXPECT_EQ(k.name, "mykernel");
  EXPECT_EQ(k.sig.inputs, 2u);
  EXPECT_EQ(k.sig.constants, 2u);
  EXPECT_EQ(k.code.size(), 5u);
  EXPECT_EQ(k.code[2].op, Opcode::kMad);
  EXPECT_EQ(k.code[2].srcs[2].kind, OperandKind::kConstBuf);
  EXPECT_EQ(k.code[3].srcs[1].literal, 1.5f);
  EXPECT_TRUE(Verify(k).ok()) << Verify(k).Message();
}

TEST(ParserTest, SingleDeclarationsWithoutRange) {
  const Kernel k = Parse(
      "il_cs_2_0\n"
      "; type=Float read=Global write=Global\n"
      "dcl_input i0\n"
      "dcl_output o0\n"
      "  uav_load r0, i0\n"
      "  uav_store o0, r0\n"
      "end\n");
  EXPECT_EQ(k.sig.inputs, 1u);
  EXPECT_EQ(k.sig.outputs, 1u);
  EXPECT_TRUE(Verify(k).ok());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  const char* bad =
      "il_ps_2_0\n"
      "dcl_input i0\n"
      "dcl_output o0\n"
      "  frobnicate r0, i0\n"
      "end\n";
  try {
    Parse(bad);
    FAIL() << "expected a parse error";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(ParserTest, RejectsStructuralErrors) {
  EXPECT_THROW(Parse("dcl_input i0\nend\n"), ConfigError);  // No header.
  EXPECT_THROW(Parse("il_ps_2_0\n"), ConfigError);          // No end.
  EXPECT_THROW(Parse("il_ps_2_0\nend\nextra\n"), ConfigError);
  EXPECT_THROW(Parse("il_ps_2_0\ndcl_input i3..i5\nend\n"), ConfigError);
  // Wrong operand arity.
  EXPECT_THROW(Parse("il_ps_2_0\ndcl_output o0\n  add r0, r1\nend\n"),
               ConfigError);
}

TEST(ParserTest, ParsedKernelCompilesAndRuns) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 16;
  const Kernel k = Parse(Print(suite::GenerateGeneric(spec)));
  // The parsed kernel must be usable end to end.
  EXPECT_NO_THROW(VerifyOrThrow(k));
}

}  // namespace
}  // namespace amdmb::il
