// Tests for the centralized AMDMB_* environment handling.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/env.hpp"
#include "common/status.hpp"

namespace amdmb {
namespace {

/// Fake getenv backed by a map; missing names return nullptr like the
/// real thing.
class FakeEnv {
 public:
  FakeEnv(std::initializer_list<std::pair<const std::string, std::string>>
              values)
      : values_(values) {}

  env::Options Parse() const {
    return env::ParseFrom([this](const char* name) -> const char* {
      const auto it = values_.find(name);
      return it == values_.end() ? nullptr : it->second.c_str();
    });
  }

 private:
  std::map<std::string, std::string> values_;
};

TEST(EnvTest, AllKnobsUnsetYieldsDefaults) {
  const env::Options o = FakeEnv({}).Parse();
  EXPECT_FALSE(o.quick);
  EXPECT_FALSE(o.threads.has_value());
  EXPECT_FALSE(o.json_dir.has_value());
  EXPECT_FALSE(o.dump_dir.has_value());
  EXPECT_FALSE(o.faults.has_value());
  EXPECT_FALSE(o.retry.has_value());
  EXPECT_EQ(o.watchdog_cycles, 0u);
}

TEST(EnvTest, ParsesEveryKnob) {
  const env::Options o = FakeEnv({{"AMDMB_QUICK", "1"},
                                  {"AMDMB_THREADS", "8"},
                                  {"AMDMB_JSON_DIR", "/tmp/json"},
                                  {"AMDMB_DUMP_DIR", "/tmp/plots"},
                                  {"AMDMB_FAULTS", "compile:p=0.5:seed=7"},
                                  {"AMDMB_RETRY", "attempts=3"},
                                  {"AMDMB_WATCHDOG", "1000000"}})
                             .Parse();
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.threads, 8u);
  EXPECT_EQ(o.json_dir, "/tmp/json");
  EXPECT_EQ(o.dump_dir, "/tmp/plots");
  EXPECT_EQ(o.faults, "compile:p=0.5:seed=7");
  EXPECT_EQ(o.retry, "attempts=3");
  EXPECT_EQ(o.watchdog_cycles, 1000000u);
}

TEST(EnvTest, QuickZeroMeansOff) {
  EXPECT_FALSE(FakeEnv({{"AMDMB_QUICK", "0"}}).Parse().quick);
  EXPECT_TRUE(FakeEnv({{"AMDMB_QUICK", "1"}}).Parse().quick);
  // Historical behaviour: any non-"0" first character enables it.
  EXPECT_TRUE(FakeEnv({{"AMDMB_QUICK", "yes"}}).Parse().quick);
}

TEST(EnvTest, EmptyStringsCountAsUnset) {
  const env::Options o = FakeEnv({{"AMDMB_QUICK", ""},
                                  {"AMDMB_THREADS", ""},
                                  {"AMDMB_JSON_DIR", ""},
                                  {"AMDMB_FAULTS", ""},
                                  {"AMDMB_WATCHDOG", ""}})
                             .Parse();
  EXPECT_FALSE(o.quick);
  EXPECT_FALSE(o.threads.has_value());
  EXPECT_FALSE(o.json_dir.has_value());
  EXPECT_FALSE(o.faults.has_value());
  EXPECT_EQ(o.watchdog_cycles, 0u);
}

TEST(EnvTest, MalformedKnobsThrowNamingTheVariable) {
  try {
    FakeEnv({{"AMDMB_THREADS", "abc"}}).Parse();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("AMDMB_THREADS"),
              std::string::npos);
  }
  try {
    FakeEnv({{"AMDMB_WATCHDOG", "-1"}}).Parse();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("AMDMB_WATCHDOG"),
              std::string::npos);
  }
}

TEST(EnvTest, WatchdogRejectsNonNumeric) {
  EXPECT_THROW(env::ParseWatchdogCycles("fast"), ConfigError);
  EXPECT_THROW(env::ParseWatchdogCycles("12x"), ConfigError);
  EXPECT_EQ(env::ParseWatchdogCycles("0"), 0u);
  EXPECT_EQ(env::ParseWatchdogCycles("4000000000"), 4000000000u);
}

TEST(EnvTest, ProfilerKnobsDefaultOff) {
  const env::Options o = FakeEnv({}).Parse();
  EXPECT_FALSE(o.prof);
  EXPECT_FALSE(o.trace_dir.has_value());
  EXPECT_EQ(o.trace_capacity, 1u << 20);
}

TEST(EnvTest, ParsesProfilerKnobs) {
  const env::Options o = FakeEnv({{"AMDMB_PROF", "1"},
                                  {"AMDMB_TRACE_DIR", "/tmp/traces"},
                                  {"AMDMB_TRACE_CAP", "4096"}})
                             .Parse();
  EXPECT_TRUE(o.prof);
  EXPECT_EQ(o.trace_dir, "/tmp/traces");
  EXPECT_EQ(o.trace_capacity, 4096u);
}

TEST(EnvTest, ProfilerKnobsEmptyCountsAsUnset) {
  const env::Options o = FakeEnv({{"AMDMB_PROF", ""},
                                  {"AMDMB_TRACE_DIR", ""},
                                  {"AMDMB_TRACE_CAP", ""}})
                             .Parse();
  EXPECT_FALSE(o.prof);
  EXPECT_FALSE(o.trace_dir.has_value());
  EXPECT_EQ(o.trace_capacity, 1u << 20);
  EXPECT_FALSE(FakeEnv({{"AMDMB_PROF", "0"}}).Parse().prof);
}

TEST(EnvTest, TraceCapRejectsMalformedValuesNamingTheVariable) {
  for (const char* bad : {"abc", "-1", "0", "12x"}) {
    try {
      FakeEnv({{"AMDMB_TRACE_CAP", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_TRACE_CAP"),
                std::string::npos);
    }
  }
  EXPECT_EQ(env::ParseTraceCapacity("1"), 1u);
  EXPECT_EQ(env::ParseTraceCapacity("1048576"), 1048576u);
}

TEST(EnvTest, GetIsStableAcrossCalls) {
  // Get() snapshots the process environment once; repeated calls return
  // the same object (the old per-site static caching, centralized).
  const env::Options& a = env::Get();
  const env::Options& b = env::Get();
  EXPECT_EQ(&a, &b);
}


TEST(EnvTest, ServeKnobsParse) {
  const env::Options o = FakeEnv({{"AMDMB_SERVE_SOCKET", "/run/amdmb.sock"},
                                  {"AMDMB_SERVE_QUEUE", "32"},
                                  {"AMDMB_SERVE_INFLIGHT", "4"}})
                             .Parse();
  EXPECT_EQ(o.serve_socket, "/run/amdmb.sock");
  EXPECT_EQ(o.serve_queue, 32u);
  EXPECT_EQ(o.serve_inflight, 4u);
}

TEST(EnvTest, ServeKnobsDefaultWhenUnset) {
  const env::Options o = FakeEnv({}).Parse();
  EXPECT_FALSE(o.serve_socket.has_value());
  EXPECT_EQ(o.serve_queue, 16u);
  EXPECT_EQ(o.serve_inflight, 1u);
  // A queue of zero is legal: admission then only covers in-flight.
  EXPECT_EQ(env::ParseServeQueue("0"), 0u);
  EXPECT_EQ(env::ParseServeQueue("4096"), 4096u);
  EXPECT_EQ(env::ParseServeInflight("1"), 1u);
  EXPECT_EQ(env::ParseServeInflight("64"), 64u);
}

TEST(EnvTest, ServeQueueRejectsMalformedValuesNamingTheVariable) {
  for (const char* bad : {"abc", "-1", "4097", "12x", "1.5"}) {
    try {
      FakeEnv({{"AMDMB_SERVE_QUEUE", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_SERVE_QUEUE"),
                std::string::npos);
    }
  }
}

TEST(EnvTest, ServeInflightRejectsMalformedValuesNamingTheVariable) {
  for (const char* bad : {"abc", "0", "65", "-2", "2x"}) {
    try {
      FakeEnv({{"AMDMB_SERVE_INFLIGHT", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_SERVE_INFLIGHT"),
                std::string::npos);
    }
  }
}

TEST(EnvTest, FleetKnobsParse) {
  const env::Options o = FakeEnv({{"AMDMB_WORKERS", "3"},
                                  {"AMDMB_DEADLINE_MS", "1500"},
                                  {"AMDMB_HEARTBEAT_MS", "50"}})
                             .Parse();
  EXPECT_EQ(o.workers, 3u);
  EXPECT_EQ(o.deadline_ms, 1500u);
  EXPECT_EQ(o.heartbeat_ms, 50u);
}

TEST(EnvTest, FleetKnobsDefaultWhenUnset) {
  const env::Options o = FakeEnv({}).Parse();
  EXPECT_EQ(o.workers, 0u);  // Single-process daemon by default.
  EXPECT_EQ(o.deadline_ms, 0u);  // No per-request deadline.
  EXPECT_EQ(o.heartbeat_ms, 250u);
  EXPECT_EQ(env::ParseWorkerCount("0"), 0u);
  EXPECT_EQ(env::ParseWorkerCount("32"), 32u);
  EXPECT_EQ(env::ParseDeadlineMs("0"), 0u);
  EXPECT_EQ(env::ParseHeartbeatMs("10"), 10u);
  EXPECT_EQ(env::ParseHeartbeatMs("60000"), 60000u);
}

TEST(EnvTest, FleetKnobsRejectMalformedValuesNamingTheVariable) {
  for (const char* bad : {"abc", "-1", "33", "2x", "1.5"}) {
    try {
      FakeEnv({{"AMDMB_WORKERS", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_WORKERS"),
                std::string::npos);
    }
  }
  for (const char* bad : {"abc", "-5", "9x", "0.5"}) {
    try {
      FakeEnv({{"AMDMB_DEADLINE_MS", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_DEADLINE_MS"),
                std::string::npos);
    }
  }
  for (const char* bad : {"abc", "0", "9", "60001", "-1", "5x"}) {
    try {
      FakeEnv({{"AMDMB_HEARTBEAT_MS", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_HEARTBEAT_MS"),
                std::string::npos);
    }
  }
}

TEST(EnvTest, AdaptKnobsParse) {
  const env::Options o = FakeEnv({{"AMDMB_ADAPT", "1"},
                                  {"AMDMB_ADAPT_TOL", "4"},
                                  {"AMDMB_ADAPT_BUDGET", "100"}})
                             .Parse();
  EXPECT_TRUE(o.adapt);
  EXPECT_EQ(o.adapt_tol, 4u);
  EXPECT_EQ(o.adapt_budget, 100u);
  EXPECT_FALSE(FakeEnv({{"AMDMB_ADAPT", "0"}}).Parse().adapt);
}

TEST(EnvTest, AdaptKnobsDefaultWhenUnset) {
  const env::Options o = FakeEnv({}).Parse();
  EXPECT_FALSE(o.adapt);
  EXPECT_EQ(o.adapt_tol, 2u);       // The dense-agreement tolerance.
  EXPECT_EQ(o.adapt_budget, 0u);    // Unlimited refinement points.
  EXPECT_EQ(env::ParseAdaptTol("1"), 1u);
  EXPECT_EQ(env::ParseAdaptTol("64"), 64u);
  EXPECT_EQ(env::ParseAdaptBudget("0"), 0u);
  EXPECT_EQ(env::ParseAdaptBudget("12"), 12u);
}

TEST(EnvTest, AdaptKnobsRejectMalformedValuesNamingTheVariable) {
  for (const char* bad : {"abc", "0", "65", "-1", "2x", "1.5"}) {
    try {
      FakeEnv({{"AMDMB_ADAPT_TOL", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_ADAPT_TOL"),
                std::string::npos);
    }
  }
  for (const char* bad : {"abc", "-1", "9x", "0.5"}) {
    try {
      FakeEnv({{"AMDMB_ADAPT_BUDGET", bad}}).Parse();
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("AMDMB_ADAPT_BUDGET"),
                std::string::npos);
    }
  }
}

}  // namespace
}  // namespace amdmb
