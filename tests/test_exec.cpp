// Tests for the execution layer: thread pool, sweep executor, kernel
// cache, retry policies under injected faults, and the end-to-end
// determinism guarantee (a full ALU:Fetch sweep produces bit-identical
// KernelStats at 1 and 8 threads, with or without faults).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "exec/kernel_cache.hpp"
#include "exec/run_report.hpp"
#include "exec/sweep_executor.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "suite/alu_fetch.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb {
namespace {

using exec::CancelToken;
using exec::FailurePolicy;
using exec::KernelCache;
using exec::PointStatus;
using exec::RetryPolicy;
using exec::RunReport;
using exec::SweepError;
using exec::SweepExecutor;
using exec::ThreadPool;

// ---- ThreadPool --------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownWithEmptyQueueJoinsCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.ThreadCount(), 3u);
  // Destructor with nothing queued must not hang.
}

TEST(ThreadPoolTest, WorkersRunOnPoolThreads) {
  std::atomic<bool> on_pool{false};
  {
    ThreadPool pool(2);
    pool.Submit([&on_pool] { on_pool = exec::OnPoolThread(); });
  }
  EXPECT_TRUE(on_pool.load());
  EXPECT_FALSE(exec::OnPoolThread());
}

// ---- SweepExecutor -----------------------------------------------------

TEST(SweepExecutorTest, MapPreservesPointOrder) {
  const SweepExecutor executor(8);
  const std::vector<int> out =
      executor.Map(100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepExecutorTest, SingleThreadRunsInline) {
  const SweepExecutor executor(1);
  EXPECT_EQ(executor.ThreadCount(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  const auto ids = executor.Map(
      8, [caller](std::size_t) { return std::this_thread::get_id(); });
  for (const std::thread::id& id : ids) EXPECT_EQ(id, caller);
}

TEST(SweepExecutorTest, ParallelMapUsesMultipleThreads) {
  const SweepExecutor executor(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  executor.Map(64, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard lock(mutex);
    seen.insert(std::this_thread::get_id());
    return i;
  });
  // The calling thread participates; with 64 slow points at least one
  // pool worker must have claimed an index too.
  EXPECT_GE(seen.size(), 2u);
}

TEST(SweepExecutorTest, AggregatesEveryFailingPoint) {
  // A 50-point sweep failing at 3, 10, 17, ..., 45 must report all
  // seven failures, index-ordered — not just the lowest one.
  for (const unsigned threads : {1u, 8u}) {
    const SweepExecutor executor(threads);
    try {
      executor.Map(50, [](std::size_t i) -> int {
        if (i % 7 == 3) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
        return static_cast<int>(i);
      });
      FAIL() << "expected SweepError";
    } catch (const SweepError& e) {
      ASSERT_EQ(e.Failures().size(), 7u);
      for (std::size_t k = 0; k < e.Failures().size(); ++k) {
        EXPECT_EQ(e.Failures()[k].index, 3 + 7 * k);
        EXPECT_EQ(e.Failures()[k].message,
                  "boom at " + std::to_string(3 + 7 * k));
      }
      EXPECT_NE(std::string(e.what()).find("7 points"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("boom at 45"),
                std::string::npos);
    }
  }
}

TEST(SweepExecutorTest, NestedMapRunsInlineWithoutDeadlock) {
  const SweepExecutor executor(2);
  const auto out = executor.Map(4, [&](std::size_t outer) {
    const auto inner =
        executor.Map(4, [outer](std::size_t i) { return outer * 10 + i; });
    std::size_t sum = 0;
    for (const std::size_t v : inner) sum += v;
    return sum;
  });
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t outer = 0; outer < 4; ++outer) {
    EXPECT_EQ(out[outer], outer * 40 + 6);
  }
}

// ---- MapWithPolicy -----------------------------------------------------

RetryPolicy FastRetry(unsigned attempts,
                      FailurePolicy on_exhausted =
                          FailurePolicy::kSkipAndReport) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.backoff_base_ms = 0.0;  // No sleeping in tests.
  policy.on_exhausted = on_exhausted;
  return policy;
}

TEST(MapWithPolicyTest, RetriesTransientFailures) {
  const SweepExecutor executor(4);
  RunReport report;
  std::atomic<int> calls{0};
  const auto slots = executor.MapWithPolicy(
      10,
      [&](std::size_t i, unsigned attempt) -> int {
        calls.fetch_add(1);
        if (i == 4 && attempt < 3) {
          throw TransientError("flaky point");
        }
        return static_cast<int>(i * 10);
      },
      FastRetry(3), &report);
  ASSERT_EQ(slots.size(), 10u);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_TRUE(slots[i].has_value());
    EXPECT_EQ(*slots[i], static_cast<int>(i * 10));
  }
  EXPECT_EQ(calls.load(), 12);  // 9 clean points + 3 attempts at point 4.
  EXPECT_EQ(report.points.size(), 10u);
  EXPECT_EQ(report.CountOf(PointStatus::kOk), 9u);
  EXPECT_EQ(report.CountOf(PointStatus::kRetried), 1u);
  EXPECT_EQ(report.points[4].attempts, 3u);
  EXPECT_TRUE(report.points[4].error.empty());
}

TEST(MapWithPolicyTest, SkipAndReportDegradesGracefully) {
  const SweepExecutor executor(4);
  RunReport report;
  const auto slots = executor.MapWithPolicy(
      10,
      [&](std::size_t i, unsigned) -> int {
        if (i % 3 == 1) throw TransientError("always down");
        return static_cast<int>(i);
      },
      FastRetry(2), &report);
  ASSERT_EQ(slots.size(), 10u);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].has_value(), i % 3 != 1);
  }
  EXPECT_EQ(report.CountOf(PointStatus::kSkipped), 3u);
  EXPECT_EQ(report.points[1].attempts, 2u);
  EXPECT_EQ(report.points[1].error, "always down");
  EXPECT_FALSE(report.AllOk());
  EXPECT_EQ(report.Summary(), "7 ok, 3 skipped of 10 points");
  EXPECT_EQ(report.FailureLines().size(), 3u);
}

TEST(MapWithPolicyTest, FailFastThrowsAggregateAfterExhaustion) {
  const SweepExecutor executor(4);
  RunReport report;
  try {
    executor.MapWithPolicy(
        10,
        [&](std::size_t i, unsigned) -> int {
          if (i == 2 || i == 7) throw TransientError("dead point");
          return static_cast<int>(i);
        },
        FastRetry(2, FailurePolicy::kFailFast), &report);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    ASSERT_EQ(e.Failures().size(), 2u);
    EXPECT_EQ(e.Failures()[0].index, 2u);
    EXPECT_EQ(e.Failures()[1].index, 7u);
  }
  EXPECT_EQ(report.CountOf(PointStatus::kFailed), 2u);
}

TEST(MapWithPolicyTest, NonTransientErrorsAreNeverRetried) {
  const SweepExecutor executor(1);
  RunReport report;
  std::atomic<int> calls_at_3{0};
  try {
    executor.MapWithPolicy(
        5,
        [&](std::size_t i, unsigned) -> int {
          if (i == 3) {
            calls_at_3.fetch_add(1);
            throw std::logic_error("deterministic bug");
          }
          return static_cast<int>(i);
        },
        FastRetry(5), &report);  // Even under the skip policy.
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    ASSERT_EQ(e.Failures().size(), 1u);
    EXPECT_EQ(e.Failures()[0].message, "deterministic bug");
  }
  EXPECT_EQ(calls_at_3.load(), 1);  // No retry for a deterministic bug.
  EXPECT_EQ(report.points[3].status, PointStatus::kFailed);
}

TEST(MapWithPolicyTest, BackoffIsDeterministicCappedExponential) {
  RetryPolicy policy;
  policy.backoff_base_ms = 2.0;
  policy.backoff_cap_ms = 16.0;
  policy.jitter_seed = 5;
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    const double a = policy.BackoffMs(3, attempt);
    EXPECT_DOUBLE_EQ(a, policy.BackoffMs(3, attempt));  // Pure function.
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, policy.backoff_cap_ms);
  }
  // Different points draw different jitter.
  bool differs = false;
  for (std::size_t i = 0; i < 8 && !differs; ++i) {
    differs = policy.BackoffMs(i, 1) != policy.BackoffMs(i + 1, 1);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryPolicyTest, ParsesSpecAndRejectsGarbage) {
  const RetryPolicy p = RetryPolicy::Parse(
      "attempts=5,policy=fail-fast,backoff_ms=2,backoff_cap_ms=32,seed=9");
  EXPECT_EQ(p.max_attempts, 5u);
  EXPECT_EQ(p.on_exhausted, FailurePolicy::kFailFast);
  EXPECT_DOUBLE_EQ(p.backoff_base_ms, 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_cap_ms, 32.0);
  EXPECT_EQ(p.jitter_seed, 9u);
  EXPECT_THROW(RetryPolicy::Parse("attempts=0"), ConfigError);
  EXPECT_THROW(RetryPolicy::Parse("policy=maybe"), ConfigError);
  EXPECT_THROW(RetryPolicy::Parse("bogus=1"), ConfigError);
}

// ---- AMDMB_THREADS validation ------------------------------------------

TEST(ParseThreadCountTest, AcceptsPositiveIntegers) {
  EXPECT_EQ(env::ParseThreadCount("1"), 1u);
  EXPECT_EQ(env::ParseThreadCount("16"), 16u);
  EXPECT_EQ(env::ParseThreadCount("4096"), 4096u);
}

TEST(ParseThreadCountTest, RejectsInvalidValues) {
  EXPECT_THROW(env::ParseThreadCount(""), ConfigError);
  EXPECT_THROW(env::ParseThreadCount("abc"), ConfigError);
  EXPECT_THROW(env::ParseThreadCount("4x"), ConfigError);
  EXPECT_THROW(env::ParseThreadCount("-2"), ConfigError);
  EXPECT_THROW(env::ParseThreadCount("0"), ConfigError);
  EXPECT_THROW(env::ParseThreadCount("4097"), ConfigError);
  EXPECT_THROW(env::ParseThreadCount("99999999999999999999"), ConfigError);
  EXPECT_THROW(env::ParseThreadCount(" 4"), ConfigError);
}

// ---- KernelCache -------------------------------------------------------

suite::GenericSpec SpecWithAluOps(unsigned alu_ops) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = alu_ops;
  return spec;
}

TEST(KernelCacheTest, HitOnIdenticalKernel) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  const il::Kernel kernel = suite::GenerateGeneric(SpecWithAluOps(16));
  const auto first = cache.Compile(kernel, arch);
  const auto second = cache.Compile(kernel, arch);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(KernelCacheTest, NameDoesNotAffectTheKey) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  il::Kernel a = suite::GenerateGeneric(SpecWithAluOps(16));
  il::Kernel b = a;
  b.name = "same_content_other_name";
  cache.Compile(a, arch);
  cache.Compile(b, arch);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(KernelCacheTest, DifferentKernelsMiss) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  cache.Compile(suite::GenerateGeneric(SpecWithAluOps(16)), arch);
  cache.Compile(suite::GenerateGeneric(SpecWithAluOps(32)), arch);
  EXPECT_EQ(cache.Stats().misses, 2u);
  EXPECT_EQ(cache.Stats().hits, 0u);
}

TEST(KernelCacheTest, ArchsSharingCompileOptionsShareEntries) {
  // RV770 and RV870 have identical clause limits and VLIW shape, so the
  // compiled program is the same; RV670 too — only the *simulation*
  // differs between generations.
  KernelCache cache;
  const il::Kernel kernel = suite::GenerateGeneric(SpecWithAluOps(16));
  cache.Compile(kernel, MakeRV770());
  const auto stats_after_one = cache.Stats();
  cache.Compile(kernel, MakeRV870());
  EXPECT_EQ(cache.Stats().misses + cache.Stats().hits,
            stats_after_one.misses + stats_after_one.hits + 1);
}

TEST(KernelCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  KernelCache cache(/*capacity=*/2);
  const GpuArch arch = MakeRV770();
  const il::Kernel k1 = suite::GenerateGeneric(SpecWithAluOps(8));
  const il::Kernel k2 = suite::GenerateGeneric(SpecWithAluOps(16));
  const il::Kernel k3 = suite::GenerateGeneric(SpecWithAluOps(24));
  cache.Compile(k1, arch);
  cache.Compile(k2, arch);
  cache.Compile(k1, arch);  // k1 now more recent than k2.
  cache.Compile(k3, arch);  // Evicts k2.
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  cache.Compile(k1, arch);  // Still cached.
  EXPECT_EQ(cache.Stats().hits, 2u);
  cache.Compile(k2, arch);  // Was evicted -> recompiles.
  EXPECT_EQ(cache.Stats().misses, 4u);
}

TEST(KernelCacheTest, ThreadSafeUnderConcurrentMisses) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  const SweepExecutor executor(8);
  const auto programs = executor.Map(32, [&](std::size_t i) {
    return cache.Compile(
        suite::GenerateGeneric(SpecWithAluOps(8 + (i % 4) * 8)), arch);
  });
  for (const auto& p : programs) EXPECT_NE(p, nullptr);
  EXPECT_EQ(cache.Size(), 4u);
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 32u);
  // Racing misses on one key may compile twice, but never more often
  // than once per worker.
  EXPECT_LE(stats.misses, 4u * 8u);
}

// ---- End-to-end determinism -------------------------------------------

TEST(ExecDeterminismTest, AluFetchSweepBitIdenticalAcrossThreadCounts) {
  const GpuArch arch = MakeRV770();
  suite::AluFetchConfig config;
  config.domain = Domain{256, 256};  // Full ratio sweep, small domain.

  const SweepExecutor serial(1);
  const SweepExecutor wide(8);

  suite::AluFetchConfig serial_config = config;
  serial_config.executor = &serial;
  suite::AluFetchConfig wide_config = config;
  wide_config.executor = &wide;

  const suite::Runner runner(arch);
  const suite::AluFetchResult a = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, serial_config);
  const suite::AluFetchResult b = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, wide_config);

  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.crossover, b.crossover);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].ratio, b.points[i].ratio);
    EXPECT_EQ(a.points[i].m.stats, b.points[i].m.stats)
        << "KernelStats diverge at point " << i;
  }
  EXPECT_TRUE(a.report.AllOk());
  EXPECT_TRUE(a.report.SameOutcomes(b.report));
}

// ---- Graceful degradation under injected faults ------------------------

TEST(ExecFaultResilienceTest, AluFetchSweepDegradesDeterministically) {
  const GpuArch arch = MakeRV770();
  suite::AluFetchConfig config;
  config.domain = Domain{256, 256};
  config.retry.max_attempts = 2;
  config.retry.backoff_base_ms = 0.0;

  const SweepExecutor serial(1);
  const SweepExecutor wide(8);

  // Fault-free reference sweep.
  suite::AluFetchConfig clean_config = config;
  clean_config.executor = &serial;
  const suite::Runner runner(arch);
  const suite::AluFetchResult clean = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, clean_config);

  const fault::ScopedFaultInjector scoped("launch:0.3,seed=11");
  suite::AluFetchConfig serial_config = config;
  serial_config.executor = &serial;
  suite::AluFetchConfig wide_config = config;
  wide_config.executor = &wide;

  const suite::AluFetchResult a = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, serial_config);
  const suite::AluFetchResult b = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, wide_config);

  // The sweep completed despite the faults, and the fault schedule (and
  // hence the RunReport) is identical at any thread count.
  EXPECT_FALSE(a.report.AllOk()) << "fault rate 0.3 should degrade "
                                    "at least one of 32 points";
  EXPECT_TRUE(a.report.SameOutcomes(b.report)) << "fault schedule must "
                                                  "not depend on threads";
  EXPECT_EQ(a.report.points.size(), clean.points.size());

  // Surviving points are byte-identical between widths...
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].ratio, b.points[i].ratio);
    EXPECT_EQ(a.points[i].m.stats, b.points[i].m.stats);
  }
  // ...and byte-identical to the fault-free run (faults never corrupt a
  // measurement — a point either fails or computes the true value).
  for (const suite::AluFetchPoint& p : a.points) {
    bool matched = false;
    for (const suite::AluFetchPoint& ref : clean.points) {
      if (ref.ratio == p.ratio) {
        EXPECT_EQ(p.m.stats, ref.m.stats);
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "no clean counterpart for ratio " << p.ratio;
  }

  // Two identical faulted runs agree exactly (fixed seed -> identical
  // RunReports, acceptance criterion).
  const suite::AluFetchResult again = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, serial_config);
  EXPECT_TRUE(a.report.SameOutcomes(again.report));
}

TEST(ExecFaultResilienceTest, HangInjectionResolvesWithoutWedgingThePool) {
  // Every launch hangs; with the skip policy the sweep must still end,
  // reporting every point as skipped with the timeout error.
  const fault::ScopedFaultInjector scoped("hang:1,seed=2");
  const GpuArch arch = MakeRV770();
  suite::AluFetchConfig config;
  config.domain = Domain{256, 256};
  config.ratio_step = 2.0;  // 4 points is plenty.
  config.retry.max_attempts = 2;
  config.retry.backoff_base_ms = 0.0;
  const SweepExecutor wide(4);
  config.executor = &wide;

  const suite::Runner runner(arch);
  const suite::AluFetchResult r = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, config);
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.report.CountOf(exec::PointStatus::kSkipped),
            r.report.points.size());
  for (const exec::PointOutcome& p : r.report.points) {
    EXPECT_NE(p.error.find("kCalTimeout"), std::string::npos) << p.error;
  }
  // The pool is still usable afterwards.
  const auto out = wide.Map(8, [](std::size_t i) { return i; });
  EXPECT_EQ(out.size(), 8u);
}


TEST(MapWithPolicyTest, CancelTokenSkipsPointsNotYetStarted) {
  // Serial executor: points run strictly in index order, so cancelling
  // during point 2 deterministically skips every later point.
  const SweepExecutor executor(1);
  CancelToken cancel;
  RunReport report;
  const auto slots = executor.MapWithPolicy(
      6,
      [&](std::size_t i, unsigned) -> int {
        if (i == 2) cancel.Cancel();
        return static_cast<int>(i);
      },
      FastRetry(3), &report, &cancel);
  ASSERT_EQ(slots.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(slots[i].has_value());
  for (std::size_t i = 3; i < 6; ++i) EXPECT_FALSE(slots[i].has_value());
  EXPECT_EQ(report.CountOf(PointStatus::kOk), 3u);
  EXPECT_EQ(report.CountOf(PointStatus::kSkipped), 3u);
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(report.points[i].status, PointStatus::kSkipped);
    EXPECT_EQ(report.points[i].attempts, 0u);  // Never started.
    EXPECT_EQ(report.points[i].error, "cancelled");
  }
}

TEST(MapWithPolicyTest, CancelledSweepStillReturnsWellFormedResults) {
  // A token that fired before the sweep began skips everything —
  // partial-result plumbing (sinks, reports) must still see one outcome
  // per point.
  const SweepExecutor executor(1);
  CancelToken cancel;
  cancel.Cancel();
  RunReport report;
  const auto slots = executor.MapWithPolicy(
      4, [](std::size_t i, unsigned) { return static_cast<int>(i); },
      FastRetry(1), &report, &cancel);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(report.points.size(), 4u);
  EXPECT_EQ(report.CountOf(PointStatus::kSkipped), 4u);
}

}  // namespace
}  // namespace amdmb
