// Tests for the execution layer: thread pool, sweep executor, kernel
// cache, and the end-to-end determinism guarantee (a full ALU:Fetch
// sweep produces bit-identical KernelStats at 1 and 8 threads).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/kernel_cache.hpp"
#include "exec/sweep_executor.hpp"
#include "exec/thread_pool.hpp"
#include "suite/alu_fetch.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb {
namespace {

using exec::KernelCache;
using exec::SweepExecutor;
using exec::ThreadPool;

// ---- ThreadPool --------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownWithEmptyQueueJoinsCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.ThreadCount(), 3u);
  // Destructor with nothing queued must not hang.
}

TEST(ThreadPoolTest, WorkersRunOnPoolThreads) {
  std::atomic<bool> on_pool{false};
  {
    ThreadPool pool(2);
    pool.Submit([&on_pool] { on_pool = exec::OnPoolThread(); });
  }
  EXPECT_TRUE(on_pool.load());
  EXPECT_FALSE(exec::OnPoolThread());
}

// ---- SweepExecutor -----------------------------------------------------

TEST(SweepExecutorTest, MapPreservesPointOrder) {
  const SweepExecutor executor(8);
  const std::vector<int> out =
      executor.Map(100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepExecutorTest, SingleThreadRunsInline) {
  const SweepExecutor executor(1);
  EXPECT_EQ(executor.ThreadCount(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  const auto ids = executor.Map(
      8, [caller](std::size_t) { return std::this_thread::get_id(); });
  for (const std::thread::id& id : ids) EXPECT_EQ(id, caller);
}

TEST(SweepExecutorTest, ParallelMapUsesMultipleThreads) {
  const SweepExecutor executor(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  executor.Map(64, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard lock(mutex);
    seen.insert(std::this_thread::get_id());
    return i;
  });
  // The calling thread participates; with 64 slow points at least one
  // pool worker must have claimed an index too.
  EXPECT_GE(seen.size(), 2u);
}

TEST(SweepExecutorTest, RethrowsLowestFailingIndex) {
  const SweepExecutor executor(8);
  try {
    executor.Map(50, [](std::size_t i) -> int {
      if (i % 7 == 3) {  // Fails at 3, 10, 17, ... lowest is 3.
        throw std::runtime_error("point " + std::to_string(i));
      }
      return static_cast<int>(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point 3");
  }
}

TEST(SweepExecutorTest, NestedMapRunsInlineWithoutDeadlock) {
  const SweepExecutor executor(2);
  const auto out = executor.Map(4, [&](std::size_t outer) {
    const auto inner =
        executor.Map(4, [outer](std::size_t i) { return outer * 10 + i; });
    std::size_t sum = 0;
    for (const std::size_t v : inner) sum += v;
    return sum;
  });
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t outer = 0; outer < 4; ++outer) {
    EXPECT_EQ(out[outer], outer * 40 + 6);
  }
}

// ---- KernelCache -------------------------------------------------------

suite::GenericSpec SpecWithAluOps(unsigned alu_ops) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = alu_ops;
  return spec;
}

TEST(KernelCacheTest, HitOnIdenticalKernel) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  const il::Kernel kernel = suite::GenerateGeneric(SpecWithAluOps(16));
  const auto first = cache.Compile(kernel, arch);
  const auto second = cache.Compile(kernel, arch);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(KernelCacheTest, NameDoesNotAffectTheKey) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  il::Kernel a = suite::GenerateGeneric(SpecWithAluOps(16));
  il::Kernel b = a;
  b.name = "same_content_other_name";
  cache.Compile(a, arch);
  cache.Compile(b, arch);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(KernelCacheTest, DifferentKernelsMiss) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  cache.Compile(suite::GenerateGeneric(SpecWithAluOps(16)), arch);
  cache.Compile(suite::GenerateGeneric(SpecWithAluOps(32)), arch);
  EXPECT_EQ(cache.Stats().misses, 2u);
  EXPECT_EQ(cache.Stats().hits, 0u);
}

TEST(KernelCacheTest, ArchsSharingCompileOptionsShareEntries) {
  // RV770 and RV870 have identical clause limits and VLIW shape, so the
  // compiled program is the same; RV670 too — only the *simulation*
  // differs between generations.
  KernelCache cache;
  const il::Kernel kernel = suite::GenerateGeneric(SpecWithAluOps(16));
  cache.Compile(kernel, MakeRV770());
  const auto stats_after_one = cache.Stats();
  cache.Compile(kernel, MakeRV870());
  EXPECT_EQ(cache.Stats().misses + cache.Stats().hits,
            stats_after_one.misses + stats_after_one.hits + 1);
}

TEST(KernelCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  KernelCache cache(/*capacity=*/2);
  const GpuArch arch = MakeRV770();
  const il::Kernel k1 = suite::GenerateGeneric(SpecWithAluOps(8));
  const il::Kernel k2 = suite::GenerateGeneric(SpecWithAluOps(16));
  const il::Kernel k3 = suite::GenerateGeneric(SpecWithAluOps(24));
  cache.Compile(k1, arch);
  cache.Compile(k2, arch);
  cache.Compile(k1, arch);  // k1 now more recent than k2.
  cache.Compile(k3, arch);  // Evicts k2.
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  cache.Compile(k1, arch);  // Still cached.
  EXPECT_EQ(cache.Stats().hits, 2u);
  cache.Compile(k2, arch);  // Was evicted -> recompiles.
  EXPECT_EQ(cache.Stats().misses, 4u);
}

TEST(KernelCacheTest, ThreadSafeUnderConcurrentMisses) {
  KernelCache cache;
  const GpuArch arch = MakeRV770();
  const SweepExecutor executor(8);
  const auto programs = executor.Map(32, [&](std::size_t i) {
    return cache.Compile(
        suite::GenerateGeneric(SpecWithAluOps(8 + (i % 4) * 8)), arch);
  });
  for (const auto& p : programs) EXPECT_NE(p, nullptr);
  EXPECT_EQ(cache.Size(), 4u);
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 32u);
  // Racing misses on one key may compile twice, but never more often
  // than once per worker.
  EXPECT_LE(stats.misses, 4u * 8u);
}

// ---- End-to-end determinism -------------------------------------------

TEST(ExecDeterminismTest, AluFetchSweepBitIdenticalAcrossThreadCounts) {
  const GpuArch arch = MakeRV770();
  suite::AluFetchConfig config;
  config.domain = Domain{256, 256};  // Full ratio sweep, small domain.

  const SweepExecutor serial(1);
  const SweepExecutor wide(8);

  suite::AluFetchConfig serial_config = config;
  serial_config.executor = &serial;
  suite::AluFetchConfig wide_config = config;
  wide_config.executor = &wide;

  const suite::Runner runner(arch);
  const suite::AluFetchResult a = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, serial_config);
  const suite::AluFetchResult b = RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, wide_config);

  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.crossover, b.crossover);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].ratio, b.points[i].ratio);
    EXPECT_EQ(a.points[i].m.stats, b.points[i].m.stats)
        << "KernelStats diverge at point " << i;
  }
}

}  // namespace
}  // namespace amdmb
