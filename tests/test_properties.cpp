// Property-based invariants of the whole pipeline, swept over a grid of
// kernel shapes, data types, memory paths, shader modes, and GPUs.
// Everything here must hold for *any* kernel the suite can generate.
#include <gtest/gtest.h>

#include <sstream>

#include "arch/occupancy.hpp"
#include "cal/interp.hpp"
#include "common/status.hpp"
#include "compiler/compiler.hpp"
#include "mem/tiling.hpp"
#include "sim/gpu.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb {
namespace {

struct PropertyCase {
  std::string arch;
  ShaderMode mode;
  DataType type;
  ReadPath read;
  WritePath write;
  unsigned inputs;
  unsigned outputs;
  unsigned alu_ops;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::ostringstream os;
  os << c.arch << "_" << ToString(c.mode) << "_" << ToString(c.type) << "_r"
     << ToString(c.read) << "_w" << ToString(c.write) << "_i" << c.inputs
     << "_o" << c.outputs << "_a" << c.alu_ops;
  return os.str();
}

std::vector<PropertyCase> BuildGrid() {
  std::vector<PropertyCase> cases;
  for (const char* arch : {"RV670", "RV770", "RV870"}) {
    for (const ShaderMode mode : {ShaderMode::kPixel, ShaderMode::kCompute}) {
      if (mode == ShaderMode::kCompute && std::string(arch) == "RV670") {
        continue;
      }
      for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
        for (const ReadPath read : {ReadPath::kTexture, ReadPath::kGlobal}) {
          // Compute mode must write global; pixel mode exercises both.
          const WritePath write = mode == ShaderMode::kCompute
                                      ? WritePath::kGlobal
                                      : (type == DataType::kFloat
                                             ? WritePath::kStream
                                             : WritePath::kGlobal);
          for (const auto& [inputs, outputs, alu] :
               {std::tuple{2u, 1u, 4u}, std::tuple{16u, 1u, 64u},
                std::tuple{8u, 4u, 32u}}) {
            cases.push_back(PropertyCase{arch, mode, type, read, write,
                                         inputs, outputs, alu});
          }
        }
      }
    }
  }
  return cases;
}

class PipelineProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  il::Kernel MakeKernel() const {
    const PropertyCase& c = GetParam();
    suite::GenericSpec spec;
    spec.inputs = c.inputs;
    spec.outputs = c.outputs;
    spec.alu_ops = c.alu_ops;
    spec.type = c.type;
    spec.read_path = c.read;
    spec.write_path = c.write;
    return suite::GenerateGeneric(spec);
  }
};

TEST_P(PipelineProperty, StaticCountsSurviveCompilation) {
  const PropertyCase& c = GetParam();
  const GpuArch arch = ArchByName(c.arch);
  const il::Kernel kernel = MakeKernel();
  const isa::Program program = compiler::Compile(kernel, arch);

  EXPECT_EQ(program.stats.alu_ops, kernel.CountAluOps());
  EXPECT_EQ(program.stats.tex_fetches + program.stats.global_reads,
            kernel.CountFetchOps());
  EXPECT_EQ(program.stats.writes, kernel.CountWriteOps());
  // Dependent chains never pack: bundles == ops.
  EXPECT_EQ(program.stats.alu_bundles, program.stats.alu_ops);
  EXPECT_GE(program.gpr_count, 1u);
  EXPECT_LE(program.gpr_count, c.inputs + 2);
  // Clause capacity limits hold.
  for (const isa::Clause& clause : program.clauses) {
    EXPECT_LE(clause.fetches.size(), arch.max_tex_fetches_per_clause);
    EXPECT_LE(clause.bundles.size(), arch.max_alu_bundles_per_clause);
  }
  EXPECT_FALSE(isa::Disassemble(program).empty());
}

TEST_P(PipelineProperty, FunctionalEquivalenceIlVsIsa) {
  const PropertyCase& c = GetParam();
  const il::Kernel kernel = MakeKernel();
  const isa::Program program =
      compiler::Compile(kernel, ArchByName(c.arch));
  const Domain domain{4, 4};
  const cal::FuncResult a = cal::RunIl(kernel, domain);
  const cal::FuncResult b = cal::RunIsa(program, domain);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    for (std::size_t i = 0; i < a.outputs[o].size(); ++i) {
      for (int comp = 0; comp < 4; ++comp) {
        ASSERT_EQ(a.outputs[o][i][comp], b.outputs[o][i][comp]);
      }
    }
  }
}

TEST_P(PipelineProperty, SimulationInvariants) {
  const PropertyCase& c = GetParam();
  const GpuArch arch = ArchByName(c.arch);
  const il::Kernel kernel = MakeKernel();
  const isa::Program program = compiler::Compile(kernel, arch);
  sim::Gpu gpu(arch);
  sim::LaunchConfig launch;
  launch.domain = Domain{128, 128};
  launch.mode = c.mode;
  launch.repetitions = 1;
  const sim::KernelStats stats = gpu.Execute(program, launch);

  // Time and utilisation sanity.
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GE(stats.alu_utilization, 0.0);
  EXPECT_LE(stats.alu_utilization, 1.0);
  EXPECT_GE(stats.fetch_utilization, 0.0);
  EXPECT_LE(stats.fetch_utilization, 1.0);
  EXPECT_GE(stats.memory_utilization, 0.0);
  EXPECT_LE(stats.memory_utilization, 1.0 + 1e-9);

  // Occupancy bookkeeping.
  EXPECT_EQ(stats.gpr_count, program.gpr_count);
  EXPECT_EQ(stats.resident_wavefronts,
            WavefrontsPerSimd(arch, program.gpr_count));
  EXPECT_EQ(stats.wavefront_count,
            launch.domain.ThreadCount() / arch.wavefront_size);

  // Exact traffic accounting on the write side: every output element is
  // written exactly once.
  const Bytes output_bytes =
      static_cast<Bytes>(c.outputs) * launch.domain.ThreadCount() *
      ElementBytes(c.type);
  EXPECT_EQ(stats.dram.write_bytes, output_bytes);

  // Read-side lower bound: with texture reads, every line of every input
  // is filled at least once (no reuse can beat compulsory misses).
  if (c.read == ReadPath::kTexture) {
    const mem::TileShape tile =
        mem::TileFor(arch.l1.line_bytes, ElementBytes(c.type));
    const Bytes lines_per_input =
        static_cast<Bytes>((launch.domain.width + tile.width - 1) /
                           tile.width) *
        ((launch.domain.height + tile.height - 1) / tile.height);
    EXPECT_GE(stats.dram.read_bytes,
              lines_per_input * arch.l1.line_bytes * c.inputs);
    EXPECT_GT(stats.cache.hits + stats.cache.misses, 0u);
  } else {
    // Uncached global reads: exactly the stream bytes, once per launch.
    EXPECT_EQ(stats.dram.read_bytes,
              static_cast<Bytes>(c.inputs) * launch.domain.ThreadCount() *
                  ElementBytes(c.type));
  }

  // Determinism.
  const sim::KernelStats again = gpu.Execute(program, launch);
  EXPECT_EQ(again.cycles, stats.cycles);
  EXPECT_EQ(again.dram.read_bytes, stats.dram.read_bytes);
}

// Repetition scaling is exactly linear.
TEST_P(PipelineProperty, RepetitionScaling) {
  const PropertyCase& c = GetParam();
  const GpuArch arch = ArchByName(c.arch);
  const isa::Program program = compiler::Compile(MakeKernel(), arch);
  sim::Gpu gpu(arch);
  sim::LaunchConfig launch;
  launch.domain = Domain{128, 128};
  launch.mode = c.mode;
  launch.repetitions = 1;
  const double t1 = gpu.Execute(program, launch).seconds;
  launch.repetitions = 5000;
  const double t5000 = gpu.Execute(program, launch).seconds;
  EXPECT_NEAR(t5000 / t1, 5000.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Grid, PipelineProperty,
                         ::testing::ValuesIn(BuildGrid()), CaseName);

}  // namespace
}  // namespace amdmb
