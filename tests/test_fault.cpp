// Fault-injection tests: spec parsing, schedule determinism, the CAL
// error mapping at each runtime boundary, and the watchdog cycle budget
// that turns a hung simulation into kCalTimeout.
#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <vector>

#include "cal/cal.hpp"
#include "cal/cal_result.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"
#include "sim/gpu.hpp"
#include "suite/kernelgen.hpp"
#include "suite/microbench.hpp"

namespace amdmb {
namespace {

using fault::FaultInjector;
using fault::FaultSite;
using fault::FaultSpec;
using fault::ScopedFaultInjector;

// ---- FaultSpec parsing -------------------------------------------------

TEST(FaultSpecTest, ParsesFullSpec) {
  const FaultSpec spec =
      FaultSpec::Parse("compile:0.01,launch:0.02,hang:0.001,seed=42");
  EXPECT_DOUBLE_EQ(spec.compile, 0.01);
  EXPECT_DOUBLE_EQ(spec.launch, 0.02);
  EXPECT_DOUBLE_EQ(spec.hang, 0.001);
  EXPECT_DOUBLE_EQ(spec.readback, 0.0);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_TRUE(spec.AnyEnabled());
}

TEST(FaultSpecTest, AcceptsEqualsSeparatorAndReadback) {
  const FaultSpec spec = FaultSpec::Parse("readback=0.5");
  EXPECT_DOUBLE_EQ(spec.readback, 0.5);
  EXPECT_EQ(spec.seed, 0u);
}

TEST(FaultSpecTest, ParsesFleetWorkerSites) {
  const FaultSpec spec =
      FaultSpec::Parse("worker_crash:0.02,worker_hang=0.01,seed=7");
  EXPECT_DOUBLE_EQ(spec.worker_crash, 0.02);
  EXPECT_DOUBLE_EQ(spec.worker_hang, 0.01);
  EXPECT_TRUE(spec.AnyEnabled());
  EXPECT_DOUBLE_EQ(spec.Probability(FaultSite::kWorkerCrash), 0.02);
  EXPECT_DOUBLE_EQ(spec.Probability(FaultSite::kWorkerHang), 0.01);
  EXPECT_EQ(ToString(FaultSite::kWorkerCrash), "worker_crash");
  EXPECT_EQ(ToString(FaultSite::kWorkerHang), "worker_hang");
  // The heartbeat schedule is per-site: the same key draws independent
  // decisions for crash and hang, and stays deterministic per seed.
  FaultSpec both;
  both.worker_crash = 0.5;
  both.worker_hang = 0.5;
  both.seed = 11;
  const FaultInjector a(both);
  const FaultInjector b(both);
  for (int i = 0; i < 64; ++i) {
    const std::string key = "w1#" + std::to_string(i);
    EXPECT_EQ(a.ShouldFail(FaultSite::kWorkerCrash, key),
              b.ShouldFail(FaultSite::kWorkerCrash, key));
    EXPECT_EQ(a.ShouldFail(FaultSite::kWorkerHang, key),
              b.ShouldFail(FaultSite::kWorkerHang, key));
  }
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultSpec::Parse("warp:0.1"), ConfigError);
  EXPECT_THROW(FaultSpec::Parse("launch:1.5"), ConfigError);
  EXPECT_THROW(FaultSpec::Parse("launch:-0.1"), ConfigError);
  EXPECT_THROW(FaultSpec::Parse("launch"), ConfigError);
  EXPECT_THROW(FaultSpec::Parse("launch:abc"), ConfigError);
  EXPECT_THROW(FaultSpec::Parse(","), ConfigError);
}

// ---- Schedule determinism ----------------------------------------------

std::vector<bool> Schedule(const FaultInjector& injector, FaultSite site,
                           std::size_t n) {
  std::vector<bool> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        injector.ShouldFail(site, "point_" + std::to_string(i) + "#1"));
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.launch = 0.3;
  spec.seed = 42;
  const FaultInjector a(spec);
  const FaultInjector b(spec);
  EXPECT_EQ(Schedule(a, FaultSite::kLaunch, 1000),
            Schedule(b, FaultSite::kLaunch, 1000));
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultSpec a_spec;
  a_spec.launch = 0.3;
  a_spec.seed = 42;
  FaultSpec b_spec = a_spec;
  b_spec.seed = 43;
  EXPECT_NE(Schedule(FaultInjector(a_spec), FaultSite::kLaunch, 1000),
            Schedule(FaultInjector(b_spec), FaultSite::kLaunch, 1000));
}

TEST(FaultInjectorTest, RetriesRollFreshDecisions) {
  FaultSpec spec;
  spec.launch = 0.5;
  spec.seed = 7;
  const FaultInjector injector(spec);
  // The attempt number is part of the key, so across many points the
  // attempt-2 decision must disagree with attempt 1 at least once.
  bool differs = false;
  for (int i = 0; i < 64 && !differs; ++i) {
    std::string point = "p";  // Built up to dodge a GCC 12 -Wrestrict
    point += std::to_string(i);  // false positive on chained operator+.
    differs = injector.ShouldFail(FaultSite::kLaunch, point + "#1") !=
              injector.ShouldFail(FaultSite::kLaunch, point + "#2");
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, ZeroNeverFiresOneAlwaysFires) {
  FaultSpec spec;
  spec.launch = 1.0;
  spec.compile = 0.0;
  const FaultInjector injector(spec);
  for (std::size_t i = 0; i < 100; ++i) {
    std::string key = "k";  // See RetriesRollFreshDecisions: -Wrestrict.
    key += std::to_string(i);
    key += "#1";
    EXPECT_TRUE(injector.ShouldFail(FaultSite::kLaunch, key));
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kCompile, key));
  }
}

TEST(FaultInjectorTest, FiresAtRoughlyTheConfiguredRate) {
  FaultSpec spec;
  spec.launch = 0.25;
  spec.seed = 1;
  const FaultInjector injector(spec);
  const std::vector<bool> schedule =
      Schedule(injector, FaultSite::kLaunch, 4000);
  std::size_t fired = 0;
  for (const bool f : schedule) fired += f ? 1 : 0;
  EXPECT_GT(fired, 4000u * 25 / 100 / 2);
  EXPECT_LT(fired, 4000u * 25 / 100 * 2);
  const auto stats = injector.Stats();
  const auto site = static_cast<std::size_t>(FaultSite::kLaunch);
  EXPECT_EQ(stats.checks[site], 4000u);
  EXPECT_EQ(stats.injected[site], fired);
}

// ---- Scoped install ----------------------------------------------------

TEST(ScopedFaultInjectorTest, InstallsAndRestores) {
  const fault::FaultInjector* before = fault::GlobalInjector();
  {
    ScopedFaultInjector scoped("launch:1,seed=3");
    ASSERT_NE(fault::GlobalInjector(), nullptr);
    EXPECT_DOUBLE_EQ(fault::GlobalInjector()->Spec().launch, 1.0);
    {
      ScopedFaultInjector inner("compile:1");
      EXPECT_DOUBLE_EQ(fault::GlobalInjector()->Spec().compile, 1.0);
    }
    EXPECT_DOUBLE_EQ(fault::GlobalInjector()->Spec().launch, 1.0);
  }
  EXPECT_EQ(fault::GlobalInjector(), before);
}

// ---- CAL error mapping -------------------------------------------------

TEST(CalErrorTest, CarriesCodeStagePointAttempt) {
  ScopedFaultInjector scoped("launch:1");
  try {
    cal::CheckInjectedFault(FaultSite::kLaunch, "alufetch_r0.25", 2);
    FAIL() << "expected CalError";
  } catch (const cal::CalError& e) {
    EXPECT_EQ(e.Code(), cal::CalResult::kCalLaunchFailed);
    EXPECT_EQ(e.Stage(), "launch");
    EXPECT_EQ(e.Point(), "alufetch_r0.25");
    EXPECT_EQ(e.Attempt(), 2u);
    EXPECT_NE(std::string(e.what()).find("alufetch_r0.25"),
              std::string::npos);
  }
}

TEST(CalErrorTest, HangMapsToTimeout) {
  ScopedFaultInjector scoped("hang:1");
  try {
    cal::CheckInjectedFault(FaultSite::kHang, "p", 1);
    FAIL() << "expected CalError";
  } catch (const cal::CalError& e) {
    EXPECT_EQ(e.Code(), cal::CalResult::kCalTimeout);
  }
}

TEST(CalErrorTest, NoInjectorNoThrow) {
  // Outside any scoped install (and with AMDMB_FAULTS unset in the test
  // environment) the check must be a no-op.
  EXPECT_NO_THROW(cal::CheckInjectedFault(FaultSite::kLaunch, "p", 1));
}

TEST(CalErrorTest, IsTransient) {
  static_assert(std::is_base_of_v<TransientError, cal::CalError>);
  static_assert(std::is_base_of_v<TransientError, sim::WatchdogTimeout>);
}

// ---- Watchdog ----------------------------------------------------------

TEST(WatchdogTest, TinyBudgetTripsOnGpuExecute) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 32;
  const cal::Device device = cal::Device::Open("4870");
  cal::Context ctx(device);
  const cal::Module module = ctx.Compile(suite::GenerateGeneric(spec));
  sim::LaunchConfig config;
  config.domain = Domain{256, 256};
  config.watchdog_cycles = 1;  // Any real launch takes far longer.
  const sim::Gpu gpu(device.Info());
  try {
    gpu.Execute(module.Program(), config);
    FAIL() << "expected WatchdogTimeout";
  } catch (const sim::WatchdogTimeout& e) {
    EXPECT_EQ(e.Budget(), 1u);
    EXPECT_GT(e.Reached(), e.Budget());
  }
}

TEST(WatchdogTest, CalRunSurfacesTimeoutAsCalError) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 32;
  cal::Context ctx(cal::Device::Open("4870"));
  const cal::Module module = ctx.Compile(suite::GenerateGeneric(spec));
  sim::LaunchConfig config;
  config.domain = Domain{256, 256};
  config.watchdog_cycles = 1;
  try {
    ctx.Run(module, config);
    FAIL() << "expected CalError";
  } catch (const cal::CalError& e) {
    EXPECT_EQ(e.Code(), cal::CalResult::kCalTimeout);
  }
}

TEST(WatchdogTest, RunnerMeasureSurfacesTimeoutAsCalError) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 32;
  const suite::Runner runner(MakeRV770());
  sim::LaunchConfig config;
  config.domain = Domain{256, 256};
  config.watchdog_cycles = 1;
  try {
    runner.Measure(suite::GenerateGeneric(spec), config, {"wd_point", 1});
    FAIL() << "expected CalError";
  } catch (const cal::CalError& e) {
    EXPECT_EQ(e.Code(), cal::CalResult::kCalTimeout);
    EXPECT_EQ(e.Point(), "wd_point");
  }
}

TEST(WatchdogTest, GenerousBudgetDoesNotTrip) {
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 32;
  const suite::Runner runner(MakeRV770());
  sim::LaunchConfig config;
  config.domain = Domain{64, 64};
  config.repetitions = 1;
  sim::LaunchConfig unbounded = config;
  const suite::Measurement a =
      runner.Measure(suite::GenerateGeneric(spec), unbounded);
  config.watchdog_cycles = a.stats.cycles * 10;
  const suite::Measurement b =
      runner.Measure(suite::GenerateGeneric(spec), config);
  EXPECT_EQ(a.stats, b.stats);  // The budget must not perturb results.
}

// ---- Injected hang resolves via the CAL timeout path -------------------

TEST(InjectedHangTest, ResolvesAsTimeoutWithoutRunningForever) {
  ScopedFaultInjector scoped("hang:1,seed=9");
  suite::GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 32;
  const suite::Runner runner(MakeRV770());
  sim::LaunchConfig config;
  config.domain = Domain{64, 64};
  config.repetitions = 1;
  try {
    runner.Measure(suite::GenerateGeneric(spec), config, {"hang_point", 1});
    FAIL() << "expected CalError";
  } catch (const cal::CalError& e) {
    EXPECT_EQ(e.Code(), cal::CalResult::kCalTimeout);
  }
}

}  // namespace
}  // namespace amdmb
