// Unit tests for src/sim dispatch and resource layouts.
#include <gtest/gtest.h>

#include <set>

#include "arch/gpu_arch.hpp"
#include "common/status.hpp"
#include "sim/dispatch.hpp"
#include "sim/wavefront.hpp"

namespace amdmb::sim {
namespace {

TEST(DispatchTest, PixelModeWalksEightByEightTiles) {
  const auto waves = DispatchPixel(Domain{32, 16}, 64);
  ASSERT_EQ(waves.size(), 8u);  // 4x2 tiles.
  EXPECT_EQ(waves[0], (WaveRect{0, 0, 8, 8}));
  EXPECT_EQ(waves[1], (WaveRect{8, 0, 8, 8}));   // Row-major tile order.
  EXPECT_EQ(waves[4], (WaveRect{0, 8, 8, 8}));
  for (const WaveRect& w : waves) EXPECT_EQ(w.ThreadCount(), 64u);
}

TEST(DispatchTest, PixelModeRejectsUnalignedDomain) {
  EXPECT_THROW(DispatchPixel(Domain{30, 16}, 64), ConfigError);
  EXPECT_THROW(DispatchPixel(Domain{32, 12}, 64), ConfigError);
}

TEST(DispatchTest, Compute64x1StripsAreLinear) {
  const auto waves = DispatchCompute(Domain{128, 2}, BlockShape{64, 1}, 64);
  ASSERT_EQ(waves.size(), 4u);
  EXPECT_EQ(waves[0], (WaveRect{0, 0, 64, 1}));
  EXPECT_EQ(waves[1], (WaveRect{64, 0, 64, 1}));
  EXPECT_EQ(waves[2], (WaveRect{0, 1, 64, 1}));
}

TEST(DispatchTest, Compute4x16Blocks) {
  const auto waves = DispatchCompute(Domain{8, 32}, BlockShape{4, 16}, 64);
  ASSERT_EQ(waves.size(), 4u);
  EXPECT_EQ(waves[0], (WaveRect{0, 0, 4, 16}));
  EXPECT_EQ(waves[1], (WaveRect{4, 0, 4, 16}));
  EXPECT_EQ(waves[2], (WaveRect{0, 16, 4, 16}));
}

TEST(DispatchTest, ComputeRejectsBadBlocks) {
  // Block must hold exactly one wavefront.
  EXPECT_THROW(DispatchCompute(Domain{64, 64}, BlockShape{32, 1}, 64),
               ConfigError);
  // Domain must divide by the block (pad-to-64 rule).
  EXPECT_THROW(DispatchCompute(Domain{96, 1}, BlockShape{64, 1}, 64),
               ConfigError);
}

TEST(DispatchTest, EveryDomainElementCoveredExactlyOnce) {
  for (const auto& [mode, block] :
       std::vector<std::pair<ShaderMode, BlockShape>>{
           {ShaderMode::kPixel, {64, 1}},
           {ShaderMode::kCompute, {64, 1}},
           {ShaderMode::kCompute, {4, 16}}}) {
    const Domain domain{64, 32};
    const auto waves = BuildDispatch(domain, mode, block, 64);
    std::set<std::pair<unsigned, unsigned>> seen;
    for (const WaveRect& w : waves) {
      for (unsigned dy = 0; dy < w.height; ++dy) {
        for (unsigned dx = 0; dx < w.width; ++dx) {
          EXPECT_TRUE(seen.emplace(w.x + dx, w.y + dy).second);
        }
      }
    }
    EXPECT_EQ(seen.size(), domain.ThreadCount());
  }
}

TEST(ResourceLayoutsTest, LinesForCoverRectFootprint) {
  const GpuArch arch = MakeRV770();  // 64B lines: float tiles are 4x4.
  il::Signature sig;
  sig.inputs = 2;
  sig.outputs = 1;
  sig.type = DataType::kFloat;
  const ResourceLayouts layouts(arch, sig, Domain{64, 64});

  std::vector<mem::LineId> lines;
  layouts.LinesFor(0, WaveRect{0, 0, 8, 8}, lines);
  EXPECT_EQ(lines.size(), 4u);  // 8x8 texels over 4x4 tiles.
  lines.clear();
  layouts.LinesFor(0, WaveRect{0, 0, 64, 1}, lines);
  EXPECT_EQ(lines.size(), 16u);  // 64x1 strip: 16 partially-used tiles.
  lines.clear();
  layouts.LinesFor(0, WaveRect{0, 0, 4, 16}, lines);
  EXPECT_EQ(lines.size(), 4u);  // 4x16 block: 4 fully-used tiles.
}

TEST(ResourceLayoutsTest, Float4FootprintsAreLarger) {
  const GpuArch arch = MakeRV770();  // float4 tiles are 2x2.
  il::Signature sig;
  sig.inputs = 1;
  sig.outputs = 1;
  sig.type = DataType::kFloat4;
  const ResourceLayouts layouts(arch, sig, Domain{64, 64});
  std::vector<mem::LineId> lines;
  layouts.LinesFor(0, WaveRect{0, 0, 8, 8}, lines);
  EXPECT_EQ(lines.size(), 16u);  // 8x8 texels over 2x2 tiles.
  EXPECT_EQ(layouts.BytesFor(WaveRect{0, 0, 8, 8}), 64u * 16);
}

TEST(ResourceLayoutsTest, DistinctResourcesDoNotShareLines) {
  const GpuArch arch = MakeRV770();
  il::Signature sig;
  sig.inputs = 3;
  sig.outputs = 2;
  sig.type = DataType::kFloat;
  const ResourceLayouts layouts(arch, sig, Domain{64, 64});
  std::set<std::uint64_t> addrs;
  for (unsigned r = 0; r < 3; ++r) {
    std::vector<mem::LineId> lines;
    layouts.LinesFor(r, WaveRect{0, 0, 64, 64}, lines);
    for (const mem::LineId& l : lines) {
      EXPECT_TRUE(addrs.insert(l.address).second) << "resource " << r;
    }
  }
  // Outputs get their own regions too.
  EXPECT_NE(layouts.GlobalAddress(0, true, WaveRect{0, 0, 64, 1}),
            layouts.GlobalAddress(1, true, WaveRect{0, 0, 64, 1}));
}

TEST(ResourceLayoutsTest, GlobalAddressesAreRowMajor) {
  const GpuArch arch = MakeRV770();
  il::Signature sig;
  sig.inputs = 1;
  sig.outputs = 1;
  sig.type = DataType::kFloat;
  const ResourceLayouts layouts(arch, sig, Domain{128, 8});
  const auto a0 = layouts.GlobalAddress(0, false, WaveRect{0, 0, 64, 1});
  const auto a1 = layouts.GlobalAddress(0, false, WaveRect{64, 0, 64, 1});
  EXPECT_EQ(a1 - a0, 64u * 4);
  const auto row1 = layouts.GlobalAddress(0, false, WaveRect{0, 1, 64, 1});
  EXPECT_EQ(row1 - a0, 128u * 4);
}

}  // namespace
}  // namespace amdmb::sim
