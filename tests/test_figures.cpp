// Integration tests asserting the qualitative shape of every figure in
// the paper's evaluation (Sec. IV). Absolute seconds are not compared —
// our substrate is a simulator — but orderings, crossovers, slopes and
// flat regions must match the published behaviour. Sweeps here are
// condensed (coarser steps, smaller domains) relative to bench/, which
// regenerates the figures at paper scale.
#include <gtest/gtest.h>

#include "suite/suite.hpp"

namespace amdmb::suite {
namespace {

constexpr Domain kDomain{512, 512};

AluFetchConfig CondensedAluFetch() {
  AluFetchConfig config;
  config.domain = kDomain;
  config.ratio_step = 0.5;
  return config;
}

double CrossoverOr(const AluFetchResult& r, double fallback) {
  return r.crossover.value_or(fallback);
}

// ---- Fig. 7: ALU:Fetch ratio ------------------------------------------

// "For the float data in pixel shader mode, the ALU operations become the
// bottleneck at a much smaller ALU:Fetch ratio ... while the ALU
// operations don't become the bottleneck for the float4 data ... until a
// much higher ALU:Fetch ratio."
TEST(Fig7, Float4CrossesLaterThanFloatInPixelMode) {
  for (const GpuArch& arch : AllArchs()) {
    Runner runner(arch);
    const auto f = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat,
                               CondensedAluFetch());
    const auto f4 = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat4,
                                CondensedAluFetch());
    EXPECT_LT(CrossoverOr(f, 99) + 0.5, CrossoverOr(f4, 99)) << arch.name;
    // Float crosses early (paper: 1.25 on RV670/RV770; the RV870
    // "responds differently" with its relatively larger ALU array).
    ASSERT_TRUE(f.crossover.has_value()) << arch.name;
    EXPECT_LE(*f.crossover, arch.name == "RV870" ? 4.0 : 2.5) << arch.name;
    // Float4 crosses late (paper: 5.0 on RV670/RV770, ~9 on RV870).
    EXPECT_GE(CrossoverOr(f4, 99), 3.0) << arch.name;
  }
}

// "For compute shader mode the point at which the bottleneck becomes the
// ALU operations for the float data is higher and for the float4 is much
// higher" (64x1 naive blocks).
TEST(Fig7, NaiveComputeCrossesLaterThanPixel) {
  Runner runner(MakeRV770());
  const auto pixel = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat,
                                 CondensedAluFetch());
  const auto compute = RunAluFetch(runner, ShaderMode::kCompute,
                                   DataType::kFloat, CondensedAluFetch());
  EXPECT_GE(CrossoverOr(compute, 99), CrossoverOr(pixel, 99)) << "RV770";
  // And the naive compute curve sits above pixel in the fetch-bound zone.
  EXPECT_GT(compute.points.front().m.seconds,
            pixel.points.front().m.seconds * 1.1);
}

// "the float and float4 data points in pixel shader mode ... begin to
// converge at high ALU:Fetch ratios, implying the kernel is ... ALU
// bound."
TEST(Fig7, FloatAndFloat4ConvergeWhenAluBound) {
  Runner runner(MakeRV770());
  const auto f = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat,
                             CondensedAluFetch());
  const auto f4 = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat4,
                              CondensedAluFetch());
  const double tf = f.points.back().m.seconds;
  const double t4 = f4.points.back().m.seconds;
  EXPECT_NEAR(t4 / tf, 1.0, 0.15);
}

// The fetch-bound flat region: time constant while fetch-bound.
TEST(Fig7, FetchBoundRegionIsFlat) {
  Runner runner(MakeRV770());
  const auto f4 = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat4,
                              CondensedAluFetch());
  ASSERT_GE(f4.points.size(), 4u);
  const double first = f4.points[0].m.seconds;
  const double third = f4.points[2].m.seconds;
  EXPECT_NEAR(third / first, 1.0, 0.1);
  EXPECT_NE(f4.points[0].m.stats.bottleneck, sim::Bottleneck::kAlu);
}

// Generation scaling in the ALU-bound tail: RV870 < RV770 < RV670.
TEST(Fig7, AluBoundTailOrdersByGeneration) {
  std::vector<double> tails;
  for (const GpuArch& arch : AllArchs()) {
    Runner runner(arch);
    const auto r = RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat,
                               CondensedAluFetch());
    tails.push_back(r.points.back().m.seconds);
  }
  EXPECT_GT(tails[0], tails[1]);  // RV670 slower than RV770.
  EXPECT_GT(tails[1], tails[2]);  // RV770 slower than RV870.
}

// ---- Fig. 8: 4x16 compute blocks ---------------------------------------

// "there is a significant improvement in performance for both the RV770
// and RV870 in compute shader mode" with 4x16 blocks; float4 gains most.
TEST(Fig8, TwoDimensionalBlocksBeatNaive) {
  for (const GpuArch& arch : {MakeRV770(), MakeRV870()}) {
    Runner runner(arch);
    AluFetchConfig naive = CondensedAluFetch();
    naive.block = BlockShape{64, 1};
    AluFetchConfig blocked = CondensedAluFetch();
    blocked.block = BlockShape{4, 16};
    const auto n4 =
        RunAluFetch(runner, ShaderMode::kCompute, DataType::kFloat4, naive);
    const auto b4 =
        RunAluFetch(runner, ShaderMode::kCompute, DataType::kFloat4, blocked);
    // Compare in the fetch-bound region (first point).
    EXPECT_GT(n4.points.front().m.seconds,
              b4.points.front().m.seconds * 1.5)
        << arch.name;
  }
}

// ---- Figs. 9/10: global read sweeps ------------------------------------

// "The RV670's global memory is very slow ... using global memory for the
// inputs significantly reduces performance when compared to texture
// fetching. The same is not true for the RV770 and RV870."
TEST(Fig9, GlobalReadsCrushRv670ButNotLaterChips) {
  AluFetchConfig tex = CondensedAluFetch();
  AluFetchConfig global = CondensedAluFetch();
  global.read_path = ReadPath::kGlobal;

  Runner rv670(MakeRV670());
  const double t670_tex =
      RunAluFetch(rv670, ShaderMode::kPixel, DataType::kFloat, tex)
          .points.front().m.seconds;
  const double t670_glob =
      RunAluFetch(rv670, ShaderMode::kPixel, DataType::kFloat, global)
          .points.front().m.seconds;
  EXPECT_GT(t670_glob, t670_tex * 2.0);

  Runner rv770(MakeRV770());
  const double t770_tex =
      RunAluFetch(rv770, ShaderMode::kCompute, DataType::kFloat, tex)
          .points.front().m.seconds;
  const double t770_glob =
      RunAluFetch(rv770, ShaderMode::kCompute, DataType::kFloat, global)
          .points.front().m.seconds;
  // "the same or slightly better performance using global memory reads
  // versus the 64x1 naive texture fetching in compute shader mode".
  EXPECT_LT(t770_glob, t770_tex * 1.3);
}

// "There is little difference for the RV770 and RV870 between Figure 9
// and Figure 10": with one small output, streaming store vs global write
// is negligible.
TEST(Fig10, WritePathNegligibleWithOneOutput) {
  Runner runner(MakeRV770());
  AluFetchConfig stream = CondensedAluFetch();
  stream.read_path = ReadPath::kGlobal;
  stream.write_path = WritePath::kStream;
  AluFetchConfig global = stream;
  global.write_path = WritePath::kGlobal;
  const auto a =
      RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat, stream);
  const auto b =
      RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat, global);
  for (std::size_t i = 0; i < a.points.size(); i += 4) {
    EXPECT_NEAR(b.points[i].m.seconds / a.points[i].m.seconds, 1.0, 0.1)
        << "ratio " << a.points[i].ratio;
  }
}

// ---- Fig. 11: texture fetch latency ------------------------------------

TEST(Fig11, LatencyLinearAndFloat4FourTimesFloat) {
  Runner runner(MakeRV770());
  ReadLatencyConfig config;
  config.domain = kDomain;
  const auto f =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat, config);
  const auto f4 =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config);
  EXPECT_GT(f.fit.r2, 0.97);
  EXPECT_GT(f4.fit.r2, 0.97);
  // "the execution time for n float4s is approximately the same as the
  // execution time for 4*n floats."
  EXPECT_NEAR(f4.fit.slope / f.fit.slope, 4.0, 1.2);
}

// "The fetch times are reduced with each passing generation."
TEST(Fig11, SlopesShrinkAcrossGenerations) {
  std::vector<double> slopes;
  for (const GpuArch& arch : AllArchs()) {
    Runner runner(arch);
    ReadLatencyConfig config;
    config.domain = kDomain;
    slopes.push_back(
        RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config)
            .fit.slope);
  }
  EXPECT_GT(slopes[0], slopes[1]);
  EXPECT_GT(slopes[1], slopes[2]);
}

// ---- Fig. 12: global read latency --------------------------------------

TEST(Fig12, Rv670GlobalReadsFarSlowerThanSuccessors) {
  ReadLatencyConfig config;
  config.domain = kDomain;
  config.read_path = ReadPath::kGlobal;
  Runner rv670(MakeRV670());
  Runner rv770(MakeRV770());
  const double s670 =
      RunReadLatency(rv670, ShaderMode::kPixel, DataType::kFloat, config)
          .fit.slope;
  const double s770 =
      RunReadLatency(rv770, ShaderMode::kPixel, DataType::kFloat, config)
          .fit.slope;
  EXPECT_GT(s670, s770 * 3.0);
}

// "approximately the same whether vectorized (float4) or non-vectorized
// (float) data is being read" and "not effect[ed] much by which shader".
TEST(Fig12, VectorizationAndModeNeutral) {
  Runner runner(MakeRV770());
  ReadLatencyConfig config;
  config.domain = kDomain;
  config.read_path = ReadPath::kGlobal;
  const double pf =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat, config)
          .fit.slope;
  const double pf4 =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config)
          .fit.slope;
  const double cf =
      RunReadLatency(runner, ShaderMode::kCompute, DataType::kFloat, config)
          .fit.slope;
  EXPECT_LT(pf4 / pf, 2.2);  // Far from the texture path's 4x.
  EXPECT_NEAR(cf / pf, 1.0, 0.25);
}

// ---- Fig. 13: streaming store latency ----------------------------------

TEST(Fig13, EarlyFlatThenLinearAndVectorizationCheap) {
  Runner runner(MakeRV770());
  WriteLatencyConfig config;
  config.domain = kDomain;
  const auto f =
      RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat, config);
  const auto f4 =
      RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config);
  // "For some of the smaller output sizes the texture fetch remains the
  // bottleneck": first point not memory-bound.
  EXPECT_NE(f.points.front().m.stats.bottleneck, sim::Bottleneck::kMemory);
  // Tail rises.
  EXPECT_GT(f.points.back().m.seconds, f.points.front().m.seconds);
  // Streaming stores burst: float4 ~ float per instruction (well under
  // the 4x a bandwidth-bound path would show).
  EXPECT_LT(f4.points.back().m.seconds / f.points.back().m.seconds, 2.0);
}

// ---- Fig. 14: global write latency -------------------------------------

// "The approximate execution times for float versus float4 appear to be
// 1/4th, so each float is written at some constant speed."
TEST(Fig14, GlobalWritesScaleWithComponentCount) {
  Runner runner(MakeRV770());
  WriteLatencyConfig config;
  config.domain = kDomain;
  config.write_path = WritePath::kGlobal;
  const auto f =
      RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat, config);
  const auto f4 =
      RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config);
  EXPECT_NEAR(f4.fit.slope / f.fit.slope, 4.0, 1.2);
  // Large outputs are write-bound.
  EXPECT_EQ(f4.points.back().m.stats.bottleneck, sim::Bottleneck::kMemory);
}

// ---- Fig. 15: domain size ----------------------------------------------

TEST(Fig15, OverallLinearAndTypeIndependent) {
  Runner runner(MakeRV770());
  DomainSizeConfig config;
  config.min_size = 256;
  config.max_size = 768;
  config.pixel_increment = 64;
  const auto f =
      RunDomainSize(runner, ShaderMode::kPixel, DataType::kFloat, config);
  const auto f4 =
      RunDomainSize(runner, ShaderMode::kPixel, DataType::kFloat4, config);
  // ALU-bound: float == float4 (Sec. IV-D).
  for (std::size_t i = 0; i < f.points.size(); ++i) {
    EXPECT_NEAR(f4.points[i].m.seconds / f.points[i].m.seconds, 1.0, 0.08)
        << "size " << f.points[i].size;
  }
  // Time tracks the thread count.
  const double grow = f.points.back().m.seconds / f.points.front().m.seconds;
  EXPECT_NEAR(grow, 9.0, 2.0);  // (768/256)^2 = 9.
}

// ---- Figs. 16/17 + Fig. 5 control: register pressure -------------------

// "there is a significant impact on performance with a decrease in
// register pressure ... The performance increase begins to level off."
TEST(Fig16, FewerRegistersFasterUntilAluBound) {
  for (const GpuArch& arch : {MakeRV670(), MakeRV770()}) {
    Runner runner(arch);
    RegisterUsageConfig config;
    const auto r =
        RunRegisterUsage(runner, ShaderMode::kPixel, DataType::kFloat, config);
    ASSERT_EQ(r.points.size(), 8u);
    const double high_pressure = r.points.front().m.seconds;
    const double low_pressure = r.points.back().m.seconds;
    EXPECT_GT(high_pressure, low_pressure * 1.25) << arch.name;
    // Levelling off: the last halving of registers changes little.
    const double second_last = r.points[r.points.size() - 2].m.seconds;
    EXPECT_NEAR(low_pressure / second_last, 1.0, 0.1) << arch.name;
    // And the mechanism is occupancy.
    EXPECT_LT(r.points.front().m.stats.resident_wavefronts,
              r.points.back().m.stats.resident_wavefronts)
        << arch.name;
  }
}

// "The result was a constant execution time with no performance gain."
// At 4 resident wavefronts the event-driven model shows a small
// (~10-15%) convoy-phasing wobble that real fine-grained interleaving
// smooths out, so "constant" is asserted both absolutely (< 20%) and
// relative to the register sweep's genuine speedup.
TEST(Fig5Control, ClauseUsageKernelIsFlat) {
  Runner runner(MakeRV770());
  RegisterUsageConfig config;
  config.clause_control = true;
  const auto control =
      RunRegisterUsage(runner, ShaderMode::kPixel, DataType::kFloat, config);
  double lo = control.points.front().m.seconds;
  double hi = lo;
  for (const RegisterUsagePoint& p : control.points) {
    lo = std::min(lo, p.m.seconds);
    hi = std::max(hi, p.m.seconds);
    // Control kernel's GPRs do not fall with step.
    EXPECT_GE(p.gpr_count, 63u);
  }
  EXPECT_LT(hi / lo, 1.2);
  // The control shows *no gain* at low register pressure, while the real
  // register-usage kernel does: its step-7 point must be much faster
  // than the control's, which never escapes low occupancy.
  config.clause_control = false;
  const auto sweep =
      RunRegisterUsage(runner, ShaderMode::kPixel, DataType::kFloat, config);
  EXPECT_LT(sweep.points.back().m.seconds, lo * 0.85);
  EXPECT_GE(control.points.back().m.seconds, lo);
}

// Fig. 17: the 4x16 sweep stays below its 64x1 counterpart.
TEST(Fig17, BlockedComputeSweepBeatsNaive) {
  Runner runner(MakeRV770());
  RegisterUsageConfig naive;
  naive.block = BlockShape{64, 1};
  RegisterUsageConfig blocked;
  blocked.block = BlockShape{4, 16};
  const auto n = RunRegisterUsage(runner, ShaderMode::kCompute,
                                  DataType::kFloat4, naive);
  const auto b = RunRegisterUsage(runner, ShaderMode::kCompute,
                                  DataType::kFloat4, blocked);
  for (std::size_t i = 0; i < n.points.size(); ++i) {
    EXPECT_LE(b.points[i].m.seconds, n.points[i].m.seconds * 1.02)
        << "step " << i;
  }
}

}  // namespace
}  // namespace amdmb::suite
