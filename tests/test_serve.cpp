// Tests for the serve layer: the NDJSON wire protocol, figure-registry
// lookups, the bounded FIFO-with-priority scheduler, and the daemon end
// to end over a real Unix-domain socket (byte-compatibility with the
// standalone bench output, kernel-cache reuse, deterministic overload
// and drain rejections, and event-stream determinism across runs).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "report/json_sink.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "suite/figures.hpp"

namespace amdmb::serve {
namespace {

using suite::figures::CurveDef;
using suite::figures::FigureDef;
using suite::figures::Find;
using suite::figures::NormalizeSlug;
using suite::figures::Registry;
using suite::figures::RunOptions;

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, SubmitRequestRoundTrips) {
  Request request;
  request.op = Request::Op::kSubmit;
  request.figure = "fig_7";
  request.quick = true;
  request.priority = 2;
  const Request back = ParseRequest(SerializeRequest(request));
  EXPECT_EQ(back.op, Request::Op::kSubmit);
  EXPECT_EQ(back.figure, "fig_7");
  EXPECT_TRUE(back.quick);
  EXPECT_EQ(back.priority, 2);
}

TEST(ServeProtocol, StatsAndDrainRequestsRoundTrip) {
  Request stats;
  stats.op = Request::Op::kStats;
  EXPECT_EQ(ParseRequest(SerializeRequest(stats)).op, Request::Op::kStats);
  Request drain;
  drain.op = Request::Op::kDrain;
  EXPECT_EQ(ParseRequest(SerializeRequest(drain)).op, Request::Op::kDrain);
}

TEST(ServeProtocol, ParseRequestRejectsMalformedLines) {
  EXPECT_THROW(ParseRequest("not json"), ConfigError);
  EXPECT_THROW(ParseRequest("[1,2]"), ConfigError);
  EXPECT_THROW(ParseRequest("{}"), ConfigError);
  EXPECT_THROW(ParseRequest(R"({"op":"frobnicate"})"), ConfigError);
  // A submit without a figure slug has nothing to run.
  EXPECT_THROW(ParseRequest(R"({"op":"submit"})"), ConfigError);
  // Priorities are integers; silently truncating 1.5 would reorder.
  EXPECT_THROW(
      ParseRequest(R"({"op":"submit","figure":"fig_7","priority":1.5})"),
      ConfigError);
}

TEST(ServeProtocol, EventSerializersRoundTrip) {
  Event e = ParseEvent(SerializeAccepted(7, "fig_7", 3));
  EXPECT_EQ(e.type, EventType::kAccepted);
  EXPECT_EQ(e.body.NumberOr("request", 0.0), 7.0);
  EXPECT_EQ(e.body.StringOr("figure", ""), "fig_7");
  EXPECT_EQ(e.body.NumberOr("queue_depth", -1.0), 3.0);

  e = ParseEvent(SerializeRejected("overloaded", "fig_9"));
  EXPECT_EQ(e.type, EventType::kRejected);
  EXPECT_EQ(e.body.StringOr("reason", ""), "overloaded");

  e = ParseEvent(SerializeProgress(7, 1, 10, "4870 Pixel Float"));
  EXPECT_EQ(e.type, EventType::kProgress);
  EXPECT_EQ(e.body.NumberOr("index", -1.0), 1.0);
  EXPECT_EQ(e.body.NumberOr("count", -1.0), 10.0);
  EXPECT_EQ(e.body.StringOr("curve", ""), "4870 Pixel Float");

  e = ParseEvent(SerializePoint(7, "3870", 0.25, 0.7245));
  EXPECT_EQ(e.type, EventType::kPoint);
  EXPECT_EQ(e.body.NumberOr("x", 0.0), 0.25);
  EXPECT_EQ(e.body.NumberOr("y", 0.0), 0.7245);

  e = ParseEvent(SerializeProfile(7, "3870", "alufetch_r0.25", "alu"));
  EXPECT_EQ(e.type, EventType::kProfile);
  EXPECT_EQ(e.body.StringOr("bottleneck", ""), "alu");

  e = ParseEvent(SerializeDone(7, "fig_7", 1.25, 48, 32, "{\"a\": 1}\n"));
  EXPECT_EQ(e.type, EventType::kDone);
  EXPECT_EQ(e.body.NumberOr("wall_seconds", 0.0), 1.25);
  EXPECT_EQ(e.body.NumberOr("cache_hits", 0.0), 48.0);
  EXPECT_EQ(e.body.NumberOr("cache_misses", 0.0), 32.0);
  // The embedded figure document survives escaping byte for byte.
  EXPECT_EQ(e.body.StringOr("figure_json", ""), "{\"a\": 1}\n");

  e = ParseEvent(SerializeError(7, "sweep exploded"));
  EXPECT_EQ(e.type, EventType::kError);
  EXPECT_EQ(e.body.StringOr("message", ""), "sweep exploded");

  e = ParseEvent(SerializeDrained(12));
  EXPECT_EQ(e.type, EventType::kDrained);
  EXPECT_EQ(e.body.NumberOr("completed", 0.0), 12.0);
}

TEST(ServeProtocol, ParseEventRejectsUnknownTags) {
  EXPECT_THROW(ParseEvent("not json"), ConfigError);
  EXPECT_THROW(ParseEvent(R"({"event":"mystery"})"), ConfigError);
  EXPECT_THROW(ParseEvent(R"({"no_event_key":1})"), ConfigError);
}

TEST(ServeProtocol, StatsRoundTripPreservesEveryField) {
  ServeStats stats;
  stats.version = "abc123-dirty";
  stats.queue_depth = 3;
  stats.in_flight = 2;
  stats.max_queue = 16;
  stats.max_inflight = 4;
  stats.completed = 10;
  stats.failed = 1;
  stats.rejected = 2;
  stats.cache_hits = 128;
  stats.cache_misses = 32;
  stats.cache_hit_rate = 0.8;
  stats.cache_size = 32;
  stats.latencies = {{"fig_11", 4, 0.5, 0.9, 0.99}, {"fig_7", 6, 1.5, 2.0,
                                                     2.5}};
  const Event event = ParseEvent(SerializeStats(stats));
  ASSERT_EQ(event.type, EventType::kStats);
  const ServeStats back = ParseStats(event.body);
  EXPECT_EQ(back.version, stats.version);
  EXPECT_EQ(back.queue_depth, stats.queue_depth);
  EXPECT_EQ(back.in_flight, stats.in_flight);
  EXPECT_EQ(back.max_queue, stats.max_queue);
  EXPECT_EQ(back.max_inflight, stats.max_inflight);
  EXPECT_EQ(back.completed, stats.completed);
  EXPECT_EQ(back.failed, stats.failed);
  EXPECT_EQ(back.rejected, stats.rejected);
  EXPECT_EQ(back.cache_hits, stats.cache_hits);
  EXPECT_EQ(back.cache_misses, stats.cache_misses);
  EXPECT_DOUBLE_EQ(back.cache_hit_rate, stats.cache_hit_rate);
  EXPECT_EQ(back.cache_size, stats.cache_size);
  EXPECT_EQ(back.latencies, stats.latencies);
}

// ---------------------------------------------------------------- registry

TEST(FigureRegistry, NormalizeSlugUnifiesSpellings) {
  EXPECT_EQ(NormalizeSlug("fig_7"), NormalizeSlug("fig07"));
  EXPECT_EQ(NormalizeSlug("fig_7"), NormalizeSlug("Fig7"));
  EXPECT_EQ(NormalizeSlug("fig_7"), NormalizeSlug("Fig. 7"));
  EXPECT_EQ(NormalizeSlug("fig_15a"), NormalizeSlug("Fig15A"));
  EXPECT_NE(NormalizeSlug("fig_7"), NormalizeSlug("fig_17"));
  EXPECT_NE(NormalizeSlug("fig_15a"), NormalizeSlug("fig_15b"));
  // A run of zeros is a value, not padding.
  EXPECT_EQ(NormalizeSlug("fig00"), NormalizeSlug("fig0"));
  EXPECT_NE(NormalizeSlug("fig0"), NormalizeSlug("fig"));
}

TEST(FigureRegistry, CoversFigures7Through17) {
  std::vector<std::string> slugs;
  for (const FigureDef& def : Registry()) slugs.push_back(def.slug);
  const std::vector<std::string> expected = {
      "fig_7",  "fig_8",  "fig_9",   "fig_10",  "fig_11", "fig_12",
      "fig_13", "fig_14", "fig_15a", "fig_15b", "fig_16", "fig_17"};
  EXPECT_EQ(slugs, expected);
  for (const FigureDef& def : Registry()) {
    EXPECT_EQ(def.slug, report::FigureSlug(def.id)) << def.id;
    EXPECT_FALSE(def.curves.empty()) << def.slug;
    EXPECT_FALSE(def.bench_prefix.empty()) << def.slug;
  }
}

TEST(FigureRegistry, FindAcceptsAnySpelling) {
  const FigureDef* canonical = Find("fig_7");
  ASSERT_NE(canonical, nullptr);
  EXPECT_EQ(Find("fig07"), canonical);
  EXPECT_EQ(Find("Fig7"), canonical);
  EXPECT_EQ(Find("FIG_07"), canonical);
  EXPECT_EQ(Find("fig_99"), nullptr);
  EXPECT_EQ(Find(""), nullptr);
}

// --------------------------------------------------------------- scheduler

TEST(SchedulerToString, NamesEveryAdmission) {
  EXPECT_EQ(ToString(Admission::kAccepted), "accepted");
  EXPECT_EQ(ToString(Admission::kRejectedOverloaded), "overloaded");
  EXPECT_EQ(ToString(Admission::kRejectedDraining), "draining");
}

TEST(SchedulerTest, RunsJobsAndWaitsIdle) {
  Scheduler scheduler(/*max_queue=*/8, /*max_inflight=*/2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    const auto ticket =
        scheduler.Submit(0, [&](std::uint64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ticket.admission, Admission::kAccepted);
  }
  scheduler.StopAdmission();
  scheduler.WaitIdle();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  EXPECT_EQ(scheduler.InFlight(), 0u);
}

TEST(SchedulerTest, PopsByPriorityThenArrivalOrder) {
  Scheduler scheduler(/*max_queue=*/8, /*max_inflight=*/1);
  // Block the single worker so the later submits queue up and the pop
  // order is decided purely by the scheduler, not by timing.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  scheduler.Submit(0, [gate](std::uint64_t) { gate.wait(); });

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto note = [&](std::string name) {
    return [&, name = std::move(name)](std::uint64_t) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(name);
    };
  };
  scheduler.Submit(0, note("low-a"));
  scheduler.Submit(2, note("high-a"));
  scheduler.Submit(1, note("mid"));
  scheduler.Submit(2, note("high-b"));
  scheduler.Submit(0, note("low-b"));
  release.set_value();
  scheduler.StopAdmission();
  scheduler.WaitIdle();
  EXPECT_EQ(order, (std::vector<std::string>{"high-a", "high-b", "mid",
                                             "low-a", "low-b"}));
}

TEST(SchedulerTest, OverloadRejectionIsDeterministic) {
  // ISSUE acceptance case: queue 1, inflight 1 — the first request may
  // run, the second may wait, the third must be rejected "overloaded"
  // no matter how fast the worker is, because admission counts
  // outstanding work (queued + in-flight), not queue occupancy.
  Scheduler scheduler(/*max_queue=*/1, /*max_inflight=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  EXPECT_EQ(scheduler.Submit(0, [gate](std::uint64_t) { gate.wait(); })
                .admission,
            Admission::kAccepted);
  EXPECT_EQ(scheduler.Submit(0, [](std::uint64_t) {}).admission,
            Admission::kAccepted);
  const auto third = scheduler.Submit(0, [](std::uint64_t) {
    FAIL() << "an overloaded submit must never execute";
  });
  EXPECT_EQ(third.admission, Admission::kRejectedOverloaded);
  release.set_value();
  scheduler.StopAdmission();
  scheduler.WaitIdle();
}

TEST(SchedulerTest, StopAdmissionRejectsButFinishesAdmittedJobs) {
  Scheduler scheduler(/*max_queue=*/4, /*max_inflight=*/1);
  std::atomic<int> ran{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  scheduler.Submit(0, [&, gate](std::uint64_t) {
    gate.wait();
    ran.fetch_add(1);
  });
  scheduler.Submit(0, [&](std::uint64_t) { ran.fetch_add(1); });
  scheduler.StopAdmission();
  EXPECT_EQ(scheduler.Submit(0, [](std::uint64_t) {}).admission,
            Admission::kRejectedDraining);
  release.set_value();
  scheduler.WaitIdle();
  // Both admitted jobs finished; the rejected one never ran.
  EXPECT_EQ(ran.load(), 2);
}

TEST(SchedulerTest, AssignsMonotonicRequestIds) {
  Scheduler scheduler(/*max_queue=*/8, /*max_inflight=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  const auto a = scheduler.Submit(0, [gate](std::uint64_t) { gate.wait(); });
  const auto b = scheduler.Submit(0, [](std::uint64_t) {});
  const auto c = scheduler.Submit(0, [](std::uint64_t) {});
  EXPECT_LT(a.id, b.id);
  EXPECT_LT(b.id, c.id);
  release.set_value();
  scheduler.Shutdown();
}

// ------------------------------------------------------------ end to end

/// A tiny controllable registry: two deterministic curves that append
/// fixed points, plus a "blocking" figure whose curve waits on a shared
/// gate (for overload tests) — no simulator work, so these tests are
/// fast and timing-independent.
struct TestRegistry {
  std::shared_ptr<std::promise<void>> release =
      std::make_shared<std::promise<void>>();
  std::shared_future<void> gate = release->get_future().share();
  std::vector<FigureDef> defs;

  TestRegistry() {
    FigureDef tiny;
    tiny.slug = "fig_91";
    tiny.bench_prefix = "Fig91";
    tiny.id = "Fig. 91 — Serve Test";
    tiny.title = "Serve Test";
    tiny.x_label = "x";
    tiny.y_label = "y";
    tiny.paper_claim = "none";
    tiny.what = "serve test fixture";
    tiny.curves.push_back(
        {"alpha", [](report::Figure& figure, const RunOptions& opts) {
           Series& series = figure.set.Get("alpha");
           series.Add(1.0, 10.0);
           if (!opts.quick) series.Add(2.0, 20.0);
           return series.Points().back().y;
         }});
    tiny.curves.push_back(
        {"beta", [](report::Figure& figure, const RunOptions&) {
           figure.set.Get("beta").Add(1.0, 100.0);
           figure.findings.push_back({report::FindingKind::kPlateau,
                                      "beta", "peak", 100.0, "y", ""});
           return 100.0;
         }});
    defs.push_back(std::move(tiny));

    FigureDef blocking;
    blocking.slug = "fig_92";
    blocking.bench_prefix = "Fig92";
    blocking.id = "Fig. 92 — Serve Block Test";
    blocking.title = "Serve Block Test";
    blocking.x_label = "x";
    blocking.y_label = "y";
    blocking.paper_claim = "none";
    blocking.what = "blocks until the test releases it";
    blocking.curves.push_back(
        {"wait", [gate = gate](report::Figure& figure, const RunOptions&) {
           gate.wait();
           figure.set.Get("wait").Add(1.0, 1.0);
           return 1.0;
         }});
    defs.push_back(std::move(blocking));

    FigureDef failing;
    failing.slug = "fig_93";
    failing.bench_prefix = "Fig93";
    failing.id = "Fig. 93 — Serve Error Test";
    failing.title = "Serve Error Test";
    failing.x_label = "x";
    failing.y_label = "y";
    failing.paper_claim = "none";
    failing.what = "throws mid-sweep";
    failing.curves.push_back(
        {"boom", [](report::Figure&, const RunOptions&) -> double {
           throw ConfigError("synthetic sweep failure");
         }});
    defs.push_back(std::move(failing));
  }
};

std::string TestSocketPath(const char* name) {
  std::ostringstream os;
  os << ::testing::TempDir() << "amdmb_test_" << ::getpid() << "_" << name
     << ".sock";
  return os.str();
}

TEST(ServeServer, EndToEndDoneMatchesDirectBuildByteForByte) {
  TestRegistry registry;
  registry.release->set_value();  // Nothing should block in this test.
  ServerConfig config;
  config.socket_path = TestSocketPath("bytes");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  RunOptions opts;
  opts.quick = true;
  const std::string expected =
      report::BenchJson(suite::figures::Build(registry.defs[0], opts));

  Client client = Client::Connect(config.socket_path);
  std::vector<EventType> streamed;
  const Event done =
      client.Submit("fig_91", /*quick=*/true, /*priority=*/0,
                    [&](const Event& event) { streamed.push_back(event.type); });
  ASSERT_EQ(done.type, EventType::kDone);
  EXPECT_EQ(done.body.StringOr("figure_json", ""), expected);
  // accepted, one progress + one point per curve.
  EXPECT_EQ(streamed,
            (std::vector<EventType>{EventType::kAccepted, EventType::kProgress,
                                    EventType::kPoint, EventType::kProgress,
                                    EventType::kPoint}));
  server.Drain();
}

TEST(ServeServer, QuickFlagComesFromTheRequestNotTheEnvironment) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("quick");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event quick = client.Submit("fig_91", true, 0);
  const Event full = client.Submit("fig_91", false, 0);
  ASSERT_EQ(quick.type, EventType::kDone);
  ASSERT_EQ(full.type, EventType::kDone);
  const std::string quick_json = quick.body.StringOr("figure_json", "");
  const std::string full_json = full.body.StringOr("figure_json", "");
  EXPECT_NE(quick_json, full_json);  // The full sweep has an extra point.
  EXPECT_NE(quick_json.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(full_json.find("\"quick\": false"), std::string::npos);
  server.Drain();
}

TEST(ServeServer, UnknownFigureIsRejectedWithoutSideEffects) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("unknown");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event rejected = client.Submit("fig_404", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "unknown_figure");
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 0u);
  server.Drain();
}

TEST(ServeServer, SweepErrorIsReportedNotFatal) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("error");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event error = client.Submit("fig_93", true, 0);
  ASSERT_EQ(error.type, EventType::kError);
  EXPECT_NE(error.body.StringOr("message", "").find("synthetic"),
            std::string::npos);
  // The daemon survives: the next request on the same session works.
  const Event done = client.Submit("fig_91", true, 0);
  EXPECT_EQ(done.type, EventType::kDone);
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  server.Drain();
}

TEST(ServeServer, ThirdRequestOverloadsAOneDeepQueue) {
  TestRegistry registry;
  ServerConfig config;
  config.socket_path = TestSocketPath("overload");
  config.max_queue = 1;
  config.max_inflight = 1;
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  // Separate sessions so the rejected submit is not stuck behind the
  // first one's event stream.
  Client first = Client::Connect(config.socket_path);
  Client second = Client::Connect(config.socket_path);
  Client third = Client::Connect(config.socket_path);

  std::promise<void> first_accepted;
  std::thread first_thread([&] {
    first.Submit("fig_92", true, 0, [&](const Event& event) {
      if (event.type == EventType::kAccepted) first_accepted.set_value();
    });
  });
  first_accepted.get_future().wait();  // In flight, blocked on the gate.

  std::promise<void> second_accepted;
  std::thread second_thread([&] {
    second.Submit("fig_92", true, 0, [&](const Event& event) {
      if (event.type == EventType::kAccepted) second_accepted.set_value();
    });
  });
  second_accepted.get_future().wait();  // Queued: capacity is now full.

  const Event rejected = third.Submit("fig_92", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "overloaded");

  registry.release->set_value();
  first_thread.join();
  second_thread.join();
  const ServeStats stats = third.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  server.Drain();
}

TEST(ServeServer, DrainRejectsNewSubmitsAndReportsCompleted) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("drain");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  ASSERT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  EXPECT_FALSE(server.DrainRequested());
  EXPECT_EQ(client.Drain(), 1u);  // One request had completed.
  EXPECT_TRUE(server.DrainRequested());

  const Event rejected = client.Submit("fig_91", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "draining");
  server.Drain();
}

/// Projects an event stream onto its deterministic fields (wall-clock
/// seconds and cache totals vary run to run; everything else must not).
std::vector<std::string> DeterministicProjection(
    const std::vector<Event>& events) {
  std::vector<std::string> out;
  for (const Event& event : events) {
    std::ostringstream os;
    os << ToString(event.type);
    switch (event.type) {
      case EventType::kAccepted:
        os << " " << event.body.StringOr("figure", "");
        break;
      case EventType::kProgress:
        os << " " << event.body.NumberOr("index", -1.0) << "/"
           << event.body.NumberOr("count", -1.0) << " "
           << event.body.StringOr("curve", "");
        break;
      case EventType::kPoint:
        os << " " << event.body.StringOr("curve", "") << " "
           << event.body.NumberOr("x", 0.0) << " "
           << event.body.NumberOr("y", 0.0);
        break;
      case EventType::kDone:
        os << " " << event.body.StringOr("figure", "") << " "
           << event.body.StringOr("figure_json", "");
        break;
      default:
        break;
    }
    out.push_back(os.str());
  }
  return out;
}

TEST(ServeServer, EventStreamIsDeterministicAcrossRuns) {
  // Same request sequence, serial execution (inflight 1, concurrency 1)
  // → identical event streams modulo wall-clock fields, across two
  // independent daemon instances.
  const auto run = [](const char* tag) {
    TestRegistry registry;
    registry.release->set_value();
    ServerConfig config;
    config.socket_path = TestSocketPath(tag);
    config.max_inflight = 1;
    config.registry = &registry.defs;
    Server server(config);
    server.Start();
    Client client = Client::Connect(config.socket_path);
    std::vector<Event> events;
    for (const bool quick : {true, false, true}) {
      const Event done = client.Submit(
          "fig_91", quick, 0,
          [&](const Event& event) { events.push_back(event); });
      events.push_back(done);
    }
    server.Drain();
    return DeterministicProjection(events);
  };
  EXPECT_EQ(run("det_a"), run("det_b"));
}

TEST(ServeServer, StatsReportCountsAndLimits) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("stats");
  config.max_queue = 5;
  config.max_inflight = 2;
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  ASSERT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  ASSERT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  const ServeStats stats = client.Stats();
  EXPECT_FALSE(stats.version.empty());
  EXPECT_EQ(stats.max_queue, 5u);
  EXPECT_EQ(stats.max_inflight, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  ASSERT_EQ(stats.latencies.size(), 1u);
  EXPECT_EQ(stats.latencies[0].figure, "fig_91");
  EXPECT_EQ(stats.latencies[0].count, 2u);
  EXPECT_LE(stats.latencies[0].p50_seconds, stats.latencies[0].p99_seconds);
  server.Drain();
}

TEST(ServeServer, LoadGeneratorIsDeterministicAndCompletes) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("loadgen");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  LoadGenOptions options;
  options.socket_path = config.socket_path;
  options.requests = 6;
  options.concurrency = 2;
  options.seed = 42;
  options.figures = {"fig_91"};
  const LoadGenReport report = RunLoadGenerator(options);
  EXPECT_EQ(report.requests, 6u);
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_LE(report.p50_seconds, report.p99_seconds);
  server.Drain();
}

TEST(ServeClient, ConnectToMissingSocketIsATypedError) {
  EXPECT_THROW(Client::Connect(TestSocketPath("nobody_listens")),
               ConfigError);
}

}  // namespace
}  // namespace amdmb::serve
