// Tests for the serve layer: the NDJSON wire protocol, figure-registry
// lookups, the bounded FIFO-with-priority scheduler, the daemon end to
// end over a real Unix-domain socket (byte-compatibility with the
// standalone bench output, kernel-cache reuse, deterministic overload
// and drain rejections, and event-stream determinism across runs), and
// the supervised worker fleet (health state machine, consistent-hash
// routing, deadlines, failover, seeded crash/hang chaos).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adapt/refiner.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"
#include "kerncap/characterize.hpp"
#include "kerncap/intake.hpp"
#include "report/json_sink.hpp"
#include "serve/client.hpp"
#include "serve/health.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "serve/routing.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/supervisor.hpp"
#include "suite/figures.hpp"

namespace amdmb::serve {
namespace {

using suite::figures::CurveDef;
using suite::figures::FigureDef;
using suite::figures::Find;
using suite::figures::NormalizeSlug;
using suite::figures::Registry;
using suite::figures::RunOptions;

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, SubmitRequestRoundTrips) {
  Request request;
  request.op = Request::Op::kSubmit;
  request.figure = "fig_7";
  request.quick = true;
  request.priority = 2;
  const Request back = ParseRequest(SerializeRequest(request));
  EXPECT_EQ(back.op, Request::Op::kSubmit);
  EXPECT_EQ(back.figure, "fig_7");
  EXPECT_TRUE(back.quick);
  EXPECT_EQ(back.priority, 2);
}

TEST(ServeProtocol, StatsAndDrainRequestsRoundTrip) {
  Request stats;
  stats.op = Request::Op::kStats;
  EXPECT_EQ(ParseRequest(SerializeRequest(stats)).op, Request::Op::kStats);
  Request drain;
  drain.op = Request::Op::kDrain;
  EXPECT_EQ(ParseRequest(SerializeRequest(drain)).op, Request::Op::kDrain);
}

TEST(ServeProtocol, ParseRequestRejectsMalformedLines) {
  EXPECT_THROW(ParseRequest("not json"), ConfigError);
  EXPECT_THROW(ParseRequest("[1,2]"), ConfigError);
  EXPECT_THROW(ParseRequest("{}"), ConfigError);
  EXPECT_THROW(ParseRequest(R"({"op":"frobnicate"})"), ConfigError);
  // A submit without a figure slug has nothing to run.
  EXPECT_THROW(ParseRequest(R"({"op":"submit"})"), ConfigError);
  // Priorities are integers; silently truncating 1.5 would reorder.
  EXPECT_THROW(
      ParseRequest(R"({"op":"submit","figure":"fig_7","priority":1.5})"),
      ConfigError);
}

TEST(ServeProtocol, EventSerializersRoundTrip) {
  Event e = ParseEvent(SerializeAccepted(7, "fig_7", 3));
  EXPECT_EQ(e.type, EventType::kAccepted);
  EXPECT_EQ(e.body.NumberOr("request", 0.0), 7.0);
  EXPECT_EQ(e.body.StringOr("figure", ""), "fig_7");
  EXPECT_EQ(e.body.NumberOr("queue_depth", -1.0), 3.0);

  e = ParseEvent(SerializeRejected("overloaded", "fig_9"));
  EXPECT_EQ(e.type, EventType::kRejected);
  EXPECT_EQ(e.body.StringOr("reason", ""), "overloaded");

  e = ParseEvent(SerializeProgress(7, 1, 10, "4870 Pixel Float"));
  EXPECT_EQ(e.type, EventType::kProgress);
  EXPECT_EQ(e.body.NumberOr("index", -1.0), 1.0);
  EXPECT_EQ(e.body.NumberOr("count", -1.0), 10.0);
  EXPECT_EQ(e.body.StringOr("curve", ""), "4870 Pixel Float");

  e = ParseEvent(SerializePoint(7, "3870", 0.25, 0.7245));
  EXPECT_EQ(e.type, EventType::kPoint);
  EXPECT_EQ(e.body.NumberOr("x", 0.0), 0.25);
  EXPECT_EQ(e.body.NumberOr("y", 0.0), 0.7245);

  e = ParseEvent(SerializeProfile(7, "3870", "alufetch_r0.25", "alu"));
  EXPECT_EQ(e.type, EventType::kProfile);
  EXPECT_EQ(e.body.StringOr("bottleneck", ""), "alu");

  e = ParseEvent(SerializeDone(7, "fig_7", 1.25, 48, 32, "{\"a\": 1}\n"));
  EXPECT_EQ(e.type, EventType::kDone);
  EXPECT_EQ(e.body.NumberOr("wall_seconds", 0.0), 1.25);
  EXPECT_EQ(e.body.NumberOr("cache_hits", 0.0), 48.0);
  EXPECT_EQ(e.body.NumberOr("cache_misses", 0.0), 32.0);
  // The embedded figure document survives escaping byte for byte.
  EXPECT_EQ(e.body.StringOr("figure_json", ""), "{\"a\": 1}\n");

  e = ParseEvent(SerializeError(7, ErrorKind::kSweepFailed,
                                "sweep exploded"));
  EXPECT_EQ(e.type, EventType::kError);
  EXPECT_EQ(e.body.StringOr("kind", ""), "sweep_failed");
  EXPECT_EQ(e.body.StringOr("message", ""), "sweep exploded");

  e = ParseEvent(SerializeDrained(12));
  EXPECT_EQ(e.type, EventType::kDrained);
  EXPECT_EQ(e.body.NumberOr("completed", 0.0), 12.0);
}

TEST(ServeProtocol, AdaptiveFlagRoundTripsAndStaysOffDenseWires) {
  Request request;
  request.op = Request::Op::kSubmit;
  request.figure = "fig_7";
  // Dense requests serialize without the key at all, so request lines
  // from pre-adaptive clients stay byte-identical.
  EXPECT_EQ(SerializeRequest(request).find("adaptive"), std::string::npos);
  EXPECT_FALSE(ParseRequest(SerializeRequest(request)).adaptive);

  request.adaptive = true;
  const Request back = ParseRequest(SerializeRequest(request));
  EXPECT_TRUE(back.adaptive);

  Request characterize;
  characterize.op = Request::Op::kCharacterize;
  characterize.il = "il_ps_2_0\nend\n";
  characterize.adaptive = true;
  EXPECT_TRUE(ParseRequest(SerializeRequest(characterize)).adaptive);
}

TEST(ServeProtocol, RefineEventRoundTrips) {
  const Event e =
      ParseEvent(SerializeRefine(9, "4870 Pixel Float", 2, 3, 9, 32));
  EXPECT_EQ(e.type, EventType::kRefine);
  EXPECT_EQ(e.body.NumberOr("request", 0.0), 9.0);
  EXPECT_EQ(e.body.StringOr("curve", ""), "4870 Pixel Float");
  EXPECT_EQ(e.body.NumberOr("wave", -1.0), 2.0);
  EXPECT_EQ(e.body.NumberOr("points", -1.0), 3.0);
  EXPECT_EQ(e.body.NumberOr("spent", -1.0), 9.0);
  EXPECT_EQ(e.body.NumberOr("dense", -1.0), 32.0);
  EXPECT_EQ(ToString(EventType::kRefine), "refine");
}

TEST(ServeProtocol, NamesEveryErrorKind) {
  EXPECT_EQ(ToString(ErrorKind::kSweepFailed), "sweep_failed");
  EXPECT_EQ(ToString(ErrorKind::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(ToString(ErrorKind::kWorkerLost), "worker_lost");
  EXPECT_EQ(ToString(ErrorKind::kProtocolError), "protocol_error");
}

TEST(ServeProtocol, PingPongAndKillWorkerRoundTrip) {
  Request ping;
  ping.op = Request::Op::kPing;
  ping.seq = 12;
  const Request ping_back = ParseRequest(SerializeRequest(ping));
  EXPECT_EQ(ping_back.op, Request::Op::kPing);
  EXPECT_EQ(ping_back.seq, 12u);
  EXPECT_THROW(ParseRequest(R"({"op":"ping","seq":-1})"), ConfigError);

  Request kill;
  kill.op = Request::Op::kKillWorker;
  kill.worker = 3;
  const Request kill_back = ParseRequest(SerializeRequest(kill));
  EXPECT_EQ(kill_back.op, Request::Op::kKillWorker);
  EXPECT_EQ(kill_back.worker, 3u);
  // A kill without a target index has nobody to kill.
  EXPECT_THROW(ParseRequest(R"({"op":"kill_worker"})"), ConfigError);

  PongStats pong;
  pong.completed = 5;
  pong.failed = 1;
  pong.cache_hits = 10;
  pong.cache_misses = 4;
  Event e = ParseEvent(SerializePong(2, 12, pong));
  EXPECT_EQ(e.type, EventType::kPong);
  EXPECT_EQ(e.body.NumberOr("worker", -1.0), 2.0);
  EXPECT_EQ(e.body.NumberOr("seq", -1.0), 12.0);
  EXPECT_EQ(e.body.NumberOr("completed", -1.0), 5.0);
  EXPECT_EQ(e.body.NumberOr("failed", -1.0), 1.0);
  EXPECT_EQ(e.body.NumberOr("cache_hits", -1.0), 10.0);
  EXPECT_EQ(e.body.NumberOr("cache_misses", -1.0), 4.0);

  e = ParseEvent(SerializeKilled(1));
  EXPECT_EQ(e.type, EventType::kKilled);
  EXPECT_EQ(e.body.NumberOr("worker", -1.0), 1.0);
}

TEST(ServeProtocol, ParseEventRejectsUnknownTags) {
  EXPECT_THROW(ParseEvent("not json"), ConfigError);
  EXPECT_THROW(ParseEvent(R"({"event":"mystery"})"), ConfigError);
  EXPECT_THROW(ParseEvent(R"({"no_event_key":1})"), ConfigError);
}

TEST(ServeProtocol, StatsRoundTripPreservesEveryField) {
  ServeStats stats;
  stats.version = "abc123-dirty";
  stats.queue_depth = 3;
  stats.in_flight = 2;
  stats.max_queue = 16;
  stats.max_inflight = 4;
  stats.completed = 10;
  stats.failed = 1;
  stats.rejected = 2;
  stats.cache_hits = 128;
  stats.cache_misses = 32;
  stats.cache_hit_rate = 0.8;
  stats.cache_size = 32;
  stats.latencies = {{"fig_11", 4, 0.5, 0.9, 0.99}, {"fig_7", 6, 1.5, 2.0,
                                                     2.5}};
  stats.workers = {{0, "healthy", 4242, 0, 2, 1}, {1, "dead", -1, 3, 0, 4}};
  const Event event = ParseEvent(SerializeStats(stats));
  ASSERT_EQ(event.type, EventType::kStats);
  const ServeStats back = ParseStats(event.body);
  EXPECT_EQ(back.version, stats.version);
  EXPECT_EQ(back.queue_depth, stats.queue_depth);
  EXPECT_EQ(back.in_flight, stats.in_flight);
  EXPECT_EQ(back.max_queue, stats.max_queue);
  EXPECT_EQ(back.max_inflight, stats.max_inflight);
  EXPECT_EQ(back.completed, stats.completed);
  EXPECT_EQ(back.failed, stats.failed);
  EXPECT_EQ(back.rejected, stats.rejected);
  EXPECT_EQ(back.cache_hits, stats.cache_hits);
  EXPECT_EQ(back.cache_misses, stats.cache_misses);
  EXPECT_DOUBLE_EQ(back.cache_hit_rate, stats.cache_hit_rate);
  EXPECT_EQ(back.cache_size, stats.cache_size);
  EXPECT_EQ(back.latencies, stats.latencies);
  EXPECT_EQ(back.workers, stats.workers);
  // A single-process daemon emits no workers array at all, and the
  // parse maps that back to an empty vector.
  ServeStats solo;
  solo.version = "v";
  EXPECT_EQ(SerializeStats(solo).find("\"workers\""), std::string::npos);
  EXPECT_TRUE(
      ParseStats(ParseEvent(SerializeStats(solo)).body).workers.empty());
}

// ---------------------------------------------------------------- registry

TEST(FigureRegistry, NormalizeSlugUnifiesSpellings) {
  EXPECT_EQ(NormalizeSlug("fig_7"), NormalizeSlug("fig07"));
  EXPECT_EQ(NormalizeSlug("fig_7"), NormalizeSlug("Fig7"));
  EXPECT_EQ(NormalizeSlug("fig_7"), NormalizeSlug("Fig. 7"));
  EXPECT_EQ(NormalizeSlug("fig_15a"), NormalizeSlug("Fig15A"));
  EXPECT_NE(NormalizeSlug("fig_7"), NormalizeSlug("fig_17"));
  EXPECT_NE(NormalizeSlug("fig_15a"), NormalizeSlug("fig_15b"));
  // A run of zeros is a value, not padding.
  EXPECT_EQ(NormalizeSlug("fig00"), NormalizeSlug("fig0"));
  EXPECT_NE(NormalizeSlug("fig0"), NormalizeSlug("fig"));
}

TEST(FigureRegistry, CoversFigures7Through17) {
  std::vector<std::string> slugs;
  for (const FigureDef& def : Registry()) slugs.push_back(def.slug);
  const std::vector<std::string> expected = {
      "fig_7",  "fig_8",  "fig_9",   "fig_10",  "fig_11", "fig_12",
      "fig_13", "fig_14", "fig_15a", "fig_15b", "fig_16", "fig_17"};
  EXPECT_EQ(slugs, expected);
  for (const FigureDef& def : Registry()) {
    EXPECT_EQ(def.slug, report::FigureSlug(def.id)) << def.id;
    EXPECT_FALSE(def.curves.empty()) << def.slug;
    EXPECT_FALSE(def.bench_prefix.empty()) << def.slug;
  }
}

TEST(FigureRegistry, FindAcceptsAnySpelling) {
  const FigureDef* canonical = Find("fig_7");
  ASSERT_NE(canonical, nullptr);
  EXPECT_EQ(Find("fig07"), canonical);
  EXPECT_EQ(Find("Fig7"), canonical);
  EXPECT_EQ(Find("FIG_07"), canonical);
  EXPECT_EQ(Find("fig_99"), nullptr);
  EXPECT_EQ(Find(""), nullptr);
}

// --------------------------------------------------------------- scheduler

TEST(SchedulerToString, NamesEveryAdmission) {
  EXPECT_EQ(ToString(Admission::kAccepted), "accepted");
  EXPECT_EQ(ToString(Admission::kRejectedOverloaded), "overloaded");
  EXPECT_EQ(ToString(Admission::kRejectedDraining), "draining");
}

TEST(SchedulerTest, RunsJobsAndWaitsIdle) {
  Scheduler scheduler(/*max_queue=*/8, /*max_inflight=*/2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    const auto ticket =
        scheduler.Submit(0, [&](std::uint64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ticket.admission, Admission::kAccepted);
  }
  scheduler.StopAdmission();
  scheduler.WaitIdle();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  EXPECT_EQ(scheduler.InFlight(), 0u);
}

TEST(SchedulerTest, PopsByPriorityThenArrivalOrder) {
  Scheduler scheduler(/*max_queue=*/8, /*max_inflight=*/1);
  // Block the single worker so the later submits queue up and the pop
  // order is decided purely by the scheduler, not by timing.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  scheduler.Submit(0, [gate](std::uint64_t) { gate.wait(); });

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto note = [&](std::string name) {
    return [&, name = std::move(name)](std::uint64_t) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(name);
    };
  };
  scheduler.Submit(0, note("low-a"));
  scheduler.Submit(2, note("high-a"));
  scheduler.Submit(1, note("mid"));
  scheduler.Submit(2, note("high-b"));
  scheduler.Submit(0, note("low-b"));
  release.set_value();
  scheduler.StopAdmission();
  scheduler.WaitIdle();
  EXPECT_EQ(order, (std::vector<std::string>{"high-a", "high-b", "mid",
                                             "low-a", "low-b"}));
}

TEST(SchedulerTest, OverloadRejectionIsDeterministic) {
  // ISSUE acceptance case: queue 1, inflight 1 — the first request may
  // run, the second may wait, the third must be rejected "overloaded"
  // no matter how fast the worker is, because admission counts
  // outstanding work (queued + in-flight), not queue occupancy.
  Scheduler scheduler(/*max_queue=*/1, /*max_inflight=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  EXPECT_EQ(scheduler.Submit(0, [gate](std::uint64_t) { gate.wait(); })
                .admission,
            Admission::kAccepted);
  EXPECT_EQ(scheduler.Submit(0, [](std::uint64_t) {}).admission,
            Admission::kAccepted);
  const auto third = scheduler.Submit(0, [](std::uint64_t) {
    FAIL() << "an overloaded submit must never execute";
  });
  EXPECT_EQ(third.admission, Admission::kRejectedOverloaded);
  release.set_value();
  scheduler.StopAdmission();
  scheduler.WaitIdle();
}

TEST(SchedulerTest, StopAdmissionRejectsButFinishesAdmittedJobs) {
  Scheduler scheduler(/*max_queue=*/4, /*max_inflight=*/1);
  std::atomic<int> ran{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  scheduler.Submit(0, [&, gate](std::uint64_t) {
    gate.wait();
    ran.fetch_add(1);
  });
  scheduler.Submit(0, [&](std::uint64_t) { ran.fetch_add(1); });
  scheduler.StopAdmission();
  EXPECT_EQ(scheduler.Submit(0, [](std::uint64_t) {}).admission,
            Admission::kRejectedDraining);
  release.set_value();
  scheduler.WaitIdle();
  // Both admitted jobs finished; the rejected one never ran.
  EXPECT_EQ(ran.load(), 2);
}

TEST(SchedulerTest, AssignsMonotonicRequestIds) {
  Scheduler scheduler(/*max_queue=*/8, /*max_inflight=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  const auto a = scheduler.Submit(0, [gate](std::uint64_t) { gate.wait(); });
  const auto b = scheduler.Submit(0, [](std::uint64_t) {});
  const auto c = scheduler.Submit(0, [](std::uint64_t) {});
  EXPECT_LT(a.id, b.id);
  EXPECT_LT(b.id, c.id);
  release.set_value();
  scheduler.Shutdown();
}

// ---------------------------------------------------------- worker health

TEST(WorkerHealth, NamesEveryState) {
  EXPECT_EQ(ToString(WorkerState::kStarting), "starting");
  EXPECT_EQ(ToString(WorkerState::kHealthy), "healthy");
  EXPECT_EQ(ToString(WorkerState::kDegraded), "degraded");
  EXPECT_EQ(ToString(WorkerState::kDead), "dead");
}

TEST(WorkerHealth, LifecycleTransitions) {
  HealthPolicy policy;
  policy.miss_threshold = 3;
  HealthTracker tracker(policy);
  EXPECT_EQ(tracker.state(), WorkerState::kDead);  // Never spawned.
  tracker.OnSpawned();
  EXPECT_EQ(tracker.state(), WorkerState::kStarting);
  EXPECT_EQ(tracker.restarts(), 0u);  // The first spawn is not a restart.
  tracker.OnPong();
  EXPECT_EQ(tracker.state(), WorkerState::kHealthy);
  EXPECT_FALSE(tracker.OnMiss());
  EXPECT_EQ(tracker.state(), WorkerState::kDegraded);
  tracker.OnPong();  // One pong fully recovers the slot.
  EXPECT_EQ(tracker.state(), WorkerState::kHealthy);
  EXPECT_EQ(tracker.misses(), 0u);
  EXPECT_FALSE(tracker.OnMiss());
  EXPECT_FALSE(tracker.OnMiss());
  EXPECT_TRUE(tracker.OnMiss());  // The third consecutive miss kills it.
  EXPECT_EQ(tracker.state(), WorkerState::kDead);
  tracker.OnSpawned();
  EXPECT_EQ(tracker.state(), WorkerState::kStarting);
  EXPECT_EQ(tracker.restarts(), 1u);
  tracker.OnExit();  // A reaped process is dead regardless of misses.
  EXPECT_EQ(tracker.state(), WorkerState::kDead);
}

TEST(WorkerHealth, StartingWorkersGetDoubleMissGrace) {
  HealthPolicy policy;
  policy.miss_threshold = 2;
  HealthTracker tracker(policy);
  tracker.OnSpawned();
  // A worker still binding its socket has answered nothing yet: it
  // survives miss_threshold * 2 - 1 misses and dies on the next.
  EXPECT_FALSE(tracker.OnMiss());
  EXPECT_FALSE(tracker.OnMiss());
  EXPECT_FALSE(tracker.OnMiss());
  EXPECT_EQ(tracker.state(), WorkerState::kStarting);
  EXPECT_TRUE(tracker.OnMiss());
  EXPECT_EQ(tracker.state(), WorkerState::kDead);
  EXPECT_FALSE(tracker.OnMiss());  // Dead stays dead without a spawn.
}

TEST(WorkerHealth, RestartBackoffIsCappedExponentialWithoutJitter) {
  HealthPolicy policy;
  policy.backoff_base_ms = 50.0;
  policy.backoff_cap_ms = 2000.0;
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 1), 50.0);
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 2), 100.0);
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 3), 200.0);
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 6), 1600.0);
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 7), 2000.0);  // Capped.
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 30), 2000.0);
  // No jitter: the delay is a pure function of the restart count, so a
  // seeded kill schedule replays the identical recovery timeline.
  EXPECT_DOUBLE_EQ(RestartBackoffMs(policy, 5), RestartBackoffMs(policy, 5));
}

// ---------------------------------------------------------------- routing

TEST(ServeRouting, RoutingIsDeterministicAndCoversEverySlot) {
  const HashRing a(3);
  const HashRing b(3);
  std::vector<unsigned> hits(3, 0);
  for (int i = 0; i < 64; ++i) {
    const std::string key = "fig_" + std::to_string(i);
    const std::optional<unsigned> ra = a.Route(key);
    ASSERT_TRUE(ra.has_value());
    EXPECT_EQ(ra, b.Route(key));  // Pure function of (workers, key).
    ++hits[*ra];
  }
  for (unsigned slot = 0; slot < 3; ++slot) {
    EXPECT_GT(hits[slot], 0u) << "slot " << slot << " never routed";
  }
}

TEST(ServeRouting, DeadWorkerMovesOnlyItsOwnKeys) {
  const HashRing ring(4);
  const std::vector<bool> all(4, true);
  std::vector<bool> without2(4, true);
  without2[2] = false;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "fig_" + std::to_string(i);
    const unsigned before = *ring.Route(key, all);
    const unsigned after = *ring.Route(key, without2);
    if (before != 2) {
      EXPECT_EQ(after, before) << key;  // Survivors keep their caches hot.
    } else {
      EXPECT_NE(after, 2u) << key;  // The dead slot's keys move on.
    }
  }
}

TEST(ServeRouting, NoEligibleSlotRoutesNowhere) {
  const HashRing ring(3);
  EXPECT_FALSE(ring.Route("fig_7", {false, false, false}).has_value());
  const std::optional<unsigned> only = ring.Route("fig_7",
                                                  {false, true, false});
  ASSERT_TRUE(only.has_value());
  EXPECT_EQ(*only, 1u);
}

// ------------------------------------------------------------ result store

TEST(ResultStoreTest, EvictsLatencySamplesBeyondTheWindow) {
  ResultStore store(/*window=*/4);
  for (int i = 0; i < 10; ++i) {
    store.RecordCompleted("fig_91", 0.1 * static_cast<double>(i));
  }
  EXPECT_EQ(store.Completed(), 10u);
  EXPECT_EQ(store.RetainedSamples("fig_91"), 4u);
  const std::vector<FigureLatency> latencies = store.Latencies();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_EQ(latencies[0].count, 10u);  // Cumulative, not windowed.
  // Percentiles cover only the four retained samples {0.6 .. 0.9}: the
  // early small latencies were evicted FIFO.
  EXPECT_GE(latencies[0].p50_seconds, 0.6);
  EXPECT_LE(latencies[0].p99_seconds, 0.9 + 1e-12);
}

// ---------------------------------------------------------------- session

TEST(ServeSession, BoundedReadTimesOutAndKeepsPartialInput) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Session reader(fds[0]);
  std::string line;
  EXPECT_EQ(reader.ReadLine(&line, 10), ReadStatus::kTimeout);
  ASSERT_EQ(::send(fds[1], "par", 3, 0), 3);
  EXPECT_EQ(reader.ReadLine(&line, 10), ReadStatus::kTimeout);
  ASSERT_EQ(::send(fds[1], "tial\nnext\n", 10, 0), 10);
  ASSERT_EQ(reader.ReadLine(&line, 1000), ReadStatus::kLine);
  EXPECT_EQ(line, "partial");  // The pre-timeout prefix was kept.
  ASSERT_EQ(reader.ReadLine(&line, 1000), ReadStatus::kLine);
  EXPECT_EQ(line, "next");
  ::close(fds[1]);
  EXPECT_EQ(reader.ReadLine(&line, 1000), ReadStatus::kClosed);
}

// ------------------------------------------------------------ end to end

/// A tiny controllable registry: two deterministic curves that append
/// fixed points, plus a "blocking" figure whose curve waits on a shared
/// gate (for overload tests) — no simulator work, so these tests are
/// fast and timing-independent.
struct TestRegistry {
  std::shared_ptr<std::promise<void>> release =
      std::make_shared<std::promise<void>>();
  std::shared_future<void> gate = release->get_future().share();
  std::vector<FigureDef> defs;

  TestRegistry() {
    FigureDef tiny;
    tiny.slug = "fig_91";
    tiny.bench_prefix = "Fig91";
    tiny.id = "Fig. 91 — Serve Test";
    tiny.title = "Serve Test";
    tiny.x_label = "x";
    tiny.y_label = "y";
    tiny.paper_claim = "none";
    tiny.what = "serve test fixture";
    tiny.curves.push_back(
        {"alpha", [](report::Figure& figure, const RunOptions& opts) {
           Series& series = figure.set.Get("alpha");
           series.Add(1.0, 10.0);
           if (!opts.quick) series.Add(2.0, 20.0);
           return series.Points().back().y;
         }});
    tiny.curves.push_back(
        {"beta", [](report::Figure& figure, const RunOptions&) {
           figure.set.Get("beta").Add(1.0, 100.0);
           figure.findings.push_back({report::FindingKind::kPlateau,
                                      "beta", "peak", 100.0, "y", ""});
           return 100.0;
         }});
    defs.push_back(std::move(tiny));

    FigureDef blocking;
    blocking.slug = "fig_92";
    blocking.bench_prefix = "Fig92";
    blocking.id = "Fig. 92 — Serve Block Test";
    blocking.title = "Serve Block Test";
    blocking.x_label = "x";
    blocking.y_label = "y";
    blocking.paper_claim = "none";
    blocking.what = "blocks until the test releases it";
    blocking.curves.push_back(
        {"wait", [gate = gate](report::Figure& figure, const RunOptions&) {
           gate.wait();
           figure.set.Get("wait").Add(1.0, 1.0);
           return 1.0;
         }});
    defs.push_back(std::move(blocking));

    FigureDef failing;
    failing.slug = "fig_93";
    failing.bench_prefix = "Fig93";
    failing.id = "Fig. 93 — Serve Error Test";
    failing.title = "Serve Error Test";
    failing.x_label = "x";
    failing.y_label = "y";
    failing.paper_claim = "none";
    failing.what = "throws mid-sweep";
    failing.curves.push_back(
        {"boom", [](report::Figure&, const RunOptions&) -> double {
           throw ConfigError("synthetic sweep failure");
         }});
    defs.push_back(std::move(failing));
  }
};

std::string TestSocketPath(const char* name) {
  std::ostringstream os;
  os << ::testing::TempDir() << "amdmb_test_" << ::getpid() << "_" << name
     << ".sock";
  return os.str();
}

TEST(ServeServer, EndToEndDoneMatchesDirectBuildByteForByte) {
  TestRegistry registry;
  registry.release->set_value();  // Nothing should block in this test.
  ServerConfig config;
  config.socket_path = TestSocketPath("bytes");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  RunOptions opts;
  opts.quick = true;
  const std::string expected =
      report::BenchJson(suite::figures::Build(registry.defs[0], opts));

  Client client = Client::Connect(config.socket_path);
  std::vector<EventType> streamed;
  const Event done =
      client.Submit("fig_91", /*quick=*/true, /*priority=*/0,
                    [&](const Event& event) { streamed.push_back(event.type); });
  ASSERT_EQ(done.type, EventType::kDone);
  EXPECT_EQ(done.body.StringOr("figure_json", ""), expected);
  // accepted, one progress + one point per curve.
  EXPECT_EQ(streamed,
            (std::vector<EventType>{EventType::kAccepted, EventType::kProgress,
                                    EventType::kPoint, EventType::kProgress,
                                    EventType::kPoint}));
  server.Drain();
}

TEST(ServeServer, QuickFlagComesFromTheRequestNotTheEnvironment) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("quick");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event quick = client.Submit("fig_91", true, 0);
  const Event full = client.Submit("fig_91", false, 0);
  ASSERT_EQ(quick.type, EventType::kDone);
  ASSERT_EQ(full.type, EventType::kDone);
  const std::string quick_json = quick.body.StringOr("figure_json", "");
  const std::string full_json = full.body.StringOr("figure_json", "");
  EXPECT_NE(quick_json, full_json);  // The full sweep has an extra point.
  EXPECT_NE(quick_json.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(full_json.find("\"quick\": false"), std::string::npos);
  server.Drain();
}

TEST(ServeServer, AdaptiveSubmitStreamsRefineEventsAndMatchesDirectBuild) {
  // Real registry: the synthetic test figures ignore opts.adaptive, so
  // this runs the smallest real figure adaptively at quick scale.
  ServerConfig config;
  config.socket_path = TestSocketPath("adaptive");
  Server server(config);
  server.Start();

  adapt::Settings settings;  // Matches the daemon's env-default snapshot.
  RunOptions opts;
  opts.quick = true;
  opts.adaptive = &settings;
  const suite::figures::FigureDef* def = suite::figures::Find("fig_7");
  ASSERT_NE(def, nullptr);
  const std::string expected =
      report::BenchJson(suite::figures::Build(*def, opts));

  Client client = Client::Connect(config.socket_path);
  std::size_t refines = 0;
  const Event done = client.Submit(
      "fig_7", /*quick=*/true, /*adaptive=*/true, /*priority=*/0,
      [&](const Event& event) {
        if (event.type == EventType::kRefine) {
          ++refines;
          EXPECT_FALSE(event.body.StringOr("curve", "").empty());
          EXPECT_GT(event.body.NumberOr("dense", 0.0), 0.0);
        }
      });
  ASSERT_EQ(done.type, EventType::kDone);
  // Served adaptive documents are byte-identical to a direct adaptive
  // build, and the stream carried at least one refine wave per curve.
  EXPECT_EQ(done.body.StringOr("figure_json", ""), expected);
  EXPECT_GE(refines, def->curves.size());
  EXPECT_NE(done.body.StringOr("figure_json", "").find("\"adaptive\": true"),
            std::string::npos);

  // A dense submit through the same daemon stays dense.
  const Event dense = client.Submit("fig_7", true, 0);
  ASSERT_EQ(dense.type, EventType::kDone);
  EXPECT_EQ(dense.body.StringOr("figure_json", "").find("\"adaptive\""),
            std::string::npos);
  server.Drain();
}

TEST(ServeServer, UnknownFigureIsRejectedWithoutSideEffects) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("unknown");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event rejected = client.Submit("fig_404", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "unknown_figure");
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 0u);
  server.Drain();
}

TEST(ServeServer, SweepErrorIsReportedNotFatal) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("error");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event error = client.Submit("fig_93", true, 0);
  ASSERT_EQ(error.type, EventType::kError);
  EXPECT_NE(error.body.StringOr("message", "").find("synthetic"),
            std::string::npos);
  // The daemon survives: the next request on the same session works.
  const Event done = client.Submit("fig_91", true, 0);
  EXPECT_EQ(done.type, EventType::kDone);
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  server.Drain();
}

TEST(ServeServer, ThirdRequestOverloadsAOneDeepQueue) {
  TestRegistry registry;
  ServerConfig config;
  config.socket_path = TestSocketPath("overload");
  config.max_queue = 1;
  config.max_inflight = 1;
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  // Separate sessions so the rejected submit is not stuck behind the
  // first one's event stream.
  Client first = Client::Connect(config.socket_path);
  Client second = Client::Connect(config.socket_path);
  Client third = Client::Connect(config.socket_path);

  std::promise<void> first_accepted;
  std::thread first_thread([&] {
    first.Submit("fig_92", true, 0, [&](const Event& event) {
      if (event.type == EventType::kAccepted) first_accepted.set_value();
    });
  });
  first_accepted.get_future().wait();  // In flight, blocked on the gate.

  std::promise<void> second_accepted;
  std::thread second_thread([&] {
    second.Submit("fig_92", true, 0, [&](const Event& event) {
      if (event.type == EventType::kAccepted) second_accepted.set_value();
    });
  });
  second_accepted.get_future().wait();  // Queued: capacity is now full.

  const Event rejected = third.Submit("fig_92", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "overloaded");

  registry.release->set_value();
  first_thread.join();
  second_thread.join();
  const ServeStats stats = third.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  server.Drain();
}

TEST(ServeServer, DrainRejectsNewSubmitsAndReportsCompleted) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("drain");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  ASSERT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  EXPECT_FALSE(server.DrainRequested());
  EXPECT_EQ(client.Drain(), 1u);  // One request had completed.
  EXPECT_TRUE(server.DrainRequested());

  const Event rejected = client.Submit("fig_91", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "draining");
  server.Drain();
}

/// Projects an event stream onto its deterministic fields (wall-clock
/// seconds and cache totals vary run to run; everything else must not).
std::vector<std::string> DeterministicProjection(
    const std::vector<Event>& events) {
  std::vector<std::string> out;
  for (const Event& event : events) {
    std::ostringstream os;
    os << ToString(event.type);
    switch (event.type) {
      case EventType::kAccepted:
        os << " " << event.body.StringOr("figure", "");
        break;
      case EventType::kProgress:
        os << " " << event.body.NumberOr("index", -1.0) << "/"
           << event.body.NumberOr("count", -1.0) << " "
           << event.body.StringOr("curve", "");
        break;
      case EventType::kPoint:
        os << " " << event.body.StringOr("curve", "") << " "
           << event.body.NumberOr("x", 0.0) << " "
           << event.body.NumberOr("y", 0.0);
        break;
      case EventType::kDone:
        os << " " << event.body.StringOr("figure", "") << " "
           << event.body.StringOr("figure_json", "");
        break;
      default:
        break;
    }
    out.push_back(os.str());
  }
  return out;
}

TEST(ServeServer, EventStreamIsDeterministicAcrossRuns) {
  // Same request sequence, serial execution (inflight 1, concurrency 1)
  // → identical event streams modulo wall-clock fields, across two
  // independent daemon instances.
  const auto run = [](const char* tag) {
    TestRegistry registry;
    registry.release->set_value();
    ServerConfig config;
    config.socket_path = TestSocketPath(tag);
    config.max_inflight = 1;
    config.registry = &registry.defs;
    Server server(config);
    server.Start();
    Client client = Client::Connect(config.socket_path);
    std::vector<Event> events;
    for (const bool quick : {true, false, true}) {
      const Event done = client.Submit(
          "fig_91", quick, 0,
          [&](const Event& event) { events.push_back(event); });
      events.push_back(done);
    }
    server.Drain();
    return DeterministicProjection(events);
  };
  EXPECT_EQ(run("det_a"), run("det_b"));
}

TEST(ServeServer, StatsReportCountsAndLimits) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("stats");
  config.max_queue = 5;
  config.max_inflight = 2;
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  ASSERT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  ASSERT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  const ServeStats stats = client.Stats();
  EXPECT_FALSE(stats.version.empty());
  EXPECT_EQ(stats.max_queue, 5u);
  EXPECT_EQ(stats.max_inflight, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  ASSERT_EQ(stats.latencies.size(), 1u);
  EXPECT_EQ(stats.latencies[0].figure, "fig_91");
  EXPECT_EQ(stats.latencies[0].count, 2u);
  EXPECT_LE(stats.latencies[0].p50_seconds, stats.latencies[0].p99_seconds);
  server.Drain();
}

TEST(ServeServer, LoadGeneratorIsDeterministicAndCompletes) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("loadgen");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  LoadGenOptions options;
  options.socket_path = config.socket_path;
  options.requests = 6;
  options.concurrency = 2;
  options.seed = 42;
  options.figures = {"fig_91"};
  const LoadGenReport report = RunLoadGenerator(options);
  EXPECT_EQ(report.requests, 6u);
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_LE(report.p50_seconds, report.p99_seconds);
  server.Drain();
}

TEST(ServeClient, ConnectToMissingSocketIsATypedError) {
  EXPECT_THROW(Client::Connect(TestSocketPath("nobody_listens")),
               ConfigError);
}

TEST(ServeClient, ConnectRetriesRideOutALateBindingDaemon) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("late_bind");
  config.registry = &registry.defs;
  Server server(config);
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    server.Start();
  });
  // The fail-fast default would throw here; retries (50 ms backoff,
  // doubling, 1 s cap) ride out the bind race.
  Client client = Client::Connect(config.socket_path, /*retries=*/8);
  starter.join();
  EXPECT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  server.Drain();
}

TEST(ServeClient, KillWorkerAgainstSingleProcessDaemonIsATypedError) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("kill_solo");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();
  Client client = Client::Connect(config.socket_path);
  try {
    client.KillWorker(0);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("does not supervise"),
              std::string::npos);
  }
  server.Drain();
}

// -------------------------------------------------------- socket hygiene

TEST(ServeNet, StaleSocketFileIsRecoveredOnStartup) {
  const std::string path = TestSocketPath("stale");
  // A crashed daemon leaves its socket file behind: bind, then close
  // the descriptor without unlinking the path.
  const int crashed = MakeListenSocket(path);
  ASSERT_GE(crashed, 0);
  ::close(crashed);
  // The next daemon probes the file, finds no listener, and rebinds.
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = path;
  config.registry = &registry.defs;
  Server server(config);
  server.Start();
  Client client = Client::Connect(path);
  EXPECT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  server.Drain();
}

TEST(ServeNet, LiveDaemonSocketIsNeverStolen) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("live");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();
  try {
    MakeListenSocket(config.socket_path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("live daemon"), std::string::npos);
  }
  // The incumbent is unharmed by the refused takeover.
  Client client = Client::Connect(config.socket_path);
  EXPECT_EQ(client.Submit("fig_91", true, 0).type, EventType::kDone);
  server.Drain();
}

// ------------------------------------------------------- protocol limits

TEST(ServeServer, MalformedRequestLineGetsTypedProtocolError) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("badline");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();
  const int fd = ConnectUnixSocket(config.socket_path);
  ASSERT_GE(fd, 0);
  Session raw(fd);
  ASSERT_TRUE(raw.WriteLine("this is not json"));
  std::string line;
  ASSERT_EQ(raw.ReadLine(&line, 5000), ReadStatus::kLine);
  const Event error = ParseEvent(line);
  ASSERT_EQ(error.type, EventType::kError);
  EXPECT_EQ(error.body.StringOr("kind", ""), "protocol_error");
  // One garbage line does not poison the session.
  ASSERT_TRUE(raw.WriteLine(R"({"op":"stats"})"));
  ASSERT_EQ(raw.ReadLine(&line, 5000), ReadStatus::kLine);
  EXPECT_EQ(ParseEvent(line).type, EventType::kStats);
  server.Drain();
}

TEST(ServeServer, OversizedRequestLineGetsTypedErrorThenClose) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("oversize");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();
  const int fd = ConnectUnixSocket(config.socket_path);
  ASSERT_GE(fd, 0);
  // Stream one unterminated line past the bound. The daemon stops
  // reading at the cap and answers, so late sends may fail — that is
  // fine (MSG_NOSIGNAL keeps the failure an errno, not a SIGPIPE).
  const std::string chunk(1u << 16, 'x');
  std::size_t sent = 0;
  while (sent <= kMaxLineBytes) {
    const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  Session raw(fd);
  std::string line;
  ASSERT_EQ(raw.ReadLine(&line, 30000), ReadStatus::kLine);
  const Event error = ParseEvent(line);
  ASSERT_EQ(error.type, EventType::kError);
  EXPECT_EQ(error.body.StringOr("kind", ""), "protocol_error");
  EXPECT_NE(error.body.StringOr("message", "").find("exceeds"),
            std::string::npos);
  // The daemon hangs up after the typed error.
  EXPECT_EQ(raw.ReadLine(&line, 30000), ReadStatus::kClosed);
  server.Drain();
}

TEST(ServeServer, DrainWaitsForInFlightSweeps) {
  TestRegistry registry;
  ServerConfig config;
  config.socket_path = TestSocketPath("drain_inflight");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client submitter = Client::Connect(config.socket_path);
  Client drainer = Client::Connect(config.socket_path);
  std::promise<void> accepted;
  std::thread submit_thread([&] {
    const Event done = submitter.Submit(
        "fig_92", true, 0, [&](const Event& event) {
          if (event.type == EventType::kAccepted) accepted.set_value();
        });
    EXPECT_EQ(done.type, EventType::kDone);
  });
  accepted.get_future().wait();  // The sweep is in flight, gated.

  std::atomic<bool> drained{false};
  std::thread drain_thread([&] {
    EXPECT_EQ(drainer.Drain(), 1u);  // Blocks until the sweep finishes.
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(drained.load());  // Still waiting on the in-flight sweep.
  registry.release->set_value();
  drain_thread.join();
  EXPECT_TRUE(drained.load());
  submit_thread.join();
  server.Drain();
}

// -------------------------------------------------------------- fleet e2e

/// Cross-process gating for fleet tests: a forked worker cannot share an
/// in-memory promise with the test, so gated curves poll for a marker
/// file instead. Bounded, so an orphaned worker can never hang a drain
/// forever.
bool WaitForFile(const std::string& path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (::access(path.c_str(), F_OK) == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

void TouchFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  Require(file != nullptr, "TouchFile: fopen(" + path + ") failed");
  std::fclose(file);
}

std::string TestGatePath(const char* name) {
  std::ostringstream os;
  os << ::testing::TempDir() << "amdmb_gate_" << ::getpid() << "_" << name;
  return os.str();
}

/// Figures for the fleet tests:
///   fig_94 — instant single curve (routing / stats / chaos fodder).
///   fig_95 — one gated curve: streams nothing until the gate file
///            exists, so losing its worker early is failover-eligible
///            (zero sweep events forwarded).
///   fig_96 — an instant curve then a gated one: the request has
///            streamed by the time it blocks, so losing its worker is a
///            terminal worker_lost.
struct FleetRegistry {
  std::vector<FigureDef> defs;

  explicit FleetRegistry(const std::string& gate_path) {
    const auto make = [](const char* slug, const char* prefix,
                         const char* id) {
      FigureDef def;
      def.slug = slug;
      def.bench_prefix = prefix;
      def.id = id;
      def.title = id;
      def.x_label = "x";
      def.y_label = "y";
      def.paper_claim = "none";
      def.what = "fleet test fixture";
      return def;
    };
    FigureDef instant = make("fig_94", "Fig94", "Fig. 94 — Fleet Instant");
    instant.curves.push_back(
        {"alpha", [](report::Figure& figure, const RunOptions&) {
           figure.set.Get("alpha").Add(1.0, 10.0);
           return 10.0;
         }});
    defs.push_back(std::move(instant));

    FigureDef gated = make("fig_95", "Fig95", "Fig. 95 — Fleet Gated");
    gated.curves.push_back(
        {"wait", [gate_path](report::Figure& figure, const RunOptions&) {
           if (!WaitForFile(gate_path, 30000)) {
             throw ConfigError("fleet gate file never appeared");
           }
           figure.set.Get("wait").Add(1.0, 1.0);
           return 1.0;
         }});
    defs.push_back(std::move(gated));

    FigureDef streaming = make("fig_96", "Fig96", "Fig. 96 — Fleet Stream");
    streaming.curves.push_back(
        {"head", [](report::Figure& figure, const RunOptions&) {
           figure.set.Get("head").Add(1.0, 2.0);
           return 2.0;
         }});
    streaming.curves.push_back(
        {"tail", [gate_path](report::Figure& figure, const RunOptions&) {
           if (!WaitForFile(gate_path, 30000)) {
             throw ConfigError("fleet gate file never appeared");
           }
           figure.set.Get("tail").Add(1.0, 3.0);
           return 3.0;
         }});
    defs.push_back(std::move(streaming));
  }
};

SupervisorConfig FleetConfig(const char* tag, const FleetRegistry& registry,
                             unsigned workers) {
  SupervisorConfig config;
  config.socket_path = TestSocketPath(tag);
  config.workers = workers;
  config.registry = &registry.defs;
  config.health.heartbeat_ms = 50;
  config.health.miss_threshold = 3;
  config.health.backoff_base_ms = 10.0;
  config.health.backoff_cap_ms = 50.0;
  return config;
}

/// Polls the daemon's stats until `pred` holds or the budget expires;
/// returns the last snapshot either way (the test's own EXPECTs then
/// produce the real failure message).
ServeStats AwaitStats(Client& client,
                      const std::function<bool(const ServeStats&)>& pred,
                      int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  ServeStats stats = client.Stats();
  while (!pred(stats) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = client.Stats();
  }
  return stats;
}

bool AllWorkersHealthy(const ServeStats& stats, unsigned workers) {
  if (stats.workers.size() != workers) return false;
  for (const WorkerStatus& worker : stats.workers) {
    if (worker.state != "healthy") return false;
  }
  return true;
}

TEST(ServeFleet, ServesAcrossWorkersAndAggregatesStats) {
  FleetRegistry registry(TestGatePath("fleet_stats"));  // Gate unused.
  SupervisorConfig config = FleetConfig("fleet_stats", registry, 2);
  config.worker_queue = 4;
  Supervisor supervisor(config);
  supervisor.Start();
  Client client = Client::Connect(config.socket_path);
  const ServeStats healthy = AwaitStats(client, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 2);
  });
  ASSERT_TRUE(AllWorkersHealthy(healthy, 2));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.Submit("fig_94", true, 0).type, EventType::kDone);
  }
  const ServeStats stats = client.Stats();
  EXPECT_FALSE(stats.version.empty());
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.max_queue, 8u);     // worker_queue x workers.
  EXPECT_EQ(stats.max_inflight, 2u);  // worker_inflight x workers.
  ASSERT_EQ(stats.workers.size(), 2u);
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_EQ(stats.workers[i].index, i);
    EXPECT_GT(stats.workers[i].pid, 0);
    EXPECT_EQ(stats.workers[i].outstanding, 0u);
    EXPECT_GE(stats.workers[i].generation, 1u);
  }
  ASSERT_EQ(stats.latencies.size(), 1u);
  EXPECT_EQ(stats.latencies[0].figure, "fig_94");
  EXPECT_EQ(stats.latencies[0].count, 3u);
  supervisor.Drain();
}

TEST(ServeFleet, DeadlineExpiryYieldsTypedDeadlineExceeded) {
  const std::string gate = TestGatePath("fleet_deadline");
  ::unlink(gate.c_str());
  FleetRegistry registry(gate);
  SupervisorConfig config = FleetConfig("fleet_deadline", registry, 2);
  config.deadline_ms = 150;
  Supervisor supervisor(config);
  supervisor.Start();
  Client client = Client::Connect(config.socket_path);
  AwaitStats(client, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 2);
  });
  const Event terminal = client.Submit("fig_95", true, 0);
  ASSERT_EQ(terminal.type, EventType::kError);
  EXPECT_EQ(terminal.body.StringOr("kind", ""), "deadline_exceeded");
  EXPECT_NE(terminal.body.StringOr("message", "").find("150"),
            std::string::npos);
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
  TouchFile(gate);  // Unblock the abandoned sweep so the drain is fast.
  supervisor.Drain();
  ::unlink(gate.c_str());
}

TEST(ServeFleet, WorkerLossBeforeStreamingFailsOverToAnotherWorker) {
  const std::string gate = TestGatePath("fleet_failover");
  ::unlink(gate.c_str());
  FleetRegistry registry(gate);
  SupervisorConfig config = FleetConfig("fleet_failover", registry, 3);
  Supervisor supervisor(config);
  supervisor.Start();
  Client control = Client::Connect(config.socket_path);
  AwaitStats(control, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 3);
  });
  // The supervisor routes by consistent hash on the normalized slug;
  // compute the doomed worker the same way it does.
  const unsigned target =
      *HashRing(config.workers).Route(NormalizeSlug("fig_95"));

  Client submitter = Client::Connect(config.socket_path);
  std::vector<Event> events;
  std::promise<void> accepted;
  std::thread submit_thread([&] {
    const Event terminal = submitter.Submit(
        "fig_95", true, 0, [&](const Event& event) {
          events.push_back(event);
          if (event.type == EventType::kAccepted) accepted.set_value();
        });
    events.push_back(terminal);
  });
  accepted.get_future().wait();  // Routed and accepted; nothing streamed.
  control.KillWorker(target);
  // The failover worker picks the request up and blocks on the same
  // gate; release it now that the target is gone.
  TouchFile(gate);
  submit_thread.join();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, EventType::kDone);
  // Exactly-once to the client: a single accepted despite the retry.
  EXPECT_EQ(std::count_if(events.begin(), events.end(),
                          [](const Event& event) {
                            return event.type == EventType::kAccepted;
                          }),
            1);
  // The health loop reaps the corpse and respawns the slot.
  const ServeStats stats = AwaitStats(control, [&](const ServeStats& s) {
    return s.workers.size() == 3 && s.workers[target].restarts >= 1 &&
           s.workers[target].state == "healthy";
  });
  ASSERT_EQ(stats.workers.size(), 3u);
  EXPECT_GE(stats.workers[target].restarts, 1u);
  EXPECT_GE(stats.workers[target].generation, 2u);
  supervisor.Drain();
  ::unlink(gate.c_str());
}

TEST(ServeFleet, WorkerLossMidStreamIsTypedWorkerLost) {
  const std::string gate = TestGatePath("fleet_lost");
  ::unlink(gate.c_str());
  FleetRegistry registry(gate);
  SupervisorConfig config = FleetConfig("fleet_lost", registry, 2);
  Supervisor supervisor(config);
  supervisor.Start();
  Client control = Client::Connect(config.socket_path);
  AwaitStats(control, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 2);
  });
  const unsigned target =
      *HashRing(config.workers).Route(NormalizeSlug("fig_96"));

  Client submitter = Client::Connect(config.socket_path);
  Event terminal;
  std::promise<void> streamed;
  std::once_flag streamed_once;
  std::thread submit_thread([&] {
    terminal = submitter.Submit(
        "fig_96", true, 0, [&](const Event& event) {
          if (event.type == EventType::kPoint) {
            std::call_once(streamed_once, [&] { streamed.set_value(); });
          }
        });
  });
  streamed.get_future().wait();  // The head curve streamed; tail blocks.
  control.KillWorker(target);
  submit_thread.join();
  // Re-running could double-report the already-streamed points, so the
  // request must terminate as worker_lost instead of failing over.
  ASSERT_EQ(terminal.type, EventType::kError);
  EXPECT_EQ(terminal.body.StringOr("kind", ""), "worker_lost");
  EXPECT_NE(terminal.body.StringOr("message", "")
                .find(std::to_string(target)),
            std::string::npos);
  EXPECT_GE(control.Stats().failed, 1u);
  supervisor.Drain();
  ::unlink(gate.c_str());
}

TEST(ServeFleet, BackpressureVerdictIsOverloadedWhenWorkersAreFull) {
  const std::string gate = TestGatePath("fleet_busy");
  ::unlink(gate.c_str());
  FleetRegistry registry(gate);
  SupervisorConfig config = FleetConfig("fleet_busy", registry, 1);
  config.worker_queue = 0;
  config.worker_inflight = 1;  // Cluster capacity: exactly one request.
  Supervisor supervisor(config);
  supervisor.Start();
  Client control = Client::Connect(config.socket_path);
  AwaitStats(control, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 1);
  });

  Client first = Client::Connect(config.socket_path);
  std::promise<void> accepted;
  std::thread first_thread([&] {
    const Event done = first.Submit(
        "fig_95", true, 0, [&](const Event& event) {
          if (event.type == EventType::kAccepted) accepted.set_value();
        });
    EXPECT_EQ(done.type, EventType::kDone);
  });
  accepted.get_future().wait();  // The one slot is occupied and gated.

  Client second = Client::Connect(config.socket_path);
  const Event rejected = second.Submit("fig_95", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "overloaded");

  TouchFile(gate);
  first_thread.join();
  EXPECT_EQ(control.Stats().rejected, 1u);
  supervisor.Drain();
  ::unlink(gate.c_str());
}

TEST(ServeFleet, NoLiveWorkerYieldsUnavailable) {
  FleetRegistry registry(TestGatePath("fleet_down"));  // Gate unused.
  SupervisorConfig config = FleetConfig("fleet_down", registry, 1);
  config.health.backoff_base_ms = 60000.0;  // No respawn within the test.
  config.health.backoff_cap_ms = 60000.0;
  Supervisor supervisor(config);
  supervisor.Start();
  Client client = Client::Connect(config.socket_path);
  AwaitStats(client, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 1);
  });
  client.KillWorker(0);
  // Wait until the health loop has reaped the corpse.
  const ServeStats stats = AwaitStats(client, [](const ServeStats& s) {
    return !s.workers.empty() && s.workers[0].state == "dead";
  });
  ASSERT_FALSE(stats.workers.empty());
  EXPECT_EQ(stats.workers[0].state, "dead");
  EXPECT_EQ(stats.workers[0].pid, -1);
  const Event rejected = client.Submit("fig_94", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "unavailable");
  supervisor.Drain();
}

TEST(ServeFleet, KillWorkerValidatesTheIndex) {
  FleetRegistry registry(TestGatePath("fleet_kill_idx"));  // Gate unused.
  SupervisorConfig config = FleetConfig("fleet_kill_idx", registry, 2);
  Supervisor supervisor(config);
  supervisor.Start();
  Client client = Client::Connect(config.socket_path);
  try {
    client.KillWorker(7);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("no worker 7"), std::string::npos);
  }
  supervisor.Drain();
}

TEST(ServeFleet, ChaosLoadGenTerminatesEveryRequestWithATypedOutcome) {
  FleetRegistry registry(TestGatePath("fleet_chaos"));  // Gate unused.
  SupervisorConfig config = FleetConfig("fleet_chaos", registry, 2);
  Supervisor supervisor(config);
  supervisor.Start();
  Client control = Client::Connect(config.socket_path);
  AwaitStats(control, [](const ServeStats& s) {
    return AllWorkersHealthy(s, 2);
  });

  LoadGenOptions options;
  options.socket_path = config.socket_path;
  options.requests = 8;
  options.concurrency = 2;
  options.seed = 7;
  options.figures = {"fig_94"};
  options.kill_workers = 1;
  options.connect_retries = 2;
  const LoadGenReport report = RunLoadGenerator(options);
  EXPECT_EQ(report.requests, 8u);
  EXPECT_EQ(report.kills, 1u);
  // Exactly-once terminals: nothing lost, nothing counted twice.
  EXPECT_EQ(report.completed + report.rejected + report.failed,
            report.requests);
  EXPECT_GT(report.completed, 0u);
  EXPECT_GT(report.availability, 0.0);
  EXPECT_NE(report.Render().find("chaos"), std::string::npos);
  supervisor.Drain();
}

/// Searches seeds for a fault schedule in which `site` fires for worker
/// `target` at exactly one heartbeat seq in [min_seq, max_seq] and for
/// nobody else anywhere in [1, horizon] — so a chaos test gets exactly
/// one seeded kill and a quiet fleet otherwise. Deterministic: the
/// schedule is a pure function of (seed, site, key), so the found seed
/// replays identically inside the forked workers.
std::uint64_t FindSoloFaultSeed(fault::FaultSite site, unsigned workers,
                                unsigned target, std::uint64_t min_seq,
                                std::uint64_t max_seq, std::uint64_t horizon,
                                std::uint64_t* fired_seq_out) {
  constexpr double kProb = 0.002;
  for (std::uint64_t seed = 1; seed <= 500000; ++seed) {
    fault::FaultSpec spec;
    if (site == fault::FaultSite::kWorkerCrash) {
      spec.worker_crash = kProb;
    } else {
      spec.worker_hang = kProb;
    }
    spec.seed = seed;
    const fault::FaultInjector injector(spec);
    std::uint64_t fired_seq = 0;
    bool clean = true;
    for (unsigned w = 0; w < workers && clean; ++w) {
      for (std::uint64_t s = 1; s <= horizon && clean; ++s) {
        std::string key = "w";
        key += std::to_string(w);
        key += '#';
        key += std::to_string(s);
        if (!injector.ShouldFail(site, key)) continue;
        if (w == target && fired_seq == 0 && s >= min_seq && s <= max_seq) {
          fired_seq = s;
        } else {
          clean = false;
        }
      }
    }
    if (clean && fired_seq != 0) {
      *fired_seq_out = fired_seq;
      return seed;
    }
  }
  throw ConfigError("FindSoloFaultSeed: no seed in the search budget");
}

TEST(ServeFleet, SeededHangIsDetectedKilledAndRestarted) {
  std::uint64_t hang_seq = 0;
  const std::uint64_t seed = FindSoloFaultSeed(
      fault::FaultSite::kWorkerHang, /*workers=*/1, /*target=*/0,
      /*min_seq=*/2, /*max_seq=*/8, /*horizon=*/400, &hang_seq);
  fault::FaultSpec spec;
  spec.worker_hang = 0.002;
  spec.seed = seed;
  fault::ScopedFaultInjector injector(spec);

  FleetRegistry registry(TestGatePath("fleet_hang"));  // Gate unused.
  SupervisorConfig config = FleetConfig("fleet_hang", registry, 1);
  config.health.miss_threshold = 2;
  Supervisor supervisor(config);
  supervisor.Start();
  Client client = Client::Connect(config.socket_path);
  // The worker inherits the injector across fork and stops answering at
  // heartbeat `hang_seq`; the supervisor must miss, declare it dead,
  // SIGKILL it, and respawn the slot.
  const ServeStats stats = AwaitStats(client, [](const ServeStats& s) {
    return !s.workers.empty() && s.workers[0].restarts >= 1 &&
           s.workers[0].state == "healthy";
  });
  ASSERT_FALSE(stats.workers.empty());
  EXPECT_GE(stats.workers[0].restarts, 1u);
  EXPECT_GE(stats.workers[0].generation, 2u);
  // The respawned worker serves requests again.
  EXPECT_EQ(client.Submit("fig_94", true, 0).type, EventType::kDone);
  supervisor.Drain();
}

TEST(ServeFleet, SeededCrashScenarioIsDeterministicAcrossRuns) {
  // The acceptance scenario: a three-worker fleet under a seeded fault
  // schedule that kills exactly one worker while a request is in
  // flight. The fleet must restart it, every request must end in a
  // typed terminal event, and the same seed must replay the identical
  // event sequence across two independent runs.
  const unsigned kWorkers = 3;
  const unsigned target = *HashRing(kWorkers).Route(NormalizeSlug("fig_95"));
  std::uint64_t crash_seq = 0;
  const std::uint64_t seed = FindSoloFaultSeed(
      fault::FaultSite::kWorkerCrash, kWorkers, target,
      /*min_seq=*/4, /*max_seq=*/10, /*horizon=*/400, &crash_seq);

  struct RunResult {
    std::vector<std::string> projection;
    std::vector<EventType> terminals;
    unsigned restarts = 0;
  };
  const auto run = [&](const char* tag) {
    fault::FaultSpec spec;
    spec.worker_crash = 0.002;
    spec.seed = seed;
    fault::ScopedFaultInjector injector(spec);
    const std::string gate = TestGatePath(tag);
    ::unlink(gate.c_str());
    FleetRegistry registry(gate);
    SupervisorConfig config = FleetConfig(tag, registry, kWorkers);
    Supervisor supervisor(config);
    supervisor.Start();
    Client control = Client::Connect(config.socket_path);
    AwaitStats(control, [&](const ServeStats& s) {
      return AllWorkersHealthy(s, kWorkers);
    });
    // In flight before the seeded crash: the gated figure routes to the
    // doomed worker and streams nothing until the gate file exists, so
    // the crash triggers a clean failover.
    Client submitter = Client::Connect(config.socket_path);
    std::vector<Event> gated_events;
    std::thread submit_thread([&] {
      const Event terminal = submitter.Submit(
          "fig_95", true, 0,
          [&](const Event& event) { gated_events.push_back(event); });
      gated_events.push_back(terminal);
    });
    // The crash fires at heartbeat `crash_seq`; wait out the restart.
    const ServeStats after = AwaitStats(control, [&](const ServeStats& s) {
      return s.workers.size() == kWorkers &&
             s.workers[target].restarts >= 1 &&
             s.workers[target].state == "healthy";
    });
    TouchFile(gate);  // Release the failover worker.
    submit_thread.join();
    RunResult result;
    result.restarts =
        after.workers.size() == kWorkers ? after.workers[target].restarts
                                         : 0;
    EXPECT_EQ(std::count_if(gated_events.begin(), gated_events.end(),
                            [](const Event& event) {
                              return event.type == EventType::kAccepted;
                            }),
              1);
    result.terminals.push_back(gated_events.back().type);
    for (std::string& line : DeterministicProjection(gated_events)) {
      result.projection.push_back(std::move(line));
    }
    // A little follow-up load on the recovered fleet.
    for (const bool quick : {true, false}) {
      std::vector<Event> events;
      const Event terminal = control.Submit(
          "fig_94", quick, 0,
          [&](const Event& event) { events.push_back(event); });
      events.push_back(terminal);
      result.terminals.push_back(terminal.type);
      for (std::string& line : DeterministicProjection(events)) {
        result.projection.push_back(std::move(line));
      }
    }
    supervisor.Drain();
    ::unlink(gate.c_str());
    return result;
  };

  const RunResult a = run("chaos_a");
  const RunResult b = run("chaos_b");
  // Every request ended in a typed terminal event — here all done: the
  // gated request failed over before streaming, the follow-ups ran on a
  // recovered fleet.
  for (const EventType type : a.terminals) {
    EXPECT_EQ(type, EventType::kDone);
  }
  EXPECT_EQ(a.terminals.size(), 3u);
  // The seeded kill really happened and the slot was restarted...
  EXPECT_GE(a.restarts, 1u);
  EXPECT_GE(b.restarts, 1u);
  // ...and the same seed replays the identical event sequence.
  EXPECT_EQ(a.projection, b.projection);
}

// ------------------------------------------------------------ characterize

// A pixel kernel that passes intake; one curve per architecture.
constexpr char kServeIl[] =
    "il_ps_2_0 ; serve_probe\n"
    "; type=Float read=Texture write=Stream\n"
    "dcl_input i0\n"
    "dcl_output o0\n"
    "  sample    r0, i0\n"
    "  mov       r1, r0\n"
    "  export    o0, r1\n"
    "end\n";

TEST(ServeProtocol, CharacterizeRequestRoundTrips) {
  Request request;
  request.op = Request::Op::kCharacterize;
  request.il = kServeIl;
  request.quick = true;
  request.priority = 1;
  const Request back = ParseRequest(SerializeRequest(request));
  EXPECT_EQ(back.op, Request::Op::kCharacterize);
  EXPECT_EQ(back.il, kServeIl);  // Newlines survive the JSON escaping.
  EXPECT_TRUE(back.quick);
  EXPECT_EQ(back.priority, 1);
  // A characterize without kernel text has nothing to analyze.
  EXPECT_THROW(ParseRequest(R"({"op":"characterize"})"), ConfigError);
  EXPECT_THROW(ParseRequest(R"({"op":"characterize","il":""})"),
               ConfigError);
}

TEST(ServeProtocol, StaticEventRoundTrips) {
  StaticReport report;
  report.arch = "4870";
  report.alu_ops = 16;
  report.fetch_ops = 4;
  report.write_ops = 1;
  report.alu_fetch_ratio = 1.0;
  report.gpr_count = 5;
  report.theoretical_wavefronts = 51;
  report.resident_wavefronts = 24;
  report.bound = "balanced";
  const Event e = ParseEvent(SerializeStatic(7, report));
  EXPECT_EQ(e.type, EventType::kStatic);
  EXPECT_EQ(e.body.NumberOr("request", -1.0), 7.0);
  EXPECT_EQ(e.body.StringOr("arch", ""), "4870");
  EXPECT_EQ(e.body.NumberOr("alu_ops", -1.0), 16.0);
  EXPECT_EQ(e.body.NumberOr("fetch_ops", -1.0), 4.0);
  EXPECT_EQ(e.body.NumberOr("write_ops", -1.0), 1.0);
  EXPECT_EQ(e.body.NumberOr("alu_fetch_ratio", -1.0), 1.0);
  EXPECT_EQ(e.body.NumberOr("gpr_count", -1.0), 5.0);
  EXPECT_EQ(e.body.NumberOr("theoretical_wavefronts", -1.0), 51.0);
  EXPECT_EQ(e.body.NumberOr("resident_wavefronts", -1.0), 24.0);
  EXPECT_EQ(e.body.StringOr("bound", ""), "balanced");
}

TEST(ServeProtocol, RejectedWithCodeRoundTrips) {
  const Event e = ParseEvent(SerializeRejected(
      "invalid_kernel", "abcd1234abcd1234", "parse_error",
      "line 3: unknown mnemonic"));
  EXPECT_EQ(e.type, EventType::kRejected);
  EXPECT_EQ(e.body.StringOr("reason", ""), "invalid_kernel");
  EXPECT_EQ(e.body.StringOr("figure", ""), "abcd1234abcd1234");
  EXPECT_EQ(e.body.StringOr("code", ""), "parse_error");
  EXPECT_EQ(e.body.StringOr("detail", ""), "line 3: unknown mnemonic");
}

TEST(ServeServer, CharacterizeEndToEndMatchesStandaloneByteForByte) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("kerncap_bytes");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  // The standalone path: intake then characterize in this process.
  kerncap::AnalyzeResult analysis = kerncap::Analyze(kServeIl);
  ASSERT_TRUE(analysis.ok());
  kerncap::CharacterizeOptions options;
  options.quick = true;
  const std::string expected = report::BenchJson(
      kerncap::Characterize(*analysis.prepared, options));

  Client client = Client::Connect(config.socket_path);
  std::vector<Event> streamed;
  const Event done = client.Characterize(
      kServeIl, /*quick=*/true, /*priority=*/0,
      [&](const Event& event) { streamed.push_back(event); });
  ASSERT_EQ(done.type, EventType::kDone);
  EXPECT_EQ(done.body.StringOr("figure", ""),
            kerncap::Slug(*analysis.prepared));
  EXPECT_EQ(done.body.StringOr("figure_json", ""), expected);

  // Stream shape: accepted first, then one static per architecture,
  // then the per-curve progress / point / profile events.
  ASSERT_GE(streamed.size(), 4u);
  EXPECT_EQ(streamed[0].type, EventType::kAccepted);
  EXPECT_EQ(streamed[0].body.StringOr("figure", ""),
            kerncap::Slug(*analysis.prepared));
  std::size_t statics = 0, progress = 0, points = 0, profiles = 0;
  for (const Event& event : streamed) {
    if (event.type == EventType::kStatic) ++statics;
    if (event.type == EventType::kProgress) ++progress;
    if (event.type == EventType::kPoint) ++points;
    if (event.type == EventType::kProfile) ++profiles;
  }
  const std::size_t curves =
      kerncap::EligibleCurves(analysis.prepared->kernel).size();
  const std::size_t domains = kerncap::SweepDomains(true).size();
  EXPECT_EQ(statics, analysis.prepared->statics.size());
  EXPECT_EQ(progress, curves);
  EXPECT_EQ(points, curves * domains);
  EXPECT_EQ(profiles, curves * domains);
  // The statics arrive before any sweep traffic.
  EXPECT_EQ(streamed[1].type, EventType::kStatic);
  server.Drain();
}

TEST(ServeServer, CharacterizeRejectsMalformedKernelAndStaysServing) {
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("kerncap_reject");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  Client client = Client::Connect(config.socket_path);
  const Event rejected = client.Characterize("this is not IL\n", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "invalid_kernel");
  EXPECT_EQ(rejected.body.StringOr("code", ""), "parse_error");
  EXPECT_FALSE(rejected.body.StringOr("detail", "").empty());

  // The same session keeps working: a valid kernel completes, and the
  // daemon's counters saw both outcomes.
  const Event done = client.Characterize(kServeIl, true, 0);
  EXPECT_EQ(done.type, EventType::kDone);
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 1u);
  server.Drain();
}

TEST(ServeServer, CharacterizeCorpusOverSocketGetsTypedVerdicts) {
  namespace fs = std::filesystem;
  TestRegistry registry;
  registry.release->set_value();
  ServerConfig config;
  config.socket_path = TestSocketPath("kerncap_corpus");
  config.registry = &registry.defs;
  Server server(config);
  server.Start();

  const fs::path corpus = fs::path(AMDMB_TEST_DATA_DIR) / "corpus" / "il";
  ASSERT_TRUE(fs::is_directory(corpus));
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.path().extension() == ".il") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 20u);

  // Every corpus kernel over one session: malformed files come back as
  // typed rejections, valid ones characterize, and the session never
  // wedges.
  Client client = Client::Connect(config.socket_path);
  std::size_t rejected = 0, completed = 0;
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream file(path, std::ios::binary);
    std::ostringstream text;
    text << file.rdbuf();
    const Event terminal = client.Characterize(text.str(), true, 0);
    const bool expect_ok =
        path.filename().string().rfind("valid_", 0) == 0;
    if (expect_ok) {
      EXPECT_EQ(terminal.type, EventType::kDone);
      ++completed;
    } else {
      ASSERT_EQ(terminal.type, EventType::kRejected);
      EXPECT_EQ(terminal.body.StringOr("reason", ""), "invalid_kernel");
      EXPECT_FALSE(terminal.body.StringOr("code", "").empty());
      ++rejected;
    }
  }
  const ServeStats stats = client.Stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, completed);
  server.Drain();
}

TEST(ServeClient, OversizedCharacterizeIsRejectedWithoutConnecting) {
  // No daemon anywhere: the bound check must fire before any socket
  // work, so a 9 MiB kernel yields a typed verdict, not a connect error.
  const std::string huge(9u << 20, 'x');
  const std::optional<Event> verdict = OversizedCharacterize(huge, true, 0);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->type, EventType::kRejected);
  EXPECT_EQ(verdict->body.StringOr("reason", ""), "invalid_kernel");
  EXPECT_EQ(verdict->body.StringOr("code", ""), "payload_too_large");
  EXPECT_NE(verdict->body.StringOr("detail", "").find("not sent"),
            std::string::npos);
  // A small kernel passes the bound and returns no verdict.
  EXPECT_FALSE(OversizedCharacterize(kServeIl, true, 0).has_value());
}

TEST(ServeFleet, CharacterizeRoutesThroughWorkersByContentHash) {
  FleetRegistry registry(TestGatePath("fleet_kerncap"));  // Gate unused.
  SupervisorConfig config = FleetConfig("fleet_kerncap", registry, 2);
  Supervisor supervisor(config);
  supervisor.Start();
  Client client = Client::Connect(config.socket_path);
  AwaitStats(client,
             [](const ServeStats& s) { return AllWorkersHealthy(s, 2); });

  kerncap::AnalyzeResult analysis = kerncap::Analyze(kServeIl);
  ASSERT_TRUE(analysis.ok());
  kerncap::CharacterizeOptions options;
  options.quick = true;
  const std::string expected = report::BenchJson(
      kerncap::Characterize(*analysis.prepared, options));

  // The fleet answer is byte-identical to the in-process answer, and a
  // malformed kernel's verdict forwards through the supervisor intact.
  const Event done = client.Characterize(kServeIl, true, 0);
  ASSERT_EQ(done.type, EventType::kDone);
  EXPECT_EQ(done.body.StringOr("figure_json", ""), expected);

  const Event rejected = client.Characterize("garbage\n", true, 0);
  ASSERT_EQ(rejected.type, EventType::kRejected);
  EXPECT_EQ(rejected.body.StringOr("reason", ""), "invalid_kernel");
  EXPECT_EQ(rejected.body.StringOr("code", ""), "parse_error");
  supervisor.Drain();
}

}  // namespace
}  // namespace amdmb::serve
