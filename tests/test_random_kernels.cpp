// Randomized-kernel compiler validation.
//
// The suite's generators only emit chain-shaped kernels; this file
// generates seeded random DAG kernels (arbitrary fan-out, mixed opcodes,
// interleaved fetch clauses, literals and constants) and checks, for
// every one of them, that
//   * the kernel verifies,
//   * compilation preserves instruction counts and clause limits,
//   * IL and compiled-ISA functional execution agree bit-for-bit
//     (exercising VLIW packing with real co-issue, PV lane resolution,
//     clause temporaries, and GPR recycling on irregular programs),
//   * the printer/parser round-trip reproduces the kernel.
#include <gtest/gtest.h>

#include <cstring>

#include "cal/interp.hpp"
#include "common/rng.hpp"
#include "compiler/compiler.hpp"
#include "il/builder.hpp"
#include "il/parser.hpp"
#include "il/printer.hpp"
#include "il/verifier.hpp"

namespace amdmb {
namespace {

/// Builds a random but always-valid kernel: fetches arrive in bursts
/// (so several TEX clauses form), ALU ops draw operands from any live
/// value, and the final outputs fold in every value that would
/// otherwise be dead (the verifier demands all fetches be used).
il::Kernel RandomKernel(std::uint64_t seed) {
  XorShift128 rng(seed);
  il::Signature sig;
  sig.inputs = 2 + static_cast<unsigned>(rng.NextBelow(14));
  sig.outputs = 1 + static_cast<unsigned>(rng.NextBelow(4));
  sig.constants = static_cast<unsigned>(rng.NextBelow(3));
  sig.type = rng.NextBelow(2) ? DataType::kFloat4 : DataType::kFloat;
  sig.read_path = rng.NextBelow(2) ? ReadPath::kTexture : ReadPath::kGlobal;
  sig.write_path = rng.NextBelow(2) ? WritePath::kStream : WritePath::kGlobal;

  il::Builder b("random_" + std::to_string(seed), sig);
  std::vector<unsigned> values;        // All defined registers.
  std::vector<unsigned> unused;        // Values not yet consumed.
  unsigned next_input = 0;

  auto fetch_burst = [&] {
    const unsigned burst = 1 + static_cast<unsigned>(rng.NextBelow(5));
    for (unsigned i = 0; i < burst && next_input < sig.inputs; ++i) {
      const unsigned reg = b.Fetch(next_input++);
      values.push_back(reg);
      unused.push_back(reg);
    }
  };
  auto pick_operand = [&]() -> il::Operand {
    // Prefer unused values so everything gets consumed; sometimes use
    // constants or literals.
    const auto dice = rng.NextBelow(10);
    if (dice == 0 && sig.constants > 0) {
      return il::Operand::Const(
          static_cast<unsigned>(rng.NextBelow(sig.constants)));
    }
    if (dice == 1) {
      return il::Operand::Lit(
          static_cast<float>(1 + rng.NextBelow(7)));
    }
    if (!unused.empty() && rng.NextBelow(3) != 0) {
      const auto idx = rng.NextBelow(unused.size());
      const unsigned reg = unused[idx];
      unused.erase(unused.begin() + static_cast<std::ptrdiff_t>(idx));
      return il::Operand::Reg(reg);
    }
    return il::Operand::Reg(
        values[rng.NextBelow(values.size())]);
  };

  fetch_burst();
  const unsigned alu_ops = 8 + static_cast<unsigned>(rng.NextBelow(60));
  for (unsigned i = 0; i < alu_ops; ++i) {
    if (next_input < sig.inputs && rng.NextBelow(6) == 0) fetch_burst();
    unsigned reg = 0;
    switch (rng.NextBelow(5)) {
      case 0:
        // Scale multiplications by small literals so long random chains
        // stay finite (keeps the equivalence check meaningful).
        reg = b.Alu(il::Opcode::kMul, pick_operand(),
                    il::Operand::Lit(0.5f));
        break;
      case 1:
        reg = b.Mad(pick_operand(), il::Operand::Lit(0.25f),
                    pick_operand());
        break;
      case 2:
        reg = b.Alu1(il::Opcode::kMov, pick_operand());
        break;
      case 3:
        reg = b.Alu(il::Opcode::kSub, pick_operand(), pick_operand());
        break;
      default:
        reg = b.Add(pick_operand(), pick_operand());
        break;
    }
    values.push_back(reg);
    unused.push_back(reg);
  }
  // Fetch any remaining declared inputs, then fold every unconsumed
  // value into the output tails so the kernel verifies.
  while (next_input < sig.inputs) fetch_burst();
  unsigned acc = b.Add(il::Operand::Reg(values.front()),
                       il::Operand::Reg(values.back()));
  for (const unsigned reg : unused) {
    acc = b.Add(il::Operand::Reg(acc), il::Operand::Reg(reg));
  }
  std::vector<unsigned> tails;
  tails.push_back(acc);
  for (unsigned o = 1; o < sig.outputs; ++o) {
    acc = b.Alu1(il::Opcode::kMov, il::Operand::Reg(acc));
    tails.push_back(acc);
  }
  for (unsigned o = 0; o < sig.outputs; ++o) b.Write(o, tails[o]);
  return std::move(b).Build();
}

std::vector<cal::Vec4> Constants() {
  return {{1, 2, 3, 4}, {5, 6, 7, 8}, {2, 2, 2, 2}};
}

/// Bit-exact float comparison (NaNs of identical payload compare equal).
void ExpectBitEqual(float a, float b, const std::string& context) {
  std::uint32_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  ASSERT_EQ(ab, bb) << context;
}

class RandomKernelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomKernelTest, VerifiesAndCompiles) {
  const il::Kernel kernel = RandomKernel(GetParam());
  ASSERT_TRUE(il::Verify(kernel).ok()) << il::Verify(kernel).Message();
  for (const GpuArch& arch : AllArchs()) {
    const isa::Program p = compiler::Compile(kernel, arch);
    EXPECT_EQ(p.stats.alu_ops, kernel.CountAluOps());
    EXPECT_EQ(p.stats.tex_fetches + p.stats.global_reads,
              kernel.CountFetchOps());
    EXPECT_EQ(p.stats.writes, kernel.CountWriteOps());
    for (const isa::Clause& clause : p.clauses) {
      EXPECT_LE(clause.fetches.size(), arch.max_tex_fetches_per_clause);
      EXPECT_LE(clause.bundles.size(), arch.max_alu_bundles_per_clause);
      for (const isa::Bundle& bundle : clause.bundles) {
        EXPECT_LE(bundle.SlotCount(), arch.vliw_width);
      }
    }
  }
}

TEST_P(RandomKernelTest, IlAndIsaExecutionAgree) {
  const il::Kernel kernel = RandomKernel(GetParam());
  const Domain domain{8, 8};
  const cal::FuncResult ref =
      cal::RunIl(kernel, domain, cal::DefaultInputPattern, Constants());
  for (const GpuArch& arch : AllArchs()) {
    const isa::Program p = compiler::Compile(kernel, arch);
    const cal::FuncResult got =
        cal::RunIsa(p, domain, cal::DefaultInputPattern, Constants());
    ASSERT_EQ(ref.outputs.size(), got.outputs.size());
    for (std::size_t o = 0; o < ref.outputs.size(); ++o) {
      for (std::size_t i = 0; i < ref.outputs[o].size(); ++i) {
        for (int c = 0; c < 4; ++c) {
          ExpectBitEqual(ref.outputs[o][i][c], got.outputs[o][i][c],
                         arch.name + " output " + std::to_string(o) +
                             " elem " + std::to_string(i));
        }
      }
    }
  }
}

TEST_P(RandomKernelTest, PrinterParserRoundTrip) {
  const il::Kernel kernel = RandomKernel(GetParam());
  const il::Kernel reparsed = il::Parse(il::Print(kernel));
  ASSERT_EQ(reparsed.code.size(), kernel.code.size());
  // Equivalent behaviour is the real requirement.
  const Domain domain{4, 4};
  const cal::FuncResult a =
      cal::RunIl(kernel, domain, cal::DefaultInputPattern, Constants());
  const cal::FuncResult b =
      cal::RunIl(reparsed, domain, cal::DefaultInputPattern, Constants());
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    for (std::size_t i = 0; i < a.outputs[o].size(); ++i) {
      for (int c = 0; c < 4; ++c) {
        ExpectBitEqual(a.outputs[o][i][c], b.outputs[o][i][c], "roundtrip");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace amdmb
