// Binary ISA image tests: round-trips, determinism, and decoder
// robustness against corrupt/truncated images.
#include <gtest/gtest.h>

#include "cal/interp.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "compiler/binary.hpp"
#include "compiler/compiler.hpp"
#include "sim/gpu.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::compiler {
namespace {

isa::Program SampleProgram(DataType type = DataType::kFloat4,
                           unsigned outputs = 2) {
  suite::GenericSpec spec;
  spec.inputs = 6;
  spec.outputs = outputs;
  spec.alu_ops = 40;
  spec.type = type;
  spec.constants = 0;
  spec.write_path = WritePath::kGlobal;
  return Compile(suite::GenerateGeneric(spec), MakeRV770());
}

void ExpectSameProgram(const isa::Program& a, const isa::Program& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.gpr_count, b.gpr_count);
  EXPECT_EQ(a.stats.alu_ops, b.stats.alu_ops);
  EXPECT_EQ(a.stats.alu_bundles, b.stats.alu_bundles);
  ASSERT_EQ(a.clauses.size(), b.clauses.size());
  for (std::size_t c = 0; c < a.clauses.size(); ++c) {
    EXPECT_EQ(a.clauses[c].type, b.clauses[c].type);
    EXPECT_EQ(a.clauses[c].fetches.size(), b.clauses[c].fetches.size());
    EXPECT_EQ(a.clauses[c].bundles.size(), b.clauses[c].bundles.size());
    EXPECT_EQ(a.clauses[c].writes.size(), b.clauses[c].writes.size());
  }
  // Full behavioural equality via the ISA interpreter.
  const Domain domain{4, 4};
  const cal::FuncResult ra = cal::RunIsa(a, domain);
  const cal::FuncResult rb = cal::RunIsa(b, domain);
  ASSERT_EQ(ra.outputs.size(), rb.outputs.size());
  for (std::size_t o = 0; o < ra.outputs.size(); ++o) {
    for (std::size_t i = 0; i < ra.outputs[o].size(); ++i) {
      for (int comp = 0; comp < 4; ++comp) {
        ASSERT_EQ(ra.outputs[o][i][comp], rb.outputs[o][i][comp]);
      }
    }
  }
}

TEST(BinaryTest, RoundTripsPrograms) {
  for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
    const isa::Program original = SampleProgram(type);
    const isa::Program decoded = Decode(Encode(original));
    ExpectSameProgram(original, decoded);
    EXPECT_EQ(decoded.sig.type, type);
  }
}

TEST(BinaryTest, EncodingIsDeterministic) {
  const isa::Program p = SampleProgram();
  EXPECT_EQ(Encode(p), Encode(p));
  EXPECT_EQ(Encode(p), Encode(Decode(Encode(p))));
}

TEST(BinaryTest, RejectsBadMagicAndVersion) {
  BinaryImage image = Encode(SampleProgram());
  BinaryImage bad_magic = image;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(Decode(bad_magic), ConfigError);
  BinaryImage bad_version = image;
  bad_version[4] = 0xEE;
  EXPECT_THROW(Decode(bad_version), ConfigError);
}

TEST(BinaryTest, RejectsEveryTruncation) {
  const BinaryImage image = Encode(SampleProgram());
  // Every strict prefix must fail cleanly (never crash / OOB read).
  for (std::size_t len = 0; len < image.size();
       len += std::max<std::size_t>(1, image.size() / 97)) {
    const BinaryImage prefix(image.begin(),
                             image.begin() + static_cast<long>(len));
    EXPECT_THROW(Decode(prefix), ConfigError) << "prefix length " << len;
  }
  BinaryImage trailing = image;
  trailing.push_back(0);
  EXPECT_THROW(Decode(trailing), ConfigError);
}

TEST(BinaryTest, SurvivesRandomCorruptionWithoutCrashing) {
  const BinaryImage image = Encode(SampleProgram());
  XorShift128 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    BinaryImage corrupt = image;
    const std::size_t pos = rng.NextBelow(corrupt.size());
    corrupt[pos] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    // Either decodes to some program or throws ConfigError / SimError —
    // but never crashes or reads out of bounds.
    try {
      const isa::Program p = Decode(corrupt);
      (void)p;
    } catch (const ConfigError&) {
    } catch (const SimError&) {
    }
  }
}

TEST(BinaryTest, DecodedProgramRunsOnSimulator) {
  const isa::Program decoded = Decode(Encode(SampleProgram()));
  sim::Gpu gpu(MakeRV770());
  sim::LaunchConfig config;
  config.domain = Domain{128, 128};
  const sim::KernelStats stats = gpu.Execute(decoded, config);
  EXPECT_GT(stats.cycles, 0u);
}

}  // namespace
}  // namespace amdmb::compiler
