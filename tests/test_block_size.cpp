// Tests for the block-size explorer extension.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "suite/block_size.hpp"

namespace amdmb::suite {
namespace {

TEST(BlockShapesTest, EnumeratesAllRectangles) {
  const auto shapes = WavefrontBlockShapes(64);
  ASSERT_EQ(shapes.size(), 7u);
  EXPECT_EQ(shapes.front(), (BlockShape{64, 1}));
  EXPECT_EQ(shapes.back(), (BlockShape{1, 64}));
  for (const BlockShape& s : shapes) EXPECT_EQ(s.ThreadCount(), 64u);
  EXPECT_THROW(WavefrontBlockShapes(48), ConfigError);
}

TEST(BlockExplorerTest, FindsTwoDimensionalOptimum) {
  Runner runner(MakeRV770());
  BlockSizeConfig config;
  config.domain = Domain{256, 256};
  const BlockSizeResult r = RunBlockSizeExplorer(runner, config);
  ASSERT_EQ(r.points.size(), 7u);
  // The paper's headline: the naive 64x1 shape is not optimal.
  EXPECT_GT(r.naive_penalty, 1.2);
  EXPECT_GT(r.best.y, 1u);
  EXPECT_LT(r.best.y, 64u);  // Fully vertical is as bad as horizontal.
  // Best really is the minimum of the sweep.
  for (const BlockSizePoint& p : r.points) {
    EXPECT_GE(p.m.seconds, r.best_seconds * 0.999);
  }
}

TEST(BlockExplorerTest, SquareishShapesBeatExtremes) {
  Runner runner(MakeRV870());
  BlockSizeConfig config;
  config.domain = Domain{256, 256};
  const BlockSizeResult r = RunBlockSizeExplorer(runner, config);
  auto seconds_of = [&](BlockShape shape) {
    for (const BlockSizePoint& p : r.points) {
      if (p.block == shape) return p.m.seconds;
    }
    throw SimError("shape missing from sweep");
  };
  EXPECT_LT(seconds_of({8, 8}), seconds_of({64, 1}));
  EXPECT_LT(seconds_of({8, 8}), seconds_of({1, 64}));
}

TEST(BlockExplorerTest, RejectsRv670) {
  Runner runner(MakeRV670());
  EXPECT_THROW(RunBlockSizeExplorer(runner, {}), ConfigError);
}

TEST(BlockExplorerTest, FigureHasComputeCapableCurves) {
  BlockSizeConfig config;
  config.domain = Domain{256, 256};
  const SeriesSet figure = BlockSizeFigure(config, "block sweep");
  EXPECT_EQ(figure.All().size(), 2u);  // RV770 + RV870.
  for (const Series& s : figure.All()) {
    EXPECT_EQ(s.Points().size(), 7u);
  }
}

}  // namespace
}  // namespace amdmb::suite
