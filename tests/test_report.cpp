// Tests for the report layer: typed records, JSON round-trips through
// the amdmb_report loader, the CSV sink golden file, paper-expectation
// checks, and the cross-figure markdown aggregator.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/status.hpp"
#include "report/aggregate.hpp"
#include "report/csv_sink.hpp"
#include "report/expectations.hpp"
#include "report/json.hpp"
#include "report/json_sink.hpp"
#include "report/load.hpp"
#include "report/record.hpp"
#include "report/text_sink.hpp"

namespace amdmb {
namespace {

using namespace amdmb::report;

Figure SampleFigure() {
  Figure figure("Fig. 7 — ALU:Fetch Ratio for 16 Inputs", "ALU:Fetch",
                "ALU:Fetch Ratio", "Time in seconds", "ALU-bound beyond the "
                "crossover — with an em-dash — and \"quotes\".");
  Series& a = figure.set.Get("4870 Pixel Float");
  a.Add(0.25, 3.0);
  a.Add(0.5, 1.0);
  Series& b = figure.set.Get("4870 Pixel Float4");
  b.Add(0.25, 5.0);
  figure.findings.push_back({FindingKind::kCrossover, "4870 Pixel Float",
                             "alu_bound_crossover", 2.25, "ratio", ""});
  figure.findings.push_back({FindingKind::kCrossover, "4870 Compute Float4",
                             "alu_bound_crossover", std::nullopt, "ratio",
                             "fetch-bound across the sweep"});
  figure.findings.push_back({FindingKind::kRatio, "4870 Pixel Float",
                             "register_speedup", 1.66, "x", ""});
  figure.degradations.push_back(
      {"4870 Pixel Float", "alufetch_r0.25", "retried", 2,
       "injected fault: compile"});
  figure.meta.suite_version = "v1.2.3-4-gabc";
  figure.meta.threads = 8;
  figure.meta.quick = true;
  figure.meta.faults = "compile:p=0.5:seed=7";
  figure.meta.retry = "attempts=3";
  figure.meta.watchdog_cycles = 123456;
  figure.meta.archs = {"RV770 (4870)"};
  figure.meta.modes = {"pixel"};
  return figure;
}

// ---- Finding / Degradation rendering -----------------------------------

TEST(FindingTest, RendersValueCensoredAndDetail) {
  const Finding with_value{FindingKind::kCrossover, "4870 Pixel Float",
                           "alu_bound_crossover", 2.25, "ratio", ""};
  EXPECT_EQ(with_value.Render(),
            "4870 Pixel Float: alu_bound_crossover = 2.250 ratio");
  const Finding censored{FindingKind::kCrossover, "c", "alu_bound_crossover",
                         std::nullopt, "ratio", "why"};
  EXPECT_EQ(censored.Render(),
            "c: alu_bound_crossover not reached within the sweep (why)");
}

TEST(FindingTest, KindNamesRoundTrip) {
  for (const FindingKind kind :
       {FindingKind::kCrossover, FindingKind::kSlope, FindingKind::kPlateau,
        FindingKind::kRatio}) {
    EXPECT_EQ(FindingKindFromString(ToString(kind)), kind);
  }
  EXPECT_FALSE(FindingKindFromString("from_the_future").has_value());
}

TEST(DegradationTest, RendersLegacyFailureLineFormat) {
  const Degradation d{"curveA", "pt_3", "retried", 2, "injected fault"};
  EXPECT_EQ(d.Render(), "curveA/pt_3: retried, 2 attempts — injected fault");
  const Degradation one{"c", "p", "failed", 1, ""};
  EXPECT_EQ(one.Render(), "c/p: failed, 1 attempt");
}

// ---- JSON round-trip through the loader --------------------------------

TEST(ReportRoundTripTest, JsonPreservesFindingsDegradationsAndMeta) {
  const Figure figure = SampleFigure();
  const LoadedFigure loaded = LoadFigureJson(BenchJson(figure));

  EXPECT_EQ(loaded.id, figure.id);
  EXPECT_EQ(loaded.paper_claim, figure.paper_claim);
  EXPECT_EQ(loaded.schema_version, kSchemaVersion);
  EXPECT_EQ(loaded.findings, figure.findings);
  EXPECT_EQ(loaded.degradations, figure.degradations);
  EXPECT_EQ(loaded.meta.suite_version, "v1.2.3-4-gabc");
  EXPECT_EQ(loaded.meta.threads, 8u);
  EXPECT_TRUE(loaded.meta.quick);
  EXPECT_EQ(loaded.meta.faults, "compile:p=0.5:seed=7");
  EXPECT_EQ(loaded.meta.retry, "attempts=3");
  EXPECT_EQ(loaded.meta.watchdog_cycles, 123456u);
  EXPECT_EQ(loaded.meta.archs, figure.meta.archs);
  EXPECT_EQ(loaded.meta.modes, figure.meta.modes);

  ASSERT_EQ(loaded.curves.size(), 2u);
  EXPECT_EQ(loaded.curves[0].name, "4870 Pixel Float");
  ASSERT_EQ(loaded.curves[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.curves[0].points[1].x, 0.5);
  EXPECT_DOUBLE_EQ(loaded.curves[0].points[1].y, 1.0);
  EXPECT_DOUBLE_EQ(loaded.curves[0].median, 2.0);
  EXPECT_DOUBLE_EQ(loaded.curves[1].min, 5.0);

  // Rendered findings ride in the v1 "notes" key.
  ASSERT_EQ(loaded.notes.size(), figure.findings.size());
  EXPECT_EQ(loaded.notes[0], figure.findings[0].Render());
}

TEST(ReportRoundTripTest, SlugSurvivesTheRoundTrip) {
  const Figure figure = SampleFigure();
  EXPECT_EQ(figure.Slug(), "fig_7");
  EXPECT_EQ(LoadFigureJson(BenchJson(figure)).Slug(), "fig_7");
}

TEST(ReportRoundTripTest, V1DocumentsLoadWithDefaults) {
  const char* v1 =
      "{\"figure\": \"Fig. 9 — Old\", \"title\": \"t\","
      " \"paper_claim\": \"c\", \"notes\": [\"free text\"],"
      " \"curves\": [{\"name\": \"a\","
      "   \"points\": [{\"x\": 1, \"sim_seconds\": 2.5}],"
      "   \"sim_seconds_median\": 2.5, \"sim_seconds_min\": 2.5,"
      "   \"sim_seconds_max\": 2.5}]}";
  const LoadedFigure loaded = LoadFigureJson(v1);
  EXPECT_EQ(loaded.schema_version, 1);
  EXPECT_TRUE(loaded.findings.empty());
  EXPECT_TRUE(loaded.degradations.empty());
  EXPECT_EQ(loaded.notes.size(), 1u);
  EXPECT_EQ(loaded.meta.threads, 1u);
  ASSERT_EQ(loaded.curves.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.curves[0].points[0].y, 2.5);
}

TEST(ReportRoundTripTest, MalformedDocumentsThrowConfigError) {
  EXPECT_THROW(LoadFigureJson("{\"title\": \"no figure key\"}"), ConfigError);
  EXPECT_THROW(LoadFigureJson("{broken"), ConfigError);
  EXPECT_THROW(LoadFigureJson(""), ConfigError);
}

TEST(JsonParserTest, ParsesEscapesAndUnicode) {
  const JsonValue v =
      JsonValue::Parse("{\"s\": \"a\\n\\\"b\\u00e9\", \"n\": -1.5e2,"
                       " \"b\": true, \"z\": null, \"arr\": [1, 2]}");
  EXPECT_EQ(v.Find("s")->AsString(), "a\n\"b\xc3\xa9");
  EXPECT_DOUBLE_EQ(v.Find("n")->AsNumber(), -150.0);
  EXPECT_TRUE(v.Find("b")->AsBool());
  EXPECT_TRUE(v.Find("z")->IsNull());
  EXPECT_EQ(v.Find("arr")->AsArray().size(), 2u);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, RoundTripsEscapedStrings) {
  // Em-dash (multi-byte UTF-8), quotes, and control characters must
  // survive write → parse unchanged.
  const std::string nasty = "Fig — \"x\"\t\x01 end";
  const JsonValue v = JsonValue::Parse("\"" + JsonEscape(nasty) + "\"");
  EXPECT_EQ(v.AsString(), nasty);
}

// ---- CSV sink golden file ----------------------------------------------

TEST(CsvSinkTest, MatchesGoldenOutput) {
  Figure figure("Fig. X — CSV", "ALU:Fetch", "ratio", "seconds", "claim");
  Series& a = figure.set.Get("a");
  a.Add(0.25, 3.0);
  a.Add(0.5, 1.0);
  figure.set.Get("b").Add(0.25, 5.0);
  const std::string golden =
      "# ALU:Fetch\n"
      "ratio,a,b\n"
      "0.25,3.000000,5.000000\n"
      "0.5,1.000000,\n";
  EXPECT_EQ(CsvText(figure), golden);
}

TEST(CsvSinkTest, WritesFileNamedAfterSlug) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_csv_test";
  std::filesystem::remove_all(dir);
  Figure figure = SampleFigure();
  CsvSink sink(dir);
  sink.Write(figure);
  ASSERT_EQ(sink.Written().size(), 1u);
  EXPECT_EQ(sink.Written()[0].filename().string(), "fig_7.csv");
  EXPECT_TRUE(std::filesystem::exists(sink.Written()[0]));
  std::filesystem::remove_all(dir);
}

// ---- Text sink ----------------------------------------------------------

TEST(TextSinkTest, RendersFindingsAndDegradations) {
  std::ostringstream out;
  Figure figure = SampleFigure();
  TextSink sink(out);
  sink.Write(figure);
  const std::string text = out.str();
  EXPECT_NE(text.find("==== Fig. 7 — ALU:Fetch Ratio for 16 Inputs ===="),
            std::string::npos);
  EXPECT_NE(text.find("Measured:\n"), std::string::npos);
  EXPECT_NE(text.find("  - 4870 Pixel Float: alu_bound_crossover = 2.250 "
                      "ratio"),
            std::string::npos);
  EXPECT_NE(text.find("Fault annotations (degraded sweep points):"),
            std::string::npos);
  EXPECT_NE(text.find("  - 4870 Pixel Float/alufetch_r0.25: retried, "
                      "2 attempts — injected fault: compile"),
            std::string::npos);
}

// ---- Expectation checks -------------------------------------------------

LoadedFigure Fig7WithCrossover(std::optional<double> value) {
  LoadedFigure figure;
  figure.id = "Fig. 7 — ALU:Fetch Ratio for 16 Inputs";
  figure.findings.push_back({FindingKind::kCrossover, "4870 Pixel Float",
                             "alu_bound_crossover", value, "ratio", ""});
  return figure;
}

Expectation RangeExpectation(double min, double max) {
  return {"fig_7", "4870 Pixel Float", "alu_bound_crossover", min, max,
          false, "test"};
}

TEST(ExpectationTest, PassFailMissingAndCensored) {
  const LoadedFigure figure = Fig7WithCrossover(2.25);

  EXPECT_EQ(CheckExpectation(RangeExpectation(0.5, 3.5), figure).status,
            ExpectationStatus::kPass);
  const ExpectationResult fail =
      CheckExpectation(RangeExpectation(3.0, 7.5), figure);
  EXPECT_EQ(fail.status, ExpectationStatus::kFail);
  EXPECT_NE(fail.detail.find("outside"), std::string::npos);

  Expectation missing = RangeExpectation(0.5, 3.5);
  missing.label = "no_such_finding";
  EXPECT_EQ(CheckExpectation(missing, figure).status,
            ExpectationStatus::kMissing);

  Expectation censored = RangeExpectation(0, 0);
  censored.min.reset();
  censored.max.reset();
  censored.expect_censored = true;
  EXPECT_EQ(CheckExpectation(censored, figure).status,
            ExpectationStatus::kFail);
  EXPECT_EQ(CheckExpectation(censored, Fig7WithCrossover(std::nullopt))
                .status,
            ExpectationStatus::kPass);
  // A censored finding fails a range expectation.
  EXPECT_EQ(CheckExpectation(RangeExpectation(0.5, 3.5),
                             Fig7WithCrossover(std::nullopt))
                .status,
            ExpectationStatus::kFail);
}

TEST(ExpectationTest, CurveSubstringPicksTheFirstMatch) {
  LoadedFigure figure = Fig7WithCrossover(2.25);
  figure.findings.push_back({FindingKind::kCrossover, "4870 Pixel Float4",
                             "alu_bound_crossover", 5.25, "ratio", ""});
  // "4870 Pixel Float" is a prefix of "4870 Pixel Float4": registration
  // order guarantees the exact curve is found first.
  const ExpectationResult r =
      CheckExpectation(RangeExpectation(0.5, 3.5), figure);
  EXPECT_EQ(r.status, ExpectationStatus::kPass);
  Expectation float4 = RangeExpectation(3.0, 7.5);
  float4.curve_substr = "4870 Pixel Float4";
  EXPECT_EQ(CheckExpectation(float4, figure).status,
            ExpectationStatus::kPass);
}

TEST(ExpectationTest, SkipsExpectationsForAbsentFigures) {
  const std::vector<LoadedFigure> figures = {Fig7WithCrossover(2.25)};
  const std::vector<ExpectationResult> checks = CheckExpectations(figures);
  // Only the three fig_7 expectations apply; the fig_7 float4/compute
  // ones report missing (the sample figure lacks those findings).
  ASSERT_EQ(checks.size(), 3u);
  EXPECT_EQ(checks[0].status, ExpectationStatus::kPass);
  EXPECT_EQ(checks[1].status, ExpectationStatus::kMissing);
  EXPECT_EQ(checks[2].status, ExpectationStatus::kMissing);
}

TEST(ExpectationTest, BuiltInTableIsWellFormed) {
  for (const Expectation& e : PaperExpectations()) {
    EXPECT_FALSE(e.figure_slug.empty());
    EXPECT_FALSE(e.label.empty());
    EXPECT_FALSE(e.paper_note.empty());
    // Slugs in the table must be the canonical form of themselves.
    EXPECT_EQ(FigureSlug(e.figure_slug), e.figure_slug);
    if (!e.expect_censored) {
      ASSERT_TRUE(e.min.has_value());
      ASSERT_TRUE(e.max.has_value());
      EXPECT_LT(*e.min, *e.max);
    }
  }
}

// ---- Directory merge + aggregator ---------------------------------------

TEST(AggregateTest, MergesADirectoryIntoMarkdown) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_aggregate_test";
  std::filesystem::remove_all(dir);
  WriteBenchJson(SampleFigure(), dir);
  Figure other("Ablation — Clause Usage Control (paper Fig. 5)", "t", "x",
               "y", "flat");
  other.set.Get("RV770 clause control").Add(0, 1.0);
  other.findings.push_back({FindingKind::kRatio, "RV770 clause control",
                            "level_variation", 0.05, "", ""});
  other.meta = SampleFigure().meta;  // Same run -> same provenance.
  WriteBenchJson(other, dir);

  const std::vector<LoadedFigure> figures = LoadFigureDirectory(dir);
  ASSERT_EQ(figures.size(), 2u);
  // Sorted by filename: BENCH_ablation_... before BENCH_fig_7.
  EXPECT_EQ(figures[0].Slug(), "ablation_clause_usage_control_paper_fig_5");
  EXPECT_EQ(figures[1].Slug(), "fig_7");

  const std::vector<ExpectationResult> checks = CheckExpectations(figures);
  const std::string md = SuiteSummaryMarkdown(figures, checks);
  EXPECT_NE(md.find("# AMD micro-benchmark suite — merged results"),
            std::string::npos);
  EXPECT_NE(md.find("## Fig. 7 — ALU:Fetch Ratio for 16 Inputs"),
            std::string::npos);
  EXPECT_NE(md.find("| 4870 Pixel Float | 2 |"), std::string::npos);
  EXPECT_NE(md.find("## Paper-expectation checks"), std::string::npos);
  // The clause-control expectation passes on the synthetic value 0.05.
  EXPECT_NE(md.find("| ablation_clause_usage_control_paper_fig_5 | "
                    "RV770 clause control | level_variation |"),
            std::string::npos);
  EXPECT_NE(md.find("Run: suite v1.2.3-4-gabc, 8 sweep threads, quick "
                    "domains"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(AggregateTest, MissingDirectoryThrows) {
  EXPECT_THROW(
      LoadFigureDirectory("/nonexistent/amdmb_report_dir"), ConfigError);
}

}  // namespace
}  // namespace amdmb
