// Unit tests for src/il: opcodes, builder, verifier, printer, and the
// malformed-kernel corpus replay through the kerncap intake.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.hpp"
#include "il/builder.hpp"
#include "il/il.hpp"
#include "il/printer.hpp"
#include "il/verifier.hpp"
#include "kerncap/intake.hpp"

namespace amdmb::il {
namespace {

Signature PixelSig(unsigned inputs, unsigned outputs) {
  Signature sig;
  sig.inputs = inputs;
  sig.outputs = outputs;
  sig.type = DataType::kFloat;
  sig.read_path = ReadPath::kTexture;
  sig.write_path = WritePath::kStream;
  return sig;
}

TEST(OpcodeTest, Classification) {
  EXPECT_TRUE(IsFetch(Opcode::kSample));
  EXPECT_TRUE(IsFetch(Opcode::kGlobalLoad));
  EXPECT_FALSE(IsFetch(Opcode::kAdd));
  EXPECT_TRUE(IsAlu(Opcode::kAdd));
  EXPECT_TRUE(IsAlu(Opcode::kMad));
  EXPECT_TRUE(IsAlu(Opcode::kRcp));
  EXPECT_FALSE(IsAlu(Opcode::kExport));
  EXPECT_TRUE(IsWrite(Opcode::kExport));
  EXPECT_TRUE(IsWrite(Opcode::kGlobalStore));
  EXPECT_TRUE(IsTranscendental(Opcode::kSin));
  EXPECT_FALSE(IsTranscendental(Opcode::kMul));
  EXPECT_TRUE(IsMeta(Opcode::kClauseBreak));
  EXPECT_FALSE(IsMeta(Opcode::kAdd));
}

TEST(OpcodeTest, SourceCounts) {
  EXPECT_EQ(SourceCount(Opcode::kSample), 0u);
  EXPECT_EQ(SourceCount(Opcode::kMov), 1u);
  EXPECT_EQ(SourceCount(Opcode::kAdd), 2u);
  EXPECT_EQ(SourceCount(Opcode::kMad), 3u);
  EXPECT_EQ(SourceCount(Opcode::kExport), 1u);
}

TEST(BuilderTest, BuildsValidChainKernel) {
  Builder b("chain", PixelSig(2, 1));
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  const unsigned sum = b.Add(Operand::Reg(a), Operand::Reg(c));
  b.Write(0, sum);
  const Kernel k = std::move(b).Build();
  EXPECT_EQ(k.CountFetchOps(), 2u);
  EXPECT_EQ(k.CountAluOps(), 1u);
  EXPECT_EQ(k.CountWriteOps(), 1u);
  EXPECT_TRUE(Verify(k).ok()) << Verify(k).Message();
}

TEST(BuilderTest, VirtualRegistersAreSequential) {
  Builder b("seq", PixelSig(2, 1));
  EXPECT_EQ(b.Fetch(0), 0u);
  EXPECT_EQ(b.Fetch(1), 1u);
  EXPECT_EQ(b.Add(Operand::Reg(0), Operand::Reg(1)), 2u);
  EXPECT_EQ(b.Alu1(Opcode::kMov, Operand::Reg(2)), 3u);
  b.Write(0, 3);
}

TEST(BuilderTest, RejectsOutOfRangeResources) {
  Builder b("bad", PixelSig(1, 1));
  EXPECT_THROW(b.Fetch(1), ConfigError);
  const unsigned r = b.Fetch(0);
  EXPECT_THROW(b.Write(1, r), ConfigError);
  EXPECT_THROW(b.Write(0, 99), ConfigError);
}

TEST(BuilderTest, RejectsWrongArity) {
  Builder b("arity", PixelSig(1, 1));
  EXPECT_THROW(b.Alu(Opcode::kMov, Operand::Lit(1), Operand::Lit(2)),
               ConfigError);
  EXPECT_THROW(b.Alu1(Opcode::kAdd, Operand::Lit(1)), ConfigError);
  EXPECT_THROW(b.Alu(Opcode::kSample, Operand::Lit(1), Operand::Lit(2)),
               ConfigError);
}

TEST(VerifierTest, FlagsKernelWithoutOutputs) {
  Kernel k;
  k.sig = PixelSig(0, 0);
  const VerifyResult r = Verify(k);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Message().find("no outputs"), std::string::npos);
}

// Paper Sec. III: "Every input that is declared and sampled has to be
// used, otherwise the compiler optimizes the input out of the code."
TEST(VerifierTest, FlagsUnusedSampledInput) {
  Builder b("unused", PixelSig(2, 1));
  const unsigned a = b.Fetch(0);
  b.Fetch(1);  // Sampled but never used.
  const unsigned sum = b.Add(Operand::Reg(a), Operand::Reg(a));
  b.Write(0, sum);
  const VerifyResult r = Verify(std::move(b).Build());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Message().find("never used"), std::string::npos);
}

TEST(VerifierTest, FlagsUndeclaredAndUnfetchedInputs) {
  Kernel k;
  k.sig = PixelSig(2, 1);
  k.code.push_back(Inst{Opcode::kSample, 0, 5, {}});  // Input 5 undeclared.
  k.code.push_back(Inst{Opcode::kExport, 0, 0, {Operand::Reg(0)}});
  const VerifyResult r = Verify(k);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Message().find("undeclared input"), std::string::npos);
  EXPECT_NE(r.Message().find("never fetched"), std::string::npos);
}

TEST(VerifierTest, FlagsUseBeforeDefinition) {
  Kernel k;
  k.sig = PixelSig(1, 1);
  k.code.push_back(
      Inst{Opcode::kAdd, 1, 0, {Operand::Reg(0), Operand::Reg(0)}});
  k.code.push_back(Inst{Opcode::kSample, 0, 0, {}});
  k.code.push_back(Inst{Opcode::kExport, 0, 0, {Operand::Reg(1)}});
  const VerifyResult r = Verify(k);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Message().find("before definition"), std::string::npos);
}

TEST(VerifierTest, FlagsDoubleDefinition) {
  Kernel k;
  k.sig = PixelSig(2, 1);
  k.code.push_back(Inst{Opcode::kSample, 0, 0, {}});
  k.code.push_back(Inst{Opcode::kSample, 0, 1, {}});  // Redefines r0.
  k.code.push_back(Inst{Opcode::kExport, 0, 0, {Operand::Reg(0)}});
  const VerifyResult r = Verify(k);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Message().find("defined twice"), std::string::npos);
}

TEST(VerifierTest, FlagsDoubleWriteAndPathMismatch) {
  Builder b("w", PixelSig(1, 1));
  const unsigned a = b.Fetch(0);
  b.Write(0, a);
  Kernel k = std::move(b).Build();
  // Duplicate the write.
  k.code.push_back(k.code.back());
  EXPECT_FALSE(Verify(k).ok());

  // Path mismatch: export in a global-write kernel.
  Kernel k2 = k;
  k2.code.pop_back();
  k2.sig.write_path = WritePath::kGlobal;
  const VerifyResult r2 = Verify(k2);
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.Message().find("write path"), std::string::npos);
}

TEST(VerifierTest, FlagsConstantOutOfRange) {
  Signature sig = PixelSig(1, 1);
  sig.constants = 1;
  Builder b("c", sig);
  const unsigned a = b.Fetch(0);
  const unsigned s = b.Add(Operand::Reg(a), Operand::Const(3));
  b.Write(0, s);
  const VerifyResult r = Verify(std::move(b).Build());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.Message().find("constant-buffer"), std::string::npos);
}

TEST(VerifierTest, VerifyOrThrowThrowsConfigError) {
  Kernel k;
  k.sig = PixelSig(0, 0);
  EXPECT_THROW(VerifyOrThrow(k), ConfigError);
}

TEST(PrinterTest, RendersDeclarationsAndInstructions) {
  Signature sig = PixelSig(2, 1);
  sig.constants = 2;
  Builder b("printme", sig);
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  const unsigned s = b.Add(Operand::Reg(a), Operand::Reg(c));
  const unsigned t = b.Alu(Opcode::kMul, Operand::Reg(s), Operand::Const(1));
  b.ClauseBreak();
  const unsigned u = b.Add(Operand::Reg(t), Operand::Lit(2.5f));
  b.Write(0, u);
  const std::string text = Print(std::move(b).Build());
  EXPECT_NE(text.find("il_ps_2_0"), std::string::npos);
  EXPECT_NE(text.find("dcl_input i0..i1"), std::string::npos);
  EXPECT_NE(text.find("dcl_cb cb0[2]"), std::string::npos);
  EXPECT_NE(text.find("sample"), std::string::npos);
  EXPECT_NE(text.find("cb0[1]"), std::string::npos);
  EXPECT_NE(text.find("l(2.5)"), std::string::npos);
  EXPECT_NE(text.find(";; clause_break"), std::string::npos);
  EXPECT_NE(text.find("export"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(PrinterTest, ComputeKernelUsesComputeHeader) {
  Signature sig;
  sig.inputs = 1;
  sig.outputs = 1;
  sig.read_path = ReadPath::kGlobal;
  sig.write_path = WritePath::kGlobal;
  Builder b("cs", sig);
  b.Write(0, b.Fetch(0));
  const std::string text = Print(std::move(b).Build());
  EXPECT_NE(text.find("il_cs_2_0"), std::string::npos);
  EXPECT_NE(text.find("uav_load"), std::string::npos);
  EXPECT_NE(text.find("uav_store"), std::string::npos);
}

// Replays the checked-in malformed-kernel corpus (the same files the
// fuzz harness and the kerncap-smoke CI job drive) through the intake
// boundary. Every valid_*.il must be accepted; everything else must
// come back as a typed rejection with a stable reason code — never an
// exception.
TEST(CorpusTest, EveryCorpusFileGetsATypedVerdict) {
  namespace fs = std::filesystem;
  const fs::path corpus = fs::path(AMDMB_TEST_DATA_DIR) / "corpus" / "il";
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.path().extension() == ".il") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 20u);
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.is_open());
    std::ostringstream text;
    text << file.rdbuf();
    kerncap::AnalyzeResult result;
    ASSERT_NO_THROW(result = kerncap::Analyze(text.str()));
    const bool expect_ok =
        path.filename().string().rfind("valid_", 0) == 0;
    if (expect_ok) {
      EXPECT_TRUE(result.ok())
          << kerncap::ToString(result.rejection->reason) << ": "
          << result.rejection->detail;
    } else {
      ASSERT_FALSE(result.ok());
      EXPECT_FALSE(
          std::string(kerncap::ToString(result.rejection->reason)).empty());
      EXPECT_FALSE(result.rejection->detail.empty());
    }
  }
}

}  // namespace
}  // namespace amdmb::il
