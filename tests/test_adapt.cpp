// Tests for the adaptive sweep subsystem (src/adapt): typed transition
// detection, the coarse-to-fine Refiner, the 2D frontier quadrant
// refiner, and the end-to-end dense-vs-adaptive guarantees the ISSUE
// states — every dense crossover is reproduced within the refinement
// tolerance, the Fig. 7 family spends at most a fifth of the dense
// points, the refinement trajectory is bit-stable across executor
// widths, and a seeded fault-retry schedule never changes which points
// the refiner selects.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "adapt/frontier.hpp"
#include "adapt/refiner.hpp"
#include "adapt/transition.hpp"
#include "arch/gpu_arch.hpp"
#include "exec/sweep_executor.hpp"
#include "fault/fault.hpp"
#include "report/json_sink.hpp"
#include "report/record.hpp"
#include "suite/alu_fetch.hpp"
#include "suite/figures.hpp"
#include "suite/microbench.hpp"

namespace amdmb {
namespace {

using adapt::DetectTransitions;
using adapt::FirstTransitionTo;
using adapt::KneeIndex;
using adapt::Sample;
using adapt::Transition;
using adapt::TransitionKind;

std::vector<Sample> Labelled(const std::vector<std::string>& labels) {
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    samples.push_back({static_cast<double>(i), labels[i]});
  }
  return samples;
}

// ---- Transition detection ---------------------------------------------

TEST(TransitionTest, PlateauYieldsNoTransitions) {
  EXPECT_TRUE(DetectTransitions({}).empty());
  EXPECT_TRUE(DetectTransitions(Labelled({"FETCH"})).empty());
  EXPECT_TRUE(
      DetectTransitions(Labelled({"FETCH", "FETCH", "FETCH"})).empty());
}

TEST(TransitionTest, InteriorFlipIsBracketed) {
  const auto transitions =
      DetectTransitions(Labelled({"FETCH", "FETCH", "ALU", "ALU"}));
  ASSERT_EQ(transitions.size(), 1u);
  const Transition& t = transitions[0];
  EXPECT_EQ(t.lower_index, 1u);
  EXPECT_EQ(t.upper_index, 2u);
  EXPECT_DOUBLE_EQ(t.lower_x, 1.0);
  EXPECT_DOUBLE_EQ(t.upper_x, 2.0);
  EXPECT_EQ(t.from, "FETCH");
  EXPECT_EQ(t.to, "ALU");
  EXPECT_EQ(t.kind, TransitionKind::kInterior);
  EXPECT_DOUBLE_EQ(t.Width(), 1.0);
}

TEST(TransitionTest, EveryFlipOfAMultiFlipCurveIsReported) {
  const auto transitions = DetectTransitions(
      Labelled({"FETCH", "ALU", "ALU", "MEMORY", "ALU"}));
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].to, "ALU");
  EXPECT_EQ(transitions[1].from, "ALU");
  EXPECT_EQ(transitions[1].to, "MEMORY");
  EXPECT_EQ(transitions[2].to, "ALU");
  EXPECT_EQ(transitions[2].upper_index, 4u);
}

TEST(TransitionTest, FirstTransitionAtBoundaryIsCensoredBelowDomain) {
  const auto t = FirstTransitionTo(Labelled({"ALU", "ALU"}), "ALU");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, TransitionKind::kAtLowerBoundary);
  EXPECT_EQ(t->lower_index, t->upper_index);
  EXPECT_DOUBLE_EQ(t->Width(), 0.0);
  EXPECT_EQ(t->from, "");
  EXPECT_EQ(t->to, "ALU");
}

TEST(TransitionTest, FirstTransitionIsCensoredWhenLabelNeverAppears) {
  EXPECT_FALSE(
      FirstTransitionTo(Labelled({"FETCH", "FETCH"}), "ALU").has_value());
  EXPECT_FALSE(FirstTransitionTo({}, "ALU").has_value());
}

TEST(TransitionTest, FirstTransitionSkipsLaterFlips) {
  const auto t = FirstTransitionTo(
      Labelled({"FETCH", "ALU", "FETCH", "ALU"}), "ALU");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->upper_index, 1u);
  EXPECT_EQ(t->kind, TransitionKind::kInterior);
}

TEST(TransitionTest, KneeFindsTheBendAndRejectsDegenerates) {
  // Piecewise-linear elbow at x=4.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 8; ++i) {
    xs.push_back(i);
    ys.push_back(i <= 4 ? 0.0 : (i - 4) * 2.0);
  }
  const auto knee = KneeIndex(xs, ys);
  ASSERT_TRUE(knee.has_value());
  EXPECT_EQ(*knee, 4u);
  EXPECT_FALSE(KneeIndex({0.0, 1.0}, {0.0, 1.0}).has_value());
  EXPECT_FALSE(KneeIndex({1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}).has_value());
}

// ---- Refiner over synthetic label fields ------------------------------

/// A synthetic classifier: "FETCH" below the flip index, "ALU" at and
/// above it. Counts measurements so tests can assert spend.
struct StepField {
  std::size_t flip;
  mutable std::vector<std::size_t> measured;

  std::string operator()(std::size_t index, unsigned /*attempt*/) const {
    measured.push_back(index);
    return index >= flip ? "ALU" : "FETCH";
  }
};

TEST(RefinerTest, BisectionBracketsTheFlipWithinTolerance) {
  adapt::Settings settings;
  settings.tol_steps = 1;
  const adapt::Refiner refiner(settings, nullptr, exec::RetryPolicy{});
  const StepField field{/*flip=*/20, {}};
  const adapt::Outcome outcome = refiner.Run(
      33, [](std::size_t i) { return static_cast<double>(i); },
      [&](std::size_t i, unsigned a) { return field(i, a); });

  EXPECT_EQ(outcome.dense_points, 33u);
  EXPECT_LT(outcome.points_spent, 33u / 2);
  ASSERT_EQ(outcome.transitions.size(), 1u);
  const Transition& t = outcome.transitions[0];
  // tol_steps=1 pins the bracket to adjacent dense indices: the flip
  // itself is identified exactly.
  EXPECT_DOUBLE_EQ(t.upper_x, 20.0);
  EXPECT_DOUBLE_EQ(t.lower_x, 19.0);
  // `measured` is the sorted union of the waves.
  EXPECT_TRUE(std::is_sorted(outcome.measured.begin(),
                             outcome.measured.end()));
  EXPECT_EQ(outcome.measured.size(), outcome.points_spent);
}

TEST(RefinerTest, PlateauStopsAfterTheCoarsePass) {
  const adapt::Refiner refiner({}, nullptr, exec::RetryPolicy{});
  const adapt::Outcome outcome = refiner.Run(
      33, [](std::size_t i) { return static_cast<double>(i); },
      [](std::size_t, unsigned) { return "FETCH"; });
  EXPECT_EQ(outcome.points_spent, 3u);  // Default coarse pass only.
  EXPECT_EQ(outcome.waves, 1u);
  EXPECT_TRUE(outcome.transitions.empty());
}

TEST(RefinerTest, BudgetTruncatesDeterministically) {
  adapt::Settings settings;
  settings.tol_steps = 1;
  settings.budget = 4;  // Coarse pass (3) plus one bisection point.
  const adapt::Refiner refiner(settings, nullptr, exec::RetryPolicy{});
  const StepField field{/*flip=*/20, {}};
  const adapt::Outcome outcome = refiner.Run(
      33, [](std::size_t i) { return static_cast<double>(i); },
      [&](std::size_t i, unsigned a) { return field(i, a); });
  EXPECT_EQ(outcome.points_spent, 4u);
  // The flip is still bracketed, just more coarsely than tol asks.
  ASSERT_EQ(outcome.transitions.size(), 1u);
  EXPECT_GE(outcome.transitions[0].upper_x, 20.0);
  EXPECT_LT(outcome.transitions[0].lower_x, 20.0);
}

TEST(RefinerTest, TrajectoryIsIdenticalAtAnyExecutorWidth) {
  adapt::Settings settings;
  settings.tol_steps = 1;
  const exec::SweepExecutor serial(1);
  const exec::SweepExecutor wide(8);
  const StepField f1{/*flip=*/11, {}};
  const StepField f8{/*flip=*/11, {}};
  const adapt::Outcome a =
      adapt::Refiner(settings, &serial, exec::RetryPolicy{})
          .Run(65, [](std::size_t i) { return static_cast<double>(i); },
               [&](std::size_t i, unsigned at) { return f1(i, at); });
  const adapt::Outcome b =
      adapt::Refiner(settings, &wide, exec::RetryPolicy{})
          .Run(65, [](std::size_t i) { return static_cast<double>(i); },
               [&](std::size_t i, unsigned at) { return f8(i, at); });
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.waves, b.waves);
  EXPECT_EQ(a.points_spent, b.points_spent);
}

TEST(RefinerTest, AdaptiveFindingsCarryTransitionAndSpend) {
  const adapt::Refiner refiner({}, nullptr, exec::RetryPolicy{});
  const StepField field{/*flip=*/20, {}};
  const adapt::Outcome outcome = refiner.Run(
      33, [](std::size_t i) { return 0.25 * static_cast<double>(i); },
      [&](std::size_t i, unsigned a) { return field(i, a); });
  const auto findings =
      adapt::AdaptiveFindings(outcome, "4870 Pixel Float", "ratio");
  const report::Finding* flip =
      report::FindFinding(findings, "transition_to_alu", "4870 Pixel Float");
  ASSERT_NE(flip, nullptr);
  EXPECT_EQ(flip->kind, report::FindingKind::kCrossover);
  ASSERT_TRUE(flip->value.has_value());
  EXPECT_NEAR(*flip->value, 5.0, 0.51);
  const report::Finding* spend =
      report::FindFinding(findings, "adaptive_points", "4870 Pixel Float");
  ASSERT_NE(spend, nullptr);
  EXPECT_EQ(spend->kind, report::FindingKind::kEvent);
  EXPECT_DOUBLE_EQ(*spend->value,
                   static_cast<double>(outcome.points_spent));
}

// ---- 2D frontier quadrant refinement ----------------------------------

/// Synthetic 2D field: "ALU" where ix >= iy + 3, else "FETCH" — a
/// diagonal frontier through the grid.
std::string DiagonalField(std::size_t ix, std::size_t iy) {
  return ix >= iy + 3 ? "ALU" : "FETCH";
}

TEST(FrontierTest, QuadrantRefinementMatchesDenseLabels) {
  adapt::FrontierConfig config;
  const auto x_of = [](std::size_t i) { return static_cast<double>(i); };
  std::size_t spent = 0;
  config.dense = false;
  const adapt::FrontierResult adaptive = adapt::RefineGrid(
      9, 8, x_of, x_of,
      [&](std::size_t ix, std::size_t iy, unsigned) {
        ++spent;
        return DiagonalField(ix, iy);
      },
      config);
  config.dense = true;
  const adapt::FrontierResult dense = adapt::RefineGrid(
      9, 8, x_of, x_of,
      [](std::size_t ix, std::size_t iy, unsigned) {
        return DiagonalField(ix, iy);
      },
      config);
  ASSERT_EQ(adaptive.frontier.cells.size(), 9u * 8u);
  // Every cell — measured or filled from agreeing corners — matches the
  // dense truth, and refinement spent strictly fewer measurements.
  EXPECT_EQ(adaptive.frontier.cells, dense.frontier.cells);
  EXPECT_EQ(spent, adaptive.frontier.points_measured);
  EXPECT_LT(adaptive.frontier.points_measured,
            dense.frontier.points_measured);
  EXPECT_EQ(dense.frontier.points_measured, 9u * 8u);
}

TEST(FrontierTest, GridIsIdenticalAtAnyExecutorWidth) {
  const exec::SweepExecutor serial(1);
  const exec::SweepExecutor wide(8);
  const auto x_of = [](std::size_t i) { return static_cast<double>(i); };
  adapt::FrontierConfig config;
  config.executor = &serial;
  const adapt::FrontierResult a = adapt::RefineGrid(
      9, 8, x_of, x_of,
      [](std::size_t ix, std::size_t iy, unsigned) {
        return DiagonalField(ix, iy);
      },
      config);
  config.executor = &wide;
  const adapt::FrontierResult b = adapt::RefineGrid(
      9, 8, x_of, x_of,
      [](std::size_t ix, std::size_t iy, unsigned) {
        return DiagonalField(ix, iy);
      },
      config);
  EXPECT_EQ(a.frontier.cells, b.frontier.cells);
  EXPECT_EQ(a.frontier.measured, b.frontier.measured);
  EXPECT_EQ(a.frontier.points_measured, b.frontier.points_measured);
}

TEST(FrontierTest, BudgetLeavesUnresolvedCellsEmpty) {
  adapt::FrontierConfig config;
  config.budget = 4;  // Not even the first corner wave fits.
  const auto x_of = [](std::size_t i) { return static_cast<double>(i); };
  const adapt::FrontierResult r = adapt::RefineGrid(
      9, 8, x_of, x_of,
      [](std::size_t ix, std::size_t iy, unsigned) {
        return DiagonalField(ix, iy);
      },
      config);
  EXPECT_LE(r.frontier.points_measured, 4u);
  EXPECT_GT(std::count(r.frontier.cells.begin(), r.frontier.cells.end(),
                       std::string()),
            0);
}

// ---- End-to-end: dense vs adaptive on the real suite ------------------

double MaxGridStep(const report::Figure& figure) {
  double step = 0.0;
  for (const Series& series : figure.set.All()) {
    const auto& points = series.Points();
    for (std::size_t i = 1; i < points.size(); ++i) {
      step = std::max(step, points[i].x - points[i - 1].x);
    }
  }
  return step;
}

// Every registry figure (the 12 sweep documents; the remaining 6 BENCH
// docs — ablations, ext_block_size, table1 — are not sweeps and have no
// crossovers to refine, see EXPERIMENTS.md): each dense crossover
// finding must be reproduced by the adaptive build within tol_steps
// dense grid steps, censored verdicts included.
TEST(AdaptiveAgreementTest, EveryRegistryCrossoverAgreesWithinTolerance) {
  adapt::Settings settings;  // tol_steps=2, the AMDMB_ADAPT_TOL default.
  for (const suite::figures::FigureDef& def : suite::figures::Registry()) {
    suite::figures::RunOptions dense_opts;
    dense_opts.quick = true;
    const report::Figure dense = suite::figures::Build(def, dense_opts);
    suite::figures::RunOptions adaptive_opts = dense_opts;
    adaptive_opts.adaptive = &settings;
    const report::Figure adaptive = suite::figures::Build(def, adaptive_opts);
    EXPECT_FALSE(dense.meta.adaptive);
    EXPECT_TRUE(adaptive.meta.adaptive);

    const double tolerance = settings.tol_steps * MaxGridStep(dense) + 1e-9;
    for (const report::Finding& d : dense.findings) {
      if (d.kind != report::FindingKind::kCrossover) continue;
      const report::Finding* a =
          report::FindFinding(adaptive.findings, d.label, d.curve);
      ASSERT_NE(a, nullptr)
          << def.slug << " " << d.curve << "/" << d.label
          << ": crossover lost by the adaptive run";
      EXPECT_EQ(d.value.has_value(), a->value.has_value())
          << def.slug << " " << d.curve << "/" << d.label;
      if (d.value.has_value() && a->value.has_value()) {
        EXPECT_NEAR(*d.value, *a->value, tolerance)
            << def.slug << " " << d.curve << "/" << d.label;
      }
    }
  }
}

// The headline budget claim, at runner level on the full Fig. 7 ratio
// grid (32 points; quick domains keep the test fast — the point count
// is what the claim is about). The CI adaptive-smoke job asserts the
// same bound for the whole Fig. 7-9 family via amdmb_adapt.
TEST(AdaptiveBudgetTest, Fig7FamilySpendsAtMostAFifthOfDense) {
  suite::Runner runner(MakeRV770());
  suite::AluFetchConfig config;
  config.domain = Domain{256, 256};
  const suite::AluFetchResult dense =
      suite::RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat,
                         config);
  adapt::Settings settings;
  suite::AluFetchConfig adaptive_config = config;
  adaptive_config.adaptive = &settings;
  const suite::AluFetchResult adaptive = suite::RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, adaptive_config);

  ASSERT_TRUE(adaptive.adaptive.has_value());
  EXPECT_EQ(adaptive.adaptive->dense_points, 32u);
  EXPECT_LE(adaptive.adaptive->SpendFraction(), 0.2);
  ASSERT_TRUE(dense.crossover.has_value());
  ASSERT_TRUE(adaptive.crossover.has_value());
  EXPECT_NEAR(*dense.crossover, *adaptive.crossover,
              settings.tol_steps * config.ratio_step + 1e-9);
}

// Determinism satellite: the adaptive BENCH JSON is byte-identical at
// executor width 1 and 8 (AMDMB_THREADS invariance).
TEST(AdaptiveDeterminismTest, BenchJsonIsByteIdenticalAcrossWidths) {
  const suite::figures::FigureDef* def = suite::figures::Find("fig_7");
  ASSERT_NE(def, nullptr);
  adapt::Settings settings;
  const exec::SweepExecutor serial(1);
  const exec::SweepExecutor wide(8);
  suite::figures::RunOptions opts;
  opts.quick = true;
  opts.adaptive = &settings;
  opts.executor = &serial;
  const std::string a = report::BenchJson(suite::figures::Build(*def, opts));
  opts.executor = &wide;
  const std::string b = report::BenchJson(suite::figures::Build(*def, opts));
  EXPECT_EQ(a, b);
}

TEST(AdaptiveDeterminismTest, FrontierFigureIsByteIdenticalAcrossWidths) {
  adapt::FrontierConfig config;
  config.nx = 5;
  config.ny = 4;
  config.domain = Domain{64, 64};
  config.repetitions = 10;
  const exec::SweepExecutor serial(1);
  const exec::SweepExecutor wide(8);
  config.executor = &serial;
  const std::string a = report::BenchJson(adapt::BuildFrontierFigure(config));
  config.executor = &wide;
  const std::string b = report::BenchJson(adapt::BuildFrontierFigure(config));
  EXPECT_EQ(a, b);
  // The frontier block actually made it into the document.
  EXPECT_NE(a.find("\"frontier\""), std::string::npos);
  EXPECT_NE(a.find("\"adaptive\": true"), std::string::npos);
}

// Determinism satellite: a seeded fault schedule retries points but
// never changes which dense indices the refiner selects.
TEST(AdaptiveDeterminismTest, SeededFaultRetryDoesNotMovePoints) {
  suite::Runner runner(MakeRV770());
  adapt::Settings settings;
  suite::AluFetchConfig config;
  config.domain = Domain{256, 256};
  config.adaptive = &settings;
  // Generous attempt cap so every injected fault resolves to a retry,
  // not a skip (a skipped midpoint legitimately stops refinement).
  config.retry.max_attempts = 8;
  const suite::AluFetchResult clean = suite::RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_TRUE(clean.adaptive.has_value());

  fault::ScopedFaultInjector scoped("launch:0.5,seed=11");
  const suite::AluFetchResult faulty = suite::RunAluFetch(
      runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_TRUE(faulty.adaptive.has_value());

  EXPECT_EQ(clean.adaptive->measured, faulty.adaptive->measured);
  EXPECT_EQ(clean.adaptive->samples, faulty.adaptive->samples);
  EXPECT_EQ(clean.crossover, faulty.crossover);
  EXPECT_GT(faulty.report.CountOf(exec::PointStatus::kRetried), 0u);
  EXPECT_EQ(clean.report.CountOf(exec::PointStatus::kRetried), 0u);
}

}  // namespace
}  // namespace amdmb
