// Micro-benchmark infrastructure tests: runners, sweeps, crossover
// detection, figure assembly, and the optimisation advisor.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "suite/suite.hpp"

namespace amdmb::suite {
namespace {

// Small domains keep these unit tests fast; figure-shape properties at
// paper scale live in test_figures.cpp.
constexpr Domain kSmall{256, 256};

TEST(RunnerTest, MeasureReturnsConsistentData) {
  Runner runner(MakeRV770());
  GenericSpec spec;
  spec.inputs = 4;
  spec.alu_ops = 16;
  sim::LaunchConfig launch;
  launch.domain = kSmall;
  const Measurement m = runner.Measure(GenerateGeneric(spec), launch);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_EQ(m.seconds, m.stats.seconds);
  EXPECT_EQ(m.ska.alu_ops, 16u);
  EXPECT_DOUBLE_EQ(m.ska.alu_fetch_ratio, 1.0);
}

TEST(CurveKeyTest, PaperLegendNames) {
  const CurveKey key{MakeRV770(), ShaderMode::kPixel, DataType::kFloat};
  EXPECT_EQ(key.Name(), "4870 Pixel Float");
  const CurveKey key2{MakeRV870(), ShaderMode::kCompute, DataType::kFloat4};
  EXPECT_EQ(key2.Name(), "5870 Compute Float4");
}

TEST(CurveKeyTest, PaperCurvesSkipRv670Compute) {
  const auto curves = PaperCurves();
  // 3 GPUs x 2 types in pixel mode + 2 GPUs x 2 types in compute = 10,
  // exactly the paper's Fig. 7 legend.
  EXPECT_EQ(curves.size(), 10u);
  for (const CurveKey& key : curves) {
    EXPECT_FALSE(key.arch.name == "RV670" &&
                 key.mode == ShaderMode::kCompute);
  }
  EXPECT_EQ(PaperCurves(true, false).size(), 6u);
  EXPECT_EQ(PaperCurves(false, true).size(), 4u);
}

TEST(AluFetchTest, SweepFindsCrossoverAndIsMonotoneAtTail) {
  Runner runner(MakeRV770());
  AluFetchConfig config;
  config.domain = kSmall;
  config.ratio_step = 0.5;
  const AluFetchResult r =
      RunAluFetch(runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_EQ(r.points.size(), 16u);
  ASSERT_TRUE(r.crossover.has_value());
  // Once ALU-bound, time grows with the ratio.
  bool past = false;
  double prev = 0.0;
  for (const AluFetchPoint& p : r.points) {
    if (p.ratio >= *r.crossover + 1.0) {
      if (past) {
        EXPECT_GT(p.m.seconds, prev);
      }
      past = true;
      prev = p.m.seconds;
    }
  }
}

TEST(AluFetchTest, FigureHasOneSeriesPerCurve) {
  AluFetchConfig config;
  config.domain = kSmall;
  config.ratio_min = 1.0;
  config.ratio_max = 2.0;
  config.ratio_step = 1.0;
  const std::vector<CurveKey> curves = {
      {MakeRV770(), ShaderMode::kPixel, DataType::kFloat},
      {MakeRV770(), ShaderMode::kCompute, DataType::kFloat},
  };
  const SeriesSet figure = AluFetchFigure(curves, config, "test");
  EXPECT_EQ(figure.All().size(), 2u);
  for (const Series& s : figure.All()) {
    EXPECT_EQ(s.Points().size(), 2u);
  }
}

TEST(ReadLatencyTest, LinearInInputs) {
  Runner runner(MakeRV770());
  ReadLatencyConfig config;
  config.domain = kSmall;
  const ReadLatencyResult r =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_EQ(r.points.size(), 17u);
  EXPECT_GT(r.fit.slope, 0.0);
  EXPECT_GT(r.fit.r2, 0.95);  // Paper: "latency ... is linear".
}

TEST(ReadLatencyTest, KernelsStayFetchBound) {
  Runner runner(MakeRV870());
  ReadLatencyConfig config;
  config.domain = kSmall;
  const ReadLatencyResult r =
      RunReadLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config);
  for (const ReadLatencyPoint& p : r.points) {
    EXPECT_NE(p.m.stats.bottleneck, sim::Bottleneck::kAlu)
        << "inputs=" << p.inputs;
  }
}

TEST(WriteLatencyTest, LinearTailAndPinnedGprs) {
  Runner runner(MakeRV770());
  WriteLatencyConfig config;
  config.domain = kSmall;
  const WriteLatencyResult r =
      RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat4, config);
  ASSERT_EQ(r.points.size(), 8u);
  const unsigned gpr = r.points.front().m.stats.gpr_count;
  for (const WriteLatencyPoint& p : r.points) {
    EXPECT_EQ(p.m.stats.gpr_count, gpr);
  }
  EXPECT_GE(r.points.back().m.seconds, r.points.front().m.seconds);
}

TEST(WriteLatencyTest, RejectsOutputsAboveInputs) {
  Runner runner(MakeRV770());
  WriteLatencyConfig config;
  config.max_outputs = 12;
  EXPECT_THROW(
      RunWriteLatency(runner, ShaderMode::kPixel, DataType::kFloat, config),
      ConfigError);
}

TEST(DomainSizeTest, TimeGrowsOverSweep) {
  Runner runner(MakeRV770());
  DomainSizeConfig config;
  config.min_size = 256;
  config.max_size = 512;
  config.pixel_increment = 64;
  const DomainSizeResult r =
      RunDomainSize(runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_EQ(r.points.size(), 5u);
  EXPECT_GT(r.points.back().m.seconds, r.points.front().m.seconds * 2.0);
  // ALU:Fetch 10 -> always ALU-bound (Sec. III-D).
  for (const DomainSizePoint& p : r.points) {
    EXPECT_EQ(p.m.stats.bottleneck, sim::Bottleneck::kAlu);
  }
}

TEST(RegisterUsageTest, GprAxisMatchesPaperRange) {
  Runner runner(MakeRV770());
  RegisterUsageConfig config;
  config.domain = kSmall;
  const RegisterUsageResult r =
      RunRegisterUsage(runner, ShaderMode::kPixel, DataType::kFloat, config);
  ASSERT_EQ(r.points.size(), 8u);
  EXPECT_GE(r.points.front().gpr_count, 63u);
  EXPECT_LE(r.points.back().gpr_count, 12u);
}

TEST(AdvisorTest, SuggestionsTrackBottleneck) {
  Runner runner(MakeRV770());
  sim::LaunchConfig launch;
  launch.domain = kSmall;

  GenericSpec alu_spec;
  alu_spec.inputs = 4;
  alu_spec.alu_ops = 512;
  const Measurement alu_m =
      runner.Measure(GenerateGeneric(alu_spec), launch);
  const Advice alu_advice = Advise(alu_m, ShaderMode::kPixel, {64, 1});
  EXPECT_EQ(alu_advice.bound, sim::Bottleneck::kAlu);
  ASSERT_FALSE(alu_advice.suggestions.empty());
  EXPECT_NE(alu_advice.Render().find("ALU-bound"), std::string::npos);

  GenericSpec fetch_spec;
  fetch_spec.inputs = 16;
  fetch_spec.alu_ops = 16;
  const Measurement fetch_m =
      runner.Measure(GenerateGeneric(fetch_spec), launch);
  const Advice fetch_advice =
      Advise(fetch_m, ShaderMode::kCompute, {64, 1});
  EXPECT_EQ(fetch_advice.bound, sim::Bottleneck::kFetch);
  bool mentions_block = false;
  for (const std::string& s : fetch_advice.suggestions) {
    mentions_block |= s.find("4x16") != std::string::npos;
  }
  EXPECT_TRUE(mentions_block);
}

TEST(SuiteReportTest, QuickReportMentionsEveryFigure) {
  SuiteOptions options;
  options.quick = true;
  options.arch_filter = "RV770";
  const std::string report = RunFullSuiteReport(options);
  for (const char* needle :
       {"TABLE I", "Fig. 7", "Figs. 11-12", "Figs. 13-14", "Fig. 16",
        "4870 Pixel Float"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace amdmb::suite
