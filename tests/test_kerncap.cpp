// Tests for the kerncap subsystem: the untrusted-input intake taxonomy,
// golden Table I occupancy numbers, characterization determinism across
// executor widths, and cross-validation of the intake->MeasureAt path
// against the figure registry's own generated kernels.
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "arch/gpu_arch.hpp"
#include "arch/occupancy.hpp"
#include "exec/sweep_executor.hpp"
#include "il/printer.hpp"
#include "kerncap/characterize.hpp"
#include "kerncap/intake.hpp"
#include "kerncap/static_analysis.hpp"
#include "report/json_sink.hpp"
#include "suite/figures.hpp"
#include "suite/microbench.hpp"

namespace amdmb {
namespace {

// A minimal pixel-shader kernel that passes every intake stage.
constexpr char kValidPixelIl[] =
    "il_ps_2_0 ; intake_probe\n"
    "; type=Float read=Texture write=Stream\n"
    "dcl_input i0\n"
    "dcl_output o0\n"
    "  sample    r0, i0\n"
    "  mov       r1, r0\n"
    "  export    o0, r1\n"
    "end\n";

// A Global/Global kernel, eligible for both shader modes.
constexpr char kValidGlobalIl[] =
    "il_cs_2_0 ; global_probe\n"
    "; type=Float read=Global write=Global\n"
    "dcl_input i0..i1\n"
    "dcl_cb cb0[1]\n"
    "dcl_output o0\n"
    "  uav_load  r0, i0\n"
    "  uav_load  r1, i1\n"
    "  mad       r2, r0, cb0[0], r1\n"
    "  uav_store o0, r2\n"
    "end\n";

TEST(KerncapOccupancy, GoldenTableIValues) {
  // Hand-computed from Table I: 256 GPRs per thread, at most 24
  // resident wavefronts per SIMD, theoretical = max(1, 256 / GPRs).
  const struct {
    unsigned gpr;
    unsigned theoretical;
    unsigned resident;
  } golden[] = {{1, 256, 24}, {5, 51, 24},  {10, 25, 24}, {16, 16, 16},
                {64, 4, 4},   {200, 1, 1},  {300, 1, 1}};
  for (const GpuArch& arch : AllArchs()) {
    ASSERT_EQ(arch.gpr_budget_per_thread, 256u) << arch.name;
    ASSERT_EQ(arch.max_wavefronts_per_simd, 24u) << arch.name;
    for (const auto& g : golden) {
      EXPECT_EQ(TheoreticalWavefronts(arch, g.gpr), g.theoretical)
          << arch.name << " gpr=" << g.gpr;
      EXPECT_EQ(WavefrontsPerSimd(arch, g.gpr), g.resident)
          << arch.name << " gpr=" << g.gpr;
    }
  }
}

TEST(KerncapOccupancy, StaticsAgreeWithOccupancyMath) {
  const kerncap::AnalyzeResult result = kerncap::Analyze(kValidPixelIl);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.prepared->statics.size(), AllArchs().size());
  for (const kerncap::ArchStatic& s : result.prepared->statics) {
    ASSERT_GT(s.ska.gpr_count, 0u);
    EXPECT_EQ(s.ska.theoretical_wavefronts,
              TheoreticalWavefronts(s.arch, s.ska.gpr_count));
    EXPECT_EQ(s.ska.resident_wavefronts,
              WavefrontsPerSimd(s.arch, s.ska.gpr_count));
  }
}

TEST(KerncapIntake, AcceptsValidKernel) {
  const kerncap::AnalyzeResult result = kerncap::Analyze(kValidPixelIl);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.prepared->kernel.name, "intake_probe");
  EXPECT_EQ(result.prepared->hash, result.hash);
  EXPECT_EQ(result.hash, kerncap::ContentHash(kValidPixelIl));
}

TEST(KerncapIntake, ContentHashIsStable) {
  const std::string a = kerncap::ContentHash(kValidPixelIl);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a, kerncap::ContentHash(kValidPixelIl));
  EXPECT_NE(a, kerncap::ContentHash(kValidGlobalIl));
  EXPECT_EQ(a.find_first_not_of("0123456789abcdef"), std::string::npos);
}

void ExpectRejected(const kerncap::AnalyzeResult& result,
                    kerncap::RejectReason reason) {
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.rejection->reason, reason)
      << kerncap::ToString(result.rejection->reason) << ": "
      << result.rejection->detail;
  EXPECT_FALSE(result.rejection->detail.empty());
  EXPECT_FALSE(result.prepared.has_value());
}

TEST(KerncapIntake, RejectsOversizedPayload) {
  kerncap::IntakeLimits limits;
  limits.max_bytes = 8;
  ExpectRejected(kerncap::Analyze(kValidPixelIl, limits),
                 kerncap::RejectReason::kPayloadTooLarge);
}

TEST(KerncapIntake, RejectsTooManyLines) {
  kerncap::IntakeLimits limits;
  limits.max_lines = 3;
  ExpectRejected(kerncap::Analyze(kValidPixelIl, limits),
                 kerncap::RejectReason::kTooManyLines);
}

TEST(KerncapIntake, RejectsTooManyInstructions) {
  kerncap::IntakeLimits limits;
  limits.max_instructions = 2;  // The probe kernel has three.
  ExpectRejected(kerncap::Analyze(kValidPixelIl, limits),
                 kerncap::RejectReason::kTooManyInstructions);
}

TEST(KerncapIntake, RejectsResourceLimit) {
  kerncap::IntakeLimits limits;
  limits.max_inputs = 1;  // The Global probe declares two inputs.
  ExpectRejected(kerncap::Analyze(kValidGlobalIl, limits),
                 kerncap::RejectReason::kResourceLimit);
}

TEST(KerncapIntake, RejectsParseError) {
  ExpectRejected(kerncap::Analyze("this is not IL\n"),
                 kerncap::RejectReason::kParseError);
}

TEST(KerncapIntake, RejectsVerifyError) {
  // Grammatically valid, but i0 is declared and never fetched.
  ExpectRejected(kerncap::Analyze(
                     "il_ps_2_0 ; verify_probe\n"
                     "; type=Float read=Texture write=Stream\n"
                     "dcl_input i0\n"
                     "dcl_output o0\n"
                     "  mov       r0, l(1.0)\n"
                     "  export    o0, r0\n"
                     "end\n"),
                 kerncap::RejectReason::kVerifyError);
}

TEST(KerncapIntake, ReasonCodesAreStableWireStrings) {
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kPayloadTooLarge),
            "payload_too_large");
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kTooManyLines),
            "too_many_lines");
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kTooManyInstructions),
            "too_many_instructions");
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kResourceLimit),
            "resource_limit");
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kParseError),
            "parse_error");
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kVerifyError),
            "verify_error");
  EXPECT_EQ(kerncap::ToString(kerncap::RejectReason::kCompileError),
            "compile_error");
}

TEST(KerncapCharacterize, EligibleCurvesRespectModeRules) {
  const kerncap::AnalyzeResult pixel = kerncap::Analyze(kValidPixelIl);
  ASSERT_TRUE(pixel.ok());
  // Stream writers are pixel-only: one curve per architecture.
  EXPECT_EQ(kerncap::EligibleCurves(pixel.prepared->kernel).size(),
            AllArchs().size());

  const kerncap::AnalyzeResult global = kerncap::Analyze(kValidGlobalIl);
  ASSERT_TRUE(global.ok());
  // Global writers add a compute curve per compute-capable arch.
  std::size_t expected = 0;
  for (const GpuArch& arch : AllArchs()) {
    expected += arch.supports_compute ? 2 : 1;
  }
  EXPECT_EQ(kerncap::EligibleCurves(global.prepared->kernel).size(),
            expected);
}

TEST(KerncapCharacterize, FigureIdentityCarriesNameAndHash) {
  const kerncap::AnalyzeResult result = kerncap::Analyze(kValidPixelIl);
  ASSERT_TRUE(result.ok());
  const kerncap::Prepared& prepared = *result.prepared;
  EXPECT_EQ(kerncap::FigureId(prepared),
            "Kerncap — intake_probe " + prepared.hash);
  const std::string slug = kerncap::Slug(prepared);
  EXPECT_EQ(slug.rfind("kerncap_", 0), 0u) << slug;
  EXPECT_NE(slug.find(prepared.hash), std::string::npos) << slug;
}

TEST(KerncapCharacterize, DeterministicAcrossExecutorWidths) {
  const kerncap::AnalyzeResult result = kerncap::Analyze(kValidGlobalIl);
  ASSERT_TRUE(result.ok());
  kerncap::CharacterizeOptions options;
  options.quick = true;

  const exec::SweepExecutor one(1);
  options.executor = &one;
  const std::string serial =
      report::BenchJson(kerncap::Characterize(*result.prepared, options));

  const exec::SweepExecutor wide(8);
  options.executor = &wide;
  const std::string parallel =
      report::BenchJson(kerncap::Characterize(*result.prepared, options));

  EXPECT_EQ(serial, parallel);
}

// Every registry figure family, cross-validated: print the generated
// kernel's IL, push the text back through the untrusted-input intake,
// and measure at the figure's own operating point. The result must be
// bit-identical to measuring the in-memory kernel directly — same
// stats, same seconds, same bottleneck verdict, same counter-based
// attribution.
TEST(KerncapCrossValidation, ReproducesRegistryOperatingPoints) {
  const std::vector<suite::figures::CrossCheckPoint> points =
      suite::figures::CrossCheckPoints();
  ASSERT_GT(points.size(), 30u);
  std::map<std::string, kerncap::Prepared> prepared_by_il;
  for (const suite::figures::CrossCheckPoint& p : points) {
    SCOPED_TRACE(p.figure + " / " + p.curve + " / " + p.point);
    const std::string il = il::Print(p.kernel);
    auto it = prepared_by_il.find(il);
    if (it == prepared_by_il.end()) {
      kerncap::AnalyzeResult analysis = kerncap::Analyze(il);
      ASSERT_TRUE(analysis.ok())
          << kerncap::ToString(analysis.rejection->reason) << ": "
          << analysis.rejection->detail << "\n"
          << il;
      it = prepared_by_il.emplace(il, std::move(*analysis.prepared)).first;
    }

    const suite::Runner runner(p.arch);
    const suite::Measurement direct =
        runner.Measure(p.kernel, p.config, {p.point, 1});
    const suite::Measurement via =
        kerncap::MeasureAt(it->second, p.arch, p.config, p.point);

    EXPECT_EQ(direct.seconds, via.seconds);
    EXPECT_TRUE(direct.stats == via.stats);
    EXPECT_EQ(sim::ToString(direct.stats.bottleneck),
              sim::ToString(via.stats.bottleneck));
    ASSERT_NE(direct.profile, nullptr);
    ASSERT_NE(via.profile, nullptr);
    EXPECT_EQ(sim::ToString(direct.profile->attribution.bottleneck),
              sim::ToString(via.profile->attribution.bottleneck));
  }
}

}  // namespace
}  // namespace amdmb
