// Tests for the machine-readable results writer and the figure-id slug.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/bench_json.hpp"
#include "common/series.hpp"

namespace amdmb {
namespace {

TEST(FigureSlugTest, StopsAtEmDashOnly) {
  EXPECT_EQ(FigureSlug("Fig. 7 — ALU:Fetch Ratio"), "fig_7");
  EXPECT_EQ(FigureSlug("Table I — Hardware"), "table_i");
}

TEST(FigureSlugTest, KeepsEveryNumberOfMultiPartIds) {
  // The old slug truncated at the first hyphen, collapsing
  // "Figs. 11-12" to "figs_11".
  EXPECT_EQ(FigureSlug("Figs. 11-12 — Read latency"), "figs_11_12");
  EXPECT_EQ(FigureSlug("Figs. 16-17"), "figs_16_17");
}

TEST(FigureSlugTest, EmptyAndSymbolIdsFallBack) {
  EXPECT_EQ(FigureSlug(""), "figure");
  EXPECT_EQ(FigureSlug("—"), "figure");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

SeriesSet TwoCurveFigure() {
  SeriesSet set("ALU:Fetch", "ratio", "seconds");
  Series& a = set.Get("4870 Pixel Float");
  a.Add(0.25, 3.0);
  a.Add(0.50, 1.0);
  a.Add(1.00, 2.0);
  Series& b = set.Get("4870 Pixel Float4");
  b.Add(0.25, 5.0);
  b.Add(0.50, 7.0);
  return set;
}

TEST(BenchJsonTest, EmitsCurvesWithSummaryStats) {
  const std::string json =
      BenchJson(TwoCurveFigure(), "Fig. 7 — ALU:Fetch", "claim", {"note1"});
  EXPECT_NE(json.find("\"figure\": \"Fig. 7 — ALU:Fetch\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"4870 Pixel Float\""), std::string::npos);
  EXPECT_NE(json.find("{\"x\": 0.25, \"sim_seconds\": 3}"),
            std::string::npos);
  // Median of {3, 1, 2} is 2; min 1; max 3.
  EXPECT_NE(json.find("\"sim_seconds_median\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds_min\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds_max\": 3"), std::string::npos);
  // Even-count median of {5, 7} is 6.
  EXPECT_NE(json.find("\"sim_seconds_median\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"notes\": [\"note1\"]"), std::string::npos);
}

TEST(BenchJsonTest, WritesBenchFileNamedAfterSlug) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_json_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path file = WriteBenchJson(
      TwoCurveFigure(), "Figs. 11-12 — Read latency", "claim", {}, dir);
  EXPECT_EQ(file.filename().string(), "BENCH_figs_11_12.json");
  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"curves\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amdmb
