// Tests for the machine-readable results writer and the figure-id slug.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "report/json.hpp"
#include "report/json_sink.hpp"
#include "report/record.hpp"

namespace amdmb {
namespace {

using report::BenchJson;
using report::FigureSlug;
using report::JsonEscape;
using report::JsonValue;
using report::WriteBenchJson;

TEST(FigureSlugTest, StopsAtEmDashAfterNumberedPrefix) {
  EXPECT_EQ(FigureSlug("Fig. 7 — ALU:Fetch Ratio"), "fig_7");
  EXPECT_EQ(FigureSlug("Fig. 15a — Domain Size, Pixel Shader"), "fig_15a");
}

TEST(FigureSlugTest, KeepsEveryNumberOfMultiPartIds) {
  // The old slug truncated at the first hyphen, collapsing
  // "Figs. 11-12" to "figs_11".
  EXPECT_EQ(FigureSlug("Figs. 11-12 — Read latency"), "figs_11_12");
  EXPECT_EQ(FigureSlug("Figs. 16-17"), "figs_16_17");
}

TEST(FigureSlugTest, UnnumberedIdsKeepTheirFullText) {
  // Four distinct ablation figures must not collide on "ablation": the
  // em-dash only terminates ids whose prefix carried a digit.
  EXPECT_EQ(FigureSlug("Ablation — 2-D Cache Set Indexing"),
            "ablation_2_d_cache_set_indexing");
  EXPECT_EQ(FigureSlug("Ablation — Wavefront Residency Cap"),
            "ablation_wavefront_residency_cap");
  EXPECT_EQ(FigureSlug("Extension — Compute Block-Size Explorer"),
            "extension_compute_block_size_explorer");
  // Numbered parentheticals after the title still belong to the slug.
  EXPECT_EQ(FigureSlug("Ablation — Clause Usage Control (paper Fig. 5)"),
            "ablation_clause_usage_control_paper_fig_5");
  EXPECT_EQ(FigureSlug("Table I"), "table_i");
}

TEST(FigureSlugTest, EmptyAndSymbolIdsFallBack) {
  EXPECT_EQ(FigureSlug(""), "figure");
  EXPECT_EQ(FigureSlug("—"), "figure");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

report::Figure TwoCurveFigure() {
  report::Figure figure("Fig. 7 — ALU:Fetch", "ALU:Fetch", "ratio",
                        "seconds", "claim");
  Series& a = figure.set.Get("4870 Pixel Float");
  a.Add(0.25, 3.0);
  a.Add(0.50, 1.0);
  a.Add(1.00, 2.0);
  Series& b = figure.set.Get("4870 Pixel Float4");
  b.Add(0.25, 5.0);
  b.Add(0.50, 7.0);
  figure.findings.push_back({report::FindingKind::kCrossover,
                             "4870 Pixel Float", "alu_bound_crossover", 0.5,
                             "ratio", ""});
  return figure;
}

TEST(BenchJsonTest, EmitsCurvesWithSummaryStats) {
  const std::string json = BenchJson(TwoCurveFigure());
  EXPECT_NE(json.find("\"figure\": \"Fig. 7 — ALU:Fetch\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"4870 Pixel Float\""), std::string::npos);
  EXPECT_NE(json.find("{\"x\": 0.25, \"sim_seconds\": 3}"),
            std::string::npos);
  // Median of {3, 1, 2} is 2; min 1; max 3.
  EXPECT_NE(json.find("\"sim_seconds_median\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds_min\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds_max\": 3"), std::string::npos);
  // Even-count median of {5, 7} is 6.
  EXPECT_NE(json.find("\"sim_seconds_median\": 6"), std::string::npos);
  // "notes" carries the rendered findings (v1 key, v2 content).
  EXPECT_NE(json.find("\"notes\": [\"4870 Pixel Float: "
                      "alu_bound_crossover = 0.500 ratio\"]"),
            std::string::npos);
}

TEST(BenchJsonTest, FaultFreeDocumentsOnlyGainAdditiveKeys) {
  // Schema-compat guarantee: relative to v1 (figure, title, paper_claim,
  // notes, curves), a fault-free v2 document only *adds* keys — a v1
  // consumer keeps working untouched.
  const JsonValue doc = JsonValue::Parse(BenchJson(TwoCurveFigure()));
  std::set<std::string> keys;
  for (const auto& [key, value] : doc.AsObject()) keys.insert(key);
  for (const char* v1_key :
       {"figure", "title", "paper_claim", "notes", "curves"}) {
    EXPECT_TRUE(keys.count(v1_key)) << "v1 key missing: " << v1_key;
  }
  EXPECT_TRUE(keys.count("schema_version"));
  EXPECT_TRUE(keys.count("meta"));
  EXPECT_TRUE(keys.count("findings"));
  // No degraded points -> no "degradations" key at all.
  EXPECT_FALSE(keys.count("degradations"));
  EXPECT_EQ(doc.NumberOr("schema_version", 0), report::kSchemaVersion);
}

TEST(BenchJsonTest, WritesBenchFileNamedAfterSlug) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "amdmb_json_test";
  std::filesystem::remove_all(dir);
  report::Figure figure("Figs. 11-12 — Read latency", "Read latency",
                        "inputs", "seconds", "claim");
  figure.set.Get("a").Add(1, 2.0);
  const std::filesystem::path file = WriteBenchJson(figure, dir);
  EXPECT_EQ(file.filename().string(), "BENCH_figs_11_12.json");
  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"curves\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amdmb
