// Functional-correctness tests: the IL interpreter against closed-form
// expectations, and the ISA interpreter against the IL interpreter —
// which validates clause formation, VLIW packing, PV lane resolution,
// and register allocation end to end.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "cal/interp.hpp"
#include "compiler/compiler.hpp"
#include "il/builder.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::cal {
namespace {

using il::Operand;

void ExpectSameOutputs(const FuncResult& a, const FuncResult& b) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    ASSERT_EQ(a.outputs[o].size(), b.outputs[o].size());
    for (std::size_t i = 0; i < a.outputs[o].size(); ++i) {
      for (int c = 0; c < 4; ++c) {
        ASSERT_EQ(a.outputs[o][i][c], b.outputs[o][i][c])
            << "output " << o << " elem " << i << " comp " << c;
      }
    }
  }
}

TEST(IlInterpTest, SumOfInputsMatchesClosedForm) {
  il::Signature sig;
  sig.inputs = 3;
  sig.outputs = 1;
  il::Builder b("sum3", sig);
  const unsigned i0 = b.Fetch(0);
  const unsigned i1 = b.Fetch(1);
  const unsigned i2 = b.Fetch(2);
  const unsigned s = b.Add(Operand::Reg(b.Add(Operand::Reg(i0),
                                              Operand::Reg(i1))),
                           Operand::Reg(i2));
  b.Write(0, s);
  const il::Kernel k = std::move(b).Build();

  const Domain domain{4, 4};
  const FuncResult r = RunIl(k, domain);
  for (unsigned y = 0; y < domain.height; ++y) {
    for (unsigned x = 0; x < domain.width; ++x) {
      const Vec4 expect = [&] {
        Vec4 v{0, 0, 0, 0};
        for (unsigned res = 0; res < 3; ++res) {
          const Vec4 in = DefaultInputPattern(res, x, y);
          for (int c = 0; c < 4; ++c) v[c] += in[c];
        }
        return v;
      }();
      const Vec4& got = r.outputs[0][y * domain.width + x];
      for (int c = 0; c < 4; ++c) EXPECT_EQ(got[c], expect[c]);
    }
  }
}

TEST(IlInterpTest, ConstantsAndLiterals) {
  il::Signature sig;
  sig.inputs = 1;
  sig.outputs = 1;
  sig.constants = 2;
  il::Builder b("const", sig);
  const unsigned a = b.Fetch(0);
  const unsigned m = b.Mul(Operand::Reg(a), Operand::Const(1));
  const unsigned s = b.Add(Operand::Reg(m), Operand::Lit(0.5f));
  b.Write(0, s);
  const il::Kernel k = std::move(b).Build();
  const std::vector<Vec4> constants = {{0, 0, 0, 0}, {2, 2, 2, 2}};
  const FuncResult r = RunIl(k, Domain{1, 1}, DefaultInputPattern, constants);
  const Vec4 in = DefaultInputPattern(0, 0, 0);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(r.outputs[0][0][c], in[c] * 2.0f + 0.5f);
  }
}

TEST(IlInterpTest, MadAndTranscendentals) {
  il::Signature sig;
  sig.inputs = 2;
  sig.outputs = 1;
  il::Builder b("mad", sig);
  const unsigned a = b.Fetch(0);
  const unsigned c = b.Fetch(1);
  const unsigned m = b.Mad(Operand::Reg(a), Operand::Reg(c), Operand::Reg(a));
  const unsigned rcp = b.Alu1(il::Opcode::kRcp, Operand::Lit(4.0f));
  const unsigned s = b.Add(Operand::Reg(m), Operand::Reg(rcp));
  b.Write(0, s);
  const FuncResult r = RunIl(std::move(b).Build(), Domain{1, 1});
  const Vec4 av = DefaultInputPattern(0, 0, 0);
  const Vec4 cv = DefaultInputPattern(1, 0, 0);
  for (int comp = 0; comp < 4; ++comp) {
    EXPECT_FLOAT_EQ(r.outputs[0][0][comp],
                    av[comp] * cv[comp] + av[comp] + 0.25f);
  }
}

// The core compiler-validation property: IL and compiled-ISA execution
// agree bit-for-bit across kernel shapes, data types, and paths.
struct IsaEquivCase {
  unsigned inputs;
  unsigned outputs;
  unsigned alu_ops;
  DataType type;
  ReadPath read;
  WritePath write;
};

class IsaEquivalence : public ::testing::TestWithParam<IsaEquivCase> {};

TEST_P(IsaEquivalence, IlAndIsaAgree) {
  const IsaEquivCase& tc = GetParam();
  suite::GenericSpec spec;
  spec.inputs = tc.inputs;
  spec.outputs = tc.outputs;
  spec.alu_ops = tc.alu_ops;
  spec.type = tc.type;
  spec.read_path = tc.read;
  spec.write_path = tc.write;
  const il::Kernel k = suite::GenerateGeneric(spec);
  const isa::Program p = compiler::Compile(k, MakeRV770());
  const Domain domain{8, 4};
  ExpectSameOutputs(RunIl(k, domain), RunIsa(p, domain));
}

INSTANTIATE_TEST_SUITE_P(
    GenericKernels, IsaEquivalence,
    ::testing::Values(
        IsaEquivCase{2, 1, 1, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kStream},
        IsaEquivCase{2, 1, 64, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kStream},
        IsaEquivCase{16, 1, 128, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kStream},
        IsaEquivCase{16, 1, 128, DataType::kFloat4, ReadPath::kTexture,
                     WritePath::kStream},
        IsaEquivCase{8, 8, 32, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kStream},
        IsaEquivCase{8, 4, 24, DataType::kFloat4, ReadPath::kGlobal,
                     WritePath::kGlobal},
        IsaEquivCase{12, 1, 300, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kGlobal},
        IsaEquivCase{40, 1, 200, DataType::kFloat, ReadPath::kTexture,
                     WritePath::kStream}));

// The register-usage kernels (multi-TEX-clause) and their clause-usage
// controls must also execute identically pre/post compilation.
class RegisterKernelEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(RegisterKernelEquivalence, IlAndIsaAgree) {
  suite::RegisterUsageSpec spec;
  spec.step = GetParam();
  for (const bool control : {false, true}) {
    const il::Kernel k = control ? suite::GenerateClauseUsage(spec)
                                 : suite::GenerateRegisterUsage(spec);
    const isa::Program p = compiler::Compile(k, MakeRV770());
    const Domain domain{4, 4};
    ExpectSameOutputs(RunIl(k, domain), RunIsa(p, domain));
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, RegisterKernelEquivalence,
                         ::testing::Values(0u, 1u, 3u, 6u, 7u));

// Equivalence also holds across architectures (different clause limits).
TEST(IsaEquivalenceTest, AcrossArchitectures) {
  suite::GenericSpec spec;
  spec.inputs = 20;
  spec.alu_ops = 140;
  const il::Kernel k = suite::GenerateGeneric(spec);
  const FuncResult ref = RunIl(k, Domain{4, 4});
  for (const GpuArch& arch : AllArchs()) {
    const isa::Program p = compiler::Compile(k, arch);
    ExpectSameOutputs(ref, RunIsa(p, Domain{4, 4}));
  }
}

}  // namespace
}  // namespace amdmb::cal
