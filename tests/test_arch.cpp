// Unit tests for src/arch: Table I machine descriptions and occupancy.
#include <gtest/gtest.h>

#include "arch/gpu_arch.hpp"
#include "arch/occupancy.hpp"
#include "common/status.hpp"

namespace amdmb {
namespace {

// Table I of the paper, verbatim.
TEST(GpuArchTest, TableOneValues) {
  const GpuArch rv670 = MakeRV670();
  EXPECT_EQ(rv670.alu_count, 320u);
  EXPECT_EQ(rv670.texture_units, 16u);
  EXPECT_EQ(rv670.simd_engines, 4u);
  EXPECT_EQ(rv670.core_clock_mhz, 750u);
  EXPECT_EQ(rv670.mem_clock_mhz, 1000u);
  EXPECT_FALSE(rv670.supports_compute);

  const GpuArch rv770 = MakeRV770();
  EXPECT_EQ(rv770.alu_count, 800u);
  EXPECT_EQ(rv770.texture_units, 40u);
  EXPECT_EQ(rv770.simd_engines, 10u);
  EXPECT_EQ(rv770.core_clock_mhz, 750u);
  EXPECT_EQ(rv770.mem_clock_mhz, 900u);
  EXPECT_TRUE(rv770.supports_compute);

  const GpuArch rv870 = MakeRV870();
  EXPECT_EQ(rv870.alu_count, 1600u);
  EXPECT_EQ(rv870.texture_units, 80u);
  EXPECT_EQ(rv870.simd_engines, 20u);
  EXPECT_EQ(rv870.core_clock_mhz, 850u);
  EXPECT_EQ(rv870.mem_clock_mhz, 1200u);
}

// Paper Sec. II-A: 16 thread processors x 5-wide VLIW x SIMD count must
// equal the ALU count; 4 texture units per SIMD.
TEST(GpuArchTest, ExecutionModelConsistency) {
  for (const GpuArch& a : AllArchs()) {
    EXPECT_EQ(a.thread_processors_per_simd * a.vliw_width * a.simd_engines,
              a.alu_count)
        << a.name;
    EXPECT_EQ(a.tex_units_per_simd * a.simd_engines, a.texture_units)
        << a.name;
    EXPECT_EQ(a.wavefront_size, 64u) << a.name;
    EXPECT_EQ(a.CyclesPerBundle(), 4u) << a.name;
    EXPECT_EQ(a.gpr_budget_per_thread, 256u) << a.name;
  }
}

// Paper Sec. IV-A: RV870's texture cache is half of RV770's with double
// the line size.
TEST(GpuArchTest, Rv870CacheHalvedLineDoubled) {
  const GpuArch rv770 = MakeRV770();
  const GpuArch rv870 = MakeRV870();
  EXPECT_EQ(rv870.TotalTexCacheBytes() * 2, rv770.TotalTexCacheBytes());
  EXPECT_EQ(rv870.l1.line_bytes, 2 * rv770.l1.line_bytes);
}

TEST(GpuArchTest, LookupByChipAndCardName) {
  EXPECT_EQ(ArchByName("RV770").name, "RV770");
  EXPECT_EQ(ArchByName("4870").name, "RV770");
  EXPECT_EQ(ArchByName("Radeon HD 5870").name, "RV870");
  EXPECT_THROW(ArchByName("GTX280"), ConfigError);
}

TEST(GpuArchTest, CyclesToSecondsUsesCoreClock) {
  const GpuArch a = MakeRV770();
  EXPECT_DOUBLE_EQ(a.CyclesToSeconds(750.0e6), 1.0);
}

TEST(GpuArchTest, HardwareTableRendersAllRows) {
  const std::string table = RenderHardwareTable();
  for (const char* chip : {"RV670", "RV770", "RV870"}) {
    EXPECT_NE(table.find(chip), std::string::npos) << chip;
  }
  EXPECT_NE(table.find("1600"), std::string::npos);
  EXPECT_NE(table.find("GDDR5"), std::string::npos);
}

// Paper Sec. II-B: a 5-GPR kernel can schedule 256/5 = 51 wavefronts.
TEST(OccupancyTest, PaperExampleFiveGprs) {
  const GpuArch a = MakeRV770();
  EXPECT_EQ(TheoreticalWavefronts(a, 5), 51u);
  EXPECT_EQ(WavefrontsPerSimd(a, 5), a.max_wavefronts_per_simd);
}

TEST(OccupancyTest, MonotoneNonIncreasingInGpr) {
  const GpuArch a = MakeRV870();
  unsigned prev = WavefrontsPerSimd(a, 1);
  for (unsigned gpr = 2; gpr <= 256; ++gpr) {
    const unsigned w = WavefrontsPerSimd(a, gpr);
    EXPECT_LE(w, prev) << "gpr=" << gpr;
    prev = w;
  }
  EXPECT_EQ(WavefrontsPerSimd(a, 256), 1u);
}

TEST(OccupancyTest, AlwaysAtLeastOneWavefront) {
  const GpuArch a = MakeRV670();
  EXPECT_EQ(TheoreticalWavefronts(a, 300), 1u);  // Over budget still runs.
  EXPECT_THROW(TheoreticalWavefronts(a, 0), ConfigError);
}

TEST(OccupancyTest, SingleSlotPenalty) {
  EXPECT_TRUE(SingleSlotPenaltyApplies(1));
  EXPECT_FALSE(SingleSlotPenaltyApplies(2));
  EXPECT_FALSE(SingleSlotPenaltyApplies(24));
}

}  // namespace
}  // namespace amdmb
