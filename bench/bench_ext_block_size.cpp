// Extension bench: the block-size explorer (paper Sec. IV / future
// work). Sweeps every one-wavefront rectangular compute block shape for
// a fetch-bound kernel on RV770 and RV870 and reports the optimum and
// the naive 64x1 penalty.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Extension — Compute Block-Size Explorer",
    "Fetch-bound time per compute block shape", "log2(block width)",
    "Time in seconds",
    "The paper suggests 4x16 but notes one block size may not be best "
    "for all GPUs; the explorer finds each chip's optimum and quantifies "
    "the naive 64x1 penalty.");

void Register() {
  for (const GpuArch& arch : AllArchs()) {
    if (!arch.supports_compute) continue;
    for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
      const CurveKey key{arch, ShaderMode::kCompute, type};
      bench::RegisterCurveBenchmark("BlockSize/" + key.Name(), [key] {
        BlockSizeConfig config;
        config.type = key.type;
        if (bench::QuickMode()) config.domain = Domain{256, 256};
        Runner runner(key.arch);
        const BlockSizeResult r = RunBlockSizeExplorer(runner, config);
        Series& series = g_sink.Set().Get(key.Name());
        for (const BlockSizePoint& p : r.points) {
          series.Add(std::log2(static_cast<double>(p.block.x)),
                     p.m.seconds);
        }
        bench::NoteFaults(g_sink, key.Name(), r.report);
        bench::NoteProfiles(g_sink, key.Name(), r.points);
        if (r.points.empty()) return 0.0;
        g_sink.Add(Findings(r, key.Name()));
        return r.best_seconds;
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
