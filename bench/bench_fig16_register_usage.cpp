// Fig. 16: impact of register usage — the Fig. 6 kernel with 64 inputs,
// space 8, step 0..7 (GPRs ~64 down to ~9), ALU:Fetch ratio 4.0, all ten
// paper curves. X axis is the compiled GPR count, descending as in the
// paper.
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_16"});
}
