// Fig. 16: impact of register usage — the Fig. 6 kernel with 64 inputs,
// space 8, step 0..7 (GPRs ~64 down to ~9), ALU:Fetch ratio 4.0, all ten
// paper curves. X axis is the compiled GPR count, descending as in the
// paper.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 16 — Impact of Register Usage", "Register Pressure Effect",
    "Global Purpose Registers", "Time in seconds",
    "Fewer GPRs -> more simultaneous wavefronts -> fetch latency hidden "
    "-> faster, levelling off once the kernel goes ALU-bound; RV870 "
    "benefits less (smaller cache).");

RegisterUsageConfig Config() {
  RegisterUsageConfig config;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves()) {
    bench::RegisterCurveBenchmark("Fig16/" + key.Name(), [key] {
      Runner runner(key.arch);
      const RegisterUsageResult r =
          RunRegisterUsage(runner, key.mode, key.type, Config());
      Series& series = g_sink.Set().Get(key.Name());
      for (const RegisterUsagePoint& p : r.points) {
        series.Add(p.gpr_count, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name(), r.report);
      bench::NoteProfiles(g_sink, key.Name(), r.points);
      if (r.points.empty()) return 0.0;
      std::vector<report::Finding> findings = Findings(r, key.Name());
      findings.back().detail =
          "final bottleneck " +
          std::string(sim::ToString(r.points.back().m.stats.bottleneck));
      g_sink.Add(std::move(findings));
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
