// Shared scaffolding for the figure-reproduction benchmarks.
//
// Each bench binary reproduces one table or figure of the paper at paper
// scale. google-benchmark times the *simulator* cost of each curve (one
// iteration per curve — the interesting output is the figure data, not
// wall time), and after the benchmark pass the binary prints the figure
// as the "x  y1  y2 ..." column layout the paper's plots were drawn
// from, plus a paper-vs-measured note block consumed by EXPERIMENTS.md.
//
// Environment:
//   AMDMB_QUICK=1        shrink domains/sweeps for smoke runs.
//   AMDMB_THREADS=N      sweep-executor width (default: hardware
//                        concurrency); results are identical at any N.
//   AMDMB_DUMP_DIR=dir   write gnuplot .dat/.gp per figure.
//   AMDMB_JSON_DIR=dir   write machine-readable BENCH_<figure>.json
//                        per figure (curves + sim_seconds summary).
//   AMDMB_FAULTS=spec    deterministic fault injection (see README);
//                        degraded points surface as "failures" JSON
//                        entries and "Fault annotations" note lines.
//
// Both output directories are validated up front (created if missing,
// probed for writability) so a bad path fails with a clear message
// before any sweep runs instead of silently dropping results.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "amdmb.hpp"
#include "common/bench_json.hpp"
#include "common/gnuplot.hpp"
#include "exec/run_report.hpp"

namespace amdmb::bench {

inline bool QuickMode() {
  const char* v = std::getenv("AMDMB_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// The figure under reproduction: curves accumulate as the benchmarks
/// run; notes carry the paper-vs-measured comparison lines.
class FigureSink {
 public:
  FigureSink(std::string id, std::string title, std::string x_label,
             std::string y_label, std::string paper_claim)
      : id_(std::move(id)),
        claim_(std::move(paper_claim)),
        set_(std::move(title), std::move(x_label), std::move(y_label)) {}

  SeriesSet& Set() { return set_; }

  void Note(const std::string& line) { notes_.push_back(line); }

  /// Records one degraded sweep point (retried / skipped / failed).
  /// Fault lines flow into the printed report and the JSON document's
  /// "failures" array — emitted only when at least one point degraded.
  void Fault(const std::string& line) { faults_.push_back(line); }

  void Print() const {
    std::cout << "\n==== " << id_ << " ====\n";
    std::cout << "Paper claim: " << claim_ << "\n\n";
    std::cout << set_.RenderColumns() << "\n";
    if (!notes_.empty()) {
      std::cout << "Measured:\n";
      for (const std::string& n : notes_) std::cout << "  - " << n << "\n";
    }
    if (!faults_.empty()) {
      std::cout << "Fault annotations (degraded sweep points):\n";
      for (const std::string& f : faults_) std::cout << "  - " << f << "\n";
    }
    if (const char* dir = std::getenv("AMDMB_DUMP_DIR");
        dir != nullptr && dir[0] != '\0' && !set_.All().empty()) {
      const auto script = WriteGnuplot(set_, dir, Slug());
      std::cout << "Gnuplot script: " << script.string() << "\n";
    }
    if (const char* dir = std::getenv("AMDMB_JSON_DIR");
        dir != nullptr && dir[0] != '\0' && !set_.All().empty()) {
      const auto json =
          WriteBenchJson(set_, id_, claim_, notes_, dir, faults_);
      std::cout << "JSON results: " << json.string() << "\n";
    }
    std::cout.flush();
  }

  /// Filesystem-safe stem derived from the figure id ("Fig. 7 — ..."
  /// -> "fig_7", "Figs. 11-12 — ..." -> "figs_11_12").
  std::string Slug() const { return FigureSlug(id_); }

 private:
  std::string id_;
  std::string claim_;
  SeriesSet set_;
  std::vector<std::string> notes_;
  std::vector<std::string> faults_;
};

/// Copies every non-ok point of `report` into the sink's fault list,
/// prefixed with the owning curve name.
inline void NoteFaults(FigureSink& sink, const std::string& curve,
                       const exec::RunReport& report) {
  for (const std::string& line : report.FailureLines()) {
    sink.Fault(curve + "/" + line);
  }
}

/// Registers one google-benchmark that runs `body` once and records the
/// simulated seconds it reports as the "sim_seconds" counter.
inline void RegisterCurveBenchmark(const std::string& name,
                                   std::function<double()> body) {
  ::benchmark::RegisterBenchmark(
      name.c_str(),
      [body = std::move(body)](::benchmark::State& state) {
        double sim_seconds = 0.0;
        for (auto _ : state) {
          sim_seconds = body();
          ::benchmark::DoNotOptimize(sim_seconds);
        }
        state.counters["sim_seconds"] = sim_seconds;
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

/// Standard bench main: validate output directories, run the registered
/// benchmarks, then print every figure sink. Returns 1 with a
/// descriptive stderr message when an output directory is unusable —
/// before any sweep runs, so hours of work are never silently dropped.
inline int RunBenchMain(int argc, char** argv,
                        const std::vector<const FigureSink*>& sinks) {
  try {
    if (const char* dir = std::getenv("AMDMB_DUMP_DIR");
        dir != nullptr && dir[0] != '\0') {
      EnsureWritableDirectory(dir, "AMDMB_DUMP_DIR");
    }
    if (const char* dir = std::getenv("AMDMB_JSON_DIR");
        dir != nullptr && dir[0] != '\0') {
      EnsureWritableDirectory(dir, "AMDMB_JSON_DIR");
    }
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  ::benchmark::Initialize(&argc, &argv[0]);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  try {
    for (const FigureSink* sink : sinks) sink->Print();
  } catch (const std::exception& e) {
    std::cerr << "error: writing figure outputs failed: " << e.what()
              << "\n";
    return 1;
  }
  return 0;
}

}  // namespace amdmb::bench
