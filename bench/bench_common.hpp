// Shared scaffolding for the figure-reproduction benchmarks.
//
// Each bench binary reproduces one table or figure of the paper at paper
// scale. google-benchmark times the *simulator* cost of each curve (one
// iteration per curve — the interesting output is the figure data, not
// wall time), and after the benchmark pass the binary assembles one
// report::Figure record per figure (curves + typed findings + typed
// degradations + run meta) and pushes it through the configured sinks:
// the text sink always (the "x  y1  y2 ..." column layout the paper's
// plots were drawn from plus a "Measured:" findings block), gnuplot /
// JSON / CSV sinks when their output directories are set.
//
// Environment (parsed once by common/env.hpp):
//   AMDMB_QUICK=1        shrink domains/sweeps for smoke runs.
//   AMDMB_THREADS=N      sweep-executor width (default: hardware
//                        concurrency); results are identical at any N.
//   AMDMB_DUMP_DIR=dir   write gnuplot .dat/.gp per figure.
//   AMDMB_JSON_DIR=dir   write machine-readable BENCH_<figure>.json
//                        plus <figure>.csv per figure.
//   AMDMB_FAULTS=spec    deterministic fault injection (see README);
//                        degraded points surface as typed
//                        "degradations" JSON entries and "Fault
//                        annotations" report lines.
//
// Both output directories are validated up front (created if missing,
// probed for writability) so a bad path fails with a clear message
// before any sweep runs instead of silently dropping results.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "amdmb.hpp"
#include "common/env.hpp"
#include "common/interrupt.hpp"
#include "exec/run_report.hpp"
#include "report/csv_sink.hpp"
#include "report/gnuplot_sink.hpp"
#include "report/json_sink.hpp"
#include "report/record.hpp"
#include "report/text_sink.hpp"
#include "suite/figures.hpp"

namespace amdmb::bench {

inline bool QuickMode() { return env::Get().quick; }

/// The process-wide cancellation token the SIGINT/SIGTERM handler fires:
/// sweeps wired to it skip their remaining points, so the binary falls
/// through to the sinks and still flushes a (partial) report instead of
/// dying mid-write.
inline exec::CancelToken& InterruptToken() {
  static exec::CancelToken token;
  return token;
}

/// The figure under reproduction — a thin adapter over report::Figure:
/// curves accumulate as the benchmarks run, findings carry the typed
/// paper-vs-measured observations, degradations the non-ok sweep
/// points. Print() finalizes the record's meta block and fans it out
/// through the configured sinks.
class FigureSink {
 public:
  FigureSink(std::string id, std::string title, std::string x_label,
             std::string y_label, std::string paper_claim)
      : figure_(std::move(id), std::move(title), std::move(x_label),
                std::move(y_label), std::move(paper_claim)) {}

  SeriesSet& Set() { return figure_.set; }

  /// The underlying record (curves, findings, degradations, meta).
  report::Figure& Record() { return figure_; }
  const report::Figure& Record() const { return figure_; }

  void Add(report::Finding finding) {
    figure_.findings.push_back(std::move(finding));
  }

  void Add(std::vector<report::Finding> findings) {
    for (report::Finding& f : findings) {
      figure_.findings.push_back(std::move(f));
    }
  }

  void Print() {
    report::FinalizeMeta(figure_);
    report::TextSink(std::cout).Write(figure_);
    const env::Options& options = env::Get();
    if (options.dump_dir) {
      report::GnuplotSink sink(*options.dump_dir);
      EmitTo(sink);
    }
    if (options.json_dir) {
      report::JsonSink json(*options.json_dir);
      EmitTo(json);
      report::CsvSink csv(*options.json_dir);
      EmitTo(csv);
    }
    std::cout.flush();
  }

  /// Filesystem-safe stem derived from the figure id ("Fig. 7 — ..."
  /// -> "fig_7").
  std::string Slug() const { return figure_.Slug(); }

 private:
  void EmitTo(report::FileSink& sink) {
    sink.Write(figure_);
    for (const auto& path : sink.Written()) {
      std::cout << sink.Label() << ": " << path.string() << "\n";
    }
  }

  report::Figure figure_;
};

/// Converts every non-ok point of `report` into a typed Degradation on
/// the sink's record, attributed to `curve`.
inline void NoteFaults(FigureSink& sink, const std::string& curve,
                       const exec::RunReport& report) {
  for (report::Degradation& d : report::DegradationsFrom(report, curve)) {
    sink.Record().degradations.push_back(std::move(d));
  }
}

/// Converts every profiled point of a sweep into a typed ProfileEntry
/// on the sink's record, attributed to `curve` and cross-checked
/// against the heuristic classification of the same launch. A no-op
/// when profiling was off (every Measurement::profile is null), so
/// unprofiled bench output is byte-identical to before the profiler.
template <typename Points>
inline void NoteProfiles(FigureSink& sink, const std::string& curve,
                         const Points& points) {
  for (const auto& point : points) {
    if (point.m.profile == nullptr) continue;
    sink.Record().profiles.push_back(report::MakeProfileEntry(
        curve, *point.m.profile,
        sim::ToString(point.m.stats.bottleneck)));
  }
}

/// Registers one google-benchmark that runs `body` once and records the
/// simulated seconds it reports as the "sim_seconds" counter.
inline void RegisterCurveBenchmark(const std::string& name,
                                   std::function<double()> body) {
  ::benchmark::RegisterBenchmark(
      name.c_str(),
      [body = std::move(body)](::benchmark::State& state) {
        double sim_seconds = 0.0;
        for (auto _ : state) {
          sim_seconds = body();
          ::benchmark::DoNotOptimize(sim_seconds);
        }
        state.counters["sim_seconds"] = sim_seconds;
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

/// Standard bench main: parse the environment, validate output
/// directories, run the registered benchmarks, then print every figure
/// sink. Returns 1 with a descriptive stderr message when a knob is
/// malformed or an output directory is unusable — before any sweep
/// runs, so hours of work are never silently dropped.
inline int RunBenchMain(int argc, char** argv,
                        const std::vector<FigureSink*>& sinks) {
  try {
    const env::Options& options = env::Get();
    if (options.dump_dir) {
      report::EnsureWritableDirectory(*options.dump_dir, "AMDMB_DUMP_DIR");
    }
    if (options.json_dir) {
      report::EnsureWritableDirectory(*options.json_dir, "AMDMB_JSON_DIR");
    }
    if (options.trace_dir) {
      report::EnsureWritableDirectory(*options.trace_dir, "AMDMB_TRACE_DIR");
    }
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  // SIGINT/SIGTERM cut the run short between sweep points (via the
  // interrupt token) and between curves (the registry bodies check
  // InterruptRequested), then flush whatever was measured.
  InstallInterruptHandlers();
  NotifyFlagOnInterrupt(&InterruptToken().FlagForSignal());
  ::benchmark::Initialize(&argc, &argv[0]);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  try {
    if (InterruptRequested()) {
      const int signal_number = InterruptSignal();
      for (FigureSink* sink : sinks) {
        sink->Add({report::FindingKind::kEvent, "", "interrupted",
                   static_cast<double>(signal_number), "signal",
                   std::string(DescribeSignal(signal_number)) +
                       " received — partial report, remaining sweep "
                       "points skipped"});
      }
      std::cerr << "interrupted (" << DescribeSignal(signal_number)
                << "), flushing partial report\n";
    }
    for (FigureSink* sink : sinks) sink->Print();
  } catch (const std::exception& e) {
    std::cerr << "error: writing figure outputs failed: " << e.what()
              << "\n";
    return 1;
  }
  return InterruptRequested() ? 130 : 0;
}

/// Bench main for binaries whose figures live in the suite registry
/// (suite/figures.hpp): registers one google-benchmark per curve of each
/// named figure — names "<bench_prefix>/<curve>", unchanged from the
/// former hand-rolled binaries — then runs the standard RunBenchMain
/// flow. Sweeps are wired to the interrupt token, so Ctrl-C flushes a
/// partial figure with an "interrupted" finding instead of truncating.
inline int RunRegistryBenchMain(int argc, char** argv,
                                const std::vector<std::string>& slugs) {
  suite::figures::RunOptions opts;
  opts.quick = QuickMode();
  opts.cancel = &InterruptToken();
  // AMDMB_ADAPT=1 refines every curve instead of sweeping densely. The
  // settings are process-static because the registered curve lambdas
  // (and their copied opts) outlive this frame.
  static const adapt::Settings adaptive_settings = adapt::Settings::FromEnv();
  if (env::Get().adapt) opts.adaptive = &adaptive_settings;
  std::vector<std::unique_ptr<FigureSink>> owned;
  std::vector<FigureSink*> sinks;
  for (const std::string& slug : slugs) {
    const suite::figures::FigureDef* def = suite::figures::Find(slug);
    if (def == nullptr) {
      std::cerr << "error: unknown figure slug: " << slug << "\n";
      return 1;
    }
    auto sink = std::make_unique<FigureSink>(
        def->id, def->title, def->x_label, def->y_label, def->paper_claim);
    FigureSink* raw = sink.get();
    for (const suite::figures::CurveDef& curve : def->curves) {
      RegisterCurveBenchmark(
          def->bench_prefix + "/" + curve.name, [raw, &curve, opts] {
            if (InterruptRequested()) return 0.0;
            return curve.run(raw->Record(), opts);
          });
    }
    owned.push_back(std::move(sink));
    sinks.push_back(raw);
  }
  return RunBenchMain(argc, argv, sinks);
}

}  // namespace amdmb::bench
