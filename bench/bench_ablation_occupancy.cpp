// Ablation: the scheduler's wavefront-residency cap. The paper never
// states the hardware cap; this sweep shows how the Fig. 16 register
// effect depends on it — with a tiny cap the register sweep cannot
// convert freed GPRs into occupancy and flattens out.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Ablation — Wavefront Residency Cap",
    "Fig. 16 register sweep under different max-wavefront caps",
    "Global Purpose Registers", "Time in seconds",
    "The register-pressure speedup requires headroom in the residency "
    "cap; with cap=4 the sweep flattens, with cap>=16 it saturates.");

RegisterUsageConfig Config() {
  RegisterUsageConfig config;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const unsigned cap : {2u, 4u, 8u, 16u, 24u, 32u}) {
    bench::RegisterCurveBenchmark("OccupancyCap/" + std::to_string(cap),
                                  [cap] {
      GpuArch arch = MakeRV770();
      arch.max_wavefronts_per_simd = cap;
      Runner runner(arch);
      const RegisterUsageResult r = RunRegisterUsage(
          runner, ShaderMode::kPixel, DataType::kFloat, Config());
      Series& series = g_sink.Set().Get("cap=" + std::to_string(cap));
      for (const RegisterUsagePoint& p : r.points) {
        series.Add(p.gpr_count, p.m.seconds);
      }
      bench::NoteFaults(g_sink, "cap=" + std::to_string(cap), r.report);
      bench::NoteProfiles(g_sink, "cap=" + std::to_string(cap), r.points);
      if (r.points.empty()) return 0.0;
      g_sink.Add({report::FindingKind::kRatio, "cap=" + std::to_string(cap),
                  "sweep_improvement",
                  r.points.front().m.seconds / r.points.back().m.seconds,
                  "x", "first over last sweep point"});
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
