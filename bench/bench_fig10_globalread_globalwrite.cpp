// Fig. 10: ALU:Fetch ratio for 16 inputs using global read AND global
// write — RV770/RV870 in both modes (the paper's legend). With one
// small output, this should be near-identical to Fig. 9.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 10 — ALU:Fetch Ratio for 16 Inputs using Global Read and Write",
    "ALU:Fetch Ratio (global read + global write)", "ALU:Fetch Ratio",
    "Time in seconds",
    "Little difference from Fig. 9 for RV770/RV870: with a single small "
    "output, streaming store vs global write is negligible.");

AluFetchConfig Config(WritePath write) {
  AluFetchConfig config;
  config.read_path = ReadPath::kGlobal;
  config.write_path = write;
  if (bench::QuickMode()) {
    config.domain = Domain{256, 256};
    config.ratio_step = 1.0;
  }
  return config;
}

void Register() {
  const std::vector<GpuArch> archs = {MakeRV770(), MakeRV870()};
  for (const CurveKey& key : PaperCurves(true, true, archs)) {
    bench::RegisterCurveBenchmark("Fig10/" + key.Name(), [key] {
      Runner runner(key.arch);
      const AluFetchResult global =
          RunAluFetch(runner, key.mode, key.type, Config(WritePath::kGlobal));
      Series& series = g_sink.Set().Get(key.Name());
      for (const AluFetchPoint& p : global.points) {
        series.Add(p.ratio, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name(), global.report);
      bench::NoteProfiles(g_sink, key.Name(), global.points);
      if (global.points.empty()) return 0.0;
      g_sink.Add(Findings(global, key.Name()));
      if (key.mode == ShaderMode::kPixel) {
        const AluFetchResult stream = RunAluFetch(runner, key.mode, key.type,
                                                  Config(WritePath::kStream));
        bench::NoteFaults(g_sink, key.Name() + " stream", stream.report);
        bench::NoteProfiles(g_sink, key.Name() + " stream", stream.points);
        if (!stream.points.empty()) {
          g_sink.Add({report::FindingKind::kRatio, key.Name(),
                      "global_vs_stream_write_ratio",
                      global.points.front().m.seconds /
                          stream.points.front().m.seconds,
                      "x",
                      "global-write over stream-write in the fetch-bound "
                      "region (paper: negligible difference)"});
        }
      }
      return global.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
