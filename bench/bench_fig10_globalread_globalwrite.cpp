// Fig. 10: ALU:Fetch ratio for 16 inputs using global read AND global
// write — RV770/RV870 in both modes (the paper's legend). With one
// small output, this should be near-identical to Fig. 9.
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_10"});
}
