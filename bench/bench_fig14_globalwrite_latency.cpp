// Fig. 14: global write latency — time vs number of outputs (1..8)
// writing uncached global memory, all ten paper curves.
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_14"});
}
