// Fig. 14: global write latency — time vs number of outputs (1..8)
// writing uncached global memory, all ten paper curves.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 14 — Global Write Latency", "Global Write Latency",
    "Number of Outputs", "Time in seconds",
    "Each 32-bit element writes at a constant rate: float4 takes ~4x the "
    "float time; small output counts stay fetch-bound (flat region).");

WriteLatencyConfig Config() {
  WriteLatencyConfig config;
  config.write_path = WritePath::kGlobal;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves()) {
    bench::RegisterCurveBenchmark("Fig14/" + key.Name(), [key] {
      Runner runner(key.arch);
      const WriteLatencyResult r =
          RunWriteLatency(runner, key.mode, key.type, Config());
      Series& series = g_sink.Set().Get(key.Name());
      for (const WriteLatencyPoint& p : r.points) {
        series.Add(p.outputs, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name(), r.report);
      bench::NoteProfiles(g_sink, key.Name(), r.points);
      if (r.points.empty()) return 0.0;
      std::vector<report::Finding> findings = Findings(r, key.Name());
      findings.front().detail =
          "last point bottleneck " +
          std::string(sim::ToString(r.points.back().m.stats.bottleneck));
      g_sink.Add(std::move(findings));
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
