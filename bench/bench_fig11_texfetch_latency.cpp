// Fig. 11: texture fetch latency — time vs number of inputs (2..18)
// with the ALU budget pinned at inputs-1, all ten paper curves.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 11 — Texture Fetch Latency", "Texture Fetch Latency",
    "Number of Inputs", "Time in seconds",
    "Latency is linear in the input count; n float4 fetches cost about "
    "the same as 4n float fetches; fetch times shrink with each "
    "generation; RV870 shows a cache-driven jump as inputs grow.");

ReadLatencyConfig Config() {
  ReadLatencyConfig config;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves()) {
    bench::RegisterCurveBenchmark("Fig11/" + key.Name(), [key] {
      Runner runner(key.arch);
      const ReadLatencyResult r =
          RunReadLatency(runner, key.mode, key.type, Config());
      Series& series = g_sink.Set().Get(key.Name());
      for (const ReadLatencyPoint& p : r.points) {
        series.Add(p.inputs, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name(), r.report);
      bench::NoteProfiles(g_sink, key.Name(), r.points);
      if (r.points.empty()) return 0.0;
      g_sink.Add(Findings(r, key.Name()));
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
