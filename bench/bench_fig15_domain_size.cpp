// Fig. 15: impact of domain size — ALU-bound kernel (ratio 10, eight
// inputs, one output) over 256x256..1024x1024 domains.
// (a) pixel shader, 8x8 increments; (b) compute shader, 64x64 increments.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_pixel(
    "Fig. 15a — Domain Size, Pixel Shader", "Domain Size Pixel Shader",
    "Domain Size", "Time in seconds",
    "Time grows overall-linearly in the thread count with small local "
    "wobble (wavefront imbalance across SIMDs); a large thread count is "
    "needed to keep the GPU busy; float == float4 when ALU-bound.");

FigureSink g_compute(
    "Fig. 15b — Domain Size, Compute Shader", "Domain Size Compute Shader",
    "Domain Size", "Time in seconds",
    "Same shape as pixel mode; compute elements pad to multiples of 64.");

DomainSizeConfig Config(bool quick) {
  DomainSizeConfig config;
  if (quick) {
    config.max_size = 512;
    config.pixel_increment = 64;
  }
  return config;
}

void Register() {
  const bool quick = bench::QuickMode();
  for (const ShaderMode mode : {ShaderMode::kPixel, ShaderMode::kCompute}) {
    FigureSink& sink = mode == ShaderMode::kPixel ? g_pixel : g_compute;
    for (const GpuArch& arch : AllArchs()) {
      if (mode == ShaderMode::kCompute && !arch.supports_compute) continue;
      const CurveKey key{arch, mode, DataType::kFloat};
      std::string label = key.Name().substr(0, key.Name().find(' '));
      bench::RegisterCurveBenchmark(
          "Fig15/" + std::string(ToString(mode)) + "/" + label,
          [&sink, key, label, quick] {
            Runner runner(key.arch);
            const DomainSizeResult f =
                RunDomainSize(runner, key.mode, DataType::kFloat,
                              Config(quick));
            const DomainSizeResult f4 =
                RunDomainSize(runner, key.mode, DataType::kFloat4,
                              Config(quick));
            Series& series = sink.Set().Get(label);
            for (const DomainSizePoint& p : f.points) {
              series.Add(p.size, p.m.seconds);
            }
            bench::NoteFaults(sink, label + " float", f.report);
            bench::NoteProfiles(sink, label + " float", f.points);
            bench::NoteFaults(sink, label + " float4", f4.report);
            bench::NoteProfiles(sink, label + " float4", f4.points);
            if (f.points.empty() || f4.points.empty()) return 0.0;
            sink.Add(Findings(f, label));
            sink.Add({report::FindingKind::kRatio, label,
                      "float4_float_max_domain_ratio",
                      f4.points.back().m.seconds / f.points.back().m.seconds,
                      "x", "ALU-bound => ~1.0"});
            return f.points.back().m.seconds;
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_pixel, &g_compute});
}
