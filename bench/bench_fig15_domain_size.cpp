// Fig. 15: impact of domain size — ALU-bound kernel (ratio 10, eight
// inputs, one output) over 256x256..1024x1024 domains.
// (a) pixel shader, 8x8 increments; (b) compute shader, 64x64 increments.
// The figure definitions live in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweeps.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv,
                                            {"fig_15a", "fig_15b"});
}
