// Ablation: DRAM row-activation cost on texture-line fills. By default
// activations fully overlap with other banks' transfers (penalty 0); the
// knob shows how sensitive each dispatch shape's fill stream is to row
// locality — the naive 64x1 block touches more distinct rows per
// wavefront under Morton tiling and degrades fastest, matching the
// paper's remark that 64x1 also worsens "memory bank conflicts".
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Ablation — DRAM Row-Activation Penalty on Fills",
    "Fetch-bound time vs row-switch penalty per dispatch shape",
    "Row-switch penalty (cycles)", "Time in seconds",
    "Pixel-mode 8x8 tiles keep fills row-local; 64x1 compute blocks "
    "degrade fastest as the penalty grows.");

Measurement FetchBound(const GpuArch& arch, ShaderMode mode,
                       BlockShape block) {
  Runner runner(arch);
  GenericSpec spec;
  spec.inputs = 16;
  spec.alu_ops = 16;  // Ratio 0.25: firmly fetch-bound.
  spec.type = DataType::kFloat4;
  spec.write_path =
      mode == ShaderMode::kCompute ? WritePath::kGlobal : WritePath::kStream;
  sim::LaunchConfig launch;
  launch.domain = bench::QuickMode() ? Domain{256, 256} : Domain{1024, 1024};
  launch.mode = mode;
  launch.block = block;
  return runner.Measure(GenerateGeneric(spec), launch);
}

void Register() {
  struct Shape {
    std::string name;
    ShaderMode mode;
    BlockShape block;
  };
  const std::vector<Shape> shapes = {
      {"pixel 8x8", ShaderMode::kPixel, {64, 1}},
      {"compute 64x1", ShaderMode::kCompute, {64, 1}},
      {"compute 4x16", ShaderMode::kCompute, {4, 16}},
  };
  for (const Shape& shape : shapes) {
    bench::RegisterCurveBenchmark("RowLocality/" + shape.name, [shape] {
      double base = 0.0;
      double last = 0.0;
      Series& series = g_sink.Set().Get("4870 " + shape.name);
      for (const Cycles penalty : {0u, 8u, 16u, 32u, 64u}) {
        GpuArch arch = MakeRV770();
        arch.dram.row_switch_cycles = penalty;
        const Measurement m = FetchBound(arch, shape.mode, shape.block);
        last = m.seconds;
        if (penalty == 0) base = last;
        series.Add(static_cast<double>(penalty), last);
        if (m.profile != nullptr) {
          g_sink.Record().profiles.push_back(report::MakeProfileEntry(
              "4870 " + shape.name, *m.profile,
              sim::ToString(m.stats.bottleneck)));
        }
      }
      g_sink.Add({report::FindingKind::kRatio, "4870 " + shape.name,
                  "row_penalty_slowdown", last / base, "x",
                  "time at penalty 64 over penalty 0"});
      return last;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
