// Ablation: the 2-D texture-cache set indexing. The paper attributes the
// 64x1 compute penalty partly to "only half the cache is used" because
// the cache is organised in two dimensions. Disabling the 2-D index
// isolates how much of the naive-block penalty that organisation causes
// versus plain partial-line waste.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Ablation — 2-D Cache Set Indexing",
    "64x1 compute fetch latency with/without 2-D indexing",
    "Number of Inputs", "Time in seconds",
    "With 2-D indexing off, 64x1 blocks regain the full cache capacity: "
    "the curves separate where inter-row line reuse fits in a full but "
    "not in a halved cache.");

ReadLatencyConfig Config() {
  ReadLatencyConfig config;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
    const std::string type_name(ToString(type));
    bench::RegisterCurveBenchmark("CacheIndex/RV770_" + type_name, [type,
                                                                    type_name] {
      GpuArch on = MakeRV770();
      GpuArch off = MakeRV770();
      off.l1.two_d_index = false;
      Runner r_on(on);
      Runner r_off(off);
      const ReadLatencyResult with_2d =
          RunReadLatency(r_on, ShaderMode::kCompute, type, Config());
      const ReadLatencyResult without_2d =
          RunReadLatency(r_off, ShaderMode::kCompute, type, Config());
      Series& s1 = g_sink.Set().Get("4870 64x1 " + type_name + " 2D-index");
      Series& s2 = g_sink.Set().Get("4870 64x1 " + type_name + " flat-index");
      bench::NoteFaults(g_sink, "4870 " + type_name + " 2D-index",
                        with_2d.report);
      bench::NoteProfiles(g_sink, "4870 " + type_name + " 2D-index",
                          with_2d.points);
      bench::NoteFaults(g_sink, "4870 " + type_name + " flat-index",
                        without_2d.report);
      bench::NoteProfiles(g_sink, "4870 " + type_name + " flat-index",
                          without_2d.points);
      double max_gap = 0;
      const std::size_t paired =
          std::min(with_2d.points.size(), without_2d.points.size());
      for (const ReadLatencyPoint& p : with_2d.points) {
        s1.Add(p.inputs, p.m.seconds);
      }
      for (const ReadLatencyPoint& p : without_2d.points) {
        s2.Add(p.inputs, p.m.seconds);
      }
      for (std::size_t i = 0; i < paired; ++i) {
        max_gap = std::max(max_gap, with_2d.points[i].m.seconds /
                                        without_2d.points[i].m.seconds);
      }
      if (with_2d.points.empty()) return 0.0;
      if (paired > 0) {
        g_sink.Add({report::FindingKind::kRatio, "4870 64x1 " + type_name,
                    "two_d_index_penalty_max", max_gap, "x",
                    "max 2D-index over flat-index time across paired input "
                    "counts"});
      }
      return with_2d.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
