// Table I: GPU hardware features, rendered from the machine
// descriptions, plus derived execution-model identities the paper quotes
// (800 ALUs = 10 SIMDs x 16 TPs x 5 lanes; 256 GPRs per thread; 51
// wavefronts at 5 GPRs).
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using bench::FigureSink;

FigureSink g_sink("Table I", "GPU Hardware Features", "row", "value",
                  "RV670/RV770/RV870 core configuration as tested on the "
                  "3870/4870/5870 boards.");

void Register() {
  bench::RegisterCurveBenchmark("TableI/render", [] {
    std::cout << RenderHardwareTable() << "\n";
    for (const GpuArch& arch : AllArchs()) {
      g_sink.Add({report::FindingKind::kPlateau, arch.name, "alu_count",
                  static_cast<double>(arch.alu_count), "ALUs",
                  std::to_string(arch.thread_processors_per_simd) + " TPs x " +
                      std::to_string(arch.vliw_width) + " lanes x " +
                      std::to_string(arch.simd_engines) + " SIMDs; " +
                      std::to_string(arch.tex_units_per_simd) +
                      " texture units/SIMD; compute shader: " +
                      (arch.supports_compute ? "yes" : "no")});
    }
    const GpuArch rv770 = MakeRV770();
    g_sink.Add({report::FindingKind::kPlateau, rv770.name,
                "theoretical_wavefronts_5gpr",
                static_cast<double>(TheoreticalWavefronts(rv770, 5)),
                "wavefronts", "occupancy check, paper Sec. II-B (paper: 51)"});
    return 0.0;
  });
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
