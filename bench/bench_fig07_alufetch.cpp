// Fig. 7: ALU:Fetch ratio for 16 inputs, all ten paper curves (three
// GPUs x pixel/compute x float/float4; RV670 has no compute mode).
// Texture reads, streaming stores (global writes in compute mode),
// 1024x1024 domain, naive 64x1 compute blocks, ratios 0.25..8.0.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 7 — ALU:Fetch Ratio for 16 Inputs", "ALU:Fetch Ratio",
    "ALU:Fetch Ratio", "Time in seconds",
    "Pixel float goes ALU-bound at ~1.25, pixel float4 at ~5.0 "
    "(RV670/RV770) and ~9 on RV870; naive 64x1 compute crosses later "
    "(float) and much later (float4); float/float4 converge once "
    "ALU-bound.");

AluFetchConfig Config() {
  AluFetchConfig config;
  if (bench::QuickMode()) {
    config.domain = Domain{256, 256};
    config.ratio_step = 1.0;
  }
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves()) {
    bench::RegisterCurveBenchmark("Fig07/" + key.Name(), [key] {
      Runner runner(key.arch);
      const AluFetchResult r =
          RunAluFetch(runner, key.mode, key.type, Config());
      Series& series = g_sink.Set().Get(key.Name());
      for (const AluFetchPoint& p : r.points) series.Add(p.ratio, p.m.seconds);
      bench::NoteFaults(g_sink, key.Name(), r.report);
      bench::NoteProfiles(g_sink, key.Name(), r.points);
      if (r.points.empty()) return 0.0;
      g_sink.Add(Findings(r, key.Name()));
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
