// Fig. 7: ALU:Fetch ratio for 16 inputs, all ten paper curves (three
// GPUs x pixel/compute x float/float4; RV670 has no compute mode).
// Texture reads, streaming stores (global writes in compute mode),
// 1024x1024 domain, naive 64x1 compute blocks, ratios 0.25..8.0.
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_7"});
}
