// Fig. 8: ALU:Fetch ratio for 16 inputs with a 4x16 compute block.
// Compute-shader curves for RV770/RV870 only (the paper's legend), to be
// compared against the naive 64x1 compute curves of Fig. 7.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 8 — ALU:Fetch Ratio for 16 Inputs with Block Size of 4x16",
    "ALU:Fetch Ratio (4x16 blocks)", "ALU:Fetch Ratio", "Time in seconds",
    "The 2-D 4x16 block significantly improves compute mode over the "
    "naive 64x1: ~3x on RV770 and ~4x on RV870 for float4; crossovers "
    "move close to pixel mode's.");

AluFetchConfig Config(BlockShape block) {
  AluFetchConfig config;
  config.block = block;
  if (bench::QuickMode()) {
    config.domain = Domain{256, 256};
    config.ratio_step = 1.0;
  }
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/false)) {
    bench::RegisterCurveBenchmark("Fig08/" + key.Name(), [key] {
      Runner runner(key.arch);
      const AluFetchResult blocked =
          RunAluFetch(runner, key.mode, key.type, Config(BlockShape{4, 16}));
      const AluFetchResult naive =
          RunAluFetch(runner, key.mode, key.type, Config(BlockShape{64, 1}));
      Series& series = g_sink.Set().Get(key.Name());
      for (const AluFetchPoint& p : blocked.points) {
        series.Add(p.ratio, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name() + " 4x16", blocked.report);
      bench::NoteProfiles(g_sink, key.Name() + " 4x16", blocked.points);
      bench::NoteFaults(g_sink, key.Name() + " 64x1", naive.report);
      bench::NoteProfiles(g_sink, key.Name() + " 64x1", naive.points);
      if (blocked.points.empty() || naive.points.empty()) return 0.0;
      g_sink.Add(Findings(blocked, key.Name()));
      g_sink.Add({report::FindingKind::kRatio, key.Name(),
                  "block_4x16_speedup",
                  naive.points.front().m.seconds /
                      blocked.points.front().m.seconds,
                  "x", "4x16 over 64x1 in the fetch-bound region"});
      return blocked.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
