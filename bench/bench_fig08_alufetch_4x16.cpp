// Fig. 8: ALU:Fetch ratio for 16 inputs with a 4x16 compute block.
// Compute-shader curves for RV770/RV870 only (the paper's legend), to be
// compared against the naive 64x1 compute curves of Fig. 7.
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_8"});
}
