// Fig. 12: global read latency — time vs number of inputs (2..18) with
// inputs read from uncached global memory, all ten paper curves.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 12 — Global Read Latency", "Global Read Latency",
    "Number of Inputs", "Time in seconds",
    "Linear; dramatic improvement from RV670 to RV770/RV870; roughly the "
    "same for float and float4 and for pixel vs compute mode — the GPU "
    "is becoming more generalized with each generation.");

ReadLatencyConfig Config() {
  ReadLatencyConfig config;
  config.read_path = ReadPath::kGlobal;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves()) {
    bench::RegisterCurveBenchmark("Fig12/" + key.Name(), [key] {
      Runner runner(key.arch);
      const ReadLatencyResult r =
          RunReadLatency(runner, key.mode, key.type, Config());
      Series& series = g_sink.Set().Get(key.Name());
      for (const ReadLatencyPoint& p : r.points) {
        series.Add(p.inputs, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name(), r.report);
      bench::NoteProfiles(g_sink, key.Name(), r.points);
      if (r.points.empty()) return 0.0;
      g_sink.Add(Findings(r, key.Name()));
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
