// Fig. 17: impact of register usage with a 4x16 compute block —
// RV770/RV870 compute curves, to be compared against Fig. 16's naive
// 64x1 compute curves.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 17 — Impact of Register Usage with Block Size of 4x16",
    "Register Pressure Effect for 4x16 Block Size",
    "Global Purpose Registers", "Time in seconds",
    "With 4x16 blocks the sweep sits below its 64x1 counterpart at every "
    "register count (better cache behaviour), even where added "
    "wavefronts erode some of the gain.");

RegisterUsageConfig Config(BlockShape block) {
  RegisterUsageConfig config;
  config.block = block;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/false)) {
    bench::RegisterCurveBenchmark("Fig17/" + key.Name(), [key] {
      Runner runner(key.arch);
      const RegisterUsageResult blocked = RunRegisterUsage(
          runner, key.mode, key.type, Config(BlockShape{4, 16}));
      const RegisterUsageResult naive = RunRegisterUsage(
          runner, key.mode, key.type, Config(BlockShape{64, 1}));
      Series& series = g_sink.Set().Get(key.Name());
      bench::NoteFaults(g_sink, key.Name() + " 4x16", blocked.report);
      bench::NoteProfiles(g_sink, key.Name() + " 4x16", blocked.points);
      bench::NoteFaults(g_sink, key.Name() + " 64x1", naive.report);
      bench::NoteProfiles(g_sink, key.Name() + " 64x1", naive.points);
      double worst_gain = 1e9;
      const std::size_t paired =
          std::min(blocked.points.size(), naive.points.size());
      for (std::size_t i = 0; i < blocked.points.size(); ++i) {
        series.Add(blocked.points[i].gpr_count, blocked.points[i].m.seconds);
      }
      for (std::size_t i = 0; i < paired; ++i) {
        worst_gain = std::min(worst_gain, naive.points[i].m.seconds /
                                              blocked.points[i].m.seconds);
      }
      if (blocked.points.empty()) return 0.0;
      g_sink.Add(Findings(blocked, key.Name()));
      if (paired > 0) {
        g_sink.Add({report::FindingKind::kRatio, key.Name(),
                    "block_4x16_min_gain", worst_gain, "x",
                    "minimum 64x1/4x16 time ratio across the sweep"});
      }
      return blocked.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
