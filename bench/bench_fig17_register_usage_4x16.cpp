// Fig. 17: impact of register usage with a 4x16 compute block —
// RV770/RV870 compute curves, to be compared against Fig. 16's naive
// 64x1 compute curves.
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_17"});
}
