// Fig. 13: streaming store latency — time vs number of outputs (1..8)
// with eight inputs (pinning GPR usage) and a low constant ALU budget;
// pixel-shader curves only (color buffers do not exist in compute mode).
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_13"});
}
