// Fig. 13: streaming store latency — time vs number of outputs (1..8)
// with eight inputs (pinning GPR usage) and a low constant ALU budget;
// pixel-shader curves only (color buffers do not exist in compute mode).
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 13 — Streaming Store Latency", "Streaming Store Latency",
    "Number of Outputs", "Time in seconds",
    "Linear in the output count with a flat fetch-bound region at small "
    "outputs; output vectorization yields the same or better performance "
    "(bursts absorb the extra bytes).");

WriteLatencyConfig Config() {
  WriteLatencyConfig config;
  config.write_path = WritePath::kStream;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/true,
                                         /*include_compute=*/false)) {
    bench::RegisterCurveBenchmark("Fig13/" + key.Name(), [key] {
      Runner runner(key.arch);
      const WriteLatencyResult r =
          RunWriteLatency(runner, key.mode, key.type, Config());
      Series& series = g_sink.Set().Get(key.Name());
      for (const WriteLatencyPoint& p : r.points) {
        series.Add(p.outputs, p.m.seconds);
      }
      bench::NoteFaults(g_sink, key.Name(), r.report);
      bench::NoteProfiles(g_sink, key.Name(), r.points);
      if (r.points.empty()) return 0.0;
      std::vector<report::Finding> findings = Findings(r, key.Name());
      findings.front().detail =
          "first point bottleneck " +
          std::string(sim::ToString(r.points.front().m.stats.bottleneck));
      g_sink.Add(std::move(findings));
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
