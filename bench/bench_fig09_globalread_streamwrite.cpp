// Fig. 9: ALU:Fetch ratio for 16 inputs read from global memory with
// streaming stores — pixel-shader curves for all three GPUs (the
// paper's legend shows the six pixel curves).
// The figure definition lives in the suite registry (suite/figures.hpp)
// so the amdmb_serve daemon runs the identical sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return amdmb::bench::RunRegistryBenchMain(argc, argv, {"fig_9"});
}
