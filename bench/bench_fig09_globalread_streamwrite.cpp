// Fig. 9: ALU:Fetch ratio for 16 inputs read from global memory with
// streaming stores — pixel-shader curves for all three GPUs (the
// paper's legend shows the six pixel curves).
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Fig. 9 — ALU:Fetch Ratio for 16 Inputs using Global Read",
    "ALU:Fetch Ratio (global read, stream write)", "ALU:Fetch Ratio",
    "Time in seconds",
    "RV670's global-memory reads are very slow relative to its texture "
    "path; RV770/RV870 read global memory at or slightly above their "
    "naive compute texture-fetch speed.");

AluFetchConfig Config() {
  AluFetchConfig config;
  config.read_path = ReadPath::kGlobal;
  config.write_path = WritePath::kStream;
  if (bench::QuickMode()) {
    config.domain = Domain{256, 256};
    config.ratio_step = 1.0;
  }
  return config;
}

void Register() {
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/true,
                                         /*include_compute=*/false)) {
    bench::RegisterCurveBenchmark("Fig09/" + key.Name(), [key] {
      Runner runner(key.arch);
      const AluFetchResult r =
          RunAluFetch(runner, key.mode, key.type, Config());
      // Texture-read counterpart for the paper's comparison.
      AluFetchConfig tex = Config();
      tex.read_path = ReadPath::kTexture;
      const AluFetchResult t = RunAluFetch(runner, key.mode, key.type, tex);
      Series& series = g_sink.Set().Get(key.Name());
      for (const AluFetchPoint& p : r.points) series.Add(p.ratio, p.m.seconds);
      bench::NoteFaults(g_sink, key.Name() + " global", r.report);
      bench::NoteProfiles(g_sink, key.Name() + " global", r.points);
      bench::NoteFaults(g_sink, key.Name() + " texture", t.report);
      bench::NoteProfiles(g_sink, key.Name() + " texture", t.points);
      if (r.points.empty() || t.points.empty()) return 0.0;
      g_sink.Add(Findings(r, key.Name()));
      g_sink.Add({report::FindingKind::kRatio, key.Name(),
                  "global_vs_texture_ratio",
                  r.points.front().m.seconds / t.points.front().m.seconds,
                  "x", "global-read over texture-read flat-region time"});
      return r.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
