// Ablation (paper Fig. 5 control): the clause-usage kernel keeps the
// register-usage kernel's exact ALU segmentation (forced clause breaks)
// but samples every input up front, pinning GPR usage. The paper uses it
// to prove Fig. 16's speedup comes from register pressure, not from
// moving ALU ops across clauses.
#include "bench_common.hpp"

namespace {

using namespace amdmb;
using namespace amdmb::suite;
using bench::FigureSink;

FigureSink g_sink(
    "Ablation — Clause Usage Control (paper Fig. 5)",
    "Register kernel vs clause-usage control", "step", "Time in seconds",
    "The control kernel's execution time is constant across steps (its "
    "GPR count never falls), while the register-usage kernel speeds up.");

RegisterUsageConfig Config(bool control) {
  RegisterUsageConfig config;
  config.clause_control = control;
  if (bench::QuickMode()) config.domain = Domain{256, 256};
  return config;
}

void Register() {
  for (const GpuArch& arch : {MakeRV670(), MakeRV770(), MakeRV870()}) {
    bench::RegisterCurveBenchmark("Fig05Control/" + arch.name, [arch] {
      Runner runner(arch);
      const RegisterUsageResult sweep = RunRegisterUsage(
          runner, ShaderMode::kPixel, DataType::kFloat, Config(false));
      const RegisterUsageResult control = RunRegisterUsage(
          runner, ShaderMode::kPixel, DataType::kFloat, Config(true));
      Series& s1 = g_sink.Set().Get(arch.name + " register kernel");
      Series& s2 = g_sink.Set().Get(arch.name + " clause control");
      bench::NoteFaults(g_sink, arch.name + " register kernel",
                        sweep.report);
      bench::NoteProfiles(g_sink, arch.name + " register kernel",
                          sweep.points);
      bench::NoteFaults(g_sink, arch.name + " clause control",
                        control.report);
      bench::NoteProfiles(g_sink, arch.name + " clause control",
                          control.points);
      double cmin = 1e30, cmax = 0;
      for (const RegisterUsagePoint& p : sweep.points) {
        s1.Add(p.step, p.m.seconds);
      }
      for (const RegisterUsagePoint& p : control.points) {
        s2.Add(p.step, p.m.seconds);
        cmin = std::min(cmin, p.m.seconds);
        cmax = std::max(cmax, p.m.seconds);
      }
      if (sweep.points.empty() || control.points.empty()) return 0.0;
      (void)cmin;
      (void)cmax;
      g_sink.Add({report::FindingKind::kRatio,
                  arch.name + " register kernel", "register_speedup",
                  sweep.points.front().m.seconds /
                      sweep.points.back().m.seconds,
                  "x", "first over last sweep point"});
      g_sink.Add(ControlFindings(control, arch.name + " clause control"));
      return control.points.back().m.seconds;
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  return amdmb::bench::RunBenchMain(argc, argv, {&g_sink});
}
