#!/usr/bin/env bash
# End-to-end smoke test of the amdmb_serve daemon:
#
#   1. start amdmb_serve on a private socket,
#   2. submit a quick fig07 sweep through amdmb_client and diff the
#      returned document against the standalone bench binary's
#      BENCH_fig_7.json (byte-identical is the contract),
#   3. submit it again and assert the shared kernel cache was hit,
#   4. run the deterministic load generator,
#   5. SIGTERM the daemon and assert a clean drain (exit 0).
#
# Usage: scripts/serve_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR=${1:?usage: serve_smoke.sh <build-dir>}
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)  # The script cds around; stay valid.
WORK_DIR=$(mktemp -d)
SOCKET="$WORK_DIR/serve.sock"
SERVE="$BUILD_DIR/tools/amdmb_serve"
CLIENT="$BUILD_DIR/tools/amdmb_client"
BENCH="$BUILD_DIR/bench/bench_fig07_alufetch"

# The daemon stamps meta.quick from the request, the bench binary from
# AMDMB_QUICK — run both quick so the documents must agree bytewise.
export AMDMB_QUICK=1

SERVE_PID=
cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -KILL "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

echo "== starting amdmb_serve on $SOCKET"
"$SERVE" --socket "$SOCKET" --queue 4 --inflight 1 \
  > "$WORK_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do
  [[ -S "$SOCKET" ]] && break
  sleep 0.1
done
[[ -S "$SOCKET" ]] || { cat "$WORK_DIR/serve.log"; exit 1; }

echo "== standalone bench run (the byte-compatibility reference)"
( cd "$WORK_DIR" && AMDMB_JSON_DIR="$WORK_DIR" "$BENCH" > bench.log 2>&1 )
[[ -f "$WORK_DIR/BENCH_fig_7.json" ]]

echo "== first served request"
"$CLIENT" submit fig07 --quick --socket "$SOCKET" \
  > "$WORK_DIR/got.json" 2> "$WORK_DIR/first.log"
diff "$WORK_DIR/BENCH_fig_7.json" "$WORK_DIR/got.json"
echo "   served document is byte-identical to the bench binary's"

FIRST_HITS=$("$CLIENT" stats --socket "$SOCKET" \
  | sed -n 's/^kernel cache: \([0-9]*\) hits.*/\1/p')

echo "== second served request (must hit the shared kernel cache)"
"$CLIENT" submit fig07 --quick --quiet --socket "$SOCKET" \
  > "$WORK_DIR/got2.json" 2> "$WORK_DIR/second.log"
diff "$WORK_DIR/got.json" "$WORK_DIR/got2.json"
SECOND_HITS=$("$CLIENT" stats --socket "$SOCKET" \
  | sed -n 's/^kernel cache: \([0-9]*\) hits.*/\1/p')
echo "   cache hits: $FIRST_HITS -> $SECOND_HITS"
[[ "$SECOND_HITS" -gt "$FIRST_HITS" ]] || {
  echo "second request did not hit the kernel cache"; exit 1;
}

echo "== deterministic load generator"
"$CLIENT" bench --requests 4 --concurrency 2 --seed 7 \
  --figures fig_7 --socket "$SOCKET"

echo "== SIGTERM drain"
kill -TERM "$SERVE_PID"
DRAIN_EXIT=0
wait "$SERVE_PID" || DRAIN_EXIT=$?
SERVE_PID=
cat "$WORK_DIR/serve.log"
[[ "$DRAIN_EXIT" -eq 0 ]] || {
  echo "daemon exited $DRAIN_EXIT, expected clean drain (0)"; exit 1;
}
[[ ! -S "$SOCKET" ]] || { echo "socket not unlinked on drain"; exit 1; }
echo "== serve smoke passed"
