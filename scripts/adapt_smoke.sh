#!/usr/bin/env bash
# End-to-end smoke test of the adaptive sweep subsystem:
#
#   1. amdmb_adapt figure: run three representative figures (ALU:Fetch
#      crossover, fetch-latency slope, register-usage ladder) densely
#      and adaptively at quick scale and diff every crossover — the
#      tool exits 4 on any disagreement beyond the tolerance,
#   2. amdmb_adapt budget: the Fig. 7-9 family at the full 32-ratio
#      grid must spend at most a fifth of the dense point count while
#      agreeing on every crossover (exit 5 on a budget violation),
#   3. amdmb_adapt frontier: the 2D bottleneck frontier map builds, is
#      byte-deterministic across AMDMB_THREADS, and emits the pm3d
#      heatmap artifacts through the gnuplot sink,
#   4. amdmb_perf: the sim-throughput benchmark writes a well-formed
#      BENCH_PERF.json (median_ns / p95_ns / points_per_second).
#
# Usage: scripts/adapt_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR=${1:?usage: adapt_smoke.sh <build-dir>}
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)
WORK_DIR=$(mktemp -d)
ADAPT="$BUILD_DIR/tools/amdmb_adapt"
PERF="$BUILD_DIR/tools/amdmb_perf"

cleanup() { rm -rf "$WORK_DIR"; }
trap cleanup EXIT

echo "== adaptive vs dense crossover agreement (three figure families)"
for fig in fig_7 fig_11 fig_16; do
  "$ADAPT" figure "$fig" --quick
done

echo "== Fig. 7-9 family point budget (adaptive <= 20% of dense)"
for fig in fig_7 fig_8 fig_9; do
  "$ADAPT" budget "$fig" --max-ratio 0.2
done

echo "== frontier map: determinism across thread counts + heatmap sink"
AMDMB_THREADS=1 "$ADAPT" frontier --quick --json > "$WORK_DIR/frontier_t1.json"
AMDMB_THREADS=8 "$ADAPT" frontier --quick --json > "$WORK_DIR/frontier_t8.json"
cmp "$WORK_DIR/frontier_t1.json" "$WORK_DIR/frontier_t8.json"
AMDMB_DUMP_DIR="$WORK_DIR/plots" "$ADAPT" frontier --quick > /dev/null
ls "$WORK_DIR"/plots/*_frontier.dat "$WORK_DIR"/plots/*_frontier.gp > /dev/null
grep -q "with image" "$WORK_DIR"/plots/*_frontier.gp

echo "== sim-throughput benchmark writes BENCH_PERF.json"
"$PERF" --groups 3 --samples 5 --warmup 2 --out "$WORK_DIR/BENCH_PERF.json"
python3 - "$WORK_DIR/BENCH_PERF.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("median_ns", "p95_ns", "points_per_second",
            "groups", "samples_per_group", "warmup"):
    assert key in doc, f"BENCH_PERF.json missing {key}"
assert doc["median_ns"] > 0 and doc["p95_ns"] >= doc["median_ns"] * 0.5
print(f"median {doc['median_ns']:.0f} ns/point, "
      f"p95 {doc['p95_ns']:.0f} ns, "
      f"{doc['points_per_second']:.0f} points/s")
EOF

echo "== adapt smoke passed"
