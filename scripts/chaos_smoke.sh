#!/usr/bin/env bash
# End-to-end chaos smoke test of the supervised amdmb_serve fleet:
#
#   1. start amdmb_serve with a three-worker fleet under a seeded
#      AMDMB_FAULTS worker_crash schedule (fast 50 ms heartbeats so
#      seeded crashes fire quickly),
#   2. wait until the supervisor reports every worker healthy,
#   3. run the seeded load generator with one injected worker kill and
#      assert every request terminated with a typed outcome
#      (completed + rejected + failed == requests),
#   4. assert the supervisor restarted at least one worker,
#   5. SIGTERM the daemon and assert a clean drain (exit 0).
#
# Usage: scripts/chaos_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR=${1:?usage: chaos_smoke.sh <build-dir>}
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)
WORK_DIR=$(mktemp -d)
SOCKET="$WORK_DIR/chaos.sock"
SERVE="$BUILD_DIR/tools/amdmb_serve"
CLIENT="$BUILD_DIR/tools/amdmb_client"

export AMDMB_QUICK=1
# The fault schedule is a pure function of (seed, site, worker#seq), so
# the same seed replays the same crash points on every CI run.
export AMDMB_FAULTS="worker_crash:0.01,seed=7"

SERVE_PID=
cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -KILL "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

echo "== starting a 3-worker fleet on $SOCKET (AMDMB_FAULTS=$AMDMB_FAULTS)"
"$SERVE" --socket "$SOCKET" --queue 8 --inflight 1 \
  --workers 3 --heartbeat-ms 50 \
  > "$WORK_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do
  [[ -S "$SOCKET" ]] && break
  sleep 0.1
done
[[ -S "$SOCKET" ]] || { cat "$WORK_DIR/serve.log"; exit 1; }

echo "== waiting for every worker to report healthy"
HEALTHY=0
for _ in $(seq 200); do
  HEALTHY=$("$CLIENT" stats --socket "$SOCKET" --connect-retries 5 \
    | grep -c "worker .*: healthy" || true)
  [[ "$HEALTHY" -eq 3 ]] && break
  sleep 0.1
done
[[ "$HEALTHY" -eq 3 ]] || {
  echo "fleet never became fully healthy"; cat "$WORK_DIR/serve.log"; exit 1;
}

echo "== chaos load: 12 seeded requests with 1 injected worker kill"
"$CLIENT" bench --requests 12 --concurrency 3 --seed 7 \
  --figures fig_7 --kill-worker 1 --connect-retries 5 \
  --socket "$SOCKET" | tee "$WORK_DIR/chaos.txt"

# Every request must have ended in exactly one typed terminal outcome.
read -r REQUESTS COMPLETED REJECTED FAILED < <(sed -n \
  's/^load generator: \([0-9]*\) requests, \([0-9]*\) completed, \([0-9]*\) rejected, \([0-9]*\) failed$/\1 \2 \3 \4/p' \
  "$WORK_DIR/chaos.txt")
[[ -n "${REQUESTS:-}" ]] || { echo "could not parse the report"; exit 1; }
[[ "$REQUESTS" -eq 12 ]] || { echo "expected 12 requests"; exit 1; }
[[ $((COMPLETED + REJECTED + FAILED)) -eq "$REQUESTS" ]] || {
  echo "typed outcomes ($COMPLETED + $REJECTED + $FAILED) do not cover" \
       "all $REQUESTS requests"; exit 1;
}
[[ "$COMPLETED" -gt 0 ]] || { echo "nothing completed under chaos"; exit 1; }
grep -q "chaos: 1 worker kill" "$WORK_DIR/chaos.txt" || {
  echo "the injected worker kill is missing from the report"; exit 1;
}
echo "   $COMPLETED completed + $REJECTED rejected + $FAILED failed" \
     "== $REQUESTS requests"

echo "== the supervisor restarted the killed worker"
RESTARTED=0
for _ in $(seq 200); do
  RESTARTED=$("$CLIENT" stats --socket "$SOCKET" --connect-retries 5 \
    | grep -c "worker .*: healthy, pid [0-9]*, restarts [1-9]" || true)
  [[ "$RESTARTED" -ge 1 ]] && break
  sleep 0.1
done
[[ "$RESTARTED" -ge 1 ]] || {
  echo "no worker was restarted"; cat "$WORK_DIR/serve.log"; exit 1;
}

echo "== SIGTERM drain"
kill -TERM "$SERVE_PID"
DRAIN_EXIT=0
wait "$SERVE_PID" || DRAIN_EXIT=$?
SERVE_PID=
cat "$WORK_DIR/serve.log"
[[ "$DRAIN_EXIT" -eq 0 ]] || {
  echo "daemon exited $DRAIN_EXIT, expected clean drain (0)"; exit 1;
}
[[ ! -S "$SOCKET" ]] || { echo "socket not unlinked on drain"; exit 1; }
echo "== chaos smoke passed"
