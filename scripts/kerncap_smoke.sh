#!/usr/bin/env bash
# End-to-end smoke test of the kerncap characterize pipeline:
#
#   1. start amdmb_serve on a private socket and characterize a corpus
#      kernel through amdmb_client,
#   2. diff the served figure document against the standalone
#      amdmb_kerncap CLI's output at AMDMB_THREADS=1 and AMDMB_THREADS=8
#      (byte-identical at every width is the determinism contract),
#   3. replay the malformed-kernel corpus over the same socket — every
#      file must come back as a typed rejected verdict with the daemon
#      still serving afterwards,
#   4. restart as a --workers 4 fleet and diff the fleet's answer too,
#   5. SIGTERM the daemon and assert a clean drain (exit 0).
#
# Usage: scripts/kerncap_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR=${1:?usage: kerncap_smoke.sh <build-dir>}
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)
REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
CORPUS="$REPO_DIR/tests/corpus/il"
WORK_DIR=$(mktemp -d)
SOCKET="$WORK_DIR/serve.sock"
SERVE="$BUILD_DIR/tools/amdmb_serve"
CLIENT="$BUILD_DIR/tools/amdmb_client"
KERNCAP="$BUILD_DIR/tools/amdmb_kerncap"
KERNEL="$CORPUS/valid_compute.il"

SERVE_PID=
cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -KILL "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

start_serve() {
  "$SERVE" --socket "$SOCKET" "$@" > "$WORK_DIR/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do
    [[ -S "$SOCKET" ]] && break
    sleep 0.1
  done
  [[ -S "$SOCKET" ]] || { cat "$WORK_DIR/serve.log"; exit 1; }
}

stop_serve() {
  kill -TERM "$SERVE_PID"
  local drain_exit=0
  wait "$SERVE_PID" || drain_exit=$?
  SERVE_PID=
  [[ "$drain_exit" -eq 0 ]] || {
    echo "daemon exited $drain_exit, expected clean drain (0)"
    cat "$WORK_DIR/serve.log"
    exit 1
  }
}

echo "== standalone amdmb_kerncap at two executor widths"
AMDMB_THREADS=1 "$KERNCAP" --quick "$KERNEL" \
  > "$WORK_DIR/cli_t1.json" 2> "$WORK_DIR/cli_t1.log"
AMDMB_THREADS=8 "$KERNCAP" --quick "$KERNEL" \
  > "$WORK_DIR/cli_t8.json" 2> "$WORK_DIR/cli_t8.log"
diff "$WORK_DIR/cli_t1.json" "$WORK_DIR/cli_t8.json"
echo "   byte-identical across AMDMB_THREADS=1 and 8"

echo "== starting amdmb_serve on $SOCKET"
start_serve --queue 4 --inflight 1

echo "== served characterize request"
"$CLIENT" characterize "$KERNEL" --quick --socket "$SOCKET" \
  > "$WORK_DIR/served.json" 2> "$WORK_DIR/served.log"
diff "$WORK_DIR/cli_t1.json" "$WORK_DIR/served.json"
echo "   served document is byte-identical to the CLI's"

echo "== malformed corpus over the socket"
REJECTED=0
for il in "$CORPUS"/*.il; do
  name=$(basename "$il")
  case "$name" in valid_*) continue ;; esac
  set +e
  "$CLIENT" characterize "$il" --quick --quiet --socket "$SOCKET" \
    > /dev/null 2> "$WORK_DIR/reject.log"
  status=$?
  set -e
  [[ "$status" -eq 3 ]] || {
    echo "$name: expected typed rejection (exit 3), got $status"
    cat "$WORK_DIR/reject.log"
    exit 1
  }
  grep -q "rejected: invalid_kernel" "$WORK_DIR/reject.log" || {
    echo "$name: missing typed verdict"; cat "$WORK_DIR/reject.log"; exit 1;
  }
  REJECTED=$((REJECTED + 1))
done
echo "   $REJECTED malformed kernels rejected with typed verdicts"

echo "== daemon still serves after the corpus barrage"
"$CLIENT" characterize "$KERNEL" --quick --quiet --socket "$SOCKET" \
  > "$WORK_DIR/served2.json" 2>/dev/null
diff "$WORK_DIR/served.json" "$WORK_DIR/served2.json"
"$CLIENT" stats --socket "$SOCKET" > "$WORK_DIR/stats.log"

echo "== SIGTERM drain (single daemon)"
stop_serve

echo "== restarting as a --workers 4 fleet"
start_serve --workers 4
"$CLIENT" characterize "$KERNEL" --quick --socket "$SOCKET" \
  > "$WORK_DIR/fleet.json" 2> "$WORK_DIR/fleet.log"
diff "$WORK_DIR/cli_t1.json" "$WORK_DIR/fleet.json"
echo "   fleet document is byte-identical to the CLI's"

echo "== SIGTERM drain (fleet)"
stop_serve
[[ ! -S "$SOCKET" ]] || { echo "socket not unlinked on drain"; exit 1; }
echo "== kerncap smoke passed"
