// Per-point outcome reporting and retry policy for resilient sweeps.
//
// A multi-hour sweep must not die because one point hit a transient
// fault (ALTIS/Mirovia-style per-kernel failure reporting; PAPERS.md).
// SweepExecutor::MapWithPolicy retries TransientErrors per point with
// capped exponential backoff and deterministic jitter, then either
// aborts the sweep (kFailFast) or drops the point and records why
// (kSkipAndReport). The RunReport is deterministic for a fixed fault
// schedule: statuses and attempt counts depend only on the injected
// fault decisions, never on thread scheduling (wall times are
// informational and excluded from SameOutcomes).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace amdmb::exec {

/// What happened to one sweep point.
enum class PointStatus {
  kOk,       ///< Succeeded on the first attempt.
  kRetried,  ///< Succeeded after at least one transient failure.
  kSkipped,  ///< Transient failures exhausted every attempt; point dropped.
  kFailed,   ///< Non-transient error, or exhausted under kFailFast.
};

std::string_view ToString(PointStatus status);

struct PointOutcome {
  std::size_t index = 0;
  std::string label;  ///< Caller-set point name; defaults to "point <i>".
  PointStatus status = PointStatus::kOk;
  unsigned attempts = 1;  ///< Attempts made (0: cancelled before starting).
  double wall_seconds = 0.0;   ///< Real time across attempts (informational).
  std::string error;           ///< Last failure message; empty when kOk.
};

/// Index-ordered outcome of every point of one sweep.
struct RunReport {
  std::vector<PointOutcome> points;

  std::size_t CountOf(PointStatus status) const;
  bool AllOk() const { return CountOf(PointStatus::kOk) == points.size(); }

  /// "17 ok, 2 retried, 1 skipped of 20 points".
  std::string Summary() const;

  /// One line per non-ok point: "alufetch_r0.25: retried, 2 attempts — ...".
  std::vector<std::string> FailureLines() const;

  /// Appends `other`'s outcomes with labels prefixed "<prefix>/" (suite
  /// reports aggregate one report per curve).
  void Merge(const RunReport& other, std::string_view prefix);

  /// Determinism comparison: statuses, attempts, labels, and errors must
  /// match; wall times are excluded.
  bool SameOutcomes(const RunReport& other) const;
};

/// Whether exhausting a point's retries aborts the sweep or degrades it.
enum class FailurePolicy {
  kFailFast,       ///< Throw SweepError once every point has finished.
  kSkipAndReport,  ///< Drop the point, record it in the RunReport.
};

/// Retry knobs, overridable per sweep config and via AMDMB_RETRY
/// ("attempts=3,policy=skip,backoff_ms=1,backoff_cap_ms=64").
struct RetryPolicy {
  unsigned max_attempts = 3;       ///< >= 1; 1 disables retry.
  double backoff_base_ms = 1.0;    ///< First retry delay.
  double backoff_cap_ms = 64.0;    ///< Exponential backoff ceiling.
  std::uint64_t jitter_seed = 0;   ///< Deterministic jitter stream seed.
  FailurePolicy on_exhausted = FailurePolicy::kSkipAndReport;

  /// Parses the AMDMB_RETRY spec; throws ConfigError when malformed.
  static RetryPolicy Parse(std::string_view text);

  /// The process default: AMDMB_RETRY if set (parsed once), else the
  /// defaults above.
  static const RetryPolicy& FromEnv();

  /// Deterministic backoff delay before attempt `attempt + 1` of point
  /// `index`: capped exponential with jitter in [0.5, 1.0) drawn from
  /// (jitter_seed, index, attempt) only.
  double BackoffMs(std::size_t index, unsigned attempt) const;
};

struct PointFailure {
  std::size_t index = 0;
  std::string message;
};

/// Aggregated sweep failure: every failing point, not just the first —
/// a 200-point sweep that hit 3 bad points reports all 3.
class SweepError : public std::runtime_error {
 public:
  explicit SweepError(std::vector<PointFailure> failures);

  const std::vector<PointFailure>& Failures() const { return failures_; }

 private:
  std::vector<PointFailure> failures_;
};

}  // namespace amdmb::exec
