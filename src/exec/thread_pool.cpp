#include "exec/thread_pool.hpp"

#include <charconv>
#include <cstdlib>
#include <string>

#include "common/status.hpp"

namespace amdmb::exec {

namespace {

thread_local bool tls_on_pool_thread = false;

/// Absurdly-large worker counts are almost certainly typos (or integer
/// garbage), not intent; reject them instead of spawning thousands of
/// threads.
constexpr unsigned long kMaxThreads = 4096;

}  // namespace

unsigned ParseThreadCount(std::string_view text) {
  unsigned long n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size(),
          "AMDMB_THREADS='" + std::string(text) +
              "': must be a positive integer");
  Require(n >= 1, "AMDMB_THREADS='" + std::string(text) +
                      "': needs at least one worker");
  Require(n <= kMaxThreads,
          "AMDMB_THREADS='" + std::string(text) + "': exceeds the cap of " +
              std::to_string(kMaxThreads) + " workers");
  return static_cast<unsigned>(n);
}

unsigned DefaultThreadCount() {
  if (const char* v = std::getenv("AMDMB_THREADS");
      v != nullptr && v[0] != '\0') {
    return ParseThreadCount(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool OnPoolThread() { return tls_on_pool_thread; }

ThreadPool::ThreadPool(unsigned threads) {
  Require(threads >= 1, "ThreadPool: needs at least one worker");
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    Check(!stopping_, "ThreadPool::Submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& SharedPool() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

}  // namespace amdmb::exec
