#include "exec/thread_pool.hpp"

#include <string>

#include "common/env.hpp"
#include "common/status.hpp"

namespace amdmb::exec {

namespace {

thread_local bool tls_on_pool_thread = false;

}  // namespace

unsigned DefaultThreadCount() {
  if (const auto threads = env::Get().threads) return *threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool OnPoolThread() { return tls_on_pool_thread; }

ThreadPool::ThreadPool(unsigned threads) {
  Require(threads >= 1, "ThreadPool: needs at least one worker");
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    Check(!stopping_, "ThreadPool::Submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& SharedPool() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

}  // namespace amdmb::exec
