#include "exec/sweep_executor.hpp"

namespace amdmb::exec {

const SweepExecutor& SweepExecutor::Default() {
  static SweepExecutor executor;
  return executor;
}

}  // namespace amdmb::exec
