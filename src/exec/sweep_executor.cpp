#include "exec/sweep_executor.hpp"

#include <thread>

namespace amdmb::exec {

const SweepExecutor& SweepExecutor::Default() {
  static SweepExecutor executor;
  return executor;
}

std::string DescribeException(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace amdmb::exec
