#include "exec/run_report.hpp"

#include <algorithm>
#include <sstream>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace amdmb::exec {

std::string_view ToString(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kRetried: return "retried";
    case PointStatus::kSkipped: return "skipped";
    case PointStatus::kFailed: return "failed";
  }
  throw SimError("ToString(PointStatus): unknown value");
}

std::size_t RunReport::CountOf(PointStatus status) const {
  return static_cast<std::size_t>(
      std::count_if(points.begin(), points.end(),
                    [status](const PointOutcome& p) {
                      return p.status == status;
                    }));
}

std::string RunReport::Summary() const {
  std::ostringstream os;
  os << CountOf(PointStatus::kOk) << " ok";
  if (const std::size_t n = CountOf(PointStatus::kRetried)) {
    os << ", " << n << " retried";
  }
  if (const std::size_t n = CountOf(PointStatus::kSkipped)) {
    os << ", " << n << " skipped";
  }
  if (const std::size_t n = CountOf(PointStatus::kFailed)) {
    os << ", " << n << " failed";
  }
  os << " of " << points.size() << " points";
  return os.str();
}

std::vector<std::string> RunReport::FailureLines() const {
  std::vector<std::string> lines;
  for (const PointOutcome& p : points) {
    if (p.status == PointStatus::kOk) continue;
    std::ostringstream os;
    os << (p.label.empty() ? "point " + std::to_string(p.index) : p.label)
       << ": " << ToString(p.status) << ", " << p.attempts << " attempt"
       << (p.attempts == 1 ? "" : "s");
    if (!p.error.empty()) os << " — " << p.error;
    lines.push_back(os.str());
  }
  return lines;
}

void RunReport::Merge(const RunReport& other, std::string_view prefix) {
  points.reserve(points.size() + other.points.size());
  for (const PointOutcome& p : other.points) {
    PointOutcome merged = p;
    merged.label = std::string(prefix) + "/" +
                   (p.label.empty() ? "point " + std::to_string(p.index)
                                    : p.label);
    points.push_back(std::move(merged));
  }
}

bool RunReport::SameOutcomes(const RunReport& other) const {
  if (points.size() != other.points.size()) return false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointOutcome& a = points[i];
    const PointOutcome& b = other.points[i];
    if (a.index != b.index || a.label != b.label || a.status != b.status ||
        a.attempts != b.attempts || a.error != b.error) {
      return false;
    }
  }
  return true;
}

RetryPolicy RetryPolicy::Parse(std::string_view text) {
  Require(!text.empty(), "AMDMB_RETRY: empty retry spec");
  RetryPolicy policy;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (!token.empty()) {
      const std::size_t sep = token.find_first_of("=:");
      Require(sep != std::string_view::npos,
              "AMDMB_RETRY: expected 'key=value', got '" +
                  std::string(token) + "'");
      const std::string_view name = token.substr(0, sep);
      const std::string value(token.substr(sep + 1));
      char* end = nullptr;
      if (name == "attempts") {
        const unsigned long n = std::strtoul(value.c_str(), &end, 10);
        Require(end == value.c_str() + value.size() && !value.empty() &&
                    n >= 1 && n <= 100,
                "AMDMB_RETRY: attempts must be an integer in [1, 100], "
                "got '" + value + "'");
        policy.max_attempts = static_cast<unsigned>(n);
      } else if (name == "backoff_ms") {
        const double ms = std::strtod(value.c_str(), &end);
        Require(end == value.c_str() + value.size() && !value.empty() &&
                    ms >= 0.0,
                "AMDMB_RETRY: backoff_ms must be a non-negative number");
        policy.backoff_base_ms = ms;
      } else if (name == "backoff_cap_ms") {
        const double ms = std::strtod(value.c_str(), &end);
        Require(end == value.c_str() + value.size() && !value.empty() &&
                    ms >= 0.0,
                "AMDMB_RETRY: backoff_cap_ms must be a non-negative number");
        policy.backoff_cap_ms = ms;
      } else if (name == "seed") {
        const unsigned long long seed =
            std::strtoull(value.c_str(), &end, 10);
        Require(end == value.c_str() + value.size() && !value.empty(),
                "AMDMB_RETRY: seed must be a non-negative integer");
        policy.jitter_seed = seed;
      } else if (name == "policy") {
        if (value == "fail-fast" || value == "fail") {
          policy.on_exhausted = FailurePolicy::kFailFast;
        } else if (value == "skip-and-report" || value == "skip") {
          policy.on_exhausted = FailurePolicy::kSkipAndReport;
        } else {
          Require(false, "AMDMB_RETRY: policy must be 'fail-fast' or "
                         "'skip-and-report', got '" + value + "'");
        }
      } else {
        Require(false, "AMDMB_RETRY: unknown key '" + std::string(name) +
                           "' (expected attempts, policy, backoff_ms, "
                           "backoff_cap_ms, or seed)");
      }
    }
    if (comma == text.size()) break;
  }
  return policy;
}

const RetryPolicy& RetryPolicy::FromEnv() {
  static const RetryPolicy policy = [] {
    const auto& spec = env::Get().retry;
    return spec ? Parse(*spec) : RetryPolicy{};
  }();
  return policy;
}

double RetryPolicy::BackoffMs(std::size_t index, unsigned attempt) const {
  double delay = backoff_base_ms;
  for (unsigned a = 1; a < attempt && delay < backoff_cap_ms; ++a) {
    delay *= 2.0;
  }
  delay = std::min(delay, backoff_cap_ms);
  // Jitter in [0.5, 1.0): a pure function of (seed, index, attempt), so
  // the delay sequence is deterministic at any thread count.
  XorShift128 rng(jitter_seed ^ (0x9E3779B97F4A7C15ull * (index + 1)) ^
                  (0xBF58476D1CE4E5B9ull * attempt));
  return delay * (0.5 + 0.5 * rng.NextDouble());
}

namespace {

std::string RenderSweepError(const std::vector<PointFailure>& failures) {
  std::ostringstream os;
  os << "sweep failed at " << failures.size() << " point"
     << (failures.size() == 1 ? "" : "s") << ":";
  for (const PointFailure& f : failures) {
    os << "\n  point " << f.index << ": " << f.message;
  }
  return os.str();
}

}  // namespace

SweepError::SweepError(std::vector<PointFailure> failures)
    : std::runtime_error(RenderSweepError(failures)),
      failures_(std::move(failures)) {}

}  // namespace amdmb::exec
