// Parallel sweep execution.
//
// Every figure in the paper is a sweep whose points are independent
// kernel launches (Gpu::Execute builds per-launch cache / controller /
// SIMD state, so points share nothing). SweepExecutor::Map fans the
// points out across a ThreadPool and reassembles results in point order,
// which makes the output bit-identical to the serial path at any thread
// count: parallelism only changes *when* a point runs, never what it
// computes or where its result lands.
//
// MapWithPolicy adds the resilience layer: transient failures
// (TransientError — injected faults, watchdog timeouts) are retried per
// point with capped exponential backoff, and exhausted points either
// abort the sweep or degrade it to partial results with a RunReport of
// what happened (see run_report.hpp).
//
// Nested Map calls from inside a pool worker run inline (serially) —
// a saturated fixed-size pool cannot service tasks submitted by tasks
// that are themselves blocking on completion.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "exec/run_report.hpp"
#include "exec/thread_pool.hpp"

namespace amdmb::exec {

/// Renders an exception_ptr's message ("unknown exception" for
/// non-std::exception payloads).
std::string DescribeException(const std::exception_ptr& error);

/// Cooperative sweep cancellation. A token is set once (Cancel) and
/// polled by MapWithPolicy before every point: points not yet started
/// when the token fires are skipped (status kSkipped, error
/// "cancelled") instead of run, regardless of the failure policy —
/// cancellation is intent, not a fault. Points already executing run
/// to completion, so a cancelled sweep still returns well-formed
/// partial results. Thread-safe; never resets outside tests.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void ResetForTest() { cancelled_.store(false, std::memory_order_relaxed); }

  /// The raw flag, for registering with common/interrupt's signal
  /// handler (NotifyFlagOnInterrupt): the handler's relaxed store on the
  /// lock-free atomic is async-signal-safe where a call through
  /// arbitrary code would not be.
  std::atomic<bool>& FlagForSignal() { return cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Sleeps the calling thread for `ms` milliseconds (no-op for ms <= 0).
void SleepForMs(double ms);

class SweepExecutor {
 public:
  /// Uses the process-wide SharedPool() (AMDMB_THREADS workers).
  SweepExecutor() : pool_(&SharedPool()) {}

  /// Owns a private pool of exactly `threads` workers; `threads == 1`
  /// runs every Map inline with no pool at all (the serial reference
  /// path used by the determinism tests).
  explicit SweepExecutor(unsigned threads) {
    if (threads > 1) {
      owned_ = std::make_unique<ThreadPool>(threads);
      pool_ = owned_.get();
    }
  }

  unsigned ThreadCount() const {
    return pool_ == nullptr ? 1 : pool_->ThreadCount();
  }

  /// The default executor used by the suite layer when a config does not
  /// supply one.
  static const SweepExecutor& Default();

  /// Runs `fn(0) .. fn(n-1)`, possibly concurrently, and returns the
  /// results ordered by index. Every point runs to completion even when
  /// some throw; afterwards a SweepError aggregating *all* failing
  /// points (index-ordered, hence deterministic regardless of
  /// scheduling) is thrown if any failed.
  template <typename Fn>
  auto Map(std::size_t n, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>, "Map requires a result per point");
    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);

    ForEachIndex(n, [&](std::size_t i) {
      try {
        slots[i].emplace(fn(i));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    ThrowIfAnyFailed(errors);

    std::vector<R> out;
    out.reserve(n);
    for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Resilient map: runs `fn(i, attempt)` with per-point retry under
  /// `policy`. TransientErrors are retried up to policy.max_attempts
  /// with deterministic backoff; any other exception is a deterministic
  /// bug and never retried. A point whose retries are exhausted is
  /// skipped (slot left empty) under kSkipAndReport, or — like every
  /// non-transient failure — aggregated into a SweepError thrown after
  /// all points finish under kFailFast. When `report` is non-null it
  /// receives one index-ordered PointOutcome per point (labels default
  /// to "point <i>"; callers may rename them afterwards). When `cancel`
  /// is non-null and fires, points not yet started are skipped (see
  /// CancelToken).
  template <typename Fn>
  auto MapWithPolicy(std::size_t n, Fn&& fn, const RetryPolicy& policy,
                     RunReport* report = nullptr,
                     const CancelToken* cancel = nullptr) const {
    using R = std::invoke_result_t<Fn&, std::size_t, unsigned>;
    static_assert(!std::is_void_v<R>,
                  "MapWithPolicy requires a result per point");
    Require(policy.max_attempts >= 1,
            "MapWithPolicy: policy needs at least one attempt");
    std::vector<std::optional<R>> slots(n);
    std::vector<PointOutcome> outcomes(n);
    std::vector<std::exception_ptr> fatal(n);

    ForEachIndex(n, [&](std::size_t i) {
      PointOutcome& out = outcomes[i];
      out.index = i;
      out.label = "point " + std::to_string(i);
      if (cancel != nullptr && cancel->Cancelled()) {
        out.status = PointStatus::kSkipped;
        out.attempts = 0;
        out.error = "cancelled";
        return;
      }
      const auto start = std::chrono::steady_clock::now();
      for (unsigned attempt = 1; attempt <= policy.max_attempts; ++attempt) {
        out.attempts = attempt;
        try {
          slots[i].emplace(fn(i, attempt));
          out.status =
              attempt == 1 ? PointStatus::kOk : PointStatus::kRetried;
          out.error.clear();
          break;
        } catch (const TransientError& e) {
          out.error = e.what();
          if (attempt == policy.max_attempts) {
            if (policy.on_exhausted == FailurePolicy::kSkipAndReport) {
              out.status = PointStatus::kSkipped;
            } else {
              out.status = PointStatus::kFailed;
              fatal[i] = std::current_exception();
            }
          } else {
            SleepForMs(policy.BackoffMs(i, attempt));
          }
        } catch (...) {
          // Deterministic failure (SimError invariant, ConfigError, ...):
          // retrying cannot help and skipping would hide a bug.
          fatal[i] = std::current_exception();
          out.status = PointStatus::kFailed;
          out.error = DescribeException(fatal[i]);
          break;
        }
      }
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    });

    if (report != nullptr) report->points = std::move(outcomes);
    ThrowIfAnyFailed(fatal);
    return slots;
  }

 private:
  /// Runs `body(0) .. body(n-1)`, possibly concurrently, returning after
  /// every index has finished. `body` must not throw — callers catch per
  /// index.
  template <typename Body>
  void ForEachIndex(std::size_t n, Body&& body) const {
    const unsigned width = ThreadCount();
    if (width <= 1 || n <= 1 || OnPoolThread()) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    };
    // width - 1 pool workers plus the calling thread; the futures keep
    // every task's stack references alive until we return.
    const std::size_t spawned =
        std::min<std::size_t>(width - 1, n > 0 ? n - 1 : 0);
    std::vector<std::future<void>> joined;
    joined.reserve(spawned);
    for (std::size_t t = 0; t < spawned; ++t) {
      auto task = std::make_shared<std::packaged_task<void()>>(worker);
      joined.push_back(task->get_future());
      pool_->Submit([task] { (*task)(); });
    }
    worker();
    for (std::future<void>& f : joined) f.get();
  }

  static void ThrowIfAnyFailed(const std::vector<std::exception_ptr>& errors) {
    std::vector<PointFailure> failures;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (errors[i]) failures.push_back({i, DescribeException(errors[i])});
    }
    if (!failures.empty()) throw SweepError(std::move(failures));
  }

  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;  ///< nullptr => always inline.
};

/// `config.executor` resolution used across the suite layer.
inline const SweepExecutor& ExecutorOrDefault(const SweepExecutor* executor) {
  return executor != nullptr ? *executor : SweepExecutor::Default();
}

}  // namespace amdmb::exec
