// Parallel sweep execution.
//
// Every figure in the paper is a sweep whose points are independent
// kernel launches (Gpu::Execute builds per-launch cache / controller /
// SIMD state, so points share nothing). SweepExecutor::Map fans the
// points out across a ThreadPool and reassembles results in point order,
// which makes the output bit-identical to the serial path at any thread
// count: parallelism only changes *when* a point runs, never what it
// computes or where its result lands.
//
// Nested Map calls from inside a pool worker run inline (serially) —
// a saturated fixed-size pool cannot service tasks submitted by tasks
// that are themselves blocking on completion.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace amdmb::exec {

class SweepExecutor {
 public:
  /// Uses the process-wide SharedPool() (AMDMB_THREADS workers).
  SweepExecutor() : pool_(&SharedPool()) {}

  /// Owns a private pool of exactly `threads` workers; `threads == 1`
  /// runs every Map inline with no pool at all (the serial reference
  /// path used by the determinism tests).
  explicit SweepExecutor(unsigned threads) {
    if (threads > 1) {
      owned_ = std::make_unique<ThreadPool>(threads);
      pool_ = owned_.get();
    }
  }

  unsigned ThreadCount() const {
    return pool_ == nullptr ? 1 : pool_->ThreadCount();
  }

  /// The default executor used by the suite layer when a config does not
  /// supply one.
  static const SweepExecutor& Default();

  /// Runs `fn(0) .. fn(n-1)`, possibly concurrently, and returns the
  /// results ordered by index. If any point throws, the exception of the
  /// *lowest* failing index is rethrown (deterministic regardless of
  /// scheduling) after every in-flight point has finished.
  template <typename Fn>
  auto Map(std::size_t n, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>, "Map requires a result per point");
    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);

    const unsigned width = ThreadCount();
    if (width <= 1 || n <= 1 || OnPoolThread()) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(i));
    } else {
      std::atomic<std::size_t> next{0};
      const auto worker = [&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      };
      // width - 1 pool workers plus the calling thread; the futures keep
      // every task's stack references alive until Map returns.
      const std::size_t spawned =
          std::min<std::size_t>(width - 1, n > 0 ? n - 1 : 0);
      std::vector<std::future<void>> joined;
      joined.reserve(spawned);
      for (std::size_t t = 0; t < spawned; ++t) {
        auto task = std::make_shared<std::packaged_task<void()>>(worker);
        joined.push_back(task->get_future());
        pool_->Submit([task] { (*task)(); });
      }
      worker();
      for (std::future<void>& f : joined) f.get();
      for (std::size_t i = 0; i < n; ++i) {
        if (errors[i]) std::rethrow_exception(errors[i]);
      }
    }

    std::vector<R> out;
    out.reserve(n);
    for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;  ///< nullptr => always inline.
};

/// `config.executor` resolution used across the suite layer.
inline const SweepExecutor& ExecutorOrDefault(const SweepExecutor* executor) {
  return executor != nullptr ? *executor : SweepExecutor::Default();
}

}  // namespace amdmb::exec
