// Fixed-size worker pool for the execution layer.
//
// One process-wide pool (SharedPool) serves every parallel sweep; its
// size comes from the AMDMB_THREADS environment variable, defaulting to
// the hardware concurrency. Tasks are plain functions; completion and
// result plumbing live one level up in SweepExecutor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace amdmb::exec {

/// Thread count from AMDMB_THREADS (validated once by env::Get(), which
/// rejects anything outside [1, 4096] with a ConfigError), else the
/// hardware concurrency, else 1.
unsigned DefaultThreadCount();

/// True while the calling thread is one of a ThreadPool's workers. Used
/// to run nested sweeps inline instead of deadlocking on a saturated
/// pool.
bool OnPoolThread();

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (SweepExecutor catches per
  /// point); a task that escapes with an exception terminates.
  void Submit(std::function<void()> task);

  unsigned ThreadCount() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide pool, created on first use with DefaultThreadCount()
/// workers.
ThreadPool& SharedPool();

}  // namespace amdmb::exec
