#include "exec/kernel_cache.hpp"

#include <bit>
#include <cstring>

#include "common/status.hpp"

namespace amdmb::exec {

namespace {

void AppendU32(std::string& key, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  key.append(buf, sizeof(buf));
}

void AppendU8(std::string& key, std::uint8_t v) {
  key.push_back(static_cast<char>(v));
}

}  // namespace

std::string KernelCacheKey(const il::Kernel& kernel,
                           const compiler::CompileOptions& opts) {
  std::string key;
  key.reserve(32 + kernel.code.size() * 16);
  AppendU32(key, opts.max_tex_fetches_per_clause);
  AppendU32(key, opts.max_alu_bundles_per_clause);
  AppendU32(key, opts.clause_temps);
  AppendU32(key, opts.pack.general_lanes);
  AppendU8(key, opts.pack.has_trans_lane ? 1 : 0);

  const il::Signature& sig = kernel.sig;
  AppendU32(key, sig.inputs);
  AppendU32(key, sig.outputs);
  AppendU32(key, sig.constants);
  AppendU8(key, static_cast<std::uint8_t>(sig.type));
  AppendU8(key, static_cast<std::uint8_t>(sig.read_path));
  AppendU8(key, static_cast<std::uint8_t>(sig.write_path));

  AppendU32(key, static_cast<std::uint32_t>(kernel.code.size()));
  for (const il::Inst& inst : kernel.code) {
    AppendU8(key, static_cast<std::uint8_t>(inst.op));
    AppendU32(key, inst.dst);
    AppendU32(key, inst.resource);
    AppendU8(key, static_cast<std::uint8_t>(inst.srcs.size()));
    for (const il::Operand& src : inst.srcs) {
      AppendU8(key, static_cast<std::uint8_t>(src.kind));
      AppendU32(key, src.index);
      AppendU32(key, std::bit_cast<std::uint32_t>(src.literal));
    }
  }
  return key;
}

KernelCache::KernelCache(std::size_t capacity) : capacity_(capacity) {
  Require(capacity >= 1, "KernelCache: capacity must be at least 1");
}

std::shared_ptr<const isa::Program> KernelCache::Compile(
    const il::Kernel& kernel, const GpuArch& arch) {
  const compiler::CompileOptions opts = compiler::OptionsFor(arch);
  std::string key = KernelCacheKey(kernel, opts);
  {
    const std::lock_guard lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      return it->second.program;
    }
    ++stats_.misses;
  }

  // Compile outside the lock so concurrent misses on different kernels
  // do not serialize. Two racing misses on the *same* key both compile;
  // the loser's insert finds the winner's entry and adopts it.
  auto program =
      std::make_shared<const isa::Program>(compiler::Compile(kernel, opts));

  const std::lock_guard lock(mutex_);
  const auto [it, inserted] =
      entries_.try_emplace(std::move(key), Entry{program, ++tick_});
  if (!inserted) {
    it->second.last_used = tick_;
    return it->second.program;
  }
  if (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e == it) continue;  // Never evict the entry just inserted.
      if (victim == entries_.end() ||
          e->second.last_used < victim->second.last_used) {
        victim = e;
      }
    }
    if (victim != entries_.end()) {
      entries_.erase(victim);
      ++stats_.evictions;
    }
  }
  return program;
}

KernelCacheStats KernelCache::Stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t KernelCache::Size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

void KernelCache::Clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
  stats_ = KernelCacheStats{};
  tick_ = 0;
}

KernelCache& KernelCache::Shared() {
  static KernelCache cache;
  return cache;
}

}  // namespace amdmb::exec
