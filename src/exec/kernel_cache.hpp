// Memoized IL -> ISA compilation.
//
// Sweeps recompile near-identical kernels hundreds of times: a domain or
// block-size sweep re-launches one kernel per point, the suite report
// compiles the same generated kernel once per GPU generation, and tests
// re-run whole figures. Compilation depends only on the kernel content
// and the arch-derived CompileOptions, so the cache key is an exact
// serialization of both — equal keys mean equal programs (no hash
// collisions can substitute a wrong binary), and archs that share clause
// limits share compiled programs.
//
// Thread-safe: sweep workers hit the cache concurrently. Entries are
// immutable shared_ptrs, so a cached program stays valid even if evicted
// while a launch still uses it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/gpu_arch.hpp"
#include "compiler/compiler.hpp"
#include "compiler/isa.hpp"
#include "il/il.hpp"

namespace amdmb::exec {

struct KernelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double HitRate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Exact content key: every field of the kernel and the compile options
/// that can influence the compiled program. Kernel names are excluded —
/// sweeps name each point differently ("alufetch_r0.25", "_r0.50", ...)
/// while many of them lower to the same program.
std::string KernelCacheKey(const il::Kernel& kernel,
                           const compiler::CompileOptions& opts);

class KernelCache {
 public:
  /// Keeps at most `capacity` compiled programs (LRU eviction).
  explicit KernelCache(std::size_t capacity = 512);

  /// Returns the compiled program for (kernel, OptionsFor(arch)),
  /// compiling and inserting on miss.
  std::shared_ptr<const isa::Program> Compile(const il::Kernel& kernel,
                                              const GpuArch& arch);

  KernelCacheStats Stats() const;
  std::size_t Size() const;
  std::size_t Capacity() const { return capacity_; }
  void Clear();

  /// Process-wide cache shared by every Runner.
  static KernelCache& Shared();

 private:
  struct Entry {
    std::shared_ptr<const isa::Program> program;
    std::uint64_t last_used = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t tick_ = 0;
  KernelCacheStats stats_;
};

}  // namespace amdmb::exec
