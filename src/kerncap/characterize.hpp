// The dynamic half of kerncap: run a prepared (intake-accepted) kernel
// through the simulator across every architecture and shader mode it is
// legal in, with hardware-counter profiling on every launch, and emit
// the result as a typed report::Figure through the existing sink stack.
//
// The sweep is auto-generated around the kernel's operating point: a
// square-domain ladder (wavefront count on the x axis) ending at the
// operating domain, where the bottleneck verdict — the simulator
// heuristic cross-checked against the counter-based attributor — is
// recorded as findings. Static SKA findings from intake ride along on
// the "<card> static" pseudo-curves, so one document carries the full
// static + dynamic characterization.
//
// Determinism contract (asserted by tests and the kerncap-smoke CI
// job): for a fixed kernel and quick flag, the figure's BenchJson is
// byte-identical across AMDMB_THREADS values and across single-daemon
// vs fleet runs. Env-dependent meta fields (threads, watchdog) are
// therefore pinned here instead of inherited from the process.
#pragma once

#include <string>
#include <vector>

#include "adapt/refiner.hpp"
#include "exec/sweep_executor.hpp"
#include "kerncap/intake.hpp"
#include "report/record.hpp"
#include "suite/figures.hpp"
#include "suite/microbench.hpp"

namespace amdmb::kerncap {

/// Watchdog cycle budget per analysis launch. Generated IL is loop-free
/// so every launch terminates; the budget is the boundary's backstop
/// against a timing-model bug turning a submitted kernel into a hang.
inline constexpr Cycles kAnalysisWatchdogCycles = 2'000'000'000;

struct CharacterizeOptions {
  bool quick = false;
  Cycles watchdog_cycles = kAnalysisWatchdogCycles;
  /// Sweep points run through this executor (null = process default).
  /// Results are bit-identical at any width.
  const exec::SweepExecutor* executor = nullptr;
  /// Non-null refines the domain ladder adaptively (adapt::Refiner)
  /// instead of measuring every rung. The operating point (the last
  /// rung) is always in the coarse pass, so the bottleneck verdict is
  /// still taken at the same launch. Retry behaviour stays pinned to
  /// the analysis default, not AMDMB_RETRY, like the other env fields.
  const adapt::Settings* adaptive = nullptr;
};

/// Square-domain ladder swept per curve; the last entry is the
/// operating point the bottleneck verdict is taken at.
std::vector<unsigned> SweepDomains(bool quick);

/// Every (arch, mode) curve the kernel may legally run as: pixel mode
/// always, compute mode only on compute-capable archs and only for
/// kernels that do not stream to color buffers.
std::vector<suite::CurveKey> EligibleCurves(const il::Kernel& kernel);

/// Figure identity: "Kerncap — <name> <hash>". Unnumbered, so the slug
/// keeps the full text ("kerncap_<name>_<hash>") and two distinct
/// kernels never collide.
std::string FigureId(const Prepared& prepared);

/// report::FigureSlug(FigureId(...)) — the service's "figure" label.
std::string Slug(const Prepared& prepared);

/// One profiled measurement of the prepared kernel at an explicit
/// launch point. Shared by the sweep and the registry cross-validation
/// test, so both sides of the comparison run the identical path.
suite::Measurement MeasureAt(const Prepared& prepared, const GpuArch& arch,
                             const sim::LaunchConfig& config,
                             const std::string& point_label);

/// Runs the full characterization and returns the finalized figure.
/// `on_curve` streams per-curve completion exactly like
/// suite::figures::Build.
report::Figure Characterize(
    const Prepared& prepared, const CharacterizeOptions& options,
    const suite::figures::CurveCallback& on_curve = {});

}  // namespace amdmb::kerncap
