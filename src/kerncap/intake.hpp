// The kerncap intake boundary: the one place untrusted IL text enters
// the system.
//
// Everything a client submits through the service's "characterize" op
// (or the amdmb_kerncap CLI) passes through Analyze(), which enforces
// hard size / resource caps *before* parsing, then runs the
// il::Parse -> il::Verify -> compiler::Compile pipeline and converts
// every failure into a typed Rejection with a stable reason code —
// Analyze never throws for malformed input. The codes are wire protocol
// (the "code" field of a rejected:invalid_kernel event) and must stay
// stable:
//
//   payload_too_large     IL text exceeds IntakeLimits::max_bytes.
//   too_many_lines        line count exceeds max_lines.
//   too_many_instructions parsed instruction count exceeds the cap.
//   resource_limit        inputs/outputs/constants/name beyond caps.
//   parse_error           the IL grammar rejected the text.
//   verify_error          parsed, but IL validity rules failed.
//   compile_error         verified, but ISA lowering rejected it.
//
// The fuzz harness (tools/fuzz_il_parser) drives exactly this entry
// point: any exception escaping Analyze is a bug by definition.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "il/il.hpp"
#include "kerncap/static_analysis.hpp"

namespace amdmb::kerncap {

/// Why a submitted kernel was rejected (stable wire codes above).
enum class RejectReason {
  kPayloadTooLarge,
  kTooManyLines,
  kTooManyInstructions,
  kResourceLimit,
  kParseError,
  kVerifyError,
  kCompileError,
};

std::string_view ToString(RejectReason reason);

/// One typed rejection verdict: the stable code plus a human detail.
struct Rejection {
  RejectReason reason = RejectReason::kParseError;
  std::string detail;
};

/// Hard caps enforced before (bytes/lines) and after (instructions,
/// resources) parsing. Defaults bound analysis cost far below the
/// service's 8 MiB request-line limit.
struct IntakeLimits {
  std::size_t max_bytes = 1u << 20;  ///< 1 MiB of IL text.
  std::size_t max_lines = 4096;
  std::size_t max_instructions = 2048;
  unsigned max_inputs = 128;
  unsigned max_outputs = 16;
  unsigned max_constants = 256;
  std::size_t max_name_bytes = 64;
};

/// Content identity of submitted IL text: FNV-1a 64-bit over the raw
/// bytes, rendered as 16 hex digits. The fleet routes characterize
/// requests by this hash, and it names the figure record.
std::string ContentHash(std::string_view il);

/// A kernel that survived intake: parsed, verified, compiled for every
/// architecture, with its static analysis attached.
struct Prepared {
  il::Kernel kernel;
  std::string hash;  ///< ContentHash of the submitted text.
  std::vector<ArchStatic> statics;  ///< AllArchs() order.
};

/// Outcome of one intake: the content hash always, then exactly one of
/// `prepared` (accepted) or `rejection` (typed verdict).
struct AnalyzeResult {
  std::string hash;
  std::optional<Prepared> prepared;
  std::optional<Rejection> rejection;

  bool ok() const { return !rejection.has_value(); }
};

/// Runs the full intake pipeline on untrusted IL text. Never throws for
/// malformed input — every rejection class comes back typed.
AnalyzeResult Analyze(std::string_view il, const IntakeLimits& limits = {});

}  // namespace amdmb::kerncap
