#include "kerncap/static_analysis.hpp"

#include "compiler/compiler.hpp"

namespace amdmb::kerncap {

std::vector<ArchStatic> AnalyzeAllArchs(const il::Kernel& kernel) {
  std::vector<ArchStatic> statics;
  for (const GpuArch& arch : AllArchs()) {
    const isa::Program program = compiler::Compile(kernel, arch);
    statics.push_back({arch, compiler::Analyze(program, arch)});
  }
  return statics;
}

std::string CardLabel(const GpuArch& arch) {
  // "Radeon HD 4870" -> "4870" (same convention as CurveKey::Name).
  std::string card = arch.card;
  if (const auto pos = card.rfind(' '); pos != std::string::npos) {
    card = card.substr(pos + 1);
  }
  return card;
}

std::vector<report::Finding> StaticFindings(const ArchStatic& s) {
  const std::string curve = CardLabel(s.arch) + " static";
  std::vector<report::Finding> findings;
  const auto count = [&](const char* label, unsigned value) {
    findings.push_back({report::FindingKind::kPlateau, curve, label,
                        static_cast<double>(value), "", ""});
  };
  count("static_alu_ops", s.ska.alu_ops);
  count("static_fetch_ops", s.ska.fetch_ops);
  count("static_write_ops", s.ska.write_ops);
  findings.push_back({report::FindingKind::kRatio, curve,
                      "static_alu_fetch_ratio", s.ska.alu_fetch_ratio,
                      "ratio", ""});
  count("static_gpr_count", s.ska.gpr_count);
  count("static_theoretical_wavefronts", s.ska.theoretical_wavefronts);
  count("static_resident_wavefronts", s.ska.resident_wavefronts);
  findings.push_back({report::FindingKind::kEvent, curve, "static_bound",
                      std::nullopt, "",
                      std::string(compiler::ToString(s.ska.bound))});
  return findings;
}

}  // namespace amdmb::kerncap
