#include "kerncap/intake.hpp"

#include <algorithm>
#include <cstdint>

#include "common/status.hpp"
#include "il/parser.hpp"
#include "il/verifier.hpp"

namespace amdmb::kerncap {

std::string_view ToString(RejectReason reason) {
  switch (reason) {
    case RejectReason::kPayloadTooLarge: return "payload_too_large";
    case RejectReason::kTooManyLines: return "too_many_lines";
    case RejectReason::kTooManyInstructions:
      return "too_many_instructions";
    case RejectReason::kResourceLimit: return "resource_limit";
    case RejectReason::kParseError: return "parse_error";
    case RejectReason::kVerifyError: return "verify_error";
    case RejectReason::kCompileError: return "compile_error";
  }
  throw SimError("ToString(RejectReason): unknown value");
}

std::string ContentHash(std::string_view il) {
  // FNV-1a 64-bit: deterministic across platforms, cheap, and stable —
  // it is wire protocol (routing key + figure identity), not security.
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : il) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

namespace {

AnalyzeResult Reject(std::string hash, RejectReason reason,
                     std::string detail) {
  AnalyzeResult result;
  result.hash = std::move(hash);
  result.rejection = Rejection{reason, std::move(detail)};
  return result;
}

}  // namespace

AnalyzeResult Analyze(std::string_view il, const IntakeLimits& limits) {
  std::string hash = ContentHash(il);
  // Size caps first: nothing below touches text beyond the caps.
  if (il.size() > limits.max_bytes) {
    return Reject(std::move(hash), RejectReason::kPayloadTooLarge,
                  "kernel text is " + std::to_string(il.size()) +
                      " bytes; the limit is " +
                      std::to_string(limits.max_bytes));
  }
  const std::size_t lines =
      1 + static_cast<std::size_t>(std::count(il.begin(), il.end(), '\n'));
  if (lines > limits.max_lines) {
    return Reject(std::move(hash), RejectReason::kTooManyLines,
                  "kernel text has " + std::to_string(lines) +
                      " lines; the limit is " +
                      std::to_string(limits.max_lines));
  }

  il::Kernel kernel;
  try {
    kernel = il::Parse(il);
  } catch (const ConfigError& e) {
    return Reject(std::move(hash), RejectReason::kParseError, e.what());
  }

  if (kernel.code.size() > limits.max_instructions) {
    return Reject(std::move(hash), RejectReason::kTooManyInstructions,
                  "kernel has " + std::to_string(kernel.code.size()) +
                      " instructions; the limit is " +
                      std::to_string(limits.max_instructions));
  }
  const auto resource = [&](const char* what, std::size_t value,
                            std::size_t cap) {
    return Reject(hash, RejectReason::kResourceLimit,
                  std::string(what) + " " + std::to_string(value) +
                      " exceeds the limit of " + std::to_string(cap));
  };
  if (kernel.sig.inputs > limits.max_inputs) {
    return resource("input count", kernel.sig.inputs, limits.max_inputs);
  }
  if (kernel.sig.outputs > limits.max_outputs) {
    return resource("output count", kernel.sig.outputs, limits.max_outputs);
  }
  if (kernel.sig.constants > limits.max_constants) {
    return resource("constant count", kernel.sig.constants,
                    limits.max_constants);
  }
  if (kernel.name.size() > limits.max_name_bytes) {
    return resource("kernel name of", kernel.name.size(),
                    limits.max_name_bytes);
  }

  const il::VerifyResult verdict = il::Verify(kernel);
  if (!verdict.ok()) {
    return Reject(std::move(hash), RejectReason::kVerifyError,
                  verdict.Message());
  }

  AnalyzeResult result;
  result.hash = hash;
  try {
    Prepared prepared;
    prepared.statics = AnalyzeAllArchs(kernel);
    prepared.kernel = std::move(kernel);
    prepared.hash = std::move(hash);
    result.prepared = std::move(prepared);
  } catch (const ConfigError& e) {
    return Reject(std::move(result.hash), RejectReason::kCompileError,
                  e.what());
  }
  return result;
}

}  // namespace amdmb::kerncap
