#include "kerncap/characterize.hpp"

#include <utility>

#include "report/json_sink.hpp"
#include "sim/gpu.hpp"

namespace amdmb::kerncap {

std::vector<unsigned> SweepDomains(bool quick) {
  if (quick) return {64, 128, 256};
  return {64, 128, 256, 512};
}

std::vector<suite::CurveKey> EligibleCurves(const il::Kernel& kernel) {
  std::vector<suite::CurveKey> curves;
  for (const GpuArch& arch : AllArchs()) {
    curves.push_back({arch, ShaderMode::kPixel, kernel.sig.type});
    // Compute mode cannot write color buffers (Sec. IV-C), and RV670
    // has no compute mode at all — both would throw in the sim, so the
    // curve set is trimmed instead.
    if (arch.supports_compute &&
        kernel.sig.write_path != WritePath::kStream) {
      curves.push_back({arch, ShaderMode::kCompute, kernel.sig.type});
    }
  }
  return curves;
}

std::string FigureId(const Prepared& prepared) {
  return "Kerncap — " + prepared.kernel.name + " " + prepared.hash;
}

std::string Slug(const Prepared& prepared) {
  return report::FigureSlug(FigureId(prepared));
}

suite::Measurement MeasureAt(const Prepared& prepared, const GpuArch& arch,
                             const sim::LaunchConfig& config,
                             const std::string& point_label) {
  const suite::Runner runner(arch);
  return runner.Measure(prepared.kernel, config, {point_label, 1});
}

namespace {

void RunCurve(report::Figure& figure, const Prepared& prepared,
              const suite::CurveKey& key,
              const std::vector<unsigned>& domains,
              const CharacterizeOptions& options) {
  const std::string name = key.Name();
  const std::vector<suite::Measurement> points =
      exec::ExecutorOrDefault(options.executor)
          .Map(domains.size(), [&](std::size_t i) {
            sim::LaunchConfig launch;
            launch.domain = Domain{domains[i], domains[i]};
            launch.mode = key.mode;
            launch.block = BlockShape{64, 1};
            launch.repetitions = suite::kPaperRepetitions;
            launch.watchdog_cycles = options.watchdog_cycles;
            launch.profile = true;
            return MeasureAt(prepared, key.arch, launch,
                             "domain_" + std::to_string(domains[i]));
          });
  Series& series = figure.set.Get(name);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double wavefronts =
        static_cast<double>(domains[i]) * domains[i] /
        key.arch.wavefront_size;
    series.Add(wavefronts, points[i].seconds);
  }
  for (const suite::Measurement& m : points) {
    figure.profiles.push_back(report::MakeProfileEntry(
        name, *m.profile, sim::ToString(m.stats.bottleneck)));
  }
  const suite::Measurement& op = points.back();
  figure.findings.push_back({report::FindingKind::kPlateau, name,
                             "operating_point_seconds", op.seconds, "s",
                             ""});
  figure.findings.push_back(
      {report::FindingKind::kEvent, name, "operating_point_bottleneck",
       std::nullopt, "",
       std::string(sim::ToString(op.stats.bottleneck))});
  figure.findings.push_back(
      {report::FindingKind::kEvent, name, "operating_point_attributed",
       std::nullopt, "",
       std::string(sim::ToString(op.profile->attribution.bottleneck))});
}

}  // namespace

report::Figure Characterize(const Prepared& prepared,
                            const CharacterizeOptions& options,
                            const suite::figures::CurveCallback& on_curve) {
  report::Figure figure(
      FigureId(prepared), "Kernel Characterization", "Wavefronts",
      "Time in seconds",
      "Submitted kernel: static SKA view per architecture plus a "
      "profiled domain sweep around the operating point.");
  for (const ArchStatic& s : prepared.statics) {
    for (report::Finding& f : StaticFindings(s)) {
      figure.findings.push_back(std::move(f));
    }
  }
  const std::vector<suite::CurveKey> curves =
      EligibleCurves(prepared.kernel);
  const std::vector<unsigned> domains = SweepDomains(options.quick);
  for (std::size_t i = 0; i < curves.size(); ++i) {
    RunCurve(figure, prepared, curves[i], domains, options);
    if (on_curve) on_curve(i, curves.size(), curves[i].Name(), figure);
  }
  report::FinalizeMeta(figure);
  figure.meta.quick = options.quick;
  // Byte-determinism across AMDMB_THREADS and daemon flavors: the two
  // env-dependent meta fields are pinned to the analysis contract, not
  // the process snapshot. Sweep results themselves are bit-identical at
  // any executor width (exec::SweepExecutor::Map's ordering guarantee).
  figure.meta.threads = 1;
  figure.meta.watchdog_cycles = options.watchdog_cycles;
  return figure;
}

}  // namespace amdmb::kerncap
