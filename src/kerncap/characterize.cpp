#include "kerncap/characterize.hpp"

#include <optional>
#include <utility>

#include "common/status.hpp"
#include "report/json_sink.hpp"
#include "sim/gpu.hpp"

namespace amdmb::kerncap {

std::vector<unsigned> SweepDomains(bool quick) {
  if (quick) return {64, 128, 256};
  return {64, 128, 256, 512};
}

std::vector<suite::CurveKey> EligibleCurves(const il::Kernel& kernel) {
  std::vector<suite::CurveKey> curves;
  for (const GpuArch& arch : AllArchs()) {
    curves.push_back({arch, ShaderMode::kPixel, kernel.sig.type});
    // Compute mode cannot write color buffers (Sec. IV-C), and RV670
    // has no compute mode at all — both would throw in the sim, so the
    // curve set is trimmed instead.
    if (arch.supports_compute &&
        kernel.sig.write_path != WritePath::kStream) {
      curves.push_back({arch, ShaderMode::kCompute, kernel.sig.type});
    }
  }
  return curves;
}

std::string FigureId(const Prepared& prepared) {
  return "Kerncap — " + prepared.kernel.name + " " + prepared.hash;
}

std::string Slug(const Prepared& prepared) {
  return report::FigureSlug(FigureId(prepared));
}

suite::Measurement MeasureAt(const Prepared& prepared, const GpuArch& arch,
                             const sim::LaunchConfig& config,
                             const std::string& point_label) {
  const suite::Runner runner(arch);
  return runner.Measure(prepared.kernel, config, {point_label, 1});
}

namespace {

void OperatingPointFindings(report::Figure& figure, const std::string& name,
                            const suite::Measurement& op) {
  figure.findings.push_back({report::FindingKind::kPlateau, name,
                             "operating_point_seconds", op.seconds, "s",
                             ""});
  figure.findings.push_back(
      {report::FindingKind::kEvent, name, "operating_point_bottleneck",
       std::nullopt, "",
       std::string(sim::ToString(op.stats.bottleneck))});
  figure.findings.push_back(
      {report::FindingKind::kEvent, name, "operating_point_attributed",
       std::nullopt, "",
       std::string(sim::ToString(op.profile->attribution.bottleneck))});
}

void RunCurve(report::Figure& figure, const Prepared& prepared,
              const suite::CurveKey& key,
              const std::vector<unsigned>& domains,
              const CharacterizeOptions& options) {
  const std::string name = key.Name();
  const auto launch_at = [&](std::size_t i) {
    sim::LaunchConfig launch;
    launch.domain = Domain{domains[i], domains[i]};
    launch.mode = key.mode;
    launch.block = BlockShape{64, 1};
    launch.repetitions = suite::kPaperRepetitions;
    launch.watchdog_cycles = options.watchdog_cycles;
    launch.profile = true;
    return launch;
  };
  const auto wavefronts_at = [&](std::size_t i) {
    return static_cast<double>(domains[i]) * domains[i] /
           key.arch.wavefront_size;
  };

  if (options.adaptive != nullptr) {
    const suite::Runner runner(key.arch);
    std::vector<std::optional<suite::Measurement>> slots(domains.size());
    // Retry behaviour is pinned (not RetryPolicy::FromEnv) so the
    // refinement trajectory matches across daemon flavors regardless of
    // the host's AMDMB_RETRY.
    const adapt::Refiner refiner(*options.adaptive, options.executor,
                                 exec::RetryPolicy{});
    exec::RunReport report;
    const adapt::Outcome outcome = refiner.Run(
        domains.size(), wavefronts_at,
        [&](std::size_t i, unsigned attempt) {
          suite::Measurement m = runner.Measure(
              prepared.kernel, launch_at(i),
              {"domain_" + std::to_string(domains[i]), attempt});
          std::string label(sim::ToString(m.stats.bottleneck));
          slots[i] = std::move(m);
          return label;
        },
        &report);
    for (exec::PointOutcome& point : report.points) {
      point.label = "domain_" + std::to_string(domains[point.index]);
    }
    Series& series = figure.set.Get(name);
    for (const std::size_t i : outcome.measured) {
      if (!slots[i].has_value()) continue;
      series.Add(wavefronts_at(i), slots[i]->seconds);
      figure.profiles.push_back(report::MakeProfileEntry(
          name, *slots[i]->profile,
          sim::ToString(slots[i]->stats.bottleneck)));
    }
    for (report::Degradation& d : report::DegradationsFrom(report, name)) {
      figure.degradations.push_back(std::move(d));
    }
    Require(slots.back().has_value(),
            "kerncap adaptive: operating point failed");
    OperatingPointFindings(figure, name, *slots.back());
    for (report::Finding& f :
         adapt::AdaptiveFindings(outcome, name, "wavefronts")) {
      figure.findings.push_back(std::move(f));
    }
    return;
  }

  const std::vector<suite::Measurement> points =
      exec::ExecutorOrDefault(options.executor)
          .Map(domains.size(), [&](std::size_t i) {
            return MeasureAt(prepared, key.arch, launch_at(i),
                             "domain_" + std::to_string(domains[i]));
          });
  Series& series = figure.set.Get(name);
  for (std::size_t i = 0; i < points.size(); ++i) {
    series.Add(wavefronts_at(i), points[i].seconds);
  }
  for (const suite::Measurement& m : points) {
    figure.profiles.push_back(report::MakeProfileEntry(
        name, *m.profile, sim::ToString(m.stats.bottleneck)));
  }
  OperatingPointFindings(figure, name, points.back());
}

}  // namespace

report::Figure Characterize(const Prepared& prepared,
                            const CharacterizeOptions& options,
                            const suite::figures::CurveCallback& on_curve) {
  report::Figure figure(
      FigureId(prepared), "Kernel Characterization", "Wavefronts",
      "Time in seconds",
      "Submitted kernel: static SKA view per architecture plus a "
      "profiled domain sweep around the operating point.");
  for (const ArchStatic& s : prepared.statics) {
    for (report::Finding& f : StaticFindings(s)) {
      figure.findings.push_back(std::move(f));
    }
  }
  const std::vector<suite::CurveKey> curves =
      EligibleCurves(prepared.kernel);
  const std::vector<unsigned> domains = SweepDomains(options.quick);
  for (std::size_t i = 0; i < curves.size(); ++i) {
    RunCurve(figure, prepared, curves[i], domains, options);
    if (on_curve) on_curve(i, curves.size(), curves[i].Name(), figure);
  }
  report::FinalizeMeta(figure);
  figure.meta.quick = options.quick;
  // Byte-determinism across AMDMB_THREADS and daemon flavors: the two
  // env-dependent meta fields are pinned to the analysis contract, not
  // the process snapshot. Sweep results themselves are bit-identical at
  // any executor width (exec::SweepExecutor::Map's ordering guarantee).
  figure.meta.threads = 1;
  figure.meta.watchdog_cycles = options.watchdog_cycles;
  figure.meta.adaptive = options.adaptive != nullptr;
  return figure;
}

}  // namespace amdmb::kerncap
