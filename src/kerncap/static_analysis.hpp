// Static characterization of a submitted kernel: the SKA-style view
// (ALU/fetch/write counts, normalised ratio, GPR usage, occupancy from
// the Table I register budget) computed per GPU generation by compiling
// the kernel with src/compiler and running compiler::Analyze on the ISA.
//
// This is the cheap half of the kerncap split — pure compilation, no
// simulation — and the half that runs inside the intake boundary, so an
// un-compilable kernel is rejected before any sim time is spent.
#pragma once

#include <vector>

#include "arch/gpu_arch.hpp"
#include "compiler/ska.hpp"
#include "il/il.hpp"
#include "report/record.hpp"

namespace amdmb::kerncap {

/// The static view of one kernel on one GPU generation.
struct ArchStatic {
  GpuArch arch;
  compiler::SkaReport ska;
};

/// Compiles `kernel` for every Table I architecture (paper order) and
/// returns one SkaReport per arch. Throws ConfigError when the compiler
/// rejects the kernel (intake maps that to kCompileError).
std::vector<ArchStatic> AnalyzeAllArchs(const il::Kernel& kernel);

/// Card label used in finding curves and static events ("4870").
std::string CardLabel(const GpuArch& arch);

/// The static view as typed findings, attributed to the pseudo-curve
/// "<card> static" so they never collide with measured-curve findings.
std::vector<report::Finding> StaticFindings(const ArchStatic& s);

}  // namespace amdmb::kerncap
