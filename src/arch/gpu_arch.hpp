// Machine descriptions of the three AMD GPU generations the paper
// benchmarks (Table I) plus the micro-architectural parameters the timing
// model needs. Documented parameters come from the paper and AMD's R600/
// R700 ISA guides; parameters the paper could only observe indirectly
// (effective bandwidths, latencies) are calibrated so the reproduced
// figures match the published curve shapes, and are marked "calibrated".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace amdmb {

/// Per-SIMD texture L1 configuration.
///
/// The paper (Sec. IV-A) observes that the cache is organised in two
/// dimensions — "when using a 64x1 block size only half the cache is
/// used" — and that from RV770 to RV870 the cache size halves while the
/// line size doubles. We model the 2-D organisation as two set groups
/// selected by the low bit of the texel tile row.
struct TexCacheConfig {
  Bytes size_bytes = 16 * 1024;
  Bytes line_bytes = 64;
  unsigned associativity = 8;
  /// 2-D set indexing (ablation knob; see bench_ablation_cache_index).
  bool two_d_index = true;
};

/// Off-chip memory (GDDR) model parameters.
struct DramConfig {
  /// Effective texture-cache line-fill bandwidth, bytes per *core* cycle
  /// (calibrated from board peak x typical efficiency).
  double fill_bytes_per_cycle = 100.0;
  /// Effective uncached global-read bandwidth, bytes per core cycle. Can
  /// be far below the fill bandwidth on early generations (the paper's
  /// "the RV670's global memory is very slow", Sec. IV-B).
  double read_bytes_per_cycle = 100.0;
  /// Effective uncached global-write bandwidth, bytes per core cycle.
  /// Early-generation uncached writes are far below peak (paper Fig. 14:
  /// each 32-bit element is written at a constant rate).
  double write_bytes_per_cycle = 40.0;
  /// First-word latency of an uncached global read, core cycles.
  Cycles read_latency = 350;
  /// Extra cycles charged per open-row switch during line fills. Zero by
  /// default: GDDR activations overlap with other banks' transfers; the
  /// knob exists for the row-locality ablation bench.
  Cycles row_switch_cycles = 0;
  unsigned banks = 8;
  Bytes row_bytes = 2048;
};

/// Complete description of one GPU generation.
struct GpuArch {
  std::string name;      ///< Chip name, e.g. "RV770".
  std::string card;      ///< Board the paper tested, e.g. "Radeon HD 4870".
  std::string mem_type;  ///< Table I memory type string.

  // ---- Table I ----------------------------------------------------------
  unsigned alu_count = 0;       ///< Total stream cores (320/800/1600).
  unsigned texture_units = 0;   ///< Total texture fetch units (16/40/80).
  unsigned simd_engines = 0;    ///< SIMD engines (4/10/20).
  unsigned core_clock_mhz = 0;  ///< Core clock (750/750/850).
  unsigned mem_clock_mhz = 0;   ///< Memory clock (1000/900/1200).

  bool supports_compute = true;  ///< RV670 has no compute-shader mode.

  // ---- Execution model (paper Sec. II-A) --------------------------------
  unsigned wavefront_size = 64;
  unsigned thread_processors_per_simd = 16;
  unsigned vliw_width = 5;  ///< x, y, z, w general cores + t transcendental.
  unsigned tex_units_per_simd = 4;
  /// 16k 128-bit registers per SIMD / 64 threads = 256 GPRs per thread.
  unsigned gpr_budget_per_thread = 256;
  /// Scheduling cap on simultaneously resident wavefronts per SIMD.
  unsigned max_wavefronts_per_simd = 24;
  /// Clause-temporary registers available per slot (paper: max two per
  /// odd/even slot; live only inside a clause).
  unsigned clause_temps_per_slot = 2;
  unsigned max_tex_fetches_per_clause = 16;
  unsigned max_alu_bundles_per_clause = 128;

  // ---- Texture path -----------------------------------------------------
  TexCacheConfig l1;
  /// Hit-side service bandwidth of one texture unit: bytes delivered per
  /// cycle. 4.0 means 32 bits per thread-cycle, which yields the paper's
  /// Fig. 11 observation that n float4 fetches cost ~4n float fetches.
  double tex_bytes_per_unit_cycle = 4.0;
  Cycles tex_hit_latency = 96;  ///< Pipelined per-clause latency (calibrated).
  /// Stall per fetch instruction that misses in the texture cache. Misses
  /// serialise on the owning wavefront's timeline (the wavefront waits;
  /// the SIMD hides the stall only by switching to other wavefronts —
  /// paper Sec. II-A), which is what makes occupancy matter in Fig. 16.
  Cycles tex_miss_stall_cycles = 240;  ///< calibrated
  Cycles clause_switch_cycles = 4;     ///< control-flow processor overhead

  // ---- Global memory paths ----------------------------------------------
  DramConfig dram;
  /// Controller serialisation per global-read wavefront-instruction
  /// (calibrated; dominates Fig. 12 slopes).
  Cycles global_read_instr_overhead = 6;
  /// Streaming (color-buffer) store path: burst-combining back-ends.
  double stream_store_bytes_per_cycle = 140.0;
  Cycles stream_store_instr_overhead = 8;
  /// Uncached global write per-instruction overhead.
  Cycles global_write_instr_overhead = 8;

  // ---- Derived helpers ---------------------------------------------------
  /// Cycles for one VLIW bundle to drain a full wavefront through the
  /// SIMD's thread processors (64 threads / 16 TPs = 4).
  unsigned CyclesPerBundle() const {
    return wavefront_size / thread_processors_per_simd;
  }
  double CoreClockHz() const { return core_clock_mhz * 1.0e6; }
  /// Chip-wide texture cache capacity (the simulator models the texture
  /// cache hierarchy as one shared structure).
  Bytes TotalTexCacheBytes() const { return l1.size_bytes * simd_engines; }
  /// Convert simulated cycles to seconds of wall time on this chip.
  double CyclesToSeconds(double cycles) const {
    return cycles / CoreClockHz();
  }
};

/// Radeon HD 3870 (RV670): 320 ALUs, 4 SIMDs, no compute shader, slow
/// uncached global memory (the paper attributes this to its DDR3/4).
GpuArch MakeRV670();

/// Radeon HD 4870 (RV770): 800 ALUs, 10 SIMDs, GDDR5.
GpuArch MakeRV770();

/// Radeon HD 5870 (RV870/Cypress): 1600 ALUs, 20 SIMDs, GDDR5; texture L1
/// halves in size and doubles in line length relative to RV770 (paper
/// Sec. IV-A).
GpuArch MakeRV870();

/// Lookup by chip ("RV770") or card ("4870") name; throws ConfigError for
/// unknown names.
GpuArch ArchByName(std::string_view name);

/// All three generations in paper order.
std::vector<GpuArch> AllArchs();

/// Renders Table I of the paper from the machine descriptions.
std::string RenderHardwareTable();

}  // namespace amdmb
