// Wavefront occupancy: how many wavefronts can be simultaneously resident
// on one SIMD engine given a kernel's general-purpose register usage
// (paper Sec. II-B: 16kB register file / 64 threads = 256 GPRs per thread;
// a 5-GPR kernel can schedule 256/5 = 51 wavefronts, subject to the
// hardware cap).
#pragma once

#include "arch/gpu_arch.hpp"

namespace amdmb {

/// Wavefronts resident per SIMD for a kernel using `gpr_count` registers.
/// Never below 1 (a kernel always runs); clamped to the scheduler cap.
unsigned WavefrontsPerSimd(const GpuArch& arch, unsigned gpr_count);

/// The theoretical (uncapped) wavefront count, as the paper computes it
/// ("256/5 = 51 wavefronts scheduled").
unsigned TheoreticalWavefronts(const GpuArch& arch, unsigned gpr_count);

/// True when only one wavefront is resident, i.e. only one of the odd/even
/// thread-processor slots is occupied and ALU throughput halves
/// (paper Sec. II-A).
bool SingleSlotPenaltyApplies(unsigned resident_wavefronts);

}  // namespace amdmb
