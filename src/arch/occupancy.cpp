#include "arch/occupancy.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace amdmb {

unsigned TheoreticalWavefronts(const GpuArch& arch, unsigned gpr_count) {
  Require(gpr_count > 0, "occupancy: kernel must use at least one GPR");
  return std::max(1u, arch.gpr_budget_per_thread / gpr_count);
}

unsigned WavefrontsPerSimd(const GpuArch& arch, unsigned gpr_count) {
  return std::min(arch.max_wavefronts_per_simd,
                  TheoreticalWavefronts(arch, gpr_count));
}

bool SingleSlotPenaltyApplies(unsigned resident_wavefronts) {
  return resident_wavefronts < 2;
}

}  // namespace amdmb
