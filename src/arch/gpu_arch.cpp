#include "arch/gpu_arch.hpp"

#include <sstream>

#include "common/status.hpp"
#include "common/table.hpp"

namespace amdmb {

GpuArch MakeRV670() {
  GpuArch a;
  a.name = "RV670";
  a.card = "Radeon HD 3870";
  a.mem_type = "GDDR4";
  a.alu_count = 320;
  a.texture_units = 16;
  a.simd_engines = 4;
  a.core_clock_mhz = 750;
  a.mem_clock_mhz = 1000;
  a.supports_compute = false;  // Paper: "The RV670 does not support OpenCL"
                               // and no compute-shader mode (Sec. IV).

  a.l1 = TexCacheConfig{.size_bytes = 16 * 1024, .line_bytes = 64,
                        .associativity = 8};
  a.tex_hit_latency = 130;
  a.tex_miss_stall_cycles = 300;

  // Calibrated: the paper stresses that RV670 global-memory reads are
  // "very slow" relative to its texture path (Fig. 12).
  a.dram.fill_bytes_per_cycle = 60.0;
  // Uncached reads: dominated by per-request overhead on this
  // generation (Fig. 12: float ~ float4), at a painfully high rate.
  a.dram.read_bytes_per_cycle = 100.0;
  a.dram.write_bytes_per_cycle = 16.0;
  a.dram.read_latency = 620;
  a.global_read_instr_overhead = 40;
  a.stream_store_bytes_per_cycle = 26.0;
  a.stream_store_instr_overhead = 24;
  a.global_write_instr_overhead = 4;
  return a;
}

GpuArch MakeRV770() {
  GpuArch a;
  a.name = "RV770";
  a.card = "Radeon HD 4870";
  a.mem_type = "GDDR5";
  a.alu_count = 800;
  a.texture_units = 40;
  a.simd_engines = 10;
  a.core_clock_mhz = 750;
  a.mem_clock_mhz = 900;

  a.l1 = TexCacheConfig{.size_bytes = 16 * 1024, .line_bytes = 64,
                        .associativity = 8};
  a.tex_hit_latency = 110;
  a.tex_miss_stall_cycles = 240;

  // 115 GB/s board peak; ~0.8 efficiency at 750 MHz core -> ~123 B/cycle.
  a.dram.fill_bytes_per_cycle = 123.0;
  // Uncached reads overlap across banks: per-request controller
  // occupancy is mostly the fixed overhead (Fig. 12: float ~ float4).
  a.dram.read_bytes_per_cycle = 500.0;
  a.dram.write_bytes_per_cycle = 64.0;
  a.dram.read_latency = 360;
  a.global_read_instr_overhead = 8;
  a.stream_store_bytes_per_cycle = 300.0;
  a.stream_store_instr_overhead = 8;
  a.global_write_instr_overhead = 2;
  return a;
}

GpuArch MakeRV870() {
  GpuArch a;
  a.name = "RV870";
  a.card = "Radeon HD 5870";
  a.mem_type = "GDDR5";
  a.alu_count = 1600;
  a.texture_units = 80;
  a.simd_engines = 20;
  a.core_clock_mhz = 850;
  a.mem_clock_mhz = 1200;

  // Paper Sec. IV-A: cache halved, line doubled vs RV770 (per-SIMD 4 KiB
  // so the chip-wide texture cache is half of RV770's despite twice the
  // SIMD count).
  a.l1 = TexCacheConfig{.size_bytes = 4 * 1024, .line_bytes = 128,
                        .associativity = 8};
  a.tex_hit_latency = 96;
  a.tex_miss_stall_cycles = 200;

  // 153.6 GB/s board peak at 850 MHz core -> ~145 B/cycle effective.
  a.dram.fill_bytes_per_cycle = 145.0;
  a.dram.read_bytes_per_cycle = 500.0;
  a.dram.write_bytes_per_cycle = 80.0;
  a.dram.read_latency = 330;
  a.global_read_instr_overhead = 6;
  a.stream_store_bytes_per_cycle = 360.0;
  a.stream_store_instr_overhead = 6;
  a.global_write_instr_overhead = 2;
  return a;
}

GpuArch ArchByName(std::string_view name) {
  for (const auto& a : AllArchs()) {
    if (name == a.name || a.card.find(name) != std::string::npos) return a;
  }
  throw ConfigError("Unknown GPU architecture: " + std::string(name));
}

std::vector<GpuArch> AllArchs() { return {MakeRV670(), MakeRV770(), MakeRV870()}; }

std::string RenderHardwareTable() {
  TextTable top({"GPU", "ALUs", "Texture Units", "SIMD Engines"});
  TextTable bottom({"GPU", "Core Clock", "Mem Clock", "Mem Type"});
  for (const auto& a : AllArchs()) {
    top.AddRow({a.name, std::to_string(a.alu_count),
                std::to_string(a.texture_units),
                std::to_string(a.simd_engines)});
    bottom.AddRow({a.name, std::to_string(a.core_clock_mhz) + "Mhz",
                   std::to_string(a.mem_clock_mhz) + "Mhz", a.mem_type});
  }
  std::ostringstream os;
  os << "TABLE I: GPU Hardware Features\n"
     << top.Render() << "\n" << bottom.Render();
  return os.str();
}

}  // namespace amdmb
