#include "mem/texture_unit.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"
#include "prof/collector.hpp"

namespace amdmb::mem {

TextureUnitBlock::TextureUnitBlock(const GpuArch& arch, TextureCache& cache,
                                   MemoryController& controller)
    : arch_(&arch), cache_(&cache), controller_(&controller) {}

Cycles TextureUnitBlock::ServicePerFetch(DataType type,
                                         unsigned active_threads) const {
  const double bytes =
      static_cast<double>(active_threads) * ElementBytes(type);
  const double per_cycle =
      arch_->tex_units_per_simd * arch_->tex_bytes_per_unit_cycle;
  return static_cast<Cycles>(std::ceil(bytes / per_cycle));
}

TexClauseTiming TextureUnitBlock::ServeClause(
    Cycles now, DataType type, unsigned active_threads,
    std::span<const std::vector<LineId>> lines_per_fetch) {
  TexClauseTiming t;
  t.start = std::max(now, free_at_);
  const Cycles per_fetch = ServicePerFetch(type, active_threads);
  const Cycles service = per_fetch * lines_per_fetch.size();
  free_at_ = t.start + service;
  t.service_end = free_at_;
  busy_ += service;

  // All of the clause's misses coalesce into a single controller batch:
  // the texture units stream the clause's fills back-to-back, so the
  // shared controller charges one contiguous transfer rather than one
  // (rounded-up) transaction per fetch instruction.
  Cycles last_fill_end = 0;
  fill_addrs_.clear();
  for (const std::vector<LineId>& lines : lines_per_fetch) {
    bool instr_missed = false;
    for (const LineId& line : lines) {
      if (!cache_->Probe(line)) {
        fill_addrs_.push_back(line.address);
        instr_missed = true;
      } else {
        ++t.line_hits;
      }
    }
    if (instr_missed) ++t.miss_instrs;
  }
  if (!fill_addrs_.empty()) {
    t.line_misses = static_cast<unsigned>(fill_addrs_.size());
    const BatchResult fill =
        controller_->FillLines(t.start, fill_addrs_, arch_->l1.line_bytes);
    last_fill_end = fill.end;
  }

  t.complete = t.service_end + arch_->tex_hit_latency +
               static_cast<Cycles>(t.miss_instrs) *
                   arch_->tex_miss_stall_cycles;
  if (last_fill_end != 0) {
    t.complete = std::max(t.complete, last_fill_end + arch_->tex_hit_latency);
  }
  if (collector_ != nullptr) {
    collector_->OnTexClause(simd_, service, t.miss_instrs);
  }
  return t;
}

}  // namespace amdmb::mem
