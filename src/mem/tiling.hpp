// Texture memory tiling.
//
// AMD GPUs store textures in a tiled layout: one cache line covers a 2-D
// block of texels, which is why the texture cache behaves "in two
// dimensions" (paper Sec. IV-A) and why block shape matters so much in
// compute mode. This module maps texel coordinates to cache-line ids.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace amdmb::mem {

/// Geometry of the 2-D texel block covered by one cache line.
struct TileShape {
  unsigned width = 4;   ///< Texels in x.
  unsigned height = 4;  ///< Texels in y.
  unsigned TexelCount() const { return width * height; }
};

/// Near-square tile covering `line_bytes / element_bytes` texels, wider
/// than tall when not square (e.g. 64B line, 4B texel -> 4x4; 64B line,
/// 16B texel -> 2x2; 128B line, 4B texel -> 8x4).
TileShape TileFor(Bytes line_bytes, Bytes element_bytes);

/// Identifies one cache line of one texture resource.
struct LineId {
  std::uint64_t address = 0;  ///< Line-aligned byte address (global).
  std::uint32_t tile_row = 0; ///< Tile row (for 2-D cache set indexing).

  bool operator==(const LineId&) const = default;
};

/// Maps texel coordinates of a W x H texture at `base_address` to line
/// ids under the given tile shape.
class TiledLayout {
 public:
  TiledLayout(std::uint64_t base_address, unsigned width_texels,
              TileShape tile, Bytes line_bytes);

  LineId LineOf(unsigned x, unsigned y) const;

  /// Number of distinct lines a W-texel-wide texture occupies per tile row.
  unsigned TilesPerRow() const { return tiles_per_row_; }

 private:
  std::uint64_t base_;
  TileShape tile_;
  Bytes line_bytes_;
  unsigned tiles_per_row_;
};

/// Row-major linear address of element (x, y) in a W-wide global buffer.
std::uint64_t LinearAddress(std::uint64_t base, unsigned width,
                            unsigned x, unsigned y, Bytes element_bytes);

}  // namespace amdmb::mem
