// Per-SIMD texture fetch unit block (four 128-bit units per SIMD).
//
// Serving a TEX clause has two separable costs:
//  * service — the units stream data at `tex_bytes_per_unit_cycle` per
//    unit; this occupies the block and is what makes one float4 fetch
//    cost four float fetches (Fig. 11);
//  * latency — the requesting wavefront additionally waits for the clause
//    results: a pipelined hit latency per clause plus a per-instruction
//    stall whenever a fetch misses the texture cache. The wait does NOT
//    occupy the units, so other wavefronts hide it by clause switching.
// Cache-line fills go to the shared MemoryController and consume its
// bandwidth.
#pragma once

#include <span>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace amdmb::prof {
class Collector;
}  // namespace amdmb::prof

namespace amdmb::mem {

/// Timing outcome of one TEX clause for one wavefront.
struct TexClauseTiming {
  Cycles start = 0;        ///< When the units began serving the clause.
  Cycles service_end = 0;  ///< When the units became free again.
  Cycles complete = 0;     ///< When the wavefront may resume.
  unsigned miss_instrs = 0;
  unsigned line_hits = 0;
  unsigned line_misses = 0;
};

class TextureUnitBlock {
 public:
  TextureUnitBlock(const GpuArch& arch, TextureCache& cache,
                   MemoryController& controller);

  /// Serves one TEX clause. `lines_per_fetch[i]` holds the distinct cache
  /// lines touched by fetch instruction i for this wavefront's footprint;
  /// `active_threads` is the wavefront population (64 unless the domain
  /// edge truncated it).
  TexClauseTiming ServeClause(
      Cycles now, DataType type, unsigned active_threads,
      std::span<const std::vector<LineId>> lines_per_fetch);

  /// Cycles the units spent streaming data (service only).
  Cycles BusyCycles() const { return busy_; }

  /// Service cycles for one fetch instruction of the given shape.
  Cycles ServicePerFetch(DataType type, unsigned active_threads) const;

  /// Attaches the profiler's per-launch collector under this block's
  /// SIMD id (nullptr detaches). Pure observation.
  void SetCollector(prof::Collector* collector, unsigned simd) {
    collector_ = collector;
    simd_ = simd;
  }

 private:
  const GpuArch* arch_;
  TextureCache* cache_;
  MemoryController* controller_;
  Cycles free_at_ = 0;
  Cycles busy_ = 0;
  std::vector<std::uint64_t> fill_addrs_;  // scratch, reused across clauses
  prof::Collector* collector_ = nullptr;
  unsigned simd_ = 0;
};

}  // namespace amdmb::mem
