#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"
#include "prof/collector.hpp"

namespace amdmb::mem {

MemoryController::MemoryController(const GpuArch& arch) : arch_(&arch) {
  Require(arch.dram.banks > 0 && arch.dram.row_bytes > 0,
          "MemoryController: bank/row geometry must be positive");
  open_rows_.assign(arch.dram.banks, ~0ull);
}

void MemoryController::Reset() {
  free_at_ = 0;
  std::fill(open_rows_.begin(), open_rows_.end(), ~0ull);
  stats_ = DramStats{};
}

Cycles MemoryController::RowPenalty(std::span<const std::uint64_t> addrs) {
  Cycles penalty = 0;
  for (std::uint64_t addr : addrs) {
    const std::uint64_t row = addr / arch_->dram.row_bytes;
    const auto bank = static_cast<std::size_t>(row % arch_->dram.banks);
    if (open_rows_[bank] != row) {
      open_rows_[bank] = row;
      penalty += arch_->dram.row_switch_cycles;
      ++stats_.row_switches;
      if (collector_ != nullptr) {
        collector_->OnRowSwitch(static_cast<unsigned>(bank));
      }
    }
  }
  return penalty;
}

BatchResult MemoryController::Serve(Cycles now, double bytes_per_cycle,
                                    Cycles overhead, Bytes bytes,
                                    Cycles extra, prof::DramOp op) {
  Check(bytes_per_cycle > 0.0, "MemoryController: zero bandwidth");
  const auto transfer = static_cast<Cycles>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle));
  const Cycles start = std::max(now, free_at_);
  const Cycles cost = overhead + transfer + extra;
  free_at_ = start + cost;
  stats_.busy_cycles += cost;
  ++stats_.batches;
  if (collector_ != nullptr) {
    collector_->OnDramBatch(op, /*queue=*/start - now, transfer, cost,
                            bytes);
  }
  return BatchResult{start, free_at_};
}

BatchResult MemoryController::FillLines(
    Cycles now, std::span<const std::uint64_t> line_addrs, Bytes line_bytes) {
  if (line_addrs.empty()) return BatchResult{now, now};
  const Cycles penalty = RowPenalty(line_addrs);
  const Bytes bytes = line_addrs.size() * line_bytes;
  stats_.read_bytes += bytes;
  const BatchResult r = Serve(now, arch_->dram.fill_bytes_per_cycle,
                              /*overhead=*/0, bytes, penalty,
                              prof::DramOp::kFill);
  stats_.fill_busy_cycles += r.end - r.start;
  return r;
}

BatchResult MemoryController::GlobalRead(Cycles now, std::uint64_t addr,
                                         Bytes bytes) {
  (void)addr;  // Coalesced wavefront reads burst; no per-row modelling.
  stats_.read_bytes += bytes;
  return Serve(now, arch_->dram.read_bytes_per_cycle,
               arch_->global_read_instr_overhead, bytes, /*extra=*/0,
               prof::DramOp::kRead);
}

BatchResult MemoryController::GlobalWrite(Cycles now, std::uint64_t addr,
                                          Bytes bytes) {
  (void)addr;
  stats_.write_bytes += bytes;
  return Serve(now, arch_->dram.write_bytes_per_cycle,
               arch_->global_write_instr_overhead, bytes, /*extra=*/0,
               prof::DramOp::kWrite);
}

BatchResult MemoryController::StreamStore(Cycles now, std::uint64_t addr,
                                          Bytes bytes) {
  (void)addr;
  stats_.write_bytes += bytes;
  return Serve(now, arch_->stream_store_bytes_per_cycle,
               arch_->stream_store_instr_overhead, bytes, /*extra=*/0,
               prof::DramOp::kStream);
}

}  // namespace amdmb::mem
