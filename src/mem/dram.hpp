// Shared off-chip memory controller.
//
// One controller serves the whole GPU: texture-cache line fills, uncached
// global reads, global writes, and streaming (color-buffer) stores. Each
// request batch (one wavefront-instruction's worth of traffic) occupies
// the controller for `overhead + bytes / bandwidth` cycles; line fills
// additionally pay a row-activate penalty whenever they land in a DRAM
// bank whose open row differs — which is how interleaving many wavefront
// streams degrades effective bandwidth at high occupancy (the effect the
// paper sees in Figs. 16/17).
#pragma once

#include <cstdint>
#include <span>

#include "arch/gpu_arch.hpp"
#include "common/types.hpp"

namespace amdmb::prof {
class Collector;
enum class DramOp : unsigned;
}  // namespace amdmb::prof

namespace amdmb::mem {

/// Timing of one served batch.
struct BatchResult {
  Cycles start = 0;  ///< When the controller began the batch.
  Cycles end = 0;    ///< When the last byte transferred.
};

struct DramStats {
  Bytes read_bytes = 0;
  Bytes write_bytes = 0;
  std::uint64_t row_switches = 0;
  std::uint64_t batches = 0;
  Cycles busy_cycles = 0;
  /// Share of busy_cycles spent filling texture-cache lines (the rest is
  /// uncached global reads/writes and streaming stores).
  Cycles fill_busy_cycles = 0;

  bool operator==(const DramStats&) const = default;
};

class MemoryController {
 public:
  explicit MemoryController(const GpuArch& arch);

  /// Fills texture-cache lines at the given line addresses (one batch).
  BatchResult FillLines(Cycles now, std::span<const std::uint64_t> line_addrs,
                        Bytes line_bytes);

  /// Uncached global read of `bytes` starting near `addr` (one wavefront
  /// instruction, already coalesced). Completion excludes the read
  /// latency, which the caller adds.
  BatchResult GlobalRead(Cycles now, std::uint64_t addr, Bytes bytes);

  /// Uncached global write (paper Fig. 14: constant per-32-bit-element
  /// rate, so cost scales with bytes).
  BatchResult GlobalWrite(Cycles now, std::uint64_t addr, Bytes bytes);

  /// Streaming store through the color-buffer back-ends: burst-combined,
  /// near-peak bandwidth with a small per-instruction overhead.
  BatchResult StreamStore(Cycles now, std::uint64_t addr, Bytes bytes);

  /// Earliest cycle at which a new batch could start.
  Cycles FreeAt() const { return free_at_; }

  const DramStats& Stats() const { return stats_; }
  void Reset();

  /// Attaches the profiler's per-launch collector (nullptr detaches).
  /// Pure observation: batch timing and DramStats are identical with or
  /// without one attached.
  void SetCollector(prof::Collector* collector) { collector_ = collector; }

 private:
  BatchResult Serve(Cycles now, double bytes_per_cycle, Cycles overhead,
                    Bytes bytes, Cycles extra, prof::DramOp op);
  Cycles RowPenalty(std::span<const std::uint64_t> addrs);

  const GpuArch* arch_;
  Cycles free_at_ = 0;
  std::vector<std::uint64_t> open_rows_;
  DramStats stats_;
  prof::Collector* collector_ = nullptr;
};

}  // namespace amdmb::mem
