// Set-associative texture cache with 2-D set indexing.
//
// The paper observes (Sec. IV-A) that the texture cache "is two
// dimensions, so when using a 64x1 block size (a one dimension block
// size) only half the cache is used". We model that by splitting the
// sets into two groups selected by the low bit of the texel *tile row*:
// an access pattern confined to one tile row at a time can only ever
// index half the sets, while 2-D patterns (the pixel-shader rasterizer,
// 4x16 compute blocks) spread over both groups.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/tiling.hpp"

namespace amdmb::prof {
class Collector;
}  // namespace amdmb::prof

namespace amdmb::mem {

struct CacheConfig {
  Bytes size_bytes = 160 * 1024;
  Bytes line_bytes = 64;
  unsigned associativity = 8;
  bool two_d_index = true;  ///< Ablation switch for the 2-D set split.
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double HitRate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  bool operator==(const CacheStats&) const = default;
};

/// LRU set-associative cache over line ids. Probe() inserts on miss and
/// reports whether the line was already resident.
class TextureCache {
 public:
  explicit TextureCache(const CacheConfig& config);

  /// True on hit. On miss the line is filled (possibly evicting LRU).
  bool Probe(const LineId& line);

  void Reset();

  const CacheStats& Stats() const { return stats_; }
  unsigned SetCount() const { return set_count_; }

  /// Attaches the profiler's per-launch collector (nullptr detaches).
  /// Pure observation: Probe's outcome and the cache state are
  /// identical with or without one attached.
  void SetCollector(prof::Collector* collector) { collector_ = collector; }

 private:
  unsigned SetIndex(std::uint64_t line_number, const LineId& line) const;
  /// address -> line number; a shift when the line size is a power of
  /// two (it always is on real parts), so the per-probe hot path never
  /// divides.
  std::uint64_t LineNumber(std::uint64_t address) const {
    return line_shift_ >= 0 ? address >> line_shift_
                            : address / config_.line_bytes;
  }

  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
  };

  CacheConfig config_;
  unsigned set_count_;
  int line_shift_ = -1;  ///< log2(line_bytes), or -1 if not a power of two.
  std::vector<Way> ways_;  ///< set-major, associativity entries per set.
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  prof::Collector* collector_ = nullptr;
};

}  // namespace amdmb::mem
