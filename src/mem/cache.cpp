#include "mem/cache.hpp"

#include "common/status.hpp"
#include "prof/collector.hpp"

namespace amdmb::mem {

TextureCache::TextureCache(const CacheConfig& config) : config_(config) {
  Require(config.line_bytes > 0 && config.associativity > 0,
          "TextureCache: line size and associativity must be positive");
  const auto lines = config.size_bytes / config.line_bytes;
  Require(lines >= config.associativity,
          "TextureCache: capacity below one full set");
  set_count_ = static_cast<unsigned>(lines / config.associativity);
  Require(!config.two_d_index || (set_count_ >= 2 && set_count_ % 2 == 0),
          "TextureCache: 2-D indexing needs an even set count");
  if ((config.line_bytes & (config.line_bytes - 1)) == 0) {
    int shift = 0;
    while ((Bytes{1} << shift) < config.line_bytes) ++shift;
    line_shift_ = shift;
  }
  ways_.assign(static_cast<std::size_t>(set_count_) * config.associativity,
               Way{});
}

unsigned TextureCache::SetIndex(std::uint64_t line_number,
                                const LineId& line) const {
  if (!config_.two_d_index) {
    return static_cast<unsigned>(line_number % set_count_);
  }
  // Two set groups selected by the tile-row parity; the line address
  // indexes within a group. A pattern that stays on one tile row (64x1
  // blocks) touches only one group => half the effective capacity.
  const unsigned group = line.tile_row & 1u;
  const unsigned half = set_count_ / 2;
  return static_cast<unsigned>(line_number % half) + group * half;
}

bool TextureCache::Probe(const LineId& line) {
  const std::uint64_t tag = LineNumber(line.address);
  const unsigned set = SetIndex(tag, line);
  Way* begin = &ways_[static_cast<std::size_t>(set) * config_.associativity];
  Way* end = begin + config_.associativity;
  ++tick_;
  Way* victim = begin;
  for (Way* w = begin; w != end; ++w) {
    if (w->tag == tag) {
      w->lru = tick_;
      ++stats_.hits;
      if (collector_ != nullptr) collector_->OnCacheProbe(set, true);
      return true;
    }
    if (w->lru < victim->lru) victim = w;
  }
  victim->tag = tag;
  victim->lru = tick_;
  ++stats_.misses;
  if (collector_ != nullptr) collector_->OnCacheProbe(set, false);
  return false;
}

void TextureCache::Reset() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  stats_ = CacheStats{};
}

}  // namespace amdmb::mem
