#include "mem/tiling.hpp"

#include "common/status.hpp"

namespace amdmb::mem {

TileShape TileFor(Bytes line_bytes, Bytes element_bytes) {
  Require(line_bytes % element_bytes == 0 && line_bytes >= element_bytes,
          "TileFor: line size must be a multiple of the element size");
  const auto texels = static_cast<unsigned>(line_bytes / element_bytes);
  // Largest power-of-two height with height <= width and width*height ==
  // texels (texel counts are powers of two for 4/16-byte elements and
  // power-of-two lines).
  unsigned height = 1;
  while ((height * 2) * (height * 2) <= texels) height *= 2;
  if (height * height > texels) height /= 2;
  const unsigned width = texels / height;
  Check(width * height == texels, "TileFor: non power-of-two texel count");
  return TileShape{width, height};
}

TiledLayout::TiledLayout(std::uint64_t base_address, unsigned width_texels,
                         TileShape tile, Bytes line_bytes)
    : base_(base_address),
      tile_(tile),
      line_bytes_(line_bytes),
      tiles_per_row_((width_texels + tile.width - 1) / tile.width) {
  Require(tile.width > 0 && tile.height > 0, "TiledLayout: empty tile");
}

namespace {

/// Interleaves the low 16 bits of a coordinate with zeros (Morton order).
constexpr std::uint64_t SpreadBits(std::uint64_t v) {
  v &= 0xFFFFull;
  v = (v | (v << 8)) & 0x00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0Full;
  v = (v | (v << 2)) & 0x33333333ull;
  v = (v | (v << 1)) & 0x55555555ull;
  return v;
}

}  // namespace

LineId TiledLayout::LineOf(unsigned x, unsigned y) const {
  const unsigned tile_col = x / tile_.width;
  const unsigned tile_row = y / tile_.height;
  // Tiles are laid out in Morton (Z-) order, the standard GPU texture
  // tiling: 2-D locality in texel space maps to 1-D locality in the
  // address space, which keeps a wavefront's line fills within few DRAM
  // rows regardless of its block shape.
  const std::uint64_t tile_index =
      SpreadBits(tile_col) | (SpreadBits(tile_row) << 1);
  return LineId{base_ + tile_index * line_bytes_, tile_row};
}

std::uint64_t LinearAddress(std::uint64_t base, unsigned width, unsigned x,
                            unsigned y, Bytes element_bytes) {
  return base + (static_cast<std::uint64_t>(y) * width + x) * element_bytes;
}

}  // namespace amdmb::mem
