// amdmb — public umbrella header.
//
// A reproduction of "A Micro-benchmark Suite for AMD GPUs" (Taylor & Li,
// ICPP Workshops 2010): an IL->clause-VLIW compiler, a timing simulator
// of the RV670/RV770/RV870 execution model, a CAL-style runtime, and the
// paper's micro-benchmark suite on top.
//
// Typical use (see examples/quickstart.cpp):
//   cal::Device device = cal::Device::Open("4870");
//   cal::Context ctx(device);
//   il::Kernel kernel = suite::GenerateGeneric({...});
//   cal::Module module = ctx.Compile(kernel);
//   cal::RunEvent ev = ctx.Run(module, {.domain = {1024, 1024}});
//   // ev.seconds, ev.stats.bottleneck, ...
#pragma once

#include "arch/gpu_arch.hpp"      // IWYU pragma: export
#include "arch/occupancy.hpp"     // IWYU pragma: export
#include "cal/cal.hpp"            // IWYU pragma: export
#include "cal/interp.hpp"         // IWYU pragma: export
#include "common/stats.hpp"       // IWYU pragma: export
#include "common/status.hpp"      // IWYU pragma: export
#include "common/table.hpp"       // IWYU pragma: export
#include "common/types.hpp"       // IWYU pragma: export
#include "compiler/binary.hpp"    // IWYU pragma: export
#include "compiler/compiler.hpp"  // IWYU pragma: export
#include "compiler/ska.hpp"       // IWYU pragma: export
#include "il/builder.hpp"         // IWYU pragma: export
#include "il/parser.hpp"          // IWYU pragma: export
#include "il/printer.hpp"         // IWYU pragma: export
#include "il/verifier.hpp"        // IWYU pragma: export
#include "report/record.hpp"      // IWYU pragma: export
#include "report/series.hpp"      // IWYU pragma: export
#include "sim/gpu.hpp"            // IWYU pragma: export
#include "sim/trace.hpp"          // IWYU pragma: export
#include "suite/suite.hpp"        // IWYU pragma: export
