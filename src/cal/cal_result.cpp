#include "cal/cal_result.hpp"

namespace amdmb::cal {

namespace {

std::string RenderWhat(CalResult code, const std::string& stage,
                       const std::string& point, unsigned attempt,
                       const std::string& detail) {
  std::string what = "CAL error ";
  what += ToString(code);
  what += " at stage '" + stage + "'";
  if (!point.empty()) what += ", point '" + point + "'";
  what += ", attempt " + std::to_string(attempt);
  if (!detail.empty()) what += ": " + detail;
  return what;
}

}  // namespace

std::string_view ToString(CalResult result) {
  switch (result) {
    case CalResult::kCalOk: return "kCalOk";
    case CalResult::kCalCompileFailed: return "kCalCompileFailed";
    case CalResult::kCalLaunchFailed: return "kCalLaunchFailed";
    case CalResult::kCalTimeout: return "kCalTimeout";
    case CalResult::kCalReadbackFailed: return "kCalReadbackFailed";
  }
  throw SimError("ToString(CalResult): unknown value");
}

CalError::CalError(CalResult code, std::string stage, std::string point,
                   unsigned attempt, const std::string& detail)
    : TransientError(RenderWhat(code, stage, point, attempt, detail)),
      code_(code),
      stage_(std::move(stage)),
      point_(std::move(point)),
      attempt_(attempt) {}

void CheckInjectedFault(fault::FaultSite site, std::string_view point,
                        unsigned attempt) {
  const fault::FaultInjector* injector = fault::GlobalInjector();
  if (injector == nullptr) return;
  std::string key(point);
  key += '#';
  key += std::to_string(attempt);
  if (!injector->ShouldFail(site, key)) return;
  switch (site) {
    case fault::FaultSite::kCompile:
      throw CalError(CalResult::kCalCompileFailed, "compile",
                     std::string(point), attempt, "injected compile fault");
    case fault::FaultSite::kLaunch:
      throw CalError(CalResult::kCalLaunchFailed, "launch",
                     std::string(point), attempt, "injected launch fault");
    case fault::FaultSite::kHang:
      throw CalError(CalResult::kCalTimeout, "watchdog", std::string(point),
                     attempt,
                     "injected hang resolved by the watchdog cycle budget");
    case fault::FaultSite::kReadback:
      throw CalError(CalResult::kCalReadbackFailed, "readback",
                     std::string(point), attempt, "injected readback fault");
    case fault::FaultSite::kWorkerCrash:
    case fault::FaultSite::kWorkerHang:
      // Fleet-level sites: consulted by serve workers on heartbeats,
      // never at a CAL boundary.
      throw SimError("CheckInjectedFault: worker fault site at CAL layer");
  }
  throw SimError("CheckInjectedFault: unknown fault site");
}

}  // namespace amdmb::cal
