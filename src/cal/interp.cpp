#include "cal/interp.hpp"

#include <cmath>
#include <optional>

#include "common/status.hpp"

namespace amdmb::cal {

namespace {

Vec4 Splat(float v) { return {v, v, v, v}; }

Vec4 ApplyOp(il::Opcode op, const std::vector<Vec4>& srcs) {
  auto bin = [&](auto f) {
    Vec4 r;
    for (int c = 0; c < 4; ++c) r[c] = f(srcs[0][c], srcs[1][c]);
    return r;
  };
  switch (op) {
    case il::Opcode::kAdd:
      return bin([](float a, float b) { return a + b; });
    case il::Opcode::kSub:
      return bin([](float a, float b) { return a - b; });
    case il::Opcode::kMul:
      return bin([](float a, float b) { return a * b; });
    case il::Opcode::kMad: {
      Vec4 r;
      for (int c = 0; c < 4; ++c) r[c] = srcs[0][c] * srcs[1][c] + srcs[2][c];
      return r;
    }
    case il::Opcode::kMov:
      return srcs[0];
    case il::Opcode::kRcp: {
      Vec4 r;
      for (int c = 0; c < 4; ++c) r[c] = 1.0f / srcs[0][c];
      return r;
    }
    case il::Opcode::kSin: {
      Vec4 r;
      for (int c = 0; c < 4; ++c) r[c] = std::sin(srcs[0][c]);
      return r;
    }
    default:
      throw SimError("ApplyOp: not an ALU opcode");
  }
}

Vec4 ConstAt(const std::vector<Vec4>& constants, unsigned slot) {
  Check(slot < constants.size(), "interpreter: constant slot out of range");
  return constants[slot];
}

}  // namespace

Vec4 DefaultInputPattern(unsigned resource, unsigned x, unsigned y) {
  const auto base = static_cast<float>(
      (resource * 31u + x * 7u + y * 13u) % 97u);
  return {base, base + 1.0f, base + 2.0f, base + 3.0f};
}

FuncResult RunIl(const il::Kernel& kernel, const Domain& domain,
                 const InputFn& input, const std::vector<Vec4>& constants) {
  FuncResult result;
  result.outputs.assign(kernel.sig.outputs,
                        OutputBuffer(domain.ThreadCount(), Splat(0.0f)));
  unsigned max_reg = 0;
  for (const il::Inst& inst : kernel.code) {
    if (il::IsFetch(inst.op) || il::IsAlu(inst.op)) {
      max_reg = std::max(max_reg, inst.dst + 1);
    }
  }
  std::vector<Vec4> regs(max_reg);
  for (unsigned y = 0; y < domain.height; ++y) {
    for (unsigned x = 0; x < domain.width; ++x) {
      const std::size_t elem = static_cast<std::size_t>(y) * domain.width + x;
      for (const il::Inst& inst : kernel.code) {
        if (il::IsMeta(inst.op)) continue;
        if (il::IsFetch(inst.op)) {
          regs[inst.dst] = input(inst.resource, x, y);
        } else if (il::IsWrite(inst.op)) {
          Check(inst.srcs.front().kind == il::OperandKind::kVirtualReg,
                "RunIl: write source must be a register");
          result.outputs[inst.resource][elem] = regs[inst.srcs.front().index];
        } else {
          std::vector<Vec4> srcs;
          srcs.reserve(inst.srcs.size());
          for (const il::Operand& src : inst.srcs) {
            switch (src.kind) {
              case il::OperandKind::kVirtualReg:
                srcs.push_back(regs[src.index]);
                break;
              case il::OperandKind::kConstBuf:
                srcs.push_back(ConstAt(constants, src.index));
                break;
              case il::OperandKind::kLiteral:
                srcs.push_back(Splat(src.literal));
                break;
            }
          }
          regs[inst.dst] = ApplyOp(inst.op, srcs);
        }
      }
    }
  }
  return result;
}

FuncResult RunIsa(const isa::Program& program, const Domain& domain,
                  const InputFn& input, const std::vector<Vec4>& constants) {
  FuncResult result;
  result.outputs.assign(program.sig.outputs,
                        OutputBuffer(domain.ThreadCount(), Splat(0.0f)));

  std::vector<Vec4> gprs(std::max(1u, program.gpr_count));
  // Clause temporaries and PV lanes carry validity so that reads of
  // values that should not survive (across clauses / bundles) fault.
  std::array<std::optional<Vec4>, 8> temps;
  std::array<std::optional<Vec4>, 5> pv_prev;

  auto read = [&](const isa::PhysOperand& src) -> Vec4 {
    switch (src.loc) {
      case isa::Loc::kGpr:
        Check(src.index < gprs.size(), "RunIsa: GPR index out of range");
        return gprs[src.index];
      case isa::Loc::kPv:
        Check(src.index < pv_prev.size() && pv_prev[src.index].has_value(),
              "RunIsa: PV read without a previous-bundle value");
        return *pv_prev[src.index];
      case isa::Loc::kTemp:
        Check(src.index < temps.size() && temps[src.index].has_value(),
              "RunIsa: clause-temp read outside its clause");
        return *temps[src.index];
      case isa::Loc::kConst:
        return ConstAt(constants, src.index);
      case isa::Loc::kLiteral:
        return Splat(src.literal);
    }
    throw SimError("RunIsa: unknown operand location");
  };

  for (unsigned y = 0; y < domain.height; ++y) {
    for (unsigned x = 0; x < domain.width; ++x) {
      const std::size_t elem = static_cast<std::size_t>(y) * domain.width + x;
      for (const isa::Clause& clause : program.clauses) {
        // Clause boundary: temporaries and PV do not survive.
        temps.fill(std::nullopt);
        pv_prev.fill(std::nullopt);
        switch (clause.type) {
          case isa::ClauseType::kTex:
          case isa::ClauseType::kMemRead:
            for (const isa::FetchInst& f : clause.fetches) {
              Check(f.dst.loc == isa::Loc::kGpr,
                    "RunIsa: fetch destination must be a GPR");
              gprs[f.dst.index] = input(f.resource, x, y);
            }
            break;
          case isa::ClauseType::kAlu:
            for (const isa::Bundle& bundle : clause.bundles) {
              std::array<std::optional<Vec4>, 5> pv_next;
              for (const isa::MicroOp& op : bundle.ops) {
                std::vector<Vec4> srcs;
                srcs.reserve(op.srcs.size());
                for (const isa::PhysOperand& s : op.srcs) srcs.push_back(read(s));
                const Vec4 value = ApplyOp(op.op, srcs);
                switch (op.dst.loc) {
                  case isa::Loc::kGpr:
                    gprs[op.dst.index] = value;
                    break;
                  case isa::Loc::kTemp:
                    Check(op.dst.index < temps.size(),
                          "RunIsa: temp index out of range");
                    temps[op.dst.index] = value;
                    break;
                  case isa::Loc::kPv:
                    break;  // Captured below via pv_next.
                  default:
                    throw SimError("RunIsa: invalid ALU destination");
                }
                Check(op.lane < pv_next.size(), "RunIsa: bad lane");
                pv_next[op.lane] = value;
              }
              pv_prev = pv_next;
            }
            break;
          case isa::ClauseType::kExport:
          case isa::ClauseType::kMemWrite:
            for (const isa::WriteInst& w : clause.writes) {
              Check(w.src.loc == isa::Loc::kGpr,
                    "RunIsa: write source must be a GPR");
              result.outputs[w.resource][elem] = gprs[w.src.index];
            }
            break;
        }
      }
    }
  }
  return result;
}

}  // namespace amdmb::cal
