#include "cal/cal.hpp"

namespace amdmb::cal {

Device Device::Open(std::string_view name) {
  return Device(ArchByName(name));
}

Context::Context(const Device& device)
    : gpu_(std::make_unique<sim::Gpu>(device.Info())) {}

Module Context::Compile(const il::Kernel& kernel) const {
  isa::Program program = compiler::Compile(kernel, gpu_->Arch());
  const compiler::SkaReport ska = compiler::Analyze(program, gpu_->Arch());
  return Module(std::move(program), ska);
}

RunEvent Context::Run(const Module& module, const sim::LaunchConfig& config,
                      sim::Trace* trace) {
  RunEvent event;
  event.stats = gpu_->Execute(module.Program(), config, trace);
  event.seconds = event.stats.seconds;
  return event;
}

}  // namespace amdmb::cal
