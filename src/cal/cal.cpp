#include "cal/cal.hpp"

#include "prof/collector.hpp"

namespace amdmb::cal {

Device Device::Open(std::string_view name) {
  return Device(ArchByName(name));
}

Context::Context(const Device& device)
    : gpu_(std::make_unique<sim::Gpu>(device.Info())) {}

Module Context::Compile(const il::Kernel& kernel,
                        const CallContext& call) const {
  const std::string_view point =
      call.point.empty() ? std::string_view(kernel.name) : call.point;
  CheckInjectedFault(fault::FaultSite::kCompile, point, call.attempt);
  isa::Program program = compiler::Compile(kernel, gpu_->Arch());
  const compiler::SkaReport ska = compiler::Analyze(program, gpu_->Arch());
  return Module(std::move(program), ska);
}

RunEvent Context::Run(const Module& module, const sim::LaunchConfig& config,
                      sim::Trace* trace, const CallContext& call) {
  const std::string_view point = call.point;
  CheckInjectedFault(fault::FaultSite::kLaunch, point, call.attempt);
  CheckInjectedFault(fault::FaultSite::kHang, point, call.attempt);
  sim::LaunchConfig bounded = config;
  if (bounded.watchdog_cycles == 0) {
    bounded.watchdog_cycles = sim::DefaultWatchdogCycles();
  }
  // A fresh collector per call: a retried attempt starts from zeroed
  // counters, so retries can never double-count.
  std::unique_ptr<prof::Collector> collector;
  if (bounded.profile || prof::ProfilingEnabled()) {
    collector = std::make_unique<prof::Collector>(sim::DefaultTraceCapacity());
  }
  RunEvent event;
  try {
    event.stats =
        gpu_->Execute(module.Program(), bounded, trace, collector.get());
  } catch (const sim::WatchdogTimeout& e) {
    throw CalError(CalResult::kCalTimeout, "launch", std::string(point),
                   call.attempt, e.what());
  }
  CheckInjectedFault(fault::FaultSite::kReadback, point, call.attempt);
  event.seconds = event.stats.seconds;
  if (collector != nullptr) {
    prof::Profile profile = collector->Take();
    profile.kernel = module.Program().name;
    profile.point = point.empty() ? module.Program().name
                                  : std::string(point);
    profile.arch = gpu_->Arch().name;
    profile.mode = ToString(bounded.mode);
    profile.type = ToString(module.Program().sig.type);
    profile.attempt = call.attempt;
    event.profile =
        std::make_shared<const prof::Profile>(std::move(profile));
  }
  return event;
}

}  // namespace amdmb::cal
