// Functional execution of kernels on the CPU.
//
// Two interpreters with identical observable semantics:
//  * RunIl  — executes the IL program directly over virtual registers;
//  * RunIsa — executes the compiled clause/VLIW program with physical
//    GPRs, PV previous-vector forwarding, and clause-temporary registers
//    (which are invalidated at clause boundaries, as on hardware).
// Comparing their outputs validates the whole compiler pipeline: clause
// formation, VLIW packing, PV lane resolution, and register allocation.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "compiler/isa.hpp"
#include "il/il.hpp"

namespace amdmb::cal {

using Vec4 = std::array<float, 4>;

/// Value of input `resource` at domain element (x, y).
using InputFn = std::function<Vec4(unsigned resource, unsigned x, unsigned y)>;

/// Deterministic small-integer default pattern (sums stay exact in
/// float arithmetic through long add chains).
Vec4 DefaultInputPattern(unsigned resource, unsigned x, unsigned y);

/// One output stream: row-major Vec4 per domain element.
using OutputBuffer = std::vector<Vec4>;

struct FuncResult {
  std::vector<OutputBuffer> outputs;  ///< One buffer per declared output.
};

FuncResult RunIl(const il::Kernel& kernel, const Domain& domain,
                 const InputFn& input = DefaultInputPattern,
                 const std::vector<Vec4>& constants = {});

FuncResult RunIsa(const isa::Program& program, const Domain& domain,
                  const InputFn& input = DefaultInputPattern,
                  const std::vector<Vec4>& constants = {});

}  // namespace amdmb::cal
