// CAL-style runtime facade.
//
// The paper's suite is written against AMD's Compute Abstraction Layer:
// open a device, create a context, compile an IL kernel to a module,
// bind resources, run over a domain, and read a timer event. This module
// reproduces that workflow on top of the simulator so the suite and the
// examples read like the original StreamSDK code — including its failure
// modes: every boundary consults the deterministic fault injector
// (src/fault) and reports failures as CalResult codes via CalError, and
// a launch is bounded by a watchdog cycle budget so a hung simulation
// surfaces as kCalTimeout instead of spinning forever.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "arch/gpu_arch.hpp"
#include "cal/cal_result.hpp"
#include "compiler/compiler.hpp"
#include "compiler/ska.hpp"
#include "il/il.hpp"
#include "prof/profile.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"

namespace amdmb::cal {

/// Identifies one runtime call for fault injection and error reporting:
/// which sweep point it serves and which attempt this is (the retry
/// layer increments `attempt`, which re-rolls the injected-fault
/// decision deterministically).
struct CallContext {
  std::string point;     ///< Empty => derived from the kernel name.
  unsigned attempt = 1;  ///< 1-based attempt counter.
};

/// An opened GPU (one of the three generations in Table I).
class Device {
 public:
  explicit Device(GpuArch arch) : arch_(std::move(arch)) {}

  /// Opens by chip or card name ("RV770", "4870", ...).
  static Device Open(std::string_view name);

  const GpuArch& Info() const { return arch_; }
  bool SupportsComputeShader() const { return arch_.supports_compute; }

 private:
  GpuArch arch_;
};

/// A compiled kernel plus its static analysis.
class Module {
 public:
  Module(isa::Program program, compiler::SkaReport ska)
      : program_(std::move(program)), ska_(ska) {}

  const isa::Program& Program() const { return program_; }
  const compiler::SkaReport& Ska() const { return ska_; }
  std::string Disassemble() const { return isa::Disassemble(program_); }

 private:
  isa::Program program_;
  compiler::SkaReport ska_;
};

/// Result of a kernel run: the timer value the paper reports (seconds for
/// all repetitions) plus the simulator's dynamic counters — and, when the
/// launch was profiled (LaunchConfig::profile or AMDMB_PROF), the
/// hardware-counter profile read back alongside the timer.
struct RunEvent {
  double seconds = 0.0;
  sim::KernelStats stats;
  /// Null unless the launch was profiled. Shared (not copied) because
  /// the profile carries the capped event stream.
  std::shared_ptr<const prof::Profile> profile;
};

class Context {
 public:
  explicit Context(const Device& device);

  /// Compiles IL through the CAL compiler (verification included).
  /// Consults the fault injector at the compile boundary; an injected
  /// fault throws CalError{kCalCompileFailed}.
  Module Compile(const il::Kernel& kernel, const CallContext& call = {}) const;

  /// Launches the module over the configured domain and reads the timer.
  /// When `trace` is non-null, every executed clause is recorded. When
  /// profiling is requested (config.profile or AMDMB_PROF) a
  /// prof::Collector rides the launch and RunEvent::profile is filled;
  /// a fresh collector per call means retried points never double-count.
  /// Consults the fault injector at the launch / hang / readback
  /// boundaries, and bounds the launch with `config.watchdog_cycles`
  /// (falling back to AMDMB_WATCHDOG): failures surface as CalError with
  /// the matching CalResult (a hung launch as kCalTimeout).
  RunEvent Run(const Module& module, const sim::LaunchConfig& config,
               sim::Trace* trace = nullptr, const CallContext& call = {});

  const GpuArch& Arch() const { return gpu_->Arch(); }

 private:
  std::unique_ptr<sim::Gpu> gpu_;
};

}  // namespace amdmb::cal
