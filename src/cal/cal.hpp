// CAL-style runtime facade.
//
// The paper's suite is written against AMD's Compute Abstraction Layer:
// open a device, create a context, compile an IL kernel to a module,
// bind resources, run over a domain, and read a timer event. This module
// reproduces that workflow on top of the simulator so the suite and the
// examples read like the original StreamSDK code.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "arch/gpu_arch.hpp"
#include "compiler/compiler.hpp"
#include "compiler/ska.hpp"
#include "il/il.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"

namespace amdmb::cal {

/// An opened GPU (one of the three generations in Table I).
class Device {
 public:
  explicit Device(GpuArch arch) : arch_(std::move(arch)) {}

  /// Opens by chip or card name ("RV770", "4870", ...).
  static Device Open(std::string_view name);

  const GpuArch& Info() const { return arch_; }
  bool SupportsComputeShader() const { return arch_.supports_compute; }

 private:
  GpuArch arch_;
};

/// A compiled kernel plus its static analysis.
class Module {
 public:
  Module(isa::Program program, compiler::SkaReport ska)
      : program_(std::move(program)), ska_(ska) {}

  const isa::Program& Program() const { return program_; }
  const compiler::SkaReport& Ska() const { return ska_; }
  std::string Disassemble() const { return isa::Disassemble(program_); }

 private:
  isa::Program program_;
  compiler::SkaReport ska_;
};

/// Result of a kernel run: the timer value the paper reports (seconds for
/// all repetitions) plus the simulator's dynamic counters.
struct RunEvent {
  double seconds = 0.0;
  sim::KernelStats stats;
};

class Context {
 public:
  explicit Context(const Device& device);

  /// Compiles IL through the CAL compiler (verification included).
  Module Compile(const il::Kernel& kernel) const;

  /// Launches the module over the configured domain and reads the timer.
  /// When `trace` is non-null, every executed clause is recorded.
  RunEvent Run(const Module& module, const sim::LaunchConfig& config,
               sim::Trace* trace = nullptr);

  const GpuArch& Arch() const { return gpu_->Arch(); }

 private:
  std::unique_ptr<sim::Gpu> gpu_;
};

}  // namespace amdmb::cal
