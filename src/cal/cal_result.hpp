// CAL-style result codes and the structured runtime error.
//
// The real CAL API reports failures as CALresult codes rather than
// crashing the host process. This module reproduces that contract for
// the look-alike runtime: every failure at a compile / launch /
// readback boundary carries a CalResult plus the failing stage, the
// sweep point, and the attempt number, so the executor's retry layer
// and the run report can reason about it. CalError derives from
// TransientError — these are exactly the failures worth retrying,
// unlike SimError invariants which fail fast.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "fault/fault.hpp"

namespace amdmb::cal {

/// CAL-style result code of a runtime operation.
enum class CalResult {
  kCalOk,
  kCalCompileFailed,   ///< IL -> ISA compilation failed.
  kCalLaunchFailed,    ///< Kernel launch failed transiently.
  kCalTimeout,         ///< Watchdog fired: the kernel hung past its budget.
  kCalReadbackFailed,  ///< Timer/counter readback failed.
};

std::string_view ToString(CalResult result);

/// Structured runtime failure: result code + failing stage + point +
/// attempt. Transient by definition — the executor may retry it.
class CalError : public TransientError {
 public:
  CalError(CalResult code, std::string stage, std::string point,
           unsigned attempt, const std::string& detail = {});

  CalResult Code() const { return code_; }
  const std::string& Stage() const { return stage_; }
  const std::string& Point() const { return point_; }
  unsigned Attempt() const { return attempt_; }

 private:
  CalResult code_;
  std::string stage_;
  std::string point_;
  unsigned attempt_;
};

/// Consults the global fault injector at one runtime boundary with the
/// deterministic key "<point>#<attempt>"; throws the matching CalError
/// when the fault fires (FaultSite::kHang maps to kCalTimeout — the
/// watchdog is what surfaces a hung kernel). No-op when no injector is
/// installed.
void CheckInjectedFault(fault::FaultSite site, std::string_view point,
                        unsigned attempt);

}  // namespace amdmb::cal
