// The one place the suite's version string lives.
//
// The build stamps `git describe` into version.cpp (AMDMB_GIT_DESCRIBE,
// set by CMake); every consumer — the BENCH json meta block, the
// amdmb_report / amdmb_prof CLIs, the amdmb_serve stats response —
// reads it from here so all outputs of one build agree on one string.
#pragma once

#include <string_view>

namespace amdmb {

/// The build's `git describe --always --dirty --tags`, or "unknown"
/// when the tree was built outside a git checkout.
std::string_view SuiteVersion();

}  // namespace amdmb
