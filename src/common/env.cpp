#include "common/env.hpp"

#include <charconv>
#include <cstdlib>

#include "common/status.hpp"

namespace amdmb::env {

namespace {

/// Absurdly-large worker counts are almost certainly typos (or integer
/// garbage), not intent; reject them instead of spawning thousands of
/// threads.
constexpr unsigned long kMaxThreads = 4096;

std::optional<std::string> NonEmpty(const char* v) {
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  return std::string(v);
}

}  // namespace

unsigned ParseThreadCount(std::string_view text) {
  unsigned long n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size(),
          "AMDMB_THREADS='" + std::string(text) +
              "': must be a positive integer");
  Require(n >= 1, "AMDMB_THREADS='" + std::string(text) +
                      "': needs at least one worker");
  Require(n <= kMaxThreads,
          "AMDMB_THREADS='" + std::string(text) + "': exceeds the cap of " +
              std::to_string(kMaxThreads) + " workers");
  return static_cast<unsigned>(n);
}

std::uint64_t ParseWatchdogCycles(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size(),
          "AMDMB_WATCHDOG='" + std::string(text) +
              "': must be a cycle count (non-negative integer)");
  return n;
}

std::size_t ParseTraceCapacity(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size() && n >= 1,
          "AMDMB_TRACE_CAP='" + std::string(text) +
              "': must be a positive event count");
  return static_cast<std::size_t>(n);
}

std::size_t ParseServeQueue(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size() && n <= 4096,
          "AMDMB_SERVE_QUEUE='" + std::string(text) +
              "': must be a queue depth in [0, 4096]");
  return static_cast<std::size_t>(n);
}

unsigned ParseServeInflight(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size() && n >= 1 &&
              n <= 64,
          "AMDMB_SERVE_INFLIGHT='" + std::string(text) +
              "': must be a concurrent-sweep bound in [1, 64]");
  return static_cast<unsigned>(n);
}

unsigned ParseWorkerCount(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size() && n <= 32,
          "AMDMB_WORKERS='" + std::string(text) +
              "': must be a worker-process count in [0, 32]");
  return static_cast<unsigned>(n);
}

std::uint64_t ParseDeadlineMs(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size(),
          "AMDMB_DEADLINE_MS='" + std::string(text) +
              "': must be a millisecond count (non-negative integer)");
  return n;
}

std::uint64_t ParseHeartbeatMs(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size() &&
              n >= 10 && n <= 60000,
          "AMDMB_HEARTBEAT_MS='" + std::string(text) +
              "': must be a heartbeat interval in [10, 60000] ms");
  return n;
}

unsigned ParseAdaptTol(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size() && n >= 1 &&
              n <= 64,
          "AMDMB_ADAPT_TOL='" + std::string(text) +
              "': must be a grid-step tolerance in [1, 64]");
  return static_cast<unsigned>(n);
}

std::uint64_t ParseAdaptBudget(std::string_view text) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  Require(ec == std::errc() && ptr == text.data() + text.size(),
          "AMDMB_ADAPT_BUDGET='" + std::string(text) +
              "': must be a point budget (non-negative integer; 0 = "
              "unlimited)");
  return n;
}

Options ParseFrom(const std::function<const char*(const char*)>& lookup) {
  Options options;
  if (const auto v = NonEmpty(lookup("AMDMB_QUICK"))) {
    options.quick = (*v)[0] != '0';
  }
  if (const auto v = NonEmpty(lookup("AMDMB_THREADS"))) {
    options.threads = ParseThreadCount(*v);
  }
  options.json_dir = NonEmpty(lookup("AMDMB_JSON_DIR"));
  options.dump_dir = NonEmpty(lookup("AMDMB_DUMP_DIR"));
  options.faults = NonEmpty(lookup("AMDMB_FAULTS"));
  options.retry = NonEmpty(lookup("AMDMB_RETRY"));
  if (const auto v = NonEmpty(lookup("AMDMB_WATCHDOG"))) {
    options.watchdog_cycles = ParseWatchdogCycles(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_PROF"))) {
    options.prof = (*v)[0] != '0';
  }
  options.trace_dir = NonEmpty(lookup("AMDMB_TRACE_DIR"));
  if (const auto v = NonEmpty(lookup("AMDMB_TRACE_CAP"))) {
    options.trace_capacity = ParseTraceCapacity(*v);
  }
  options.serve_socket = NonEmpty(lookup("AMDMB_SERVE_SOCKET"));
  if (const auto v = NonEmpty(lookup("AMDMB_SERVE_QUEUE"))) {
    options.serve_queue = ParseServeQueue(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_SERVE_INFLIGHT"))) {
    options.serve_inflight = ParseServeInflight(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_WORKERS"))) {
    options.workers = ParseWorkerCount(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_DEADLINE_MS"))) {
    options.deadline_ms = ParseDeadlineMs(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_HEARTBEAT_MS"))) {
    options.heartbeat_ms = ParseHeartbeatMs(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_ADAPT"))) {
    options.adapt = (*v)[0] != '0';
  }
  if (const auto v = NonEmpty(lookup("AMDMB_ADAPT_TOL"))) {
    options.adapt_tol = ParseAdaptTol(*v);
  }
  if (const auto v = NonEmpty(lookup("AMDMB_ADAPT_BUDGET"))) {
    options.adapt_budget = ParseAdaptBudget(*v);
  }
  return options;
}

const Options& Get() {
  static const Options options =
      ParseFrom([](const char* name) { return std::getenv(name); });
  return options;
}

}  // namespace amdmb::env
