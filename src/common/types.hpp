// Fundamental value types shared by every amdmb module.
#pragma once

#include <cstdint>
#include <string_view>

namespace amdmb {

/// Simulated GPU core cycles.
using Cycles = std::uint64_t;

/// Bytes of simulated storage or traffic.
using Bytes = std::uint64_t;

/// Element type of a kernel input/output stream.
///
/// The paper runs every micro-benchmark for both `float` and `float4`
/// (Sec. IV): vectorization changes the bytes moved per fetch/store but,
/// because the generated kernels are fully data-dependent chains, it does
/// not change the VLIW bundle count.
enum class DataType : std::uint8_t {
  kFloat,   ///< 32-bit scalar stream element.
  kFloat4,  ///< 128-bit 4-vector stream element.
};

/// Execution mode of a kernel launch (paper Sec. II).
///
/// Pixel shader mode dispatches threads through the rasterizer in a tiled
/// 2-D order and may write color buffers with streaming (burst) stores.
/// Compute shader mode dispatches linearly with a programmer-chosen block
/// size and can only write global memory.
enum class ShaderMode : std::uint8_t {
  kPixel,
  kCompute,
};

/// Where a kernel reads its inputs from.
enum class ReadPath : std::uint8_t {
  kTexture,  ///< Cached texture-sampler path (SAMPLE).
  kGlobal,   ///< Uncached global memory read.
};

/// Where a kernel writes its outputs to.
enum class WritePath : std::uint8_t {
  kStream,  ///< Pixel-shader color buffers (streaming/burst store).
  kGlobal,  ///< Uncached global memory write.
};

/// Bytes occupied by one element of a stream of type `t`.
constexpr Bytes ElementBytes(DataType t) {
  return t == DataType::kFloat ? 4u : 16u;
}

/// Number of 32-bit components in one element of type `t`.
constexpr unsigned ComponentCount(DataType t) {
  return t == DataType::kFloat ? 1u : 4u;
}

constexpr std::string_view ToString(DataType t) {
  return t == DataType::kFloat ? "Float" : "Float4";
}

constexpr std::string_view ToString(ShaderMode m) {
  return m == ShaderMode::kPixel ? "Pixel" : "Compute";
}

constexpr std::string_view ToString(ReadPath p) {
  return p == ReadPath::kTexture ? "Texture" : "Global";
}

constexpr std::string_view ToString(WritePath p) {
  return p == WritePath::kStream ? "Stream" : "Global";
}

/// A rectangular execution domain (paper: "domain size", e.g. 1024x1024).
struct Domain {
  unsigned width = 0;
  unsigned height = 0;

  constexpr std::uint64_t ThreadCount() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  constexpr bool operator==(const Domain&) const = default;
};

/// Thread-block shape used by compute-shader dispatch (e.g. 64x1, 4x16).
struct BlockShape {
  unsigned x = 64;
  unsigned y = 1;

  constexpr unsigned ThreadCount() const { return x * y; }
  constexpr bool operator==(const BlockShape&) const = default;
};

}  // namespace amdmb
