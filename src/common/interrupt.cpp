#include "common/interrupt.hpp"

#include <csignal>

namespace amdmb {

namespace {

// Written from the handler: must be lock-free / async-signal-safe.
volatile std::sig_atomic_t g_signal = 0;
std::atomic<std::atomic<bool>*> g_notify{nullptr};

extern "C" void RecordSignal(int signal_number) {
  g_signal = signal_number;
  if (std::atomic<bool>* flag = g_notify.load(std::memory_order_relaxed)) {
    flag->store(true, std::memory_order_relaxed);
  }
}

}  // namespace

void InstallInterruptHandlers() {
  std::signal(SIGINT, RecordSignal);
  std::signal(SIGTERM, RecordSignal);
}

void NotifyFlagOnInterrupt(std::atomic<bool>* flag) {
  g_notify.store(flag, std::memory_order_relaxed);
}

bool InterruptRequested() { return g_signal != 0; }

int InterruptSignal() { return static_cast<int>(g_signal); }

void ResetInterruptForTest() { g_signal = 0; }

const char* DescribeSignal(int signal_number) {
  switch (signal_number) {
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

}  // namespace amdmb
