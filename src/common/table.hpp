// Minimal ASCII table renderer for bench/example output.
#pragma once

#include <string>
#include <vector>

namespace amdmb {

/// Column-aligned text table. Rows may be added cell-by-cell; rendering
/// pads every column to its widest cell. Used to print Table I and the
/// per-figure result tables in the paper's layout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table including a separator under the header.
  std::string Render() const;

  std::size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string FormatDouble(double v, int precision = 3);

}  // namespace amdmb
