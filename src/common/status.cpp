#include "common/status.hpp"

#include <sstream>

namespace amdmb {

namespace detail {

void ThrowCheckFailure(std::string_view expr, std::string_view message,
                       const std::source_location& loc) {
  std::ostringstream os;
  os << expr << " failed at " << loc.file_name() << ":" << loc.line();
  if (!message.empty()) os << ": " << message;
  throw SimError(os.str());
}

}  // namespace detail

void Require(bool ok, std::string_view message) {
  if (!ok) throw ConfigError(std::string(message));
}

}  // namespace amdmb
