#include "common/bench_json.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/status.hpp"

namespace amdmb {

namespace {

/// Shortest round-trippable representation, locale-independent.
std::string JsonNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double MedianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

std::string FigureSlug(std::string_view id) {
  std::string slug;
  for (const char c : id) {
    if (static_cast<unsigned char>(c) == 0xE2) {
      break;  // Em-dash (UTF-8 lead byte) separates the id from the title.
    }
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? "figure" : slug;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void EnsureWritableDirectory(const std::filesystem::path& directory,
                             std::string_view label) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    throw ConfigError(std::string(label) + ": cannot create directory '" +
                      directory.string() + "': " + ec.message());
  }
  // create_directories succeeds on an existing path even when it is not
  // a directory or not writable — probe with a real file.
  const std::filesystem::path probe =
      directory / ".amdmb_write_probe.tmp";
  {
    std::ofstream out(probe);
    if (!out.good()) {
      throw ConfigError(std::string(label) + ": directory '" +
                        directory.string() +
                        "' is not writable (cannot create files in it)");
    }
  }
  std::filesystem::remove(probe, ec);  // Best effort; the probe is empty.
}

std::string BenchJson(const SeriesSet& set, const std::string& id,
                      const std::string& paper_claim,
                      const std::vector<std::string>& notes,
                      const std::vector<std::string>& failures) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"figure\": \"" << JsonEscape(id) << "\",\n";
  os << "  \"title\": \"" << JsonEscape(set.Title()) << "\",\n";
  os << "  \"paper_claim\": \"" << JsonEscape(paper_claim) << "\",\n";
  os << "  \"notes\": [";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << JsonEscape(notes[i]) << "\"";
  }
  os << "],\n";
  if (!failures.empty()) {
    os << "  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << JsonEscape(failures[i]) << "\"";
    }
    os << "],\n";
  }
  os << "  \"curves\": [\n";
  const auto& all = set.All();
  for (std::size_t s = 0; s < all.size(); ++s) {
    const Series& series = all[s];
    const std::vector<double> ys = series.Ys();
    os << "    {\n";
    os << "      \"name\": \"" << JsonEscape(series.Name()) << "\",\n";
    os << "      \"points\": [";
    const auto& points = series.Points();
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (p) os << ", ";
      os << "{\"x\": " << JsonNumber(points[p].x)
         << ", \"sim_seconds\": " << JsonNumber(points[p].y) << "}";
    }
    os << "],\n";
    os << "      \"sim_seconds_median\": " << JsonNumber(MedianOf(ys))
       << ",\n";
    os << "      \"sim_seconds_min\": "
       << JsonNumber(ys.empty()
                         ? 0.0
                         : *std::min_element(ys.begin(), ys.end()))
       << ",\n";
    os << "      \"sim_seconds_max\": "
       << JsonNumber(ys.empty()
                         ? 0.0
                         : *std::max_element(ys.begin(), ys.end()))
       << "\n";
    os << "    }" << (s + 1 < all.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::filesystem::path WriteBenchJson(
    const SeriesSet& set, const std::string& id,
    const std::string& paper_claim, const std::vector<std::string>& notes,
    const std::filesystem::path& directory,
    const std::vector<std::string>& failures) {
  EnsureWritableDirectory(directory, "WriteBenchJson output directory");

  const std::filesystem::path file =
      directory / ("BENCH_" + FigureSlug(id) + ".json");
  std::ofstream out(file);
  Require(out.good(), "WriteBenchJson: cannot open " + file.string());
  out << BenchJson(set, id, paper_claim, notes, failures);
  Require(out.good(), "WriteBenchJson: write failed for " + file.string());
  return file;
}

}  // namespace amdmb
