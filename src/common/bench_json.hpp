// Machine-readable benchmark results.
//
// Mirrors the HPC-benchmark report layout referenced in SNIPPETS.md:
// every figure dumps one JSON document with its metadata, each curve's
// raw sweep points (x, simulated seconds), and per-curve summary
// statistics (median / min / max over the sweep). The bench binaries
// write `BENCH_<figure>.json` when AMDMB_JSON_DIR is set.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/series.hpp"

namespace amdmb {

/// Filesystem-safe stem derived from a figure id. Lower-cases
/// alphanumerics, collapses every other character run to one underscore,
/// and stops at the em-dash separating the id from the title — so
/// "Fig. 7 — ALU:Fetch" -> "fig_7" and multi-part ids keep every number:
/// "Figs. 11-12 — Read latency" -> "figs_11_12".
std::string FigureSlug(std::string_view id);

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// Validates that `directory` exists (creating it if needed) and is
/// writable by actually creating and removing a probe file in it.
/// Throws ConfigError naming `label` (e.g. "AMDMB_JSON_DIR") with the
/// OS error detail — a bad output directory must fail loudly up front,
/// not silently drop results at the end of a long run.
void EnsureWritableDirectory(const std::filesystem::path& directory,
                             std::string_view label);

/// The figure document as JSON text. `failures` carries the fault
/// annotations of degraded sweep points; the "failures" array is only
/// emitted when non-empty so fault-free documents are byte-identical to
/// earlier releases.
std::string BenchJson(const SeriesSet& set, const std::string& id,
                      const std::string& paper_claim,
                      const std::vector<std::string>& notes,
                      const std::vector<std::string>& failures = {});

/// Writes `BENCH_<FigureSlug(id)>.json` under `directory` (created if
/// missing) and returns the file path. Throws ConfigError on I/O
/// failure.
std::filesystem::path WriteBenchJson(
    const SeriesSet& set, const std::string& id,
    const std::string& paper_claim, const std::vector<std::string>& notes,
    const std::filesystem::path& directory,
    const std::vector<std::string>& failures = {});

}  // namespace amdmb
