// Machine-readable benchmark results.
//
// Mirrors the HPC-benchmark report layout referenced in SNIPPETS.md:
// every figure dumps one JSON document with its metadata, each curve's
// raw sweep points (x, simulated seconds), and per-curve summary
// statistics (median / min / max over the sweep). The bench binaries
// write `BENCH_<figure>.json` when AMDMB_JSON_DIR is set.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "common/series.hpp"

namespace amdmb {

/// Filesystem-safe stem derived from a figure id. Lower-cases
/// alphanumerics, collapses every other character run to one underscore,
/// and stops at the em-dash separating the id from the title — so
/// "Fig. 7 — ALU:Fetch" -> "fig_7" and multi-part ids keep every number:
/// "Figs. 11-12 — Read latency" -> "figs_11_12".
std::string FigureSlug(std::string_view id);

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// The figure document as JSON text.
std::string BenchJson(const SeriesSet& set, const std::string& id,
                      const std::string& paper_claim,
                      const std::vector<std::string>& notes);

/// Writes `BENCH_<FigureSlug(id)>.json` under `directory` (created if
/// missing) and returns the file path. Throws ConfigError on I/O
/// failure.
std::filesystem::path WriteBenchJson(const SeriesSet& set,
                                     const std::string& id,
                                     const std::string& paper_claim,
                                     const std::vector<std::string>& notes,
                                     const std::filesystem::path& directory);

}  // namespace amdmb
