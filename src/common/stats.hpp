// Small statistics helpers used by the measurement harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace amdmb {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  std::uint64_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const;  ///< Sample variance (n-1 denominator).
  double StdDev() const;
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  double Sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Least-squares line fit over (x, y) samples; used by the latency
/// micro-benchmarks to report per-input / per-output slopes.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< Coefficient of determination.
};

LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// Ratio of two doubles that tolerates a zero denominator.
double SafeRatio(double num, double den);

/// The p-th percentile (p in [0, 100]) of `samples` by linear
/// interpolation between closest ranks; 0.0 for an empty sample set.
/// Used by the serve daemon's per-figure latency stats.
double Percentile(std::vector<double> samples, double p);

}  // namespace amdmb
