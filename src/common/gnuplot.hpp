// Gnuplot emission for reproduced figures.
//
// The paper's plots are classic gnuplot line charts; given a SeriesSet
// this module writes the `.dat` column file plus a ready-to-run `.gp`
// script so `gnuplot fig07.gp` regenerates the figure as SVG. The bench
// binaries call this when AMDMB_DUMP_DIR is set.
#pragma once

#include <filesystem>
#include <string>

#include "common/series.hpp"

namespace amdmb {

/// Writes `<stem>.dat` and `<stem>.gp` under `directory` (created if
/// missing) and returns the script path. Throws ConfigError on I/O
/// failure.
std::filesystem::path WriteGnuplot(const SeriesSet& set,
                                   const std::filesystem::path& directory,
                                   const std::string& stem);

/// The script text alone (for tests and embedding).
std::string GnuplotScript(const SeriesSet& set, const std::string& dat_file,
                          const std::string& output_file);

}  // namespace amdmb
