// Centralized AMDMB_* environment handling.
//
// Every knob the suite reads from the environment is parsed and
// validated here, exactly once, with one descriptive-error path: a
// malformed value throws ConfigError naming the offending variable
// before any sweep runs. Downstream modules (exec, fault, sim, bench)
// consult the cached snapshot instead of scattering getenv calls.
//
// Knobs:
//   AMDMB_QUICK      smoke-scale domains/sweeps ("1" on, "0"/unset off).
//   AMDMB_THREADS    sweep-executor width, integer in [1, 4096].
//   AMDMB_JSON_DIR   machine-readable BENCH_<figure>.json output dir.
//   AMDMB_DUMP_DIR   gnuplot .dat/.gp output dir.
//   AMDMB_FAULTS     fault-injection spec (parsed by fault::FaultSpec).
//   AMDMB_RETRY      retry-policy spec (parsed by exec::RetryPolicy).
//   AMDMB_WATCHDOG   per-launch cycle budget, non-negative integer.
//   AMDMB_PROF       hardware-counter profiling ("1" on, "0"/unset off).
//   AMDMB_TRACE_DIR  Chrome-trace (trace_event JSON) output directory.
//   AMDMB_TRACE_CAP  per-launch trace/event capacity, positive integer.
//   AMDMB_SERVE_SOCKET    amdmb_serve / amdmb_client Unix-socket path.
//   AMDMB_SERVE_QUEUE     daemon admission queue depth, [0, 4096].
//   AMDMB_SERVE_INFLIGHT  daemon max concurrent sweeps, [1, 64].
//   AMDMB_WORKERS         supervised worker processes, [0, 32]; 0 = the
//                         single-process daemon (no fleet).
//   AMDMB_DEADLINE_MS     per-request deadline in ms, 0 = unlimited.
//   AMDMB_HEARTBEAT_MS    worker heartbeat interval in ms, [10, 60000].
//   AMDMB_ADAPT           adaptive (coarse-to-fine) sweeps in the bench
//                         binaries ("1" on, "0"/unset off).
//   AMDMB_ADAPT_TOL       adaptive bracket tolerance in dense grid
//                         steps, [1, 64].
//   AMDMB_ADAPT_BUDGET    max measured points per adaptive refinement,
//                         non-negative integer; 0 = unlimited.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace amdmb::env {

/// Parsed snapshot of every AMDMB_* knob. Scalar knobs are validated at
/// parse time; the fault/retry specs stay raw here (their grammar lives
/// in fault::FaultSpec::Parse and exec::RetryPolicy::Parse, which the
/// owning modules invoke on these strings).
struct Options {
  bool quick = false;
  std::optional<unsigned> threads;       ///< AMDMB_THREADS, [1, 4096].
  std::optional<std::string> json_dir;   ///< AMDMB_JSON_DIR.
  std::optional<std::string> dump_dir;   ///< AMDMB_DUMP_DIR.
  std::optional<std::string> faults;     ///< AMDMB_FAULTS, raw spec.
  std::optional<std::string> retry;      ///< AMDMB_RETRY, raw spec.
  std::uint64_t watchdog_cycles = 0;     ///< AMDMB_WATCHDOG, 0 = unlimited.
  bool prof = false;                     ///< AMDMB_PROF.
  std::optional<std::string> trace_dir;  ///< AMDMB_TRACE_DIR.
  std::size_t trace_capacity = 1u << 20; ///< AMDMB_TRACE_CAP.
  /// AMDMB_SERVE_SOCKET; the daemon and client fall back to
  /// kDefaultServeSocket when unset.
  std::optional<std::string> serve_socket;
  std::size_t serve_queue = 16;          ///< AMDMB_SERVE_QUEUE, [0, 4096].
  unsigned serve_inflight = 1;           ///< AMDMB_SERVE_INFLIGHT, [1, 64].
  unsigned workers = 0;                  ///< AMDMB_WORKERS, [0, 32].
  std::uint64_t deadline_ms = 0;         ///< AMDMB_DEADLINE_MS, 0 = off.
  std::uint64_t heartbeat_ms = 250;      ///< AMDMB_HEARTBEAT_MS.
  bool adapt = false;                    ///< AMDMB_ADAPT.
  unsigned adapt_tol = 2;                ///< AMDMB_ADAPT_TOL, [1, 64].
  std::uint64_t adapt_budget = 0;        ///< AMDMB_ADAPT_BUDGET, 0 = off.
};

/// Socket path used when AMDMB_SERVE_SOCKET is unset.
inline constexpr std::string_view kDefaultServeSocket =
    "/tmp/amdmb_serve.sock";

/// Worker-count grammar shared by AMDMB_THREADS and explicit configs:
/// a positive integer no larger than 4096. Throws ConfigError.
unsigned ParseThreadCount(std::string_view text);

/// AMDMB_WATCHDOG grammar: a non-negative cycle count. Throws
/// ConfigError.
std::uint64_t ParseWatchdogCycles(std::string_view text);

/// AMDMB_TRACE_CAP grammar: a positive event count (the bound on both
/// sim::Trace and prof::Collector event buffers). Throws ConfigError.
std::size_t ParseTraceCapacity(std::string_view text);

/// AMDMB_SERVE_QUEUE grammar: a queue depth in [0, 4096] (0 = no
/// queueing beyond the in-flight slots). Throws ConfigError.
std::size_t ParseServeQueue(std::string_view text);

/// AMDMB_SERVE_INFLIGHT grammar: concurrent-sweep bound in [1, 64].
/// Throws ConfigError.
unsigned ParseServeInflight(std::string_view text);

/// AMDMB_WORKERS grammar: supervised worker-process count in [0, 32]
/// (0 = single-process daemon). Throws ConfigError.
unsigned ParseWorkerCount(std::string_view text);

/// AMDMB_DEADLINE_MS grammar: a non-negative millisecond count
/// (0 = no per-request deadline). Throws ConfigError.
std::uint64_t ParseDeadlineMs(std::string_view text);

/// AMDMB_HEARTBEAT_MS grammar: heartbeat interval in [10, 60000] ms.
/// Throws ConfigError.
std::uint64_t ParseHeartbeatMs(std::string_view text);

/// AMDMB_ADAPT_TOL grammar: a bracket tolerance in dense grid steps,
/// [1, 64]. Throws ConfigError.
unsigned ParseAdaptTol(std::string_view text);

/// AMDMB_ADAPT_BUDGET grammar: a non-negative point cap per adaptive
/// refinement (0 = unlimited). Throws ConfigError.
std::uint64_t ParseAdaptBudget(std::string_view text);

/// Pure parser behind Get(): `lookup` plays the role of getenv (returns
/// nullptr when a variable is unset; empty strings count as unset, the
/// historical behaviour of every knob). Exposed for tests.
Options ParseFrom(const std::function<const char*(const char*)>& lookup);

/// The process snapshot, parsed and validated from the real environment
/// once on first use. Throws ConfigError on the first call if any knob
/// is malformed.
const Options& Get();

}  // namespace amdmb::env
