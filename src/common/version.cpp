#include "common/version.hpp"

namespace amdmb {

std::string_view SuiteVersion() {
#ifdef AMDMB_GIT_DESCRIBE
  return AMDMB_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace amdmb
