// Error-reporting helpers: invariant checks that throw structured errors.
//
// The simulator is a research tool; a violated invariant means a modelling
// bug, so we fail fast with a descriptive exception instead of continuing
// with a corrupt machine state.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace amdmb {

/// Thrown when a simulator invariant is violated.
class SimError : public std::logic_error {
 public:
  explicit SimError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a user-supplied configuration is invalid (bad kernel spec,
/// impossible machine description, ...).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Base class for failures that may succeed on retry (injected faults,
/// transient runtime errors, watchdog timeouts). The sweep executor
/// retries these with backoff; everything else — SimError invariants,
/// ConfigError — is deterministic and fails fast.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void ThrowCheckFailure(std::string_view expr,
                                    std::string_view message,
                                    const std::source_location& loc);
}  // namespace detail

/// Verifies a simulator invariant; throws SimError with location info on
/// failure. Used instead of assert() so Release builds keep the checks.
inline void Check(bool ok, std::string_view message = {},
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!ok) detail::ThrowCheckFailure("Check", message, loc);
}

/// Validates a user-facing precondition; throws ConfigError on failure.
void Require(bool ok, std::string_view message);

}  // namespace amdmb
