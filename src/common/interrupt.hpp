// Cooperative SIGINT/SIGTERM handling for the long-running binaries.
//
// The bench binaries and amdmb_report install these handlers so an
// interrupt no longer kills the process mid-write (leaving a truncated
// BENCH_*.json): the handler only records the signal, and the main
// loop checks InterruptRequested() at safe points — between curves,
// before sinks flush — to cut the run short and still emit a complete
// (if partial) report carrying an "interrupted" finding.
//
// The amdmb_serve daemon does NOT use this module: its SIGTERM contract
// is graceful drain (finish in-flight sweeps), which it wires through
// its own handler in tools/amdmb_serve.cpp.
#pragma once

#include <atomic>

namespace amdmb {

/// Installs SIGINT and SIGTERM handlers that record the signal instead
/// of terminating. Idempotent.
void InstallInterruptHandlers();

/// Registers one extra flag the handler also stores `true` to (a relaxed
/// store on a lock-free std::atomic<bool> is async-signal-safe). This is
/// how an exec::CancelToken fires from the handler without a
/// common -> exec dependency. The flag must outlive the registration;
/// nullptr unregisters.
void NotifyFlagOnInterrupt(std::atomic<bool>* flag);

/// True once a SIGINT/SIGTERM arrived after InstallInterruptHandlers().
bool InterruptRequested();

/// The last recorded signal number (SIGINT/SIGTERM), or 0 when none.
int InterruptSignal();

/// Clears the recorded signal (tests re-use one process).
void ResetInterruptForTest();

/// Signal name for the interrupted finding ("SIGINT" / "SIGTERM" /
/// "signal <n>").
const char* DescribeSignal(int signal_number);

}  // namespace amdmb
