// Deterministic xorshift128+ pseudo-random generator.
//
// The simulator must be bit-reproducible across runs, so all stochastic
// choices (e.g. synthetic Monte-Carlo workloads in the examples) draw from
// this explicitly-seeded generator rather than std::random_device.
#pragma once

#include <cstdint>

namespace amdmb {

class XorShift128 {
 public:
  explicit constexpr XorShift128(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : s0_(seed ? seed : 1u), s1_(SplitMix(seed)) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t NextBelow(std::uint64_t bound) {
    return Next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static constexpr std::uint64_t SplitMix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return (x ^ (x >> 31)) | 1u;
  }

  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace amdmb
