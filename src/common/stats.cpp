#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace amdmb {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  Check(xs.size() == ys.size(), "FitLine: mismatched sample vectors");
  LineFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double SafeRatio(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

double Percentile(std::vector<double> samples, double p) {
  Check(p >= 0.0 && p <= 100.0, "Percentile: p outside [0, 100]");
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace amdmb
