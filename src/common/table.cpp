#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/status.hpp"

namespace amdmb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  Require(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::AddRow(std::vector<std::string> cells) {
  Require(cells.size() == header_.size(),
          "TextTable: row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(
             static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace amdmb
