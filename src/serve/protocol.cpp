#include "serve/protocol.hpp"

#include <sstream>

#include "common/status.hpp"

namespace amdmb::serve {

namespace {

std::string Quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  out += report::JsonEscape(text);
  out += '"';
  return out;
}

}  // namespace

Request ParseRequest(std::string_view line) {
  const report::JsonValue doc = report::JsonValue::Parse(line);
  if (doc.type() != report::JsonValue::Type::kObject) {
    throw ConfigError("request: expected a JSON object");
  }
  const report::JsonValue* op = doc.Find("op");
  if (op == nullptr) throw ConfigError("request: missing \"op\"");
  Request request;
  const std::string& name = op->AsString();
  if (name == "submit") {
    request.op = Request::Op::kSubmit;
    const report::JsonValue* figure = doc.Find("figure");
    if (figure == nullptr) {
      throw ConfigError("request: submit needs a \"figure\" slug");
    }
    request.figure = figure->AsString();
    if (request.figure.empty()) {
      throw ConfigError("request: submit \"figure\" is empty");
    }
    request.quick = doc.BoolOr("quick", false);
    request.adaptive = doc.BoolOr("adaptive", false);
    const double priority = doc.NumberOr("priority", 0.0);
    if (priority != static_cast<int>(priority)) {
      throw ConfigError("request: \"priority\" must be an integer");
    }
    request.priority = static_cast<int>(priority);
  } else if (name == "characterize") {
    request.op = Request::Op::kCharacterize;
    const report::JsonValue* il = doc.Find("il");
    if (il == nullptr) {
      throw ConfigError("request: characterize needs \"il\" kernel text");
    }
    request.il = il->AsString();
    if (request.il.empty()) {
      throw ConfigError("request: characterize \"il\" is empty");
    }
    request.quick = doc.BoolOr("quick", false);
    request.adaptive = doc.BoolOr("adaptive", false);
    const double priority = doc.NumberOr("priority", 0.0);
    if (priority != static_cast<int>(priority)) {
      throw ConfigError("request: \"priority\" must be an integer");
    }
    request.priority = static_cast<int>(priority);
  } else if (name == "stats") {
    request.op = Request::Op::kStats;
  } else if (name == "drain") {
    request.op = Request::Op::kDrain;
  } else if (name == "ping") {
    request.op = Request::Op::kPing;
    const double seq = doc.NumberOr("seq", 0.0);
    if (seq < 0.0 || seq != static_cast<std::uint64_t>(seq)) {
      throw ConfigError("request: ping \"seq\" must be a non-negative "
                        "integer");
    }
    request.seq = static_cast<std::uint64_t>(seq);
  } else if (name == "kill_worker") {
    request.op = Request::Op::kKillWorker;
    const report::JsonValue* worker = doc.Find("worker");
    if (worker == nullptr) {
      throw ConfigError("request: kill_worker needs a \"worker\" index");
    }
    const double index = worker->AsNumber();
    if (index < 0.0 || index != static_cast<unsigned>(index)) {
      throw ConfigError("request: kill_worker \"worker\" must be a "
                        "non-negative integer");
    }
    request.worker = static_cast<unsigned>(index);
  } else {
    throw ConfigError("request: unknown op \"" + name + "\"");
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::ostringstream os;
  switch (request.op) {
    case Request::Op::kSubmit:
      os << "{\"op\":\"submit\",\"figure\":" << Quoted(request.figure)
         << ",\"quick\":" << (request.quick ? "true" : "false")
         << (request.adaptive ? ",\"adaptive\":true" : "")
         << ",\"priority\":" << request.priority << "}";
      break;
    case Request::Op::kCharacterize:
      os << "{\"op\":\"characterize\",\"il\":" << Quoted(request.il)
         << ",\"quick\":" << (request.quick ? "true" : "false")
         << (request.adaptive ? ",\"adaptive\":true" : "")
         << ",\"priority\":" << request.priority << "}";
      break;
    case Request::Op::kStats:
      os << "{\"op\":\"stats\"}";
      break;
    case Request::Op::kDrain:
      os << "{\"op\":\"drain\"}";
      break;
    case Request::Op::kPing:
      os << "{\"op\":\"ping\",\"seq\":" << request.seq << "}";
      break;
    case Request::Op::kKillWorker:
      os << "{\"op\":\"kill_worker\",\"worker\":" << request.worker << "}";
      break;
  }
  return os.str();
}

std::string_view ToString(EventType type) {
  switch (type) {
    case EventType::kAccepted: return "accepted";
    case EventType::kRejected: return "rejected";
    case EventType::kStatic: return "static";
    case EventType::kProgress: return "progress";
    case EventType::kPoint: return "point";
    case EventType::kProfile: return "profile";
    case EventType::kRefine: return "refine";
    case EventType::kDone: return "done";
    case EventType::kError: return "error";
    case EventType::kStats: return "stats";
    case EventType::kDrained: return "drained";
    case EventType::kPong: return "pong";
    case EventType::kKilled: return "killed";
  }
  throw SimError("ToString(EventType): unknown value");
}

std::string_view ToString(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kSweepFailed: return "sweep_failed";
    case ErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::kWorkerLost: return "worker_lost";
    case ErrorKind::kProtocolError: return "protocol_error";
  }
  throw SimError("ToString(ErrorKind): unknown value");
}

Event ParseEvent(std::string_view line) {
  Event event;
  event.body = report::JsonValue::Parse(line);
  const report::JsonValue* tag = event.body.Find("event");
  if (tag == nullptr) throw ConfigError("event: missing \"event\" tag");
  const std::string& name = tag->AsString();
  for (const EventType type :
       {EventType::kAccepted, EventType::kRejected, EventType::kStatic,
        EventType::kProgress, EventType::kPoint, EventType::kProfile,
        EventType::kRefine, EventType::kDone, EventType::kError,
        EventType::kStats,
        EventType::kDrained, EventType::kPong, EventType::kKilled}) {
    if (name == ToString(type)) {
      event.type = type;
      return event;
    }
  }
  throw ConfigError("event: unknown tag \"" + name + "\"");
}

std::string SerializeAccepted(std::uint64_t id, std::string_view figure,
                              std::size_t queue_depth) {
  std::ostringstream os;
  os << "{\"event\":\"accepted\",\"request\":" << id
     << ",\"figure\":" << Quoted(figure)
     << ",\"queue_depth\":" << queue_depth << "}";
  return os.str();
}

std::string SerializeRejected(std::string_view reason,
                              std::string_view figure) {
  std::ostringstream os;
  os << "{\"event\":\"rejected\",\"reason\":" << Quoted(reason)
     << ",\"figure\":" << Quoted(figure) << "}";
  return os.str();
}

std::string SerializeRejected(std::string_view reason,
                              std::string_view figure,
                              std::string_view code,
                              std::string_view detail) {
  std::ostringstream os;
  os << "{\"event\":\"rejected\",\"reason\":" << Quoted(reason)
     << ",\"figure\":" << Quoted(figure) << ",\"code\":" << Quoted(code)
     << ",\"detail\":" << Quoted(detail) << "}";
  return os.str();
}

std::string SerializeProgress(std::uint64_t id, std::size_t curve_index,
                              std::size_t curve_count,
                              std::string_view curve) {
  std::ostringstream os;
  os << "{\"event\":\"progress\",\"request\":" << id
     << ",\"curve\":" << Quoted(curve) << ",\"index\":" << curve_index
     << ",\"count\":" << curve_count << "}";
  return os.str();
}

std::string SerializePoint(std::uint64_t id, std::string_view curve,
                           double x, double y) {
  std::ostringstream os;
  os << "{\"event\":\"point\",\"request\":" << id
     << ",\"curve\":" << Quoted(curve)
     << ",\"x\":" << report::JsonNumber(x)
     << ",\"y\":" << report::JsonNumber(y) << "}";
  return os.str();
}

std::string SerializeProfile(std::uint64_t id, std::string_view curve,
                             std::string_view point,
                             std::string_view bottleneck) {
  std::ostringstream os;
  os << "{\"event\":\"profile\",\"request\":" << id
     << ",\"curve\":" << Quoted(curve) << ",\"point\":" << Quoted(point)
     << ",\"bottleneck\":" << Quoted(bottleneck) << "}";
  return os.str();
}

std::string SerializeRefine(std::uint64_t id, std::string_view curve,
                            std::size_t wave, std::size_t wave_points,
                            std::size_t points_spent,
                            std::size_t dense_points) {
  std::ostringstream os;
  os << "{\"event\":\"refine\",\"request\":" << id
     << ",\"curve\":" << Quoted(curve) << ",\"wave\":" << wave
     << ",\"points\":" << wave_points << ",\"spent\":" << points_spent
     << ",\"dense\":" << dense_points << "}";
  return os.str();
}

std::string SerializeDone(std::uint64_t id, std::string_view figure,
                          double wall_seconds, std::uint64_t cache_hits,
                          std::uint64_t cache_misses,
                          std::string_view figure_json) {
  std::ostringstream os;
  os << "{\"event\":\"done\",\"request\":" << id
     << ",\"figure\":" << Quoted(figure)
     << ",\"wall_seconds\":" << report::JsonNumber(wall_seconds)
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses
     << ",\"figure_json\":" << Quoted(figure_json) << "}";
  return os.str();
}

std::string SerializeError(std::uint64_t id, ErrorKind kind,
                           std::string_view message) {
  std::ostringstream os;
  os << "{\"event\":\"error\",\"request\":" << id
     << ",\"kind\":" << Quoted(ToString(kind))
     << ",\"message\":" << Quoted(message) << "}";
  return os.str();
}

std::string SerializeStatic(std::uint64_t id, const StaticReport& report) {
  std::ostringstream os;
  os << "{\"event\":\"static\",\"request\":" << id
     << ",\"arch\":" << Quoted(report.arch)
     << ",\"alu_ops\":" << report.alu_ops
     << ",\"fetch_ops\":" << report.fetch_ops
     << ",\"write_ops\":" << report.write_ops << ",\"alu_fetch_ratio\":"
     << report::JsonNumber(report.alu_fetch_ratio)
     << ",\"gpr_count\":" << report.gpr_count
     << ",\"theoretical_wavefronts\":" << report.theoretical_wavefronts
     << ",\"resident_wavefronts\":" << report.resident_wavefronts
     << ",\"bound\":" << Quoted(report.bound) << "}";
  return os.str();
}

std::string SerializePong(unsigned worker, std::uint64_t seq,
                          const PongStats& stats) {
  std::ostringstream os;
  os << "{\"event\":\"pong\",\"worker\":" << worker << ",\"seq\":" << seq
     << ",\"completed\":" << stats.completed
     << ",\"failed\":" << stats.failed
     << ",\"cache_hits\":" << stats.cache_hits
     << ",\"cache_misses\":" << stats.cache_misses << "}";
  return os.str();
}

std::string SerializeKilled(unsigned worker) {
  std::ostringstream os;
  os << "{\"event\":\"killed\",\"worker\":" << worker << "}";
  return os.str();
}

std::string SerializeDrained(std::uint64_t completed) {
  std::ostringstream os;
  os << "{\"event\":\"drained\",\"completed\":" << completed << "}";
  return os.str();
}

std::string SerializeStats(const ServeStats& stats) {
  std::ostringstream os;
  os << "{\"event\":\"stats\",\"version\":" << Quoted(stats.version)
     << ",\"queue_depth\":" << stats.queue_depth
     << ",\"in_flight\":" << stats.in_flight
     << ",\"max_queue\":" << stats.max_queue
     << ",\"max_inflight\":" << stats.max_inflight
     << ",\"completed\":" << stats.completed
     << ",\"failed\":" << stats.failed
     << ",\"rejected\":" << stats.rejected << ",\"cache\":{\"hits\":"
     << stats.cache_hits << ",\"misses\":" << stats.cache_misses
     << ",\"hit_rate\":" << report::JsonNumber(stats.cache_hit_rate)
     << ",\"size\":" << stats.cache_size << "},\"latencies\":[";
  for (std::size_t i = 0; i < stats.latencies.size(); ++i) {
    const FigureLatency& l = stats.latencies[i];
    if (i > 0) os << ",";
    os << "{\"figure\":" << Quoted(l.figure) << ",\"count\":" << l.count
       << ",\"p50_seconds\":" << report::JsonNumber(l.p50_seconds)
       << ",\"p90_seconds\":" << report::JsonNumber(l.p90_seconds)
       << ",\"p99_seconds\":" << report::JsonNumber(l.p99_seconds) << "}";
  }
  os << "]";
  if (!stats.workers.empty()) {
    os << ",\"workers\":[";
    for (std::size_t i = 0; i < stats.workers.size(); ++i) {
      const WorkerStatus& w = stats.workers[i];
      if (i > 0) os << ",";
      os << "{\"index\":" << w.index << ",\"state\":" << Quoted(w.state)
         << ",\"pid\":" << w.pid << ",\"restarts\":" << w.restarts
         << ",\"outstanding\":" << w.outstanding
         << ",\"generation\":" << w.generation << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

namespace {

std::uint64_t CountOr(const report::JsonValue& body, std::string_view key) {
  return static_cast<std::uint64_t>(body.NumberOr(key, 0.0));
}

}  // namespace

ServeStats ParseStats(const report::JsonValue& body) {
  ServeStats stats;
  stats.version = body.StringOr("version", "");
  stats.queue_depth = static_cast<std::size_t>(CountOr(body, "queue_depth"));
  stats.in_flight = static_cast<unsigned>(CountOr(body, "in_flight"));
  stats.max_queue = static_cast<std::size_t>(CountOr(body, "max_queue"));
  stats.max_inflight = static_cast<unsigned>(CountOr(body, "max_inflight"));
  stats.completed = CountOr(body, "completed");
  stats.failed = CountOr(body, "failed");
  stats.rejected = CountOr(body, "rejected");
  if (const report::JsonValue* cache = body.Find("cache")) {
    stats.cache_hits = CountOr(*cache, "hits");
    stats.cache_misses = CountOr(*cache, "misses");
    stats.cache_hit_rate = cache->NumberOr("hit_rate", 0.0);
    stats.cache_size = static_cast<std::size_t>(CountOr(*cache, "size"));
  }
  if (const report::JsonValue* latencies = body.Find("latencies")) {
    for (const report::JsonValue& entry : latencies->AsArray()) {
      FigureLatency l;
      l.figure = entry.StringOr("figure", "");
      l.count = static_cast<std::size_t>(CountOr(entry, "count"));
      l.p50_seconds = entry.NumberOr("p50_seconds", 0.0);
      l.p90_seconds = entry.NumberOr("p90_seconds", 0.0);
      l.p99_seconds = entry.NumberOr("p99_seconds", 0.0);
      stats.latencies.push_back(std::move(l));
    }
  }
  if (const report::JsonValue* workers = body.Find("workers")) {
    for (const report::JsonValue& entry : workers->AsArray()) {
      WorkerStatus w;
      w.index = static_cast<unsigned>(CountOr(entry, "index"));
      w.state = entry.StringOr("state", "");
      w.pid = static_cast<long>(entry.NumberOr("pid", -1.0));
      w.restarts = static_cast<unsigned>(CountOr(entry, "restarts"));
      w.outstanding = CountOr(entry, "outstanding");
      w.generation = CountOr(entry, "generation");
      stats.workers.push_back(std::move(w));
    }
  }
  return stats;
}

}  // namespace amdmb::serve
