// Typed worker state machine and heartbeat/restart policy for the
// supervised fleet.
//
// The supervisor pings every worker each heartbeat interval. The
// tracker is a pure state machine over those observations — spawned,
// pong, miss, process exit — so the transition rules are unit-testable
// without processes or sockets:
//
//   starting --pong--> healthy
//   healthy  --miss--> degraded
//   degraded --pong--> healthy
//   degraded --miss (>= miss_threshold total)--> dead
//   any      --exit--> dead
//   dead     --spawned (after capped deterministic backoff)--> starting
//
// Restart backoff is capped exponential with no jitter — delay depends
// only on the restart count — so a seeded kill schedule (src/fault's
// worker_crash / worker_hang sites) reproduces the identical recovery
// timeline across runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace amdmb::serve {

/// The typed worker states, in lifecycle order.
enum class WorkerState {
  kStarting,  ///< Forked; has not answered a heartbeat yet.
  kHealthy,   ///< Last heartbeat answered.
  kDegraded,  ///< Missed at least one heartbeat, fewer than the limit.
  kDead,      ///< Exited, or missed miss_threshold heartbeats in a row.
};

std::string_view ToString(WorkerState state);

/// Heartbeat and restart knobs shared by the supervisor and its tests.
struct HealthPolicy {
  std::uint64_t heartbeat_ms = 250;  ///< AMDMB_HEARTBEAT_MS.
  unsigned miss_threshold = 3;       ///< Consecutive misses until dead.
  double backoff_base_ms = 50.0;     ///< First restart delay.
  double backoff_cap_ms = 2000.0;    ///< Exponential restart ceiling.
};

/// Deterministic restart delay before respawn number `restarts`
/// (1-based): min(cap, base * 2^(restarts-1)).
double RestartBackoffMs(const HealthPolicy& policy, unsigned restarts);

/// Pure per-worker state machine. The supervisor owns one per slot and
/// feeds it heartbeat observations; it never touches sockets itself.
class HealthTracker {
 public:
  explicit HealthTracker(const HealthPolicy& policy) : policy_(policy) {}

  WorkerState state() const { return state_; }
  unsigned misses() const { return misses_; }
  unsigned restarts() const { return restarts_; }

  /// A (re)spawn happened: dead/initial -> starting. Counts restarts
  /// from the second spawn onward.
  void OnSpawned();

  /// A heartbeat was answered: starting/degraded -> healthy, misses
  /// reset.
  void OnPong();

  /// A heartbeat went unanswered. Starting workers are given
  /// miss_threshold * 2 grace beats to come up; running workers degrade
  /// and die at miss_threshold consecutive misses. Returns true when
  /// this miss killed the worker (the caller should SIGKILL + reap).
  bool OnMiss();

  /// The process was reaped (crash or kill): -> dead immediately.
  void OnExit();

  /// Delay before the next respawn, from the restart count.
  double NextBackoffMs() const {
    return RestartBackoffMs(policy_, restarts_ + 1);
  }

 private:
  HealthPolicy policy_;
  WorkerState state_ = WorkerState::kDead;  ///< Until the first spawn.
  unsigned misses_ = 0;
  unsigned restarts_ = 0;
  bool spawned_once_ = false;
};

}  // namespace amdmb::serve
