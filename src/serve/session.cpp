#include "serve/session.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace amdmb::serve {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Session::~Session() {
  Close();
  ::close(fd_);
}

std::optional<std::string> Session::ReadLine() {
  std::string line;
  if (ReadLine(&line, /*timeout_ms=*/-1) == ReadStatus::kLine) return line;
  return std::nullopt;
}

ReadStatus Session::ReadLine(std::string* line, int timeout_ms) {
  if (overflowed_) return ReadStatus::kClosed;
  const std::int64_t deadline =
      timeout_ms >= 0 ? NowMs() + timeout_ms : 0;
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return ReadStatus::kLine;
    }
    if (buffer_.size() > kMaxLineBytes) {
      overflowed_ = true;  // Unterminated line beyond the bound.
      return ReadStatus::kClosed;
    }
    if (timeout_ms >= 0) {
      const std::int64_t remaining = deadline - NowMs();
      if (remaining <= 0) return ReadStatus::kTimeout;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) return ReadStatus::kTimeout;
      if (ready < 0) return ReadStatus::kClosed;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return ReadStatus::kClosed;  // EOF or error: the peer is gone.
  }
}

bool Session::WriteLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!alive_) return false;
  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      alive_ = false;  // Peer gone; the sweep still runs to completion.
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Session::Alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alive_;
}

void Session::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!alive_) return;
  alive_ = false;
  ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace amdmb::serve
