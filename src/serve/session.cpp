#include "serve/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace amdmb::serve {

Session::~Session() {
  Close();
  ::close(fd_);
}

std::optional<std::string> Session::ReadLine() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return std::nullopt;  // EOF or error: the client is gone.
  }
}

bool Session::WriteLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!alive_) return false;
  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      alive_ = false;  // Peer gone; the sweep still runs to completion.
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Session::Alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alive_;
}

void Session::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!alive_) return;
  alive_ = false;
  ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace amdmb::serve
