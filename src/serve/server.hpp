// The benchmark-as-a-service daemon core.
//
// Listens on a Unix-domain stream socket, speaks the NDJSON protocol of
// serve/protocol.hpp, and executes admitted sweep requests through the
// suite figure registry on the bounded scheduler. All requests share
// the process-wide exec::KernelCache, so a repeated figure skips every
// compilation its first run paid for — that is the daemon's reason to
// exist over forking a bench binary per request.
//
// Lifecycle: Start() binds and spins the accept loop; Drain() (the
// SIGTERM contract, also reachable via the client's "drain" op) stops
// admission, finishes every already-admitted sweep, then closes
// sessions and joins all threads; Wait() blocks the daemon main until
// that shutdown completes. Overload never hangs a client: admission
// beyond queue + in-flight capacity answers "rejected"/"overloaded"
// immediately.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kerncap/intake.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "suite/figures.hpp"

namespace amdmb::serve {

struct ServerConfig {
  std::string socket_path;
  std::size_t max_queue = 16;    ///< AMDMB_SERVE_QUEUE.
  unsigned max_inflight = 1;     ///< AMDMB_SERVE_INFLIGHT.
  /// Figure definitions served; null = suite::figures::Registry().
  /// Tests inject a tiny registry with controllable curves here.
  const std::vector<suite::figures::FigureDef>* registry = nullptr;
  /// Fleet identity: >= 0 when this server is a supervised worker
  /// process. Worker mode answers heartbeat pings with this index and
  /// consults the fault injector's worker_crash / worker_hang sites on
  /// each ping, so seeded kill/hang scenarios are reproducible.
  int worker_index = -1;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, listens, and starts the accept loop. A stale
  /// socket file left by a crashed daemon is detected (connect probe
  /// refused) and unlinked; a path owned by a *live* daemon is a typed
  /// ConfigError, never a silent takeover. Throws ConfigError on other
  /// socket errors too.
  void Start();

  /// Stops admission and blocks until every admitted sweep has
  /// finished. Safe from session threads (the "drain" op) and signal
  /// polling loops alike; concurrent callers all block until done.
  void BeginDrain();

  /// True once BeginDrain has been entered (the daemon main polls this
  /// alongside its signal flag).
  bool DrainRequested() const;

  /// BeginDrain + full shutdown: close the listener and every session,
  /// join all threads. Main-thread only (joins session threads).
  void Drain();

  ServeStats Stats() const;
  const std::string& SocketPath() const { return config_.socket_path; }

 private:
  void AcceptLoop();
  void RunSession(std::shared_ptr<Session> session);
  void HandleSubmit(const std::shared_ptr<Session>& session,
                    const Request& request);
  void HandleCharacterize(const std::shared_ptr<Session>& session,
                          const Request& request);
  void HandlePing(const std::shared_ptr<Session>& session,
                  const Request& request);
  const suite::figures::FigureDef* FindFigure(const std::string& slug) const;
  void RunSweep(const std::shared_ptr<Session>& session, std::uint64_t id,
                const suite::figures::FigureDef& def, bool quick,
                bool adaptive);
  void RunCharacterize(const std::shared_ptr<Session>& session,
                       std::uint64_t id,
                       const std::shared_ptr<const kerncap::Prepared>& prepared,
                       bool quick, bool adaptive);

  ServerConfig config_;
  Scheduler scheduler_;
  ResultStore store_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stop_accept_{false};
  std::atomic<bool> drain_requested_{false};
  std::once_flag drain_once_;
  std::once_flag shutdown_once_;

  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;
};

}  // namespace amdmb::serve
