// One connected peer: buffered line reads and mutex-serialized line
// writes over a Unix-domain stream socket.
//
// Writes come from two kinds of threads — the session's own read loop
// (accepted / rejected / stats events) and scheduler workers streaming
// a sweep's events — so WriteLine locks; each event stays one atomic
// line. A client that disconnects mid-sweep must not kill the daemon:
// sends use MSG_NOSIGNAL (no SIGPIPE) and a failed write just marks the
// session dead, the sweep runs to completion for the cache's benefit.
//
// Reads are bounded two ways: a line longer than kMaxLineBytes marks
// the session Overflowed and closes the read side (the caller answers
// with a typed protocol_error before closing — an unterminated garbage
// stream can never grow the buffer without limit), and ReadLine takes
// an optional timeout so heartbeat and deadline loops never block
// forever on a hung peer.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace amdmb::serve {

/// Hard cap on one NDJSON line. Large enough for any "done" event
/// (a full-sweep figure document is well under a megabyte), small
/// enough that a malicious or broken peer cannot exhaust memory.
inline constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Outcome of a bounded read.
enum class ReadStatus {
  kLine,     ///< A complete line was returned.
  kTimeout,  ///< The timeout expired with no complete line.
  kClosed,   ///< EOF, socket error, or line-length overflow.
};

class Session {
 public:
  /// Takes ownership of the connected socket descriptor.
  explicit Session(int fd) : fd_(fd) {}
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Next '\n'-terminated line (terminator stripped); nullopt on EOF,
  /// error, or overflow (check Overflowed()). Blocks.
  std::optional<std::string> ReadLine();

  /// Bounded read: waits at most `timeout_ms` (-1 = forever) for a
  /// complete line into *line. Partial input is kept across timeouts.
  ReadStatus ReadLine(std::string* line, int timeout_ms);

  /// Sends `line` plus '\n' as one write. Returns false (and marks the
  /// session dead) when the peer is gone; later calls are no-ops.
  bool WriteLine(std::string_view line);

  bool Alive() const;

  /// True once a read hit the kMaxLineBytes bound; the session is
  /// unusable for further reads and should be answered with a typed
  /// protocol_error, then closed.
  bool Overflowed() const { return overflowed_; }

  /// Shuts the socket down (unblocks a ReadLine stuck in recv).
  void Close();

  /// The underlying descriptor (the supervisor snapshots these so a
  /// forked worker child can close inherited session fds).
  int fd() const { return fd_; }

 private:
  int fd_;
  mutable std::mutex mutex_;  ///< Guards writes, alive_, and fd_ close.
  bool alive_ = true;
  bool overflowed_ = false;
  std::string buffer_;  ///< Bytes read past the last returned line.
};

}  // namespace amdmb::serve
