// One connected client: buffered line reads and mutex-serialized line
// writes over a Unix-domain stream socket.
//
// Writes come from two kinds of threads — the session's own read loop
// (accepted / rejected / stats events) and scheduler workers streaming
// a sweep's events — so WriteLine locks; each event stays one atomic
// line. A client that disconnects mid-sweep must not kill the daemon:
// sends use MSG_NOSIGNAL (no SIGPIPE) and a failed write just marks the
// session dead, the sweep runs to completion for the cache's benefit.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace amdmb::serve {

class Session {
 public:
  /// Takes ownership of the connected socket descriptor.
  explicit Session(int fd) : fd_(fd) {}
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Next '\n'-terminated line (terminator stripped); nullopt on EOF or
  /// error. Blocks.
  std::optional<std::string> ReadLine();

  /// Sends `line` plus '\n' as one write. Returns false (and marks the
  /// session dead) when the peer is gone; later calls are no-ops.
  bool WriteLine(std::string_view line);

  bool Alive() const;

  /// Shuts the socket down (unblocks a ReadLine stuck in recv).
  void Close();

 private:
  int fd_;
  mutable std::mutex mutex_;  ///< Guards writes, alive_, and fd_ close.
  bool alive_ = true;
  std::string buffer_;  ///< Bytes read past the last returned line.
};

}  // namespace amdmb::serve
