// Consistent-hash routing of submits to worker slots.
//
// Submits are keyed by normalized figure slug so every request for a
// figure lands on the same worker and that worker's exec::KernelCache
// stays hot. The ring places `vnodes` virtual points per slot; a key
// routes to the first point clockwise from its hash whose slot is
// eligible. Two properties the fleet relies on:
//
//   * Deterministic: the mapping is a pure function of (worker count,
//     key, eligibility mask) — identical across runs and processes.
//   * Minimal movement: when a worker dies, only its keys move (to the
//     next point on the ring); the other workers keep their caches.
//
// tt-umd's cluster-descriptor/remote-device split is the reference for
// keeping "which worker" (routing) separate from "which request"
// (execution); see PAPERS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace amdmb::serve {

class HashRing {
 public:
  /// A ring over `workers` slots with `vnodes` points per slot.
  explicit HashRing(unsigned workers, unsigned vnodes = 16);

  unsigned Workers() const { return workers_; }

  /// First eligible slot clockwise from hash(key); nullopt when no slot
  /// is eligible. `eligible` must have one entry per slot.
  std::optional<unsigned> Route(std::string_view key,
                                const std::vector<bool>& eligible) const;

  /// Routing with every slot eligible.
  std::optional<unsigned> Route(std::string_view key) const;

 private:
  struct Point {
    std::uint64_t hash;
    unsigned slot;
  };

  unsigned workers_;
  std::vector<Point> points_;  ///< Sorted by hash.
};

}  // namespace amdmb::serve
