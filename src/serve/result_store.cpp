#include "serve/result_store.hpp"

#include "common/stats.hpp"
#include "common/status.hpp"

namespace amdmb::serve {

ResultStore::ResultStore(std::size_t window) : window_(window) {
  Require(window >= 1, "ResultStore: window must be >= 1");
}

void ResultStore::RecordCompleted(const std::string& figure,
                                  double wall_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  FigureSamples& samples = samples_[figure];
  samples.window.push_back(wall_seconds);
  if (samples.window.size() > window_) samples.window.pop_front();
  ++samples.total;
  ++completed_;
}

void ResultStore::RecordFailed(const std::string& figure) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.try_emplace(figure);  // The figure shows up with count 0.
  ++failed_;
}

void ResultStore::RecordRejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

std::uint64_t ResultStore::Completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::uint64_t ResultStore::Failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::uint64_t ResultStore::Rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::size_t ResultStore::RetainedSamples(const std::string& figure) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = samples_.find(figure);
  return it == samples_.end() ? 0 : it->second.window.size();
}

std::vector<FigureLatency> ResultStore::Latencies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FigureLatency> out;
  out.reserve(samples_.size());
  for (const auto& [figure, samples] : samples_) {
    FigureLatency l;
    l.figure = figure;
    l.count = static_cast<std::size_t>(samples.total);
    if (!samples.window.empty()) {
      const std::vector<double> recent(samples.window.begin(),
                                       samples.window.end());
      l.p50_seconds = Percentile(recent, 50.0);
      l.p90_seconds = Percentile(recent, 90.0);
      l.p99_seconds = Percentile(recent, 99.0);
    }
    out.push_back(std::move(l));
  }
  return out;
}

}  // namespace amdmb::serve
