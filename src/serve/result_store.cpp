#include "serve/result_store.hpp"

#include "common/stats.hpp"

namespace amdmb::serve {

void ResultStore::RecordCompleted(const std::string& figure,
                                  double wall_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_[figure].push_back(wall_seconds);
  ++completed_;
}

void ResultStore::RecordFailed(const std::string& figure) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.try_emplace(figure);  // The figure shows up with count 0.
  ++failed_;
}

void ResultStore::RecordRejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

std::uint64_t ResultStore::Completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::uint64_t ResultStore::Failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::uint64_t ResultStore::Rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::vector<FigureLatency> ResultStore::Latencies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FigureLatency> out;
  out.reserve(samples_.size());
  for (const auto& [figure, samples] : samples_) {
    FigureLatency l;
    l.figure = figure;
    l.count = samples.size();
    if (!samples.empty()) {
      l.p50_seconds = Percentile(samples, 50.0);
      l.p90_seconds = Percentile(samples, 90.0);
      l.p99_seconds = Percentile(samples, 99.0);
    }
    out.push_back(std::move(l));
  }
  return out;
}

}  // namespace amdmb::serve
