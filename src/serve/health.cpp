#include "serve/health.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace amdmb::serve {

std::string_view ToString(WorkerState state) {
  switch (state) {
    case WorkerState::kStarting: return "starting";
    case WorkerState::kHealthy: return "healthy";
    case WorkerState::kDegraded: return "degraded";
    case WorkerState::kDead: return "dead";
  }
  throw SimError("ToString(WorkerState): unknown value");
}

double RestartBackoffMs(const HealthPolicy& policy, unsigned restarts) {
  Check(restarts >= 1, "RestartBackoffMs: restarts is 1-based");
  double delay = policy.backoff_base_ms;
  for (unsigned i = 1; i < restarts && delay < policy.backoff_cap_ms; ++i) {
    delay *= 2.0;
  }
  return std::min(delay, policy.backoff_cap_ms);
}

void HealthTracker::OnSpawned() {
  if (spawned_once_) ++restarts_;
  spawned_once_ = true;
  state_ = WorkerState::kStarting;
  misses_ = 0;
}

void HealthTracker::OnPong() {
  state_ = WorkerState::kHealthy;
  misses_ = 0;
}

bool HealthTracker::OnMiss() {
  if (state_ == WorkerState::kDead) return false;
  ++misses_;
  // A worker that is still binding its socket has answered nothing yet;
  // give it twice the running budget before declaring the spawn failed.
  const unsigned limit = state_ == WorkerState::kStarting
                             ? policy_.miss_threshold * 2
                             : policy_.miss_threshold;
  if (misses_ >= limit) {
    state_ = WorkerState::kDead;
    return true;
  }
  if (state_ != WorkerState::kStarting) state_ = WorkerState::kDegraded;
  return false;
}

void HealthTracker::OnExit() {
  state_ = WorkerState::kDead;
  misses_ = 0;
}

}  // namespace amdmb::serve
