// Client side of the amdmb_serve protocol: connect, submit a figure and
// stream its events, fetch stats, request a drain — plus a deterministic
// closed-loop load generator for throughput / tail-latency measurement
// (the amdmb_client `bench` verb).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace amdmb::serve {

class Client {
 public:
  /// Connects to a daemon. Throws ConfigError when nothing listens.
  static Client Connect(const std::string& socket_path);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Called for every streamed event of a submit (accepted, progress,
  /// point, profile) before the terminal event is returned.
  using EventCallback = std::function<void(const Event&)>;

  /// Submits one figure and blocks until its terminal event — done,
  /// rejected, or error — which is returned. Throws ConfigError if the
  /// daemon hangs up mid-stream.
  Event Submit(const std::string& figure, bool quick, int priority,
               const EventCallback& on_event = {});

  /// One stats round-trip.
  ServeStats Stats();

  /// Asks the daemon to drain; blocks until every admitted sweep is
  /// done. Returns the daemon's completed-request count.
  std::uint64_t Drain();

 private:
  explicit Client(int fd) : session_(std::make_unique<Session>(fd)) {}

  Event NextEvent();

  std::unique_ptr<Session> session_;
};

/// Deterministic load-generator configuration: the request sequence
/// (figure choice and priority per request) is a pure function of
/// `seed`, so two runs against equally-configured daemons issue the
/// identical stream.
struct LoadGenOptions {
  std::string socket_path;
  std::size_t requests = 8;
  unsigned concurrency = 1;
  std::uint64_t seed = 1;
  bool quick = true;
  /// Figures the generator draws from (round-robin-free, seeded picks).
  std::vector<std::string> figures = {"fig_7", "fig_11", "fig_13"};
};

struct LoadGenReport {
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< Completed requests per second.
  double p50_seconds = 0.0;     ///< Completed-request latency tails.
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;

  /// Human-readable summary block.
  std::string Render() const;
};

/// Runs the closed-loop generator: `concurrency` workers, each with its
/// own connection, pull from the seeded request list and submit until it
/// is exhausted. Throws ConfigError when the daemon is unreachable.
LoadGenReport RunLoadGenerator(const LoadGenOptions& options);

}  // namespace amdmb::serve
