// Client side of the amdmb_serve protocol: connect, submit a figure and
// stream its events, fetch stats, request a drain — plus a deterministic
// closed-loop load generator for throughput / tail-latency measurement
// (the amdmb_client `bench` verb).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace amdmb::serve {

class Client {
 public:
  /// Connects to a daemon. Throws ConfigError when nothing listens.
  /// `retries` > 0 re-attempts the connect that many times with capped
  /// exponential backoff (50 ms doubling, 1 s ceiling) — for racing a
  /// daemon that is still binding its socket. Default is fail-fast.
  static Client Connect(const std::string& socket_path,
                        unsigned retries = 0);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Called for every streamed event of a submit (accepted, progress,
  /// point, profile) before the terminal event is returned.
  using EventCallback = std::function<void(const Event&)>;

  /// Submits one figure and blocks until its terminal event — done,
  /// rejected, or error — which is returned. Throws ConfigError if the
  /// daemon hangs up mid-stream.
  Event Submit(const std::string& figure, bool quick, int priority,
               const EventCallback& on_event = {});

  /// Adaptive-aware overload: `adaptive` puts "adaptive":true on the
  /// request, so the daemon refines (coarse pass + bisection) instead
  /// of sweeping densely and streams `refine` wave events.
  Event Submit(const std::string& figure, bool quick, bool adaptive,
               int priority, const EventCallback& on_event = {});

  /// Submits raw kernel IL for characterization; same streaming and
  /// terminal-event contract as Submit. An oversized payload is turned
  /// into a local rejected event without ever reaching the daemon (see
  /// OversizedCharacterize).
  Event Characterize(const std::string& il, bool quick, int priority,
                     const EventCallback& on_event = {});

  /// Adaptive-aware overload of Characterize (see the Submit overload).
  Event Characterize(const std::string& il, bool quick, bool adaptive,
                     int priority, const EventCallback& on_event = {});

  /// One stats round-trip.
  ServeStats Stats();

  /// Asks the daemon to drain; blocks until every admitted sweep is
  /// done. Returns the daemon's completed-request count.
  std::uint64_t Drain();

  /// Chaos: asks a fleet supervisor to SIGKILL worker `index`; blocks
  /// until the "killed" acknowledgement. Throws ConfigError when the
  /// daemon is not a supervisor or the index is out of range.
  void KillWorker(unsigned index);

 private:
  explicit Client(int fd) : session_(std::make_unique<Session>(fd)) {}

  Event NextEvent();

  std::unique_ptr<Session> session_;
};

/// Client-side payload guard: a characterize request whose serialized
/// line would exceed the daemon's request-line bound (kMaxLineBytes)
/// can never be admitted — the daemon would drop the connection with a
/// protocol error after buffering megabytes. This returns the typed
/// terminal event ("rejected", code "payload_too_large") such a payload
/// deserves, or nullopt when the payload fits. Callers check it BEFORE
/// connecting.
std::optional<Event> OversizedCharacterize(const std::string& il,
                                           bool quick, int priority);

/// Deterministic load-generator configuration: the request sequence
/// (figure choice and priority per request) is a pure function of
/// `seed`, so two runs against equally-configured daemons issue the
/// identical stream.
struct LoadGenOptions {
  std::string socket_path;
  std::size_t requests = 8;
  unsigned concurrency = 1;
  std::uint64_t seed = 1;
  bool quick = true;
  /// Figures the generator draws from (round-robin-free, seeded picks).
  std::vector<std::string> figures = {"fig_7", "fig_11", "fig_13"};
  /// Connect retries for each generator connection (see Client::Connect).
  unsigned connect_retries = 0;
  /// Chaos mode (amdmb_client --kill-worker): SIGKILL this many workers
  /// during the run. Kill points (request index) and targets (worker
  /// slot) are drawn from the same seed as the request plan, so a chaos
  /// run is replayable. Requires a fleet daemon (stats report workers).
  unsigned kill_workers = 0;
};

struct LoadGenReport {
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  std::size_t worker_lost = 0;        ///< error kind=worker_lost.
  std::size_t deadline_exceeded = 0;  ///< error kind=deadline_exceeded.
  std::size_t kills = 0;              ///< Chaos kill_worker ops issued.
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< Completed requests per second.
  double p50_seconds = 0.0;     ///< Completed-request latency tails.
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Completed / (requests - rejected): the fraction of admitted
  /// requests that survived the chaos to a done event.
  double availability = 0.0;

  /// Human-readable summary block.
  std::string Render() const;
};

/// Runs the closed-loop generator: `concurrency` workers, each with its
/// own connection, pull from the seeded request list and submit until it
/// is exhausted. Throws ConfigError when the daemon is unreachable.
LoadGenReport RunLoadGenerator(const LoadGenOptions& options);

}  // namespace amdmb::serve
