#include "serve/scheduler.hpp"

#include <utility>

#include "common/status.hpp"

namespace amdmb::serve {

std::string_view ToString(Admission admission) {
  switch (admission) {
    case Admission::kAccepted: return "accepted";
    case Admission::kRejectedOverloaded: return "overloaded";
    case Admission::kRejectedDraining: return "draining";
  }
  throw SimError("ToString(Admission): unknown value");
}

Scheduler::Scheduler(std::size_t max_queue, unsigned max_inflight)
    : max_queue_(max_queue), max_inflight_(max_inflight) {
  Require(max_inflight >= 1, "Scheduler: need at least one in-flight slot");
  workers_.reserve(max_inflight);
  for (unsigned i = 0; i < max_inflight; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() { Shutdown(); }

Scheduler::Ticket Scheduler::Submit(int priority, Job job) {
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      ticket.admission = Admission::kRejectedDraining;
      return ticket;
    }
    // Outstanding = queued + executing; comparing against total capacity
    // keeps the verdict independent of worker pickup timing.
    if (queue_.size() + in_flight_ >= max_queue_ + max_inflight_) {
      ticket.admission = Admission::kRejectedOverloaded;
      return ticket;
    }
    ticket.admission = Admission::kAccepted;
    ticket.id = next_id_++;
    queue_.push_back({ticket.id, priority, std::move(job)});
    ticket.queue_depth = queue_.size();
  }
  work_ready_.notify_one();
  return ticket;
}

void Scheduler::StopAdmission() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

void Scheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void Scheduler::Shutdown() {
  StopAdmission();
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t Scheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

unsigned Scheduler::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::size_t Scheduler::PickLocked() const {
  std::size_t best = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (best == queue_.size() ||
        queue_[i].priority > queue_[best].priority ||
        (queue_[i].priority == queue_[best].priority &&
         queue_[i].id < queue_[best].id)) {
      best = i;
    }
  }
  return best;
}

void Scheduler::WorkerLoop() {
  for (;;) {
    Job job;
    std::uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left.
      const std::size_t pick = PickLocked();
      job = std::move(queue_[pick].job);
      id = queue_[pick].id;
      queue_.erase(queue_.begin() +
                   static_cast<std::deque<Entry>::difference_type>(pick));
      ++in_flight_;
    }
    job(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

}  // namespace amdmb::serve
