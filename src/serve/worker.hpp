// One supervised worker process of the benchmark fleet.
//
// A worker is a plain serve::Server in its own process: forked (not
// exec'd) from the supervisor so it inherits the in-process figure
// registry — including test-injected ones — yet owns a private
// exec::KernelCache, scheduler, and result store. Crashing or hanging a
// worker therefore loses only that worker's in-flight sweeps, never the
// fleet. Each worker listens on `<base>.w<index>` and identifies itself
// through ServerConfig::worker_index, which also arms the seeded
// worker_crash / worker_hang fault sites on its heartbeat path.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "suite/figures.hpp"

namespace amdmb::serve {

struct WorkerConfig {
  unsigned index = 0;
  std::string socket_path;  ///< `<supervisor socket>.w<index>`.
  std::size_t max_queue = 16;
  unsigned max_inflight = 1;
  /// Null = suite registry; the supervisor forwards its own pointer so
  /// forked workers serve exactly the figures the parent was built with.
  const std::vector<suite::figures::FigureDef>* registry = nullptr;
};

/// Socket path for worker `index` under a supervisor bound to `base`.
std::string WorkerSocketPath(const std::string& base, unsigned index);

/// Runs a worker to completion in the current process: serve until
/// SIGTERM, drain, then _exit(0). Never returns; exits with a nonzero
/// status if the server cannot start.
[[noreturn]] void RunWorkerMain(const WorkerConfig& config);

/// Forks a worker process running RunWorkerMain. The child first closes
/// every fd in `close_in_child` (the parent's listener, sessions, and
/// control connections — a forked copy of those would keep peers from
/// seeing EOF). Returns the child pid; throws TransientError if fork
/// fails.
pid_t SpawnWorker(const WorkerConfig& config,
                  const std::vector<int>& close_in_child);

}  // namespace amdmb::serve
