// Completion bookkeeping for the daemon: per-figure latency samples and
// the completed / failed / rejected counters behind the stats event.
// Thread-safe — worker threads record completions while session threads
// read snapshots.
//
// Latency samples are evicted FIFO beyond `window` entries per figure,
// so a long-lived daemon holds bounded memory no matter how many
// requests it serves: percentiles cover the most recent `window`
// completions while FigureLatency::count stays cumulative.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace amdmb::serve {

class ResultStore {
 public:
  /// Default per-figure latency window (recent samples retained for
  /// percentile estimates).
  static constexpr std::size_t kDefaultWindow = 512;

  explicit ResultStore(std::size_t window = kDefaultWindow);

  /// Records one finished sweep (wall-clock seconds from accept to done).
  void RecordCompleted(const std::string& figure, double wall_seconds);
  void RecordFailed(const std::string& figure);
  void RecordRejected();

  std::uint64_t Completed() const;
  std::uint64_t Failed() const;
  std::uint64_t Rejected() const;

  /// Retained sample count for one figure (<= window; testing hook).
  std::size_t RetainedSamples(const std::string& figure) const;

  /// Per-figure latency percentiles (p50/p90/p99 via common/stats) over
  /// the retained window, with cumulative completion counts; sorted by
  /// figure slug for deterministic stats output.
  std::vector<FigureLatency> Latencies() const;

 private:
  struct FigureSamples {
    std::deque<double> window;   ///< Most recent `window_` latencies.
    std::uint64_t total = 0;     ///< Cumulative completions.
  };

  const std::size_t window_;
  mutable std::mutex mutex_;
  std::map<std::string, FigureSamples> samples_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace amdmb::serve
