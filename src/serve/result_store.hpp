// Completion bookkeeping for the daemon: per-figure latency samples and
// the completed / failed / rejected counters behind the stats event.
// Thread-safe — worker threads record completions while session threads
// read snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace amdmb::serve {

class ResultStore {
 public:
  /// Records one finished sweep (wall-clock seconds from accept to done).
  void RecordCompleted(const std::string& figure, double wall_seconds);
  void RecordFailed(const std::string& figure);
  void RecordRejected();

  std::uint64_t Completed() const;
  std::uint64_t Failed() const;
  std::uint64_t Rejected() const;

  /// Per-figure latency percentiles (p50/p90/p99 via common/stats),
  /// sorted by figure slug for deterministic stats output.
  std::vector<FigureLatency> Latencies() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<double>> samples_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace amdmb::serve
