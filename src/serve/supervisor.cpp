#include "serve/supervisor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <exception>
#include <limits>
#include <utility>

#include "common/status.hpp"
#include "common/version.hpp"
#include "kerncap/intake.hpp"
#include "serve/net.hpp"
#include "serve/worker.hpp"

namespace amdmb::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t MsUntil(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               Clock::now())
      .count();
}

int ClampTimeout(std::int64_t ms) {
  if (ms < 1) return 1;
  if (ms > std::numeric_limits<int>::max()) return std::numeric_limits<int>::max();
  return static_cast<int>(ms);
}

/// Reaps `pid`, escalating to SIGKILL after `grace_ms`. A worker whose
/// seeded hang left a session thread asleep can never finish its own
/// drain; the supervisor must not inherit that hang.
void ReapWithGrace(pid_t pid, int grace_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(grace_ms);
  while (Clock::now() < deadline) {
    if (::waitpid(pid, nullptr, WNOHANG) == pid) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config)
    : config_(std::move(config)), ring_(config_.workers) {
  Require(!config_.socket_path.empty(), "supervisor: empty socket path");
  Require(config_.workers >= 1, "supervisor: need at least one worker");
  if (config_.registry == nullptr) {
    config_.registry = &suite::figures::Registry();
  }
}

Supervisor::~Supervisor() { Drain(); }

void Supervisor::Start() {
  // Bind the client listener first: a stale-socket / live-daemon error
  // must surface before any child is forked.
  listen_fd_ = MakeListenSocket(config_.socket_path);
  slots_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    auto slot = std::make_unique<Slot>(config_.health);
    slot->index = i;
    slot->socket_path = WorkerSocketPath(config_.socket_path, i);
    slots_.push_back(std::move(slot));
  }
  for (const std::unique_ptr<Slot>& slot : slots_) Respawn(*slot);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  health_thread_ = std::thread([this] { HealthLoop(); });
}

void Supervisor::AcceptLoop() {
  while (!stop_accept_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check stop flag.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto session = std::make_shared<Session>(fd);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stop_accept_.load(std::memory_order_relaxed)) break;
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session = std::move(session)]() mutable {
          RunSession(std::move(session));
        });
  }
}

void Supervisor::RunSession(std::shared_ptr<Session> session) {
  while (std::optional<std::string> line = session->ReadLine()) {
    if (line->empty()) continue;
    Request request;
    try {
      request = ParseRequest(*line);
    } catch (const std::exception& e) {
      session->WriteLine(
          SerializeError(0, ErrorKind::kProtocolError, e.what()));
      continue;
    }
    switch (request.op) {
      case Request::Op::kSubmit:
        HandleSubmit(session, request);
        break;
      case Request::Op::kCharacterize:
        HandleCharacterize(session, request);
        break;
      case Request::Op::kStats:
        session->WriteLine(SerializeStats(Stats()));
        break;
      case Request::Op::kDrain:
        BeginDrain();
        session->WriteLine(SerializeDrained(store_.Completed()));
        break;
      case Request::Op::kPing: {
        // Liveness probe of the supervisor itself: echo the seq with
        // cluster-level terminal counters.
        PongStats pong;
        pong.completed = store_.Completed();
        pong.failed = store_.Failed();
        session->WriteLine(SerializePong(0, request.seq, pong));
        break;
      }
      case Request::Op::kKillWorker:
        HandleKillWorker(session, request);
        break;
    }
  }
  if (session->Overflowed()) {
    session->WriteLine(SerializeError(
        0, ErrorKind::kProtocolError,
        "request line exceeds " + std::to_string(kMaxLineBytes) +
            " bytes; closing session"));
    session->Close();
  }
}

const suite::figures::FigureDef* Supervisor::FindFigure(
    const std::string& slug) const {
  const std::string key = suite::figures::NormalizeSlug(slug);
  for (const suite::figures::FigureDef& def : *config_.registry) {
    if (suite::figures::NormalizeSlug(def.slug) == key) return &def;
  }
  return nullptr;
}

std::optional<unsigned> Supervisor::AdmitAndRoute(
    const std::string& key, const std::vector<bool>& tried,
    std::string* reason) {
  if (drain_requested_.load(std::memory_order_relaxed)) {
    *reason = "draining";
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(config_.worker_queue) +
      config_.worker_inflight;
  std::vector<bool> eligible(config_.workers, false);
  bool any_alive = false;
  bool any_untried_alive = false;
  for (unsigned i = 0; i < config_.workers; ++i) {
    const Slot& slot = *slots_[i];
    const bool alive =
        slot.pid > 0 && slot.health.state() != WorkerState::kDead;
    any_alive = any_alive || alive;
    if (!alive || tried[i]) continue;
    any_untried_alive = true;
    if (slot.outstanding < capacity) eligible[i] = true;
  }
  const std::optional<unsigned> target = ring_.Route(key, eligible);
  if (!target.has_value()) {
    // Deterministic verdict in the fleet state: no live worker at all
    // (or every live one already failed this request) => unavailable;
    // live but every untried worker at capacity => overloaded.
    *reason = any_alive && any_untried_alive ? "overloaded" : "unavailable";
    return std::nullopt;
  }
  ++slots_[*target]->outstanding;
  return target;
}

void Supervisor::HandleSubmit(const std::shared_ptr<Session>& session,
                              const Request& request) {
  const suite::figures::FigureDef* def = FindFigure(request.figure);
  if (def == nullptr) {
    store_.RecordRejected();
    session->WriteLine(SerializeRejected("unknown_figure", request.figure));
    return;
  }
  ForwardRequest(session, SerializeRequest(request),
                 suite::figures::NormalizeSlug(def->slug), def->slug);
}

void Supervisor::HandleCharacterize(const std::shared_ptr<Session>& session,
                                    const Request& request) {
  // No supervisor-side intake: the routed worker runs the full kerncap
  // pipeline and its typed invalid_kernel verdict forwards verbatim
  // through the kRejected arm below. Routing by content hash keeps a
  // resubmitted kernel on the worker whose cache already compiled it.
  const std::string key = kerncap::ContentHash(request.il);
  ForwardRequest(session, SerializeRequest(request), key,
                 "kerncap_" + key);
}

void Supervisor::ForwardRequest(const std::shared_ptr<Session>& session,
                                const std::string& raw,
                                const std::string& key,
                                const std::string& stat_label) {
  // Exactly-once: every path below emits one terminal event, asserted
  // here so a future refactor cannot silently double-terminate.
  bool terminal_sent = false;
  const auto terminal = [&](const std::string& event_line) {
    Check(!terminal_sent,
          "supervisor: second terminal event for one submit");
    terminal_sent = true;
    session->WriteLine(event_line);
  };

  const auto release = [&](unsigned worker) {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = *slots_[worker];
    if (slot.outstanding > 0) --slot.outstanding;
  };

  std::vector<bool> tried(config_.workers, false);
  bool forwarded_accepted = false;
  const bool bounded = config_.deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(config_.deadline_ms);

  for (;;) {
    std::string reason;
    const std::optional<unsigned> target = AdmitAndRoute(key, tried, &reason);
    if (!target.has_value()) {
      store_.RecordRejected();
      terminal(SerializeRejected(reason, stat_label));
      return;
    }
    const unsigned w = *target;
    tried[w] = true;
    const int fd = ConnectUnixSocket(slots_[w]->socket_path);
    const std::shared_ptr<Session> conn =
        fd >= 0 ? std::make_shared<Session>(fd) : nullptr;
    if (conn == nullptr || !conn->WriteLine(raw)) {
      if (conn != nullptr) conn->Close();
      release(w);
      continue;  // Worker died between admission and connect: next slot.
    }
    std::uint64_t worker_id = 0;  // Worker-assigned request id, once known.
    bool streamed = false;        // Any progress/point/profile forwarded?
    std::string line;
    for (;;) {
      int timeout_ms = -1;
      if (bounded) {
        const std::int64_t remaining = MsUntil(deadline);
        if (remaining <= 0) {
          conn->Close();  // Abandon: the worker finishes the sweep for
          release(w);     // its cache; nobody reads the result.
          store_.RecordFailed(stat_label);
          terminal(SerializeError(
              worker_id, ErrorKind::kDeadlineExceeded,
              "deadline of " + std::to_string(config_.deadline_ms) +
                  " ms exceeded"));
          return;
        }
        timeout_ms = ClampTimeout(remaining);
      }
      const ReadStatus status = conn->ReadLine(&line, timeout_ms);
      if (status == ReadStatus::kTimeout) continue;  // Re-check deadline.
      if (status == ReadStatus::kClosed) {
        conn->Close();
        release(w);
        if (streamed) {
          // Mid-stream loss: re-running could double-report measured
          // points, so the request terminates as worker_lost.
          store_.RecordFailed(stat_label);
          terminal(SerializeError(
              worker_id, ErrorKind::kWorkerLost,
              "worker " + std::to_string(w) + " died mid-stream"));
          return;
        }
        break;  // Nothing streamed yet: fail over to the next worker.
      }
      Event event;
      try {
        event = ParseEvent(line);
      } catch (const std::exception&) {
        continue;  // A torn line from a dying worker; the close follows.
      }
      switch (event.type) {
        case EventType::kAccepted:
          worker_id =
              static_cast<std::uint64_t>(event.body.NumberOr("id", 0.0));
          // After a failover the retry worker re-accepts; the client
          // already saw one accepted event, so suppress the duplicate.
          if (!forwarded_accepted) {
            forwarded_accepted = true;
            session->WriteLine(line);
          }
          break;
        case EventType::kStatic:
        case EventType::kProgress:
        case EventType::kPoint:
        case EventType::kProfile:
        case EventType::kRefine:
          streamed = true;
          session->WriteLine(line);
          break;
        case EventType::kDone:
          release(w);
          store_.RecordCompleted(stat_label,
                                 event.body.NumberOr("wall_seconds", 0.0));
          terminal(line);
          return;
        case EventType::kRejected:
          // The worker filled up between our capacity check and its
          // own admission; forward its verdict verbatim.
          release(w);
          store_.RecordRejected();
          terminal(line);
          return;
        case EventType::kError:
          release(w);
          store_.RecordFailed(stat_label);
          terminal(line);
          return;
        default:
          break;  // pong/stats/drained never appear on a submit stream.
      }
    }
  }
}

void Supervisor::HandleKillWorker(const std::shared_ptr<Session>& session,
                                  const Request& request) {
  if (request.worker >= config_.workers) {
    session->WriteLine(SerializeError(
        0, ErrorKind::kProtocolError,
        "kill_worker: no worker " + std::to_string(request.worker) +
            " (fleet has " + std::to_string(config_.workers) + ")"));
    return;
  }
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    pid = slots_[request.worker]->pid;
  }
  if (pid > 0) ::kill(pid, SIGKILL);  // Health loop reaps and respawns.
  session->WriteLine(SerializeKilled(request.worker));
}

void Supervisor::HealthLoop() {
  while (!stop_health_.load(std::memory_order_relaxed)) {
    const Clock::time_point tick_end =
        Clock::now() + std::chrono::milliseconds(config_.health.heartbeat_ms);
    for (const std::unique_ptr<Slot>& slot : slots_) {
      if (stop_health_.load(std::memory_order_relaxed)) return;
      TickSlot(*slot);
    }
    while (!stop_health_.load(std::memory_order_relaxed) &&
           Clock::now() < tick_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

void Supervisor::TickSlot(Slot& slot) {
  pid_t pid = -1;
  WorkerState state = WorkerState::kDead;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    pid = slot.pid;
    state = slot.health.state();
  }
  if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == pid) {
    // The process is gone (seeded crash, kill_worker chaos, OOM, ...).
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      slot.pid = -1;
      slot.health.OnExit();
      slot.restart_due =
          Clock::now() + std::chrono::milliseconds(static_cast<std::int64_t>(
                             slot.health.NextBackoffMs()));
    }
    if (slot.control != nullptr) {
      slot.control->Close();
      slot.control.reset();
    }
    return;
  }
  if (state == WorkerState::kDead) {
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      due = slot.pid <= 0 && Clock::now() >= slot.restart_due;
    }
    if (due && !drain_requested_.load(std::memory_order_relaxed)) {
      Respawn(slot);
    }
    return;
  }
  // Ensure the persistent control connection (health thread only).
  if (slot.control == nullptr || !slot.control->Alive()) {
    const int fd = ConnectUnixSocket(slot.socket_path);
    slot.control = fd >= 0 ? std::make_shared<Session>(fd) : nullptr;
  }
  if (slot.control == nullptr) {
    RecordMiss(slot);  // Not listening yet (starting) or just died.
    return;
  }
  Request ping;
  ping.op = Request::Op::kPing;
  ping.seq = ++slot.ping_seq;  // Monotonic per slot: the fault key
                               // "w<i>#<seq>" never repeats, so a seeded
                               // schedule fires exactly once per seq.
  if (!slot.control->WriteLine(SerializeRequest(ping))) {
    slot.control->Close();
    slot.control.reset();
    RecordMiss(slot);
    return;
  }
  const Clock::time_point pong_deadline =
      Clock::now() +
      std::chrono::milliseconds(std::max<std::uint64_t>(
          1, config_.health.heartbeat_ms / 2));
  std::string line;
  for (;;) {
    const std::int64_t remaining = MsUntil(pong_deadline);
    if (remaining <= 0) {
      RecordMiss(slot);
      return;
    }
    const ReadStatus status =
        slot.control->ReadLine(&line, ClampTimeout(remaining));
    if (status == ReadStatus::kTimeout) {
      RecordMiss(slot);
      return;
    }
    if (status == ReadStatus::kClosed) {
      slot.control->Close();
      slot.control.reset();
      RecordMiss(slot);
      return;
    }
    try {
      const Event event = ParseEvent(line);
      if (event.type == EventType::kPong &&
          static_cast<std::uint64_t>(event.body.NumberOr("seq", 0.0)) ==
              slot.ping_seq) {
        std::lock_guard<std::mutex> lock(slots_mutex_);
        slot.health.OnPong();
        slot.last_pong.completed =
            static_cast<std::uint64_t>(event.body.NumberOr("completed", 0.0));
        slot.last_pong.failed =
            static_cast<std::uint64_t>(event.body.NumberOr("failed", 0.0));
        slot.last_pong.cache_hits = static_cast<std::uint64_t>(
            event.body.NumberOr("cache_hits", 0.0));
        slot.last_pong.cache_misses = static_cast<std::uint64_t>(
            event.body.NumberOr("cache_misses", 0.0));
        return;
      }
    } catch (const std::exception&) {
      // Torn line; keep reading until the pong deadline.
    }
    // A stale pong (older seq, discarded) also loops back here.
  }
}

void Supervisor::RecordMiss(Slot& slot) {
  bool died = false;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    died = slot.health.OnMiss();
  }
  if (died) MarkDead(slot, /*kill_process=*/true);
}

void Supervisor::MarkDead(Slot& slot, bool kill_process) {
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    pid = slot.pid;
  }
  if (kill_process && pid > 0) {
    ::kill(pid, SIGKILL);  // SIGKILL cannot be ignored; the reap is fast.
    ::waitpid(pid, nullptr, 0);
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slot.pid = -1;
    slot.restart_due =
        Clock::now() + std::chrono::milliseconds(static_cast<std::int64_t>(
                           slot.health.NextBackoffMs()));
  }
  if (slot.control != nullptr) {
    slot.control->Close();
    slot.control.reset();
  }
}

std::vector<int> Supervisor::FdsToCloseInChild() {
  std::vector<int> fds;
  if (listen_fd_ >= 0) fds.push_back(listen_fd_);
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const std::unique_ptr<Slot>& slot : slots_) {
      if (slot->control != nullptr) fds.push_back(slot->control->fd());
    }
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const std::shared_ptr<Session>& session : sessions_) {
      fds.push_back(session->fd());
    }
  }
  return fds;
}

void Supervisor::Respawn(Slot& slot) {
  WorkerConfig worker;
  worker.index = slot.index;
  worker.socket_path = slot.socket_path;
  worker.max_queue = config_.worker_queue;
  worker.max_inflight = config_.worker_inflight;
  worker.registry = config_.registry;
  pid_t pid = -1;
  try {
    pid = SpawnWorker(worker, FdsToCloseInChild());
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slot.restart_due =
        Clock::now() + std::chrono::milliseconds(static_cast<std::int64_t>(
                           slot.health.NextBackoffMs()));
    return;  // fork failed (transient); retried after the next backoff.
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  slot.pid = pid;
  ++slot.generation;
  slot.health.OnSpawned();
}

ServeStats Supervisor::Stats() const {
  ServeStats stats;
  stats.version = std::string(SuiteVersion());
  stats.max_queue = config_.worker_queue * config_.workers;
  stats.max_inflight = config_.worker_inflight * config_.workers;
  stats.completed = store_.Completed();
  stats.failed = store_.Failed();
  stats.rejected = store_.Rejected();
  stats.latencies = store_.Latencies();
  std::lock_guard<std::mutex> lock(slots_mutex_);
  std::uint64_t outstanding_total = 0;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    outstanding_total += slot->outstanding;
    stats.cache_hits += slot->last_pong.cache_hits;
    stats.cache_misses += slot->last_pong.cache_misses;
    WorkerStatus status;
    status.index = slot->index;
    status.state = std::string(ToString(slot->health.state()));
    status.pid = slot->pid;
    status.restarts = slot->health.restarts();
    status.outstanding = slot->outstanding;
    status.generation = slot->generation;
    stats.workers.push_back(std::move(status));
  }
  // The supervisor cannot see inside worker schedulers; routed-but-not-
  // terminal is the cluster's queue-depth proxy.
  stats.queue_depth = static_cast<std::size_t>(outstanding_total);
  const std::uint64_t touches = stats.cache_hits + stats.cache_misses;
  stats.cache_hit_rate =
      touches > 0 ? static_cast<double>(stats.cache_hits) /
                        static_cast<double>(touches)
                  : 0.0;
  return stats;
}

bool Supervisor::DrainRequested() const {
  return drain_requested_.load(std::memory_order_relaxed);
}

void Supervisor::BeginDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  std::call_once(drain_once_, [this] {
    // Stop the health loop first: no restarts mid-drain, and the
    // control sessions below are then safe to touch from this thread.
    stop_health_.store(true, std::memory_order_relaxed);
    if (health_thread_.joinable()) health_thread_.join();
    for (const std::unique_ptr<Slot>& slot : slots_) {
      pid_t pid = -1;
      {
        std::lock_guard<std::mutex> lock(slots_mutex_);
        pid = slot->pid;
      }
      if (pid <= 0) continue;
      bool drained = false;
      const int fd = ConnectUnixSocket(slot->socket_path);
      if (fd >= 0) {
        Session conn(fd);
        Request drain;
        drain.op = Request::Op::kDrain;
        if (conn.WriteLine(SerializeRequest(drain))) {
          std::string line;
          while (conn.ReadLine(&line, -1) == ReadStatus::kLine) {
            try {
              if (ParseEvent(line).type == EventType::kDrained) {
                drained = true;
                break;
              }
            } catch (const std::exception&) {
            }
          }
        }
        conn.Close();
      }
      if (!drained) ::kill(pid, SIGTERM);  // SIGTERM also drains.
      ReapWithGrace(pid, /*grace_ms=*/5000);
      {
        std::lock_guard<std::mutex> lock(slots_mutex_);
        slot->pid = -1;
        slot->health.OnExit();
      }
      if (slot->control != nullptr) {
        slot->control->Close();
        slot->control.reset();
      }
    }
  });
}

void Supervisor::Drain() {
  BeginDrain();
  std::call_once(shutdown_once_, [this] {
    stop_accept_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      ::unlink(config_.socket_path.c_str());
      listen_fd_ = -1;
    }
    std::vector<std::shared_ptr<Session>> sessions;
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions.swap(sessions_);
      threads.swap(session_threads_);
    }
    for (const std::shared_ptr<Session>& session : sessions) {
      session->Close();  // Unblocks ReadLine in every session thread.
    }
    for (std::thread& thread : threads) thread.join();
  });
}

}  // namespace amdmb::serve
