#include "serve/net.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/status.hpp"

namespace amdmb::serve {

namespace {

sockaddr_un MakeAddress(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError("serve: socket path too long: " + path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// A crashed daemon leaves its socket file behind; blindly unlinking
/// would also steal the address from a *live* daemon. Probe with a
/// connect: refused / no listener means stale (unlink it), success
/// means another daemon owns the path — a typed error, not a takeover.
void RemoveStaleSocket(const std::string& path, const sockaddr_un& addr) {
  if (::access(path.c_str(), F_OK) != 0) return;  // Nothing to remove.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) {
    throw ConfigError(std::string("serve: socket() failed: ") +
                      std::strerror(errno));
  }
  const int connected = ::connect(
      probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ::close(probe);
  if (connected == 0) {
    throw ConfigError("serve: socket path " + path +
                      " is owned by a live daemon (connect succeeded); "
                      "stop it or pick another --socket path");
  }
  ::unlink(path.c_str());  // Stale: no listener behind the file.
}

}  // namespace

int MakeListenSocket(const std::string& path) {
  const sockaddr_un addr = MakeAddress(path);
  RemoveStaleSocket(path, addr);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ConfigError(std::string("serve: socket() failed: ") +
                      std::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw ConfigError("serve: bind(" + path +
                      ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw ConfigError("serve: listen(" + path +
                      ") failed: " + std::strerror(err));
  }
  return fd;
}

int ConnectUnixSocket(const std::string& path) {
  const sockaddr_un addr = MakeAddress(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace amdmb::serve
