#include "serve/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include "common/status.hpp"
#include "serve/server.hpp"

namespace amdmb::serve {

namespace {

volatile std::sig_atomic_t g_worker_term = 0;

void OnWorkerTerm(int) { g_worker_term = 1; }

}  // namespace

std::string WorkerSocketPath(const std::string& base, unsigned index) {
  return base + ".w" + std::to_string(index);
}

void RunWorkerMain(const WorkerConfig& config) {
  // SIGTERM is the supervisor's drain order. SIGINT is ignored so a ^C
  // aimed at the process group reaches the supervisor first and shutdown
  // stays ordered (drain workers, then reap).
  std::signal(SIGTERM, OnWorkerTerm);
  std::signal(SIGINT, SIG_IGN);
  try {
    ServerConfig server;
    server.socket_path = config.socket_path;
    server.max_queue = config.max_queue;
    server.max_inflight = config.max_inflight;
    server.registry = config.registry;
    server.worker_index = static_cast<int>(config.index);
    Server daemon(std::move(server));
    daemon.Start();
    while (g_worker_term == 0 && !daemon.DrainRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    daemon.Drain();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amdmb worker %u: %s\n", config.index, e.what());
    std::_Exit(2);
  }
  // _Exit, not exit: the forked child must not run the parent's atexit
  // handlers or flush streams it shares with the supervisor.
  std::_Exit(0);
}

pid_t SpawnWorker(const WorkerConfig& config,
                  const std::vector<int>& close_in_child) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw TransientError(std::string("serve: fork() failed: ") +
                         std::strerror(errno));
  }
  if (pid == 0) {
    // Inherited copies of the supervisor's listener / session / control
    // fds would keep those sockets alive after the parent closes them;
    // drop them before serving anything.
    for (const int fd : close_in_child) ::close(fd);
    RunWorkerMain(config);  // Never returns.
  }
  return pid;
}

}  // namespace amdmb::serve
