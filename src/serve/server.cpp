#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <map>
#include <utility>

#include "adapt/refiner.hpp"
#include "common/status.hpp"
#include "common/version.hpp"
#include "exec/kernel_cache.hpp"
#include "fault/fault.hpp"
#include "kerncap/characterize.hpp"
#include "kerncap/static_analysis.hpp"
#include "report/json_sink.hpp"
#include "serve/net.hpp"

namespace amdmb::serve {

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      scheduler_(config_.max_queue, config_.max_inflight) {
  if (config_.registry == nullptr) {
    config_.registry = &suite::figures::Registry();
  }
  Require(!config_.socket_path.empty(), "serve: empty socket path");
}

Server::~Server() { Drain(); }

void Server::Start() {
  listen_fd_ = MakeListenSocket(config_.socket_path);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::AcceptLoop() {
  while (!stop_accept_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check stop flag.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto session = std::make_shared<Session>(fd);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stop_accept_.load(std::memory_order_relaxed)) break;
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session = std::move(session)]() mutable {
          RunSession(std::move(session));
        });
  }
}

void Server::RunSession(std::shared_ptr<Session> session) {
  while (std::optional<std::string> line = session->ReadLine()) {
    if (line->empty()) continue;
    Request request;
    try {
      request = ParseRequest(*line);
    } catch (const std::exception& e) {
      session->WriteLine(
          SerializeError(0, ErrorKind::kProtocolError, e.what()));
      continue;
    }
    switch (request.op) {
      case Request::Op::kSubmit:
        HandleSubmit(session, request);
        break;
      case Request::Op::kCharacterize:
        HandleCharacterize(session, request);
        break;
      case Request::Op::kStats:
        session->WriteLine(SerializeStats(Stats()));
        break;
      case Request::Op::kDrain:
        BeginDrain();
        session->WriteLine(SerializeDrained(store_.Completed()));
        break;
      case Request::Op::kPing:
        HandlePing(session, request);
        break;
      case Request::Op::kKillWorker:
        // Only the supervisor can kill fleet members.
        session->WriteLine(SerializeError(
            0, ErrorKind::kProtocolError,
            "kill_worker: this daemon does not supervise a fleet"));
        break;
    }
  }
  if (session->Overflowed()) {
    // An unterminated or oversized line: answer with a typed error and
    // drop the connection instead of buffering without limit.
    session->WriteLine(SerializeError(
        0, ErrorKind::kProtocolError,
        "request line exceeds " + std::to_string(kMaxLineBytes) +
            " bytes; closing session"));
    session->Close();
  }
}

void Server::HandlePing(const std::shared_ptr<Session>& session,
                        const Request& request) {
  if (config_.worker_index >= 0) {
    // Seeded chaos: a worker may be scheduled to crash or hang on this
    // very heartbeat. The key is supervisor-assigned (slot#seq), so the
    // schedule is a pure function of the AMDMB_FAULTS seed.
    if (const fault::FaultInjector* injector = fault::GlobalInjector()) {
      std::string key = "w";
      key += std::to_string(config_.worker_index);
      key += '#';
      key += std::to_string(request.seq);
      if (injector->ShouldFail(fault::FaultSite::kWorkerCrash, key)) {
        std::_Exit(3);  // Hard crash: no drain, no flush, no pong.
      }
      if (injector->ShouldFail(fault::FaultSite::kWorkerHang, key)) {
        // Stop answering heartbeats forever; the supervisor must
        // declare this worker dead and SIGKILL it.
        for (;;) std::this_thread::sleep_for(std::chrono::hours(24));
      }
    }
  }
  PongStats pong;
  pong.completed = store_.Completed();
  pong.failed = store_.Failed();
  const exec::KernelCacheStats cache = exec::KernelCache::Shared().Stats();
  pong.cache_hits = cache.hits;
  pong.cache_misses = cache.misses;
  session->WriteLine(SerializePong(
      config_.worker_index >= 0
          ? static_cast<unsigned>(config_.worker_index)
          : 0,
      request.seq, pong));
}

const suite::figures::FigureDef* Server::FindFigure(
    const std::string& slug) const {
  const std::string key = suite::figures::NormalizeSlug(slug);
  for (const suite::figures::FigureDef& def : *config_.registry) {
    if (suite::figures::NormalizeSlug(def.slug) == key) return &def;
  }
  return nullptr;
}

void Server::HandleSubmit(const std::shared_ptr<Session>& session,
                          const Request& request) {
  const suite::figures::FigureDef* def = FindFigure(request.figure);
  if (def == nullptr) {
    store_.RecordRejected();
    session->WriteLine(SerializeRejected("unknown_figure", request.figure));
    return;
  }
  const bool quick = request.quick;
  const bool adaptive = request.adaptive;
  // The worker could pick the job up before the accepted line is on the
  // wire; gate the sweep on it so events always follow the accept.
  auto admitted = std::make_shared<std::promise<void>>();
  auto gate = std::make_shared<std::shared_future<void>>(
      admitted->get_future().share());
  const Scheduler::Ticket ticket = scheduler_.Submit(
      request.priority,
      [this, session, def, quick, adaptive, gate](std::uint64_t id) {
        gate->wait();
        RunSweep(session, id, *def, quick, adaptive);
      });
  if (ticket.admission != Admission::kAccepted) {
    store_.RecordRejected();
    session->WriteLine(
        SerializeRejected(ToString(ticket.admission), def->slug));
    return;
  }
  session->WriteLine(
      SerializeAccepted(ticket.id, def->slug, ticket.queue_depth));
  admitted->set_value();
}

void Server::HandleCharacterize(const std::shared_ptr<Session>& session,
                                const Request& request) {
  // Intake runs inline on the session thread: it is cheap (caps bound
  // it) and the typed verdict must come back before admission, exactly
  // like an unknown figure slug does for submit.
  kerncap::AnalyzeResult analysis;
  try {
    analysis = kerncap::Analyze(request.il);
  } catch (const std::exception& e) {
    // Analyze never throws for malformed input; anything escaping it is
    // an internal bug, reported as such rather than crashing the session.
    session->WriteLine(SerializeError(0, ErrorKind::kSweepFailed, e.what()));
    return;
  }
  if (!analysis.ok()) {
    store_.RecordRejected();
    session->WriteLine(SerializeRejected(
        "invalid_kernel", analysis.hash,
        kerncap::ToString(analysis.rejection->reason),
        analysis.rejection->detail));
    return;
  }
  auto prepared = std::make_shared<const kerncap::Prepared>(
      std::move(*analysis.prepared));
  const bool quick = request.quick;
  const bool adaptive = request.adaptive;
  auto admitted = std::make_shared<std::promise<void>>();
  auto gate = std::make_shared<std::shared_future<void>>(
      admitted->get_future().share());
  const Scheduler::Ticket ticket = scheduler_.Submit(
      request.priority,
      [this, session, prepared, quick, adaptive, gate](std::uint64_t id) {
        gate->wait();
        RunCharacterize(session, id, prepared, quick, adaptive);
      });
  if (ticket.admission != Admission::kAccepted) {
    store_.RecordRejected();
    session->WriteLine(SerializeRejected(ToString(ticket.admission),
                                         kerncap::Slug(*prepared)));
    return;
  }
  session->WriteLine(SerializeAccepted(ticket.id, kerncap::Slug(*prepared),
                                       ticket.queue_depth));
  admitted->set_value();
}

void Server::RunSweep(const std::shared_ptr<Session>& session,
                      std::uint64_t id, const suite::figures::FigureDef& def,
                      bool quick, bool adaptive) {
  const auto start = std::chrono::steady_clock::now();
  try {
    suite::figures::RunOptions opts;
    opts.quick = quick;
    // Adaptive requests refine with the worker's env-snapshot knobs and
    // stream one refine event per wave. Curves run sequentially inside
    // Build, so the curve a wave belongs to is the first not-yet-done
    // one (on_wave fires on the sweep thread, before that curve's
    // progress event).
    adapt::Settings settings;
    std::size_t curves_done = 0;
    if (adaptive) {
      settings = adapt::Settings::FromEnv();
      settings.on_wave = [&](const adapt::WaveInfo& w) {
        const std::string& curve = curves_done < def.curves.size()
                                       ? def.curves[curves_done].name
                                       : def.slug;
        session->WriteLine(SerializeRefine(id, curve, w.wave, w.wave_points,
                                           w.points_spent, w.dense_points));
      };
      opts.adaptive = &settings;
    }
    // Stream every new point / profile entry after each curve; emitted
    // counts are tracked per series because a curve's series name can
    // differ from the CurveDef name (Fig. 15's "Pixel/3870" -> "3870").
    std::map<std::string, std::size_t> points_sent;
    std::size_t profiles_sent = 0;
    const report::Figure figure = suite::figures::Build(
        def, opts,
        [&](std::size_t index, std::size_t count, const std::string& curve,
            const report::Figure& so_far) {
          curves_done = index + 1;
          session->WriteLine(SerializeProgress(id, index, count, curve));
          for (const report::Curve& series : so_far.set.All()) {
            std::size_t& sent = points_sent[series.Name()];
            const auto& points = series.Points();
            for (; sent < points.size(); ++sent) {
              session->WriteLine(SerializePoint(
                  id, series.Name(), points[sent].x, points[sent].y));
            }
          }
          for (; profiles_sent < so_far.profiles.size(); ++profiles_sent) {
            const report::ProfileEntry& p = so_far.profiles[profiles_sent];
            session->WriteLine(
                SerializeProfile(id, p.curve, p.point, p.attributed));
          }
        });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const exec::KernelCacheStats cache = exec::KernelCache::Shared().Stats();
    // Record before the done event: a client that reads done and
    // immediately asks for stats must see this completion counted.
    store_.RecordCompleted(def.slug, wall);
    session->WriteLine(SerializeDone(id, def.slug, wall, cache.hits,
                                     cache.misses,
                                     report::BenchJson(figure)));
  } catch (const std::exception& e) {
    store_.RecordFailed(def.slug);
    session->WriteLine(
        SerializeError(id, ErrorKind::kSweepFailed, e.what()));
  }
}

void Server::RunCharacterize(
    const std::shared_ptr<Session>& session, std::uint64_t id,
    const std::shared_ptr<const kerncap::Prepared>& prepared, bool quick,
    bool adaptive) {
  const std::string slug = kerncap::Slug(*prepared);
  const auto start = std::chrono::steady_clock::now();
  try {
    // Static verdicts stream first — the client gets the SKA view even
    // if it disconnects before the sweep finishes.
    for (const kerncap::ArchStatic& s : prepared->statics) {
      StaticReport report;
      report.arch = kerncap::CardLabel(s.arch);
      report.alu_ops = s.ska.alu_ops;
      report.fetch_ops = s.ska.fetch_ops;
      report.write_ops = s.ska.write_ops;
      report.alu_fetch_ratio = s.ska.alu_fetch_ratio;
      report.gpr_count = s.ska.gpr_count;
      report.theoretical_wavefronts = s.ska.theoretical_wavefronts;
      report.resident_wavefronts = s.ska.resident_wavefronts;
      report.bound = std::string(compiler::ToString(s.ska.bound));
      session->WriteLine(SerializeStatic(id, report));
    }
    kerncap::CharacterizeOptions opts;
    opts.quick = quick;
    // Same wave attribution scheme as RunSweep, over the kernel's
    // eligible (arch, mode) curves.
    adapt::Settings settings;
    std::size_t curves_done = 0;
    std::vector<suite::CurveKey> curves;
    if (adaptive) {
      curves = kerncap::EligibleCurves(prepared->kernel);
      settings = adapt::Settings::FromEnv();
      settings.on_wave = [&](const adapt::WaveInfo& w) {
        const std::string curve = curves_done < curves.size()
                                      ? curves[curves_done].Name()
                                      : slug;
        session->WriteLine(SerializeRefine(id, curve, w.wave, w.wave_points,
                                           w.points_spent, w.dense_points));
      };
      opts.adaptive = &settings;
    }
    std::map<std::string, std::size_t> points_sent;
    std::size_t profiles_sent = 0;
    const report::Figure figure = kerncap::Characterize(
        *prepared, opts,
        [&](std::size_t index, std::size_t count, const std::string& curve,
            const report::Figure& so_far) {
          curves_done = index + 1;
          session->WriteLine(SerializeProgress(id, index, count, curve));
          for (const report::Curve& series : so_far.set.All()) {
            std::size_t& sent = points_sent[series.Name()];
            const auto& points = series.Points();
            for (; sent < points.size(); ++sent) {
              session->WriteLine(SerializePoint(
                  id, series.Name(), points[sent].x, points[sent].y));
            }
          }
          for (; profiles_sent < so_far.profiles.size(); ++profiles_sent) {
            const report::ProfileEntry& p = so_far.profiles[profiles_sent];
            session->WriteLine(
                SerializeProfile(id, p.curve, p.point, p.attributed));
          }
        });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const exec::KernelCacheStats cache = exec::KernelCache::Shared().Stats();
    // Same ordering contract as RunSweep: count first, then announce.
    store_.RecordCompleted(slug, wall);
    session->WriteLine(SerializeDone(id, slug, wall, cache.hits,
                                     cache.misses,
                                     report::BenchJson(figure)));
  } catch (const std::exception& e) {
    store_.RecordFailed(slug);
    session->WriteLine(
        SerializeError(id, ErrorKind::kSweepFailed, e.what()));
  }
}

ServeStats Server::Stats() const {
  ServeStats stats;
  stats.version = std::string(SuiteVersion());
  stats.queue_depth = scheduler_.QueueDepth();
  stats.in_flight = scheduler_.InFlight();
  stats.max_queue = scheduler_.MaxQueue();
  stats.max_inflight = scheduler_.MaxInflight();
  stats.completed = store_.Completed();
  stats.failed = store_.Failed();
  stats.rejected = store_.Rejected();
  const exec::KernelCacheStats cache = exec::KernelCache::Shared().Stats();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_hit_rate = cache.HitRate();
  stats.cache_size = exec::KernelCache::Shared().Size();
  stats.latencies = store_.Latencies();
  return stats;
}

bool Server::DrainRequested() const {
  return drain_requested_.load(std::memory_order_relaxed);
}

void Server::BeginDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  // call_once blocks concurrent callers until the active drain finishes,
  // so every BeginDrain return means "all admitted sweeps are done".
  std::call_once(drain_once_, [this] {
    scheduler_.StopAdmission();
    scheduler_.WaitIdle();
  });
}

void Server::Drain() {
  BeginDrain();
  std::call_once(shutdown_once_, [this] {
    stop_accept_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      ::unlink(config_.socket_path.c_str());
      listen_fd_ = -1;
    }
    std::vector<std::shared_ptr<Session>> sessions;
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions.swap(sessions_);
      threads.swap(session_threads_);
    }
    for (const std::shared_ptr<Session>& session : sessions) {
      session->Close();  // Unblocks ReadLine.
    }
    for (std::thread& thread : threads) thread.join();
    scheduler_.Shutdown();
  });
}

}  // namespace amdmb::serve
