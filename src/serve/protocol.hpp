// Wire protocol of the amdmb_serve daemon: newline-delimited JSON over
// a local Unix-domain socket.
//
// Requests are one-line JSON objects with an "op" key:
//   {"op":"submit","figure":"fig_7","quick":true,"priority":0}
//   {"op":"submit","figure":"fig_7","quick":true,"adaptive":true,...}
//   {"op":"characterize","il":"il_ps_2_0\n...","quick":true,"priority":0}
//   {"op":"stats"}
//   {"op":"drain"}
//   {"op":"ping","seq":12}            (heartbeat; supervisor -> worker)
//   {"op":"kill_worker","worker":1}   (chaos testing; supervisor only)
//
// Responses stream back as one-line JSON events tagged "event":
//   accepted  — the submit was admitted; carries the request id.
//   rejected  — admission refused ("overloaded" / "draining" /
//               "unavailable"), the figure slug is unknown
//               ("unknown_figure"), or a characterize kernel failed
//               intake ("invalid_kernel", with the stable "code" from
//               kerncap's rejection taxonomy plus a "detail" string);
//               terminal.
//   static    — characterize only: one architecture's static SKA
//               analysis (ALU/fetch/GPR counts, occupancy, bound).
//   progress  — one figure curve finished (index / count / name).
//   point     — one measured sweep point (curve, x, y).
//   profile   — one profiled sweep point rode the curve.
//   refine    — adaptive requests ("adaptive":true on submit /
//               characterize) only: one refinement wave finished
//               (wave, points, spent, dense grid size).
//   done      — the request completed; carries the full schema-v2
//               BENCH figure document as the "figure_json" string
//               (byte-identical to the standalone bench binary's file).
//   error     — terminal failure; carries the message plus a typed
//               "kind": sweep_failed (the sweep threw),
//               deadline_exceeded (AMDMB_DEADLINE_MS expired),
//               worker_lost (the executing worker process died
//               mid-stream), protocol_error (malformed/oversized
//               request line).
//   stats     — response to a stats request (queue depth, cache hit
//               rate, per-figure latency percentiles, fleet health).
//   drained   — response to a drain request once every admitted sweep
//               has finished.
//   pong      — heartbeat reply; carries the worker index, the echoed
//               seq, and the worker's completion/cache counters.
//   killed    — acknowledgement of a kill_worker chaos request.
//
// Serialization reuses the report layer's JSON primitives (JsonEscape /
// JsonNumber / JsonValue), so the daemon has no second JSON dialect.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"

namespace amdmb::serve {

/// Parsed client request.
struct Request {
  enum class Op {
    kSubmit,
    kCharacterize,
    kStats,
    kDrain,
    kPing,
    kKillWorker,
  };

  Op op = Op::kStats;
  std::string figure;  ///< Submit only: figure slug (any spelling).
  std::string il;      ///< Characterize only: raw kernel IL text.
  bool quick = false;  ///< Submit/characterize: smoke-scale sweep.
  /// Submit/characterize: run the sweep adaptively (coarse pass +
  /// bisection) with `refine` progress events. Serialized only when
  /// true, so dense request lines — and therefore the shared-cache
  /// keys of older clients — are byte-stable.
  bool adaptive = false;
  int priority = 0;    ///< Submit/characterize: higher pops first.
  std::uint64_t seq = 0;  ///< Ping only: heartbeat sequence number.
  unsigned worker = 0;    ///< KillWorker only: target worker index.
};

/// Parses one request line. Throws ConfigError naming what is malformed
/// (bad JSON, missing/unknown "op", non-string figure, ...).
Request ParseRequest(std::string_view line);

/// Serializes a request (the client side of ParseRequest).
std::string SerializeRequest(const Request& request);

/// Event type tags, in the order documented above.
enum class EventType {
  kAccepted,
  kRejected,
  kStatic,
  kProgress,
  kPoint,
  kProfile,
  kRefine,
  kDone,
  kError,
  kStats,
  kDrained,
  kPong,
  kKilled,
};

std::string_view ToString(EventType type);

/// Typed classification of terminal "error" events. Every submitted
/// request ends in exactly one of done / rejected / error(kind) — the
/// exactly-once contract the fleet tests assert.
enum class ErrorKind {
  kSweepFailed,       ///< The sweep body threw.
  kDeadlineExceeded,  ///< The per-request deadline expired.
  kWorkerLost,        ///< The executing worker died mid-stream.
  kProtocolError,     ///< Malformed or oversized request line.
};

std::string_view ToString(ErrorKind kind);

/// One parsed response line: the type tag plus the full JSON payload
/// (typed field access goes through `body`).
struct Event {
  EventType type = EventType::kError;
  report::JsonValue body;
};

/// Parses one event line. Throws ConfigError on bad JSON or an unknown
/// "event" tag.
Event ParseEvent(std::string_view line);

// --- Event serializers (daemon side). Each returns one line, no '\n'.

std::string SerializeAccepted(std::uint64_t id, std::string_view figure,
                              std::size_t queue_depth);
std::string SerializeRejected(std::string_view reason,
                              std::string_view figure);
/// Rejection with a typed verdict attached: "code" is a stable machine
/// reason (kerncap's rejection taxonomy), "detail" the human message.
std::string SerializeRejected(std::string_view reason,
                              std::string_view figure,
                              std::string_view code,
                              std::string_view detail);
std::string SerializeProgress(std::uint64_t id, std::size_t curve_index,
                              std::size_t curve_count,
                              std::string_view curve);
std::string SerializePoint(std::uint64_t id, std::string_view curve,
                           double x, double y);
std::string SerializeProfile(std::uint64_t id, std::string_view curve,
                             std::string_view point,
                             std::string_view bottleneck);
/// One adaptive refinement wave finished (adaptive requests only):
/// wave index (0 = coarse pass), points measured in the wave, points
/// spent so far, and the dense grid size being avoided.
std::string SerializeRefine(std::uint64_t id, std::string_view curve,
                            std::size_t wave, std::size_t wave_points,
                            std::size_t points_spent,
                            std::size_t dense_points);
std::string SerializeDone(std::uint64_t id, std::string_view figure,
                          double wall_seconds, std::uint64_t cache_hits,
                          std::uint64_t cache_misses,
                          std::string_view figure_json);
std::string SerializeError(std::uint64_t id, ErrorKind kind,
                           std::string_view message);
std::string SerializeDrained(std::uint64_t completed);

/// One architecture's static kernel analysis, streamed as a "static"
/// event before the dynamic sweep of a characterize request. Mirrors
/// compiler::SkaReport field-for-field but keeps the wire protocol
/// decoupled from compiler headers.
struct StaticReport {
  std::string arch;  ///< Card label, e.g. "4870".
  unsigned alu_ops = 0;
  unsigned fetch_ops = 0;
  unsigned write_ops = 0;
  double alu_fetch_ratio = 0.0;
  unsigned gpr_count = 0;
  unsigned theoretical_wavefronts = 0;
  unsigned resident_wavefronts = 0;
  std::string bound;  ///< compiler::ToString(StaticBound).
};

std::string SerializeStatic(std::uint64_t id, const StaticReport& report);

/// Counters a worker reports with every heartbeat reply (the
/// supervisor's cluster stats aggregate the last pong of each worker).
struct PongStats {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

std::string SerializePong(unsigned worker, std::uint64_t seq,
                          const PongStats& stats);
std::string SerializeKilled(unsigned worker);

/// Latency summary of one figure's completed requests.
struct FigureLatency {
  std::string figure;
  std::size_t count = 0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;

  bool operator==(const FigureLatency&) const = default;
};

/// Health snapshot of one supervised worker process, as reported in
/// the supervisor's stats event. `state` is the typed worker state
/// machine rendered via health.hpp's ToString (starting / healthy /
/// degraded / dead).
struct WorkerStatus {
  unsigned index = 0;
  std::string state;
  long pid = -1;            ///< -1 while dead / not yet spawned.
  unsigned restarts = 0;    ///< Times the supervisor respawned the slot.
  std::uint64_t outstanding = 0;  ///< Routed requests not yet terminal.
  std::uint64_t generation = 0;   ///< Bumped on every respawn.

  bool operator==(const WorkerStatus&) const = default;
};

/// The stats-event payload.
struct ServeStats {
  std::string version;          ///< SuiteVersion() of the daemon build.
  std::size_t queue_depth = 0;  ///< Requests admitted but not started.
  unsigned in_flight = 0;       ///< Sweeps currently executing.
  std::size_t max_queue = 0;
  unsigned max_inflight = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  std::size_t cache_size = 0;
  std::vector<FigureLatency> latencies;  ///< Sorted by figure slug.
  /// Fleet mode only: one entry per worker slot, sorted by index.
  std::vector<WorkerStatus> workers;
};

std::string SerializeStats(const ServeStats& stats);

/// Parses the payload of a kStats event back into the struct (client
/// side; also the round-trip tests).
ServeStats ParseStats(const report::JsonValue& body);

}  // namespace amdmb::serve
