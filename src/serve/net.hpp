// Unix-domain socket plumbing shared by the daemon, the supervisor,
// and the client: listener creation with stale-socket recovery, and a
// non-throwing connect for heartbeat / proxy paths that treat a refused
// connection as data (a dead worker) rather than an error.
#pragma once

#include <string>

namespace amdmb::serve {

/// Binds and listens on `path`. A socket file left behind by a crashed
/// process is detected with a connect probe (refused => no listener)
/// and unlinked; a path a *live* daemon answers on is a ConfigError,
/// never a silent takeover. Throws ConfigError on any socket failure.
int MakeListenSocket(const std::string& path);

/// Connects to `path`. Returns the connected fd, or -1 when nothing
/// listens (refused / missing / any connect failure). Throws
/// ConfigError only for an over-long path.
int ConnectUnixSocket(const std::string& path);

}  // namespace amdmb::serve
