#include "serve/routing.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace amdmb::serve {

namespace {

/// SplitMix64 finalizer (same mixer the fault injector uses): full
/// avalanche, so consecutive vnode indices scatter across the ring.
constexpr std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t HashKey(std::string_view key) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a.
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return Mix(h);
}

}  // namespace

HashRing::HashRing(unsigned workers, unsigned vnodes) : workers_(workers) {
  Require(workers >= 1, "HashRing: need at least one worker slot");
  Require(vnodes >= 1, "HashRing: need at least one vnode per slot");
  points_.reserve(static_cast<std::size_t>(workers) * vnodes);
  for (unsigned slot = 0; slot < workers; ++slot) {
    for (unsigned v = 0; v < vnodes; ++v) {
      points_.push_back(
          {Mix((static_cast<std::uint64_t>(slot) << 32) | v), slot});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.slot < b.slot;
            });
}

std::optional<unsigned> HashRing::Route(
    std::string_view key, const std::vector<bool>& eligible) const {
  Check(eligible.size() == workers_, "HashRing::Route: mask size mismatch");
  const std::uint64_t h = HashKey(key);
  const auto start = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  const std::size_t begin =
      static_cast<std::size_t>(start - points_.begin());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point& point = points_[(begin + i) % points_.size()];
    if (eligible[point.slot]) return point.slot;
  }
  return std::nullopt;
}

std::optional<unsigned> HashRing::Route(std::string_view key) const {
  return Route(key, std::vector<bool>(workers_, true));
}

}  // namespace amdmb::serve
