#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "kerncap/intake.hpp"
#include "serve/net.hpp"

namespace amdmb::serve {

Client Client::Connect(const std::string& socket_path, unsigned retries) {
  double backoff_ms = 50.0;
  for (unsigned attempt = 0;; ++attempt) {
    const int fd = ConnectUnixSocket(socket_path);
    if (fd >= 0) return Client(fd);
    if (attempt >= retries) {
      throw ConfigError("client: connect(" + socket_path + ") failed after " +
                        std::to_string(attempt + 1) +
                        " attempt(s) (is amdmb_serve running?)");
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        backoff_ms));
    backoff_ms = std::min(backoff_ms * 2.0, 1000.0);
  }
}

Event Client::NextEvent() {
  std::optional<std::string> line = session_->ReadLine();
  if (!line.has_value()) {
    throw ConfigError("client: daemon closed the connection");
  }
  return ParseEvent(*line);
}

Event Client::Submit(const std::string& figure, bool quick, int priority,
                     const EventCallback& on_event) {
  return Submit(figure, quick, /*adaptive=*/false, priority, on_event);
}

Event Client::Submit(const std::string& figure, bool quick, bool adaptive,
                     int priority, const EventCallback& on_event) {
  Request request;
  request.op = Request::Op::kSubmit;
  request.figure = figure;
  request.quick = quick;
  request.adaptive = adaptive;
  request.priority = priority;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    Event event = NextEvent();
    switch (event.type) {
      case EventType::kDone:
      case EventType::kRejected:
      case EventType::kError:
        return event;
      default:
        if (on_event) on_event(event);
        break;
    }
  }
}

std::optional<Event> OversizedCharacterize(const std::string& il,
                                           bool quick, int priority) {
  Request request;
  request.op = Request::Op::kCharacterize;
  request.il = il;
  request.quick = quick;
  request.priority = priority;
  // The session layer reads lines of at most kMaxLineBytes including
  // the trailing newline; anything at or beyond the bound is dropped by
  // the daemon with a protocol error, so synthesize the typed verdict
  // locally instead of shipping megabytes to certain death.
  if (SerializeRequest(request).size() + 1 <= kMaxLineBytes) {
    return std::nullopt;
  }
  return ParseEvent(SerializeRejected(
      "invalid_kernel", kerncap::ContentHash(il), "payload_too_large",
      "serialized characterize request exceeds the " +
          std::to_string(kMaxLineBytes) +
          "-byte request-line bound; not sent"));
}

Event Client::Characterize(const std::string& il, bool quick, int priority,
                           const EventCallback& on_event) {
  return Characterize(il, quick, /*adaptive=*/false, priority, on_event);
}

Event Client::Characterize(const std::string& il, bool quick, bool adaptive,
                           int priority, const EventCallback& on_event) {
  if (std::optional<Event> oversized =
          OversizedCharacterize(il, quick, priority)) {
    return *std::move(oversized);
  }
  Request request;
  request.op = Request::Op::kCharacterize;
  request.il = il;
  request.quick = quick;
  request.adaptive = adaptive;
  request.priority = priority;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    Event event = NextEvent();
    switch (event.type) {
      case EventType::kDone:
      case EventType::kRejected:
      case EventType::kError:
        return event;
      default:
        if (on_event) on_event(event);
        break;
    }
  }
}

ServeStats Client::Stats() {
  Request request;
  request.op = Request::Op::kStats;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    const Event event = NextEvent();
    if (event.type == EventType::kStats) return ParseStats(event.body);
    if (event.type == EventType::kError) {
      throw ConfigError("client: stats failed: " +
                        event.body.StringOr("message", "unknown error"));
    }
    // Skip stray streamed events of an earlier submit on this session.
  }
}

std::uint64_t Client::Drain() {
  Request request;
  request.op = Request::Op::kDrain;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    const Event event = NextEvent();
    if (event.type == EventType::kDrained) {
      return static_cast<std::uint64_t>(
          event.body.NumberOr("completed", 0.0));
    }
    if (event.type == EventType::kError) {
      throw ConfigError("client: drain failed: " +
                        event.body.StringOr("message", "unknown error"));
    }
  }
}

void Client::KillWorker(unsigned index) {
  Request request;
  request.op = Request::Op::kKillWorker;
  request.worker = index;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    const Event event = NextEvent();
    if (event.type == EventType::kKilled) return;
    if (event.type == EventType::kError) {
      throw ConfigError("client: kill_worker failed: " +
                        event.body.StringOr("message", "unknown error"));
    }
  }
}

std::string LoadGenReport::Render() const {
  std::ostringstream os;
  os << "load generator: " << requests << " requests, " << completed
     << " completed, " << rejected << " rejected, " << failed << " failed\n"
     << "  wall " << FormatDouble(wall_seconds, 3) << " s, throughput "
     << FormatDouble(throughput_rps, 2) << " req/s\n"
     << "  latency p50 " << FormatDouble(p50_seconds, 3) << " s, p90 "
     << FormatDouble(p90_seconds, 3) << " s, p99 "
     << FormatDouble(p99_seconds, 3) << " s\n";
  if (kills > 0) {
    os << "  chaos: " << kills << " worker kill(s), " << worker_lost
       << " worker_lost, " << deadline_exceeded << " deadline_exceeded, "
       << "availability " << FormatDouble(availability * 100.0, 1) << " %\n";
  }
  return os.str();
}

LoadGenReport RunLoadGenerator(const LoadGenOptions& options) {
  Require(!options.figures.empty(), "load generator: no figures to pick");
  Require(options.concurrency >= 1, "load generator: concurrency < 1");

  // The whole request schedule — figure, priority, and any chaos kill
  // points — is derived from the seed up front, so it is identical
  // across runs regardless of worker interleaving.
  struct Planned {
    std::string figure;
    int priority;
    int kill_worker;  ///< Chaos: SIGKILL this slot first; -1 = none.
  };
  std::vector<Planned> plan;
  plan.reserve(options.requests);
  XorShift128 rng(options.seed);
  for (std::size_t i = 0; i < options.requests; ++i) {
    const std::string& figure =
        options.figures[rng.NextBelow(options.figures.size())];
    plan.push_back({figure, static_cast<int>(rng.NextBelow(3)), -1});
  }
  if (options.kill_workers > 0) {
    // Chaos needs a fleet: learn the slot count from the daemon.
    Client probe = Client::Connect(options.socket_path,
                                   options.connect_retries);
    const std::size_t fleet = probe.Stats().workers.size();
    if (fleet == 0) {
      throw ConfigError(
          "load generator: --kill-worker needs a fleet daemon "
          "(AMDMB_WORKERS >= 1); this one reports no workers");
    }
    if (plan.empty()) {
      throw ConfigError("load generator: --kill-worker needs requests > 0");
    }
    for (unsigned k = 0; k < options.kill_workers; ++k) {
      plan[rng.NextBelow(plan.size())].kill_worker =
          static_cast<int>(rng.NextBelow(fleet));
    }
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> worker_lost{0};
  std::atomic<std::size_t> deadline_exceeded{0};
  std::atomic<std::size_t> kills{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies;

  // Probe once on the calling thread so an unreachable daemon surfaces
  // as a ConfigError instead of a worker-thread crash.
  { Client probe = Client::Connect(options.socket_path,
                                   options.connect_retries); }

  const auto worker = [&] {
    try {
      Client client =
          Client::Connect(options.socket_path, options.connect_retries);
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= plan.size()) return;
        if (plan[i].kill_worker >= 0) {
          try {
            client.KillWorker(static_cast<unsigned>(plan[i].kill_worker));
            kills.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            // Chaos against an already-dead slot; the submit proceeds.
          }
        }
        const auto start = std::chrono::steady_clock::now();
        const Event event =
            client.Submit(plan[i].figure, options.quick, plan[i].priority);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        switch (event.type) {
          case EventType::kDone:
            completed.fetch_add(1, std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lock(latencies_mutex);
              latencies.push_back(seconds);
            }
            break;
          case EventType::kRejected:
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;
          default: {
            failed.fetch_add(1, std::memory_order_relaxed);
            const std::string kind = event.body.StringOr("kind", "");
            if (kind == "worker_lost") {
              worker_lost.fetch_add(1, std::memory_order_relaxed);
            } else if (kind == "deadline_exceeded") {
              deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    } catch (const std::exception&) {
      // The daemon went away mid-run (e.g. a drain); remaining requests
      // on this worker count as failed.
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  const unsigned spawned =
      static_cast<unsigned>(std::min<std::size_t>(options.concurrency,
                                                  plan.size() ? plan.size()
                                                              : 1));
  workers.reserve(spawned);
  for (unsigned t = 0; t < spawned; ++t) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();

  LoadGenReport report;
  report.requests = plan.size();
  report.completed = completed.load();
  report.rejected = rejected.load();
  report.failed = failed.load();
  report.worker_lost = worker_lost.load();
  report.deadline_exceeded = deadline_exceeded.load();
  report.kills = kills.load();
  if (report.requests > report.rejected) {
    report.availability =
        static_cast<double>(report.completed) /
        static_cast<double>(report.requests - report.rejected);
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (report.wall_seconds > 0.0) {
    report.throughput_rps =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  if (!latencies.empty()) {
    report.p50_seconds = Percentile(latencies, 50.0);
    report.p90_seconds = Percentile(latencies, 90.0);
    report.p99_seconds = Percentile(latencies, 99.0);
  }
  return report;
}

}  // namespace amdmb::serve
