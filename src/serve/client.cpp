#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"

namespace amdmb::serve {

Client Client::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError("client: socket path too long: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ConfigError(std::string("client: socket() failed: ") +
                      std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw ConfigError("client: connect(" + socket_path +
                      ") failed: " + std::strerror(err) +
                      " (is amdmb_serve running?)");
  }
  return Client(fd);
}

Event Client::NextEvent() {
  std::optional<std::string> line = session_->ReadLine();
  if (!line.has_value()) {
    throw ConfigError("client: daemon closed the connection");
  }
  return ParseEvent(*line);
}

Event Client::Submit(const std::string& figure, bool quick, int priority,
                     const EventCallback& on_event) {
  Request request;
  request.op = Request::Op::kSubmit;
  request.figure = figure;
  request.quick = quick;
  request.priority = priority;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    Event event = NextEvent();
    switch (event.type) {
      case EventType::kDone:
      case EventType::kRejected:
      case EventType::kError:
        return event;
      default:
        if (on_event) on_event(event);
        break;
    }
  }
}

ServeStats Client::Stats() {
  Request request;
  request.op = Request::Op::kStats;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    const Event event = NextEvent();
    if (event.type == EventType::kStats) return ParseStats(event.body);
    if (event.type == EventType::kError) {
      throw ConfigError("client: stats failed: " +
                        event.body.StringOr("message", "unknown error"));
    }
    // Skip stray streamed events of an earlier submit on this session.
  }
}

std::uint64_t Client::Drain() {
  Request request;
  request.op = Request::Op::kDrain;
  if (!session_->WriteLine(SerializeRequest(request))) {
    throw ConfigError("client: daemon closed the connection");
  }
  for (;;) {
    const Event event = NextEvent();
    if (event.type == EventType::kDrained) {
      return static_cast<std::uint64_t>(
          event.body.NumberOr("completed", 0.0));
    }
    if (event.type == EventType::kError) {
      throw ConfigError("client: drain failed: " +
                        event.body.StringOr("message", "unknown error"));
    }
  }
}

std::string LoadGenReport::Render() const {
  std::ostringstream os;
  os << "load generator: " << requests << " requests, " << completed
     << " completed, " << rejected << " rejected, " << failed << " failed\n"
     << "  wall " << FormatDouble(wall_seconds, 3) << " s, throughput "
     << FormatDouble(throughput_rps, 2) << " req/s\n"
     << "  latency p50 " << FormatDouble(p50_seconds, 3) << " s, p90 "
     << FormatDouble(p90_seconds, 3) << " s, p99 "
     << FormatDouble(p99_seconds, 3) << " s\n";
  return os.str();
}

LoadGenReport RunLoadGenerator(const LoadGenOptions& options) {
  Require(!options.figures.empty(), "load generator: no figures to pick");
  Require(options.concurrency >= 1, "load generator: concurrency < 1");

  // The whole request schedule is derived from the seed up front, so it
  // is identical across runs regardless of worker interleaving.
  struct Planned {
    std::string figure;
    int priority;
  };
  std::vector<Planned> plan;
  plan.reserve(options.requests);
  XorShift128 rng(options.seed);
  for (std::size_t i = 0; i < options.requests; ++i) {
    const std::string& figure =
        options.figures[rng.NextBelow(options.figures.size())];
    plan.push_back({figure, static_cast<int>(rng.NextBelow(3))});
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> failed{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies;

  // Probe once on the calling thread so an unreachable daemon surfaces
  // as a ConfigError instead of a worker-thread crash.
  { Client probe = Client::Connect(options.socket_path); }

  const auto worker = [&] {
    try {
      Client client = Client::Connect(options.socket_path);
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= plan.size()) return;
        const auto start = std::chrono::steady_clock::now();
        const Event event =
            client.Submit(plan[i].figure, options.quick, plan[i].priority);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        switch (event.type) {
          case EventType::kDone:
            completed.fetch_add(1, std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lock(latencies_mutex);
              latencies.push_back(seconds);
            }
            break;
          case EventType::kRejected:
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            failed.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    } catch (const std::exception&) {
      // The daemon went away mid-run (e.g. a drain); remaining requests
      // on this worker count as failed.
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  const unsigned spawned =
      static_cast<unsigned>(std::min<std::size_t>(options.concurrency,
                                                  plan.size() ? plan.size()
                                                              : 1));
  workers.reserve(spawned);
  for (unsigned t = 0; t < spawned; ++t) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();

  LoadGenReport report;
  report.requests = plan.size();
  report.completed = completed.load();
  report.rejected = rejected.load();
  report.failed = failed.load();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (report.wall_seconds > 0.0) {
    report.throughput_rps =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  if (!latencies.empty()) {
    report.p50_seconds = Percentile(latencies, 50.0);
    report.p90_seconds = Percentile(latencies, 90.0);
    report.p99_seconds = Percentile(latencies, 99.0);
  }
  return report;
}

}  // namespace amdmb::serve
