// Bounded FIFO-with-priority scheduler with admission control.
//
// Capacity is explicit: at most `max_inflight` jobs execute at once (one
// worker thread per slot) and at most `max_queue` more may wait. A
// submit beyond queue + in-flight capacity is rejected immediately with
// kRejectedOverloaded — the daemon never blocks or hangs a client on an
// unbounded backlog. Admission counts outstanding work (queued plus
// executing), so the verdict is deterministic regardless of how quickly
// workers pick jobs up.
//
// Pop order is priority descending, then arrival order (FIFO within a
// priority) — with one in-flight slot the execution order is a pure
// function of the submit sequence, which the determinism tests rely on.
//
// Drain (the daemon's SIGTERM contract): StopAdmission() makes every
// later submit kRejectedDraining, WaitIdle() blocks until the already
// admitted jobs — queued and in-flight — have all finished. Shutdown()
// then stops and joins the workers. The destructor runs the full
// sequence, so no job is ever abandoned mid-flight.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace amdmb::serve {

enum class Admission {
  kAccepted,
  kRejectedOverloaded,  ///< queue + in-flight capacity exhausted.
  kRejectedDraining,    ///< the daemon is shutting down.
};

std::string_view ToString(Admission admission);

class Scheduler {
 public:
  /// A job runs on a worker thread with its own request id (assigned at
  /// admission); it must not throw (wrap sweeps in their own try/catch
  /// and report through the session instead).
  using Job = std::function<void(std::uint64_t id)>;

  struct Ticket {
    Admission admission = Admission::kRejectedDraining;
    std::uint64_t id = 0;           ///< Request id (valid when accepted).
    std::size_t queue_depth = 0;    ///< Queued jobs after this submit.
  };

  Scheduler(std::size_t max_queue, unsigned max_inflight);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission-controlled submit; never blocks.
  Ticket Submit(int priority, Job job);

  /// Rejects every subsequent Submit with kRejectedDraining.
  void StopAdmission();

  /// Blocks until every admitted job has finished. Call StopAdmission
  /// first or new submits can extend the wait.
  void WaitIdle();

  /// StopAdmission + WaitIdle + stop and join the workers. Idempotent.
  void Shutdown();

  std::size_t QueueDepth() const;
  unsigned InFlight() const;
  std::size_t MaxQueue() const { return max_queue_; }
  unsigned MaxInflight() const { return max_inflight_; }

 private:
  struct Entry {
    std::uint64_t id = 0;   ///< Also the arrival sequence (FIFO key).
    int priority = 0;
    Job job;
  };

  void WorkerLoop();
  /// Index of the next entry to pop (max priority, min id), or
  /// queue_.size() when empty. Caller holds mutex_.
  std::size_t PickLocked() const;

  const std::size_t max_queue_;
  const unsigned max_inflight_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<Entry> queue_;
  std::uint64_t next_id_ = 1;
  unsigned in_flight_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace amdmb::serve
