// The fleet front-end: a supervisor process that owns N forked worker
// processes and proxies the NDJSON protocol between clients and
// workers.
//
// Division of labor:
//   * Workers (serve/worker.hpp) run the sweeps. Each is a full
//     serve::Server in its own process with a private kernel cache, so
//     one crashing or hanging worker cannot take down the fleet.
//   * The supervisor never executes a sweep. It routes each submit to a
//     worker via consistent hashing on the normalized figure slug
//     (serve/routing.hpp) so repeated figures keep hitting the same hot
//     cache, streams the worker's event lines back to the client
//     verbatim, and supervises worker health (serve/health.hpp).
//
// Fault tolerance contract (asserted by tests/test_serve.cpp):
//   * Heartbeats: every heartbeat_ms the supervisor pings each worker
//     over a persistent control connection; the typed state machine
//     (starting / healthy / degraded / dead) decides liveness. A dead
//     worker is SIGKILLed, reaped, and respawned after a capped,
//     jitter-free exponential backoff — so a seeded kill schedule
//     replays the identical recovery timeline.
//   * Deadlines: deadline_ms > 0 bounds every submit; expiry synthesizes
//     a terminal error event with kind "deadline_exceeded".
//   * Failover: when the connection to the executing worker drops, a
//     request that has streamed zero sweep events (progress / point /
//     profile) is re-routed to the next eligible worker on the ring; a
//     request that already streamed gets a terminal "worker_lost" error
//     (re-running it could double-report measurements).
//   * Exactly-once: every submitted request ends in exactly one
//     terminal event — done, rejected, or error(kind). Execution is
//     at-least-once before a request first streams, at-most-once after.
//   * Backpressure: a submit is admitted only if some live worker has
//     spare capacity (queue + inflight, tracked per worker at the
//     supervisor). The verdict is deterministic in the fleet state:
//     "overloaded" (live workers, all full), "draining", or
//     "unavailable" (no live worker).
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/health.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"
#include "serve/routing.hpp"
#include "serve/session.hpp"
#include "suite/figures.hpp"

namespace amdmb::serve {

struct SupervisorConfig {
  std::string socket_path;       ///< Client-facing; workers bind .w<i>.
  unsigned workers = 2;          ///< AMDMB_WORKERS (>= 1 for fleet mode).
  std::size_t worker_queue = 16; ///< Per-worker AMDMB_SERVE_QUEUE.
  unsigned worker_inflight = 1;  ///< Per-worker AMDMB_SERVE_INFLIGHT.
  std::uint64_t deadline_ms = 0; ///< AMDMB_DEADLINE_MS; 0 = unlimited.
  HealthPolicy health;           ///< Heartbeat / miss / backoff knobs.
  /// Null = suite registry. Forked workers inherit this exact pointer,
  /// which is why tests can inject figure registries into the fleet.
  const std::vector<suite::figures::FigureDef>* registry = nullptr;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns the worker fleet, binds the client socket, and starts the
  /// accept and health loops. Throws ConfigError on socket errors (same
  /// stale-socket contract as Server::Start).
  void Start();

  /// Stops admission ("draining" rejections), halts the health loop (no
  /// restarts mid-drain), drains every live worker (blocking until
  /// their admitted sweeps finish) and reaps all children. Safe from
  /// session threads and signal polling loops; concurrent callers block
  /// until the one drain finishes.
  void BeginDrain();

  bool DrainRequested() const;

  /// BeginDrain + full shutdown: close the listener and every client
  /// session, join all threads. Main-thread only.
  void Drain();

  /// Cluster-level stats: supervisor-side terminal counters and
  /// latencies, summed worker cache counters from the last heartbeat,
  /// and one WorkerStatus per slot.
  ServeStats Stats() const;

  const std::string& SocketPath() const { return config_.socket_path; }

 private:
  /// One supervised worker slot. Health-state fields are guarded by
  /// slots_mutex_; `control` and `ping_seq` are health-thread-only.
  struct Slot {
    unsigned index = 0;
    std::string socket_path;
    pid_t pid = -1;
    HealthTracker health;
    std::uint64_t generation = 0;   ///< Bumped on every spawn.
    std::uint64_t ping_seq = 0;     ///< Monotonic; never reset on respawn.
    std::uint64_t outstanding = 0;  ///< Routed, not yet terminal.
    std::chrono::steady_clock::time_point restart_due{};
    PongStats last_pong;
    std::shared_ptr<Session> control;  ///< Persistent heartbeat channel.

    explicit Slot(const HealthPolicy& policy) : health(policy) {}
  };

  void AcceptLoop();
  void HealthLoop();
  void RunSession(std::shared_ptr<Session> session);
  void HandleSubmit(const std::shared_ptr<Session>& session,
                    const Request& request);
  void HandleCharacterize(const std::shared_ptr<Session>& session,
                          const Request& request);
  /// Shared forwarding engine of submit and characterize: routes the
  /// raw request line to a worker by `key` on the hash ring, streams
  /// the worker's event lines back verbatim, and enforces the deadline
  /// / failover / exactly-once contract documented above. `stat_label`
  /// names the request in the result store and synthesized rejections.
  void ForwardRequest(const std::shared_ptr<Session>& session,
                      const std::string& raw, const std::string& key,
                      const std::string& stat_label);
  void HandleKillWorker(const std::shared_ptr<Session>& session,
                        const Request& request);
  const suite::figures::FigureDef* FindFigure(const std::string& slug) const;

  /// Health-loop helpers (health thread only).
  void TickSlot(Slot& slot);
  void RecordMiss(Slot& slot);
  void MarkDead(Slot& slot, bool kill_process);
  void Respawn(Slot& slot);

  /// Every parent-side fd a forked child must close: the listener, all
  /// client sessions, all control connections.
  std::vector<int> FdsToCloseInChild();

  /// Picks the routed worker for `key` among live, non-full, untried
  /// slots and bumps its outstanding count. Returns the slot index, or
  /// a rejection reason in `reason` when nothing is eligible.
  std::optional<unsigned> AdmitAndRoute(const std::string& key,
                                        const std::vector<bool>& tried,
                                        std::string* reason);

  SupervisorConfig config_;
  HashRing ring_;
  ResultStore store_;  ///< Supervisor-side terminal counters/latencies.

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread health_thread_;
  std::atomic<bool> stop_accept_{false};
  std::atomic<bool> stop_health_{false};
  std::atomic<bool> drain_requested_{false};
  std::once_flag drain_once_;
  std::once_flag shutdown_once_;

  mutable std::mutex slots_mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;
};

}  // namespace amdmb::serve
