#include "fault/fault.hpp"

#include <mutex>

#include "common/env.hpp"
#include "common/status.hpp"

namespace amdmb::fault {

namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
constexpr std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// FNV-1a over the key bytes; order-independent of everything else.
constexpr std::uint64_t HashKey(std::string_view key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

double ParseProbability(std::string_view token, std::string_view value) {
  char* end = nullptr;
  const std::string text(value);
  const double p = std::strtod(text.c_str(), &end);
  Require(end == text.c_str() + text.size() && !text.empty(),
          "AMDMB_FAULTS: '" + std::string(token) +
              "' has a non-numeric probability");
  Require(p >= 0.0 && p <= 1.0,
          "AMDMB_FAULTS: probability in '" + std::string(token) +
              "' must lie in [0, 1]");
  return p;
}

const FaultInjector* g_override = nullptr;
bool g_override_active = false;

}  // namespace

std::string_view ToString(FaultSite site) {
  switch (site) {
    case FaultSite::kCompile: return "compile";
    case FaultSite::kLaunch: return "launch";
    case FaultSite::kHang: return "hang";
    case FaultSite::kReadback: return "readback";
    case FaultSite::kWorkerCrash: return "worker_crash";
    case FaultSite::kWorkerHang: return "worker_hang";
  }
  throw SimError("ToString(FaultSite): unknown value");
}

double FaultSpec::Probability(FaultSite site) const {
  switch (site) {
    case FaultSite::kCompile: return compile;
    case FaultSite::kLaunch: return launch;
    case FaultSite::kHang: return hang;
    case FaultSite::kReadback: return readback;
    case FaultSite::kWorkerCrash: return worker_crash;
    case FaultSite::kWorkerHang: return worker_hang;
  }
  throw SimError("FaultSpec::Probability: unknown site");
}

FaultSpec FaultSpec::Parse(std::string_view text) {
  Require(!text.empty(), "AMDMB_FAULTS: empty fault spec");
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, comma - pos);
    pos = comma + 1;
    Require(!token.empty(),
            "AMDMB_FAULTS: empty token (stray comma) in fault spec");
    // "site:value" or "key=value"; both separators accepted.
    const std::size_t sep = token.find_first_of(":=");
    Require(sep != std::string_view::npos && sep + 1 <= token.size(),
            "AMDMB_FAULTS: expected 'site:probability' or 'seed=N', got '" +
                std::string(token) + "'");
    const std::string_view name = token.substr(0, sep);
    const std::string_view value = token.substr(sep + 1);
    if (name == "compile") {
      spec.compile = ParseProbability(token, value);
    } else if (name == "launch") {
      spec.launch = ParseProbability(token, value);
    } else if (name == "hang") {
      spec.hang = ParseProbability(token, value);
    } else if (name == "readback") {
      spec.readback = ParseProbability(token, value);
    } else if (name == "worker_crash") {
      spec.worker_crash = ParseProbability(token, value);
    } else if (name == "worker_hang") {
      spec.worker_hang = ParseProbability(token, value);
    } else if (name == "seed") {
      char* end = nullptr;
      const std::string seed_text(value);
      const unsigned long long seed =
          std::strtoull(seed_text.c_str(), &end, 10);
      Require(end == seed_text.c_str() + seed_text.size() &&
                  !seed_text.empty(),
              "AMDMB_FAULTS: seed must be a non-negative integer, got '" +
                  std::string(value) + "'");
      spec.seed = seed;
    } else {
      Require(false, "AMDMB_FAULTS: unknown fault site '" +
                         std::string(name) +
                         "' (expected compile, launch, hang, readback, "
                         "worker_crash, worker_hang, or seed)");
    }
    if (comma == text.size()) break;
  }
  return spec;
}

bool FaultInjector::ShouldFail(FaultSite site, std::string_view key) const {
  const auto index = static_cast<std::size_t>(site);
  checks_[index].fetch_add(1, std::memory_order_relaxed);
  const double p = spec_.Probability(site);
  if (p <= 0.0) return false;
  // Decision = pure hash of (seed, site, key) mapped to [0, 1).
  const std::uint64_t h =
      Mix(spec_.seed ^ Mix(HashKey(key) + static_cast<std::uint64_t>(site)));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  const bool fail = u < p;
  if (fail) injected_[index].fetch_add(1, std::memory_order_relaxed);
  return fail;
}

FaultStats FaultInjector::Stats() const {
  FaultStats stats;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    stats.checks[i] = checks_[i].load(std::memory_order_relaxed);
    stats.injected[i] = injected_[i].load(std::memory_order_relaxed);
  }
  return stats;
}

const FaultInjector* GlobalInjector() {
  if (g_override_active) return g_override;
  static const FaultInjector* env_injector = []() -> const FaultInjector* {
    const auto& spec = env::Get().faults;
    if (!spec) return nullptr;
    static const FaultInjector injector{FaultSpec::Parse(*spec)};
    return &injector;
  }();
  return env_injector;
}

ScopedFaultInjector::ScopedFaultInjector(const FaultSpec& spec)
    : injector_(spec), previous_(g_override_active ? g_override : nullptr) {
  g_override = &injector_;
  g_override_active = true;
}

ScopedFaultInjector::ScopedFaultInjector(std::string_view spec)
    : ScopedFaultInjector(FaultSpec::Parse(spec)) {}

ScopedFaultInjector::~ScopedFaultInjector() {
  if (previous_ != nullptr) {
    g_override = previous_;
  } else {
    g_override = nullptr;
    g_override_active = false;
  }
}

}  // namespace amdmb::fault
