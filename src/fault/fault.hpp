// Deterministic, seedable fault injection.
//
// The real StreamSDK/CAL runtime fails in the field — compile errors,
// transient launch failures, hung kernels — and a benchmark harness has
// to survive them (ALTIS/Mirovia report per-kernel failures instead of
// dying; see PAPERS.md). This module injects those failures on demand so
// the resilience path is testable: the CAL layer consults the injector
// at its compile / launch / readback boundaries, and the sweep executor
// retries or skips the affected points.
//
// Determinism: whether a fault fires is a pure function of
// (spec seed, site, key) — typically key = "<point>#<attempt>" — so the
// fault schedule is identical across runs and thread interleavings, and
// a retried attempt draws a fresh, independent decision.
//
// Configured via AMDMB_FAULTS, e.g.
//   AMDMB_FAULTS=compile:0.01,launch:0.02,hang:0.001,seed=42
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace amdmb::fault {

/// Runtime boundary at which a fault can be injected.
enum class FaultSite : unsigned {
  kCompile = 0,      ///< IL -> ISA compilation fails.
  kLaunch = 1,       ///< Kernel launch fails transiently.
  kHang = 2,         ///< Kernel never finishes; the watchdog must fire.
  kReadback = 3,     ///< Timer/counter readback fails.
  kWorkerCrash = 4,  ///< Fleet worker process exits hard on a heartbeat.
  kWorkerHang = 5,   ///< Fleet worker stops answering heartbeats.
};

inline constexpr std::size_t kFaultSiteCount = 6;

std::string_view ToString(FaultSite site);

/// Per-site fault probabilities plus the schedule seed.
struct FaultSpec {
  double compile = 0.0;
  double launch = 0.0;
  double hang = 0.0;
  double readback = 0.0;
  double worker_crash = 0.0;
  double worker_hang = 0.0;
  std::uint64_t seed = 0;

  double Probability(FaultSite site) const;
  bool AnyEnabled() const {
    return compile > 0.0 || launch > 0.0 || hang > 0.0 || readback > 0.0 ||
           worker_crash > 0.0 || worker_hang > 0.0;
  }

  /// Parses "site:prob,...,seed=N" (":" and "=" both accepted as
  /// separators). Sites: compile, launch, hang, readback, worker_crash,
  /// worker_hang. Probabilities must lie in [0, 1]. Throws ConfigError
  /// on anything malformed.
  static FaultSpec Parse(std::string_view text);
};

/// How often each site was consulted and how often it fired.
struct FaultStats {
  std::array<std::uint64_t, kFaultSiteCount> checks{};
  std::array<std::uint64_t, kFaultSiteCount> injected{};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  /// True when the fault fires. Pure in (spec, site, key) apart from the
  /// statistics counters, so concurrent callers always agree.
  bool ShouldFail(FaultSite site, std::string_view key) const;

  const FaultSpec& Spec() const { return spec_; }
  FaultStats Stats() const;

 private:
  FaultSpec spec_;
  mutable std::array<std::atomic<std::uint64_t>, kFaultSiteCount> checks_{};
  mutable std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
};

/// The process-wide injector: parsed from AMDMB_FAULTS on first use
/// (throwing ConfigError on a malformed spec), nullptr when the variable
/// is unset or empty. ScopedFaultInjector overrides it for tests.
const FaultInjector* GlobalInjector();

/// RAII override of the global injector (tests install a spec without
/// touching the environment). Restores the previous injector on
/// destruction. Not thread-safe against concurrent installs.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(const FaultSpec& spec);
  explicit ScopedFaultInjector(std::string_view spec);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector& Injector() { return injector_; }

 private:
  FaultInjector injector_;
  const FaultInjector* previous_;
};

}  // namespace amdmb::fault
