// Minimal JSON support for the report layer: string escaping, a
// locale-independent number formatter, and a small recursive-descent
// parser used by the amdmb_report aggregator and the round-trip tests.
// No external dependency — the documents we read are the ones we write.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace amdmb::report {

/// JSON string escaping (quotes, backslashes, control characters).
/// Non-ASCII bytes (e.g. the em-dash in figure ids) pass through as
/// UTF-8.
std::string JsonEscape(std::string_view text);

/// Shortest round-trippable representation, locale-independent.
std::string JsonNumber(double v);

/// A parsed JSON document. Arrays/objects own their children; object
/// member order is preserved (the compat tests inspect key sets).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (the whole input must be consumed apart
  /// from trailing whitespace). Throws ConfigError with the byte offset
  /// on malformed input.
  static JsonValue Parse(std::string_view text);

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }

  /// Typed accessors; each throws ConfigError when the value has a
  /// different type.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups with defaults for optional keys.
  std::string StringOr(std::string_view key, std::string fallback) const;
  double NumberOr(std::string_view key, double fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace amdmb::report
