// Gnuplot emission for reproduced figures.
//
// The paper's plots are classic gnuplot line charts; given a SeriesSet
// this module writes the `.dat` column file plus a ready-to-run `.gp`
// script so `gnuplot fig07.gp` regenerates the figure as SVG. The bench
// harness drives it through GnuplotSink when AMDMB_DUMP_DIR is set.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "report/series.hpp"
#include "report/sink.hpp"

namespace amdmb {

/// Writes `<stem>.dat` and `<stem>.gp` under `directory` (created if
/// missing) and returns the script path. Throws ConfigError on I/O
/// failure.
std::filesystem::path WriteGnuplot(const SeriesSet& set,
                                   const std::filesystem::path& directory,
                                   const std::string& stem);

/// The script text alone (for tests and embedding).
std::string GnuplotScript(const SeriesSet& set, const std::string& dat_file,
                          const std::string& output_file);

namespace report {

class GnuplotSink : public FileSink {
 public:
  using FileSink::FileSink;

  std::string_view Label() const override { return "Gnuplot script"; }

  void Write(const Figure& figure) override {
    written_.clear();
    if (figure.set.All().empty()) return;
    written_.push_back(WriteGnuplot(figure.set, directory_, figure.Slug()));
  }
};

}  // namespace report

}  // namespace amdmb
