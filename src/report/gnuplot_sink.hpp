// Gnuplot emission for reproduced figures.
//
// The paper's plots are classic gnuplot line charts; given a SeriesSet
// this module writes the `.dat` column file plus a ready-to-run `.gp`
// script so `gnuplot fig07.gp` regenerates the figure as SVG. The bench
// harness drives it through GnuplotSink when AMDMB_DUMP_DIR is set.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "report/series.hpp"
#include "report/sink.hpp"

namespace amdmb {

/// Writes `<stem>.dat` and `<stem>.gp` under `directory` (created if
/// missing) and returns the script path. Throws ConfigError on I/O
/// failure.
std::filesystem::path WriteGnuplot(const SeriesSet& set,
                                   const std::filesystem::path& directory,
                                   const std::string& stem);

/// The script text alone (for tests and embedding).
std::string GnuplotScript(const SeriesSet& set, const std::string& dat_file,
                          const std::string& output_file);

/// Writes a 2D frontier map as `<stem>_frontier.dat` (x y code rows,
/// one blank line per grid row; the label-to-code legend rides in
/// comments) plus the pm3d heatmap script `<stem>_frontier.gp`, and
/// returns the script path. Codes are assigned to labels in sorted
/// order, so the emission is deterministic. Throws ConfigError on I/O
/// failure.
std::filesystem::path WriteFrontierGnuplot(
    const report::Frontier& frontier, const std::filesystem::path& directory,
    const std::string& stem);

namespace report {

class GnuplotSink : public FileSink {
 public:
  using FileSink::FileSink;

  std::string_view Label() const override { return "Gnuplot script"; }

  void Write(const Figure& figure) override {
    written_.clear();
    if (!figure.set.All().empty()) {
      written_.push_back(WriteGnuplot(figure.set, directory_, figure.Slug()));
    }
    if (figure.frontier.has_value()) {
      written_.push_back(
          WriteFrontierGnuplot(*figure.frontier, directory_, figure.Slug()));
    }
  }
};

}  // namespace report

}  // namespace amdmb
