#include "report/expectations.hpp"

#include <sstream>

#include "common/status.hpp"
#include "common/table.hpp"

namespace amdmb::report {
namespace {

std::string RenderRange(const Expectation& e) {
  std::ostringstream os;
  os << "[" << (e.min ? FormatDouble(*e.min, 3) : std::string("-inf"))
     << ", " << (e.max ? FormatDouble(*e.max, 3) : std::string("+inf"))
     << "]";
  return os.str();
}

const Finding* MatchFinding(const std::vector<Finding>& findings,
                            const Expectation& e) {
  for (const Finding& f : findings) {
    if (f.label != e.label) continue;
    if (!e.curve_substr.empty() &&
        f.curve.find(e.curve_substr) == std::string::npos) {
      continue;
    }
    return &f;
  }
  return nullptr;
}

}  // namespace

std::vector<Expectation> PaperExpectations() {
  // Ranges are wide on purpose: they must hold for quick (256^2) and
  // full (1024^2) domains, so only scale-invariant quantities
  // (crossovers, ratios, R^2 fits) are bounded — never raw seconds.
  return {
      {"fig_7", "4870 Pixel Float", "alu_bound_crossover", 0.5, 3.5, false,
       "Sec. III-A: the RV770 float kernel turns ALU-bound at a low "
       "ALU:fetch ratio"},
      {"fig_7", "4870 Pixel Float4", "alu_bound_crossover", 3.0, 7.5,
       false,
       "Sec. III-A: float4 fetches cost ~4x, pushing the crossover right"},
      {"fig_7", "4870 Compute Float4", "alu_bound_crossover", std::nullopt,
       std::nullopt, true,
       "Sec. III-A/Fig. 7: the naive 64x1 compute block stays fetch-bound "
       "across the swept ratios"},
      {"fig_11", "4870 Pixel Float4", "fit_r2", 0.9, 1.001, false,
       "Sec. III-C: texture fetch latency is linear in the input count"},
      {"fig_12", "3870 Pixel Float", "fit_r2", 0.9, 1.001, false,
       "Sec. III-C: global read latency is linear in the input count"},
      {"fig_14", "4870 Pixel Float4", "fit_r2", 0.7, 1.001, false,
       "Sec. III-D: global write time is linear in the output count"},
      {"fig_16", "4870 Pixel Float", "register_speedup", 1.15, 3.0, false,
       "Sec. III-E: freeing GPRs adds wavefronts and hides fetch latency"},
      {"fig_15a", "3870", "sweep_growth", 2.0, 25.0, false,
       "Sec. III-B: time grows with the domain once the GPU is busy"},
      {"fig_15a", "3870", "float4_float_max_domain_ratio", 0.8, 1.3, false,
       "Sec. III-B: float == float4 when ALU-bound"},
      {"extension_compute_block_size_explorer", "4870 Compute Float4",
       "naive_penalty", 1.05, 5.0, false,
       "Sec. IV: the naive 64x1 compute block leaves fetch-bound "
       "performance on the table"},
      {"ablation_clause_usage_control_paper_fig_5", "RV770 clause control",
       "level_variation", 0.0, 0.2, false,
       "Fig. 5: the pinned-GPR control kernel stays flat across steps"},
  };
}

std::string_view ToString(ExpectationStatus status) {
  switch (status) {
    case ExpectationStatus::kPass: return "pass";
    case ExpectationStatus::kFail: return "FAIL";
    case ExpectationStatus::kMissing: return "MISSING";
  }
  throw SimError("ToString(ExpectationStatus): unknown value");
}

ExpectationResult CheckExpectation(const Expectation& expectation,
                                   const LoadedFigure& figure) {
  ExpectationResult result{expectation, ExpectationStatus::kMissing, ""};
  const Finding* finding = MatchFinding(figure.findings, expectation);
  if (finding == nullptr) {
    result.detail = "no '" + expectation.label +
                    "' finding on a curve containing '" +
                    expectation.curve_substr + "'";
    return result;
  }
  if (expectation.expect_censored) {
    if (!finding->value.has_value()) {
      result.status = ExpectationStatus::kPass;
      result.detail = "censored as expected (event beyond the sweep)";
    } else {
      result.status = ExpectationStatus::kFail;
      result.detail = "expected censored, measured " +
                      FormatDouble(*finding->value, 3);
    }
    return result;
  }
  if (!finding->value.has_value()) {
    result.status = ExpectationStatus::kFail;
    result.detail = "expected a value in " + RenderRange(expectation) +
                    ", finding is censored";
    return result;
  }
  const double v = *finding->value;
  const bool in_range = (!expectation.min || v >= *expectation.min) &&
                        (!expectation.max || v <= *expectation.max);
  result.status =
      in_range ? ExpectationStatus::kPass : ExpectationStatus::kFail;
  std::string measured = FormatDouble(v, 3);
  if (!finding->unit.empty()) measured += " " + finding->unit;
  result.detail = "measured " + measured + (in_range ? " in " : " outside ") +
                  RenderRange(expectation);
  return result;
}

std::vector<ExpectationResult> CheckExpectations(
    const std::vector<LoadedFigure>& figures) {
  std::vector<ExpectationResult> results;
  for (const Expectation& e : PaperExpectations()) {
    const LoadedFigure* match = nullptr;
    for (const LoadedFigure& figure : figures) {
      if (figure.Slug() == e.figure_slug) {
        match = &figure;
        break;
      }
    }
    if (match == nullptr) continue;  // Partial results dir: skip silently.
    results.push_back(CheckExpectation(e, *match));
  }
  return results;
}

}  // namespace amdmb::report
