// Typed record model for the measurement → record → sink pipeline.
//
// Every figure reproduction produces one Figure record: run provenance
// (RunMeta), the measured curves (the re-homed Series/SeriesSet model),
// quantitative Findings (crossovers, slopes, plateaus, ratios — the
// typed replacement for the old free-text note lines), and Degradations
// (the typed replacement for RunReport::FailureLines() strings). Sinks
// (report/sink.hpp) render a Figure as text, JSON, CSV, or gnuplot;
// the amdmb_report tool loads the JSON documents back (report/load.hpp)
// and aggregates them across figures, so no consumer ever has to
// regex-scrape a note string again.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prof/counters.hpp"
#include "report/series.hpp"

namespace amdmb::exec {
struct RunReport;
}  // namespace amdmb::exec

namespace amdmb::prof {
struct Profile;
}  // namespace amdmb::prof

namespace amdmb::report {

/// The report-layer names for the curve model: a figure is a set of
/// named Curves, each a list of (x, y) Points.
using Point = ::amdmb::SeriesPoint;
using Curve = ::amdmb::Series;

/// Version of the BENCH_*.json document layout. v1 (pre-report-layer)
/// had no explicit version key; v2 adds schema_version, meta, findings,
/// and typed degradations.
inline constexpr int kSchemaVersion = 2;

/// What kind of quantitative observation a Finding states.
enum class FindingKind {
  kCrossover,  ///< x at which the curve's bottleneck/behaviour flips.
  kSlope,      ///< Fitted rate (e.g. seconds per input).
  kPlateau,    ///< A measured level (flat-region height, endpoint time).
  kRatio,      ///< Dimensionless comparison (speedup, fit R^2, gap).
  kEvent,      ///< Run-level occurrence (e.g. "interrupted" partial run).
};

std::string_view ToString(FindingKind kind);

/// Inverse of ToString; nullopt for unknown names (forward compat: a
/// newer writer may emit kinds this reader does not know).
std::optional<FindingKind> FindingKindFromString(std::string_view name);

/// One quantitative observation extracted from a figure's curves.
struct Finding {
  FindingKind kind = FindingKind::kPlateau;
  std::string curve;  ///< Legend label ("4870 Pixel Float"); may be "".
  std::string label;  ///< Machine key, snake_case ("alu_bound_crossover").
  /// Absent = censored: the event did not occur within the sweep
  /// (e.g. a crossover beyond the last swept ratio).
  std::optional<double> value;
  std::string unit;    ///< "ratio", "s", "s/input", "x", "" (unitless).
  std::string detail;  ///< Optional human clarification.

  /// Human-readable one-liner for the text sink / notes array, e.g.
  /// "4870 Pixel Float: alu_bound_crossover = 5.25 ratio".
  std::string Render() const;

  bool operator==(const Finding&) const = default;
};

/// Scans `findings` for the first entry with this label (and, when
/// `curve` is non-empty, that curve). Returns nullptr when absent.
const Finding* FindFinding(const std::vector<Finding>& findings,
                           std::string_view label,
                           std::string_view curve = {});

/// One degraded sweep point: a point that was retried, skipped, or
/// failed. Typed so tools can count and classify without parsing text.
struct Degradation {
  std::string curve;    ///< Owning curve name.
  std::string point;    ///< Sweep-point label ("alufetch_r0.25").
  std::string status;   ///< "retried" / "skipped" / "failed".
  unsigned attempts = 1;
  std::string error;    ///< Last failure message; may be empty.

  /// The legacy fault-annotation line format
  /// ("curve/point: retried, 2 attempts — ...").
  std::string Render() const;

  bool operator==(const Degradation&) const = default;
};

/// Converts every non-ok point of `run` into a Degradation owned by
/// `curve` (the typed successor of the old NoteFaults/FailureLines
/// string plumbing).
std::vector<Degradation> DegradationsFrom(const exec::RunReport& run,
                                          const std::string& curve);

/// One profiled sweep point: the sampled hardware counters plus the
/// counter-based bottleneck attribution, cross-checked against the
/// simulator's heuristic classification. Bottlenecks are stored as the
/// canonical strings ("ALU" / "FETCH" / "MEMORY") so the record layer
/// stays decoupled from the simulator types and the JSON round-trip is
/// verbatim.
struct ProfileEntry {
  std::string curve;       ///< Legend label ("4870 Pixel Float").
  std::string point;       ///< Sweep-point label ("alufetch_r2.00").
  std::string attributed;  ///< Counter-based bottleneck.
  std::string heuristic;   ///< Gpu::Execute's classification.
  bool agree = true;       ///< attributed == heuristic.
  double alu_score = 0.0;
  double fetch_score = 0.0;
  double memory_score = 0.0;
  prof::CounterSet counters;
  std::uint64_t dropped_events = 0;  ///< Trace events past AMDMB_TRACE_CAP.

  /// One line for the text sink, e.g.
  /// "4870 Pixel Float/alufetch_r2.00: ALU (agrees with heuristic)".
  std::string Render() const;

  bool operator==(const ProfileEntry&) const = default;
};

/// Builds the entry for one profiled measurement. `heuristic` is the
/// rendered sim::Bottleneck of the same launch's KernelStats.
ProfileEntry MakeProfileEntry(const std::string& curve,
                              const prof::Profile& profile,
                              std::string_view heuristic);

/// Run-wide provenance stamped into every figure record.
struct RunMeta {
  std::string suite_version;      ///< git describe at build time.
  unsigned threads = 1;           ///< Resolved sweep-executor width.
  bool quick = false;             ///< AMDMB_QUICK smoke scale.
  std::string faults;             ///< Raw AMDMB_FAULTS spec ("" = none).
  std::string retry;              ///< Raw AMDMB_RETRY spec ("" = default).
  std::uint64_t watchdog_cycles = 0;
  bool adaptive = false;           ///< Curves came from adaptive refinement.
  std::vector<std::string> archs;  ///< GPU generations in the figure.
  std::vector<std::string> modes;  ///< Shader modes in the figure.
};

/// Meta snapshot of this process: env knobs plus the build's git
/// describe. archs/modes are filled per figure by FinalizeMeta.
RunMeta CollectRunMeta();

/// A 2D classification map (e.g. bottleneck over ALU:Fetch ratio ×
/// register-ladder step), the artifact of adaptive quadrant
/// refinement. Cells are labels on the xs × ys grid, row-major with y
/// outermost (`cells[iy * xs.size() + ix]`); `measured` marks which
/// nodes were actually simulated — the rest were filled from uniform
/// enclosing quadrants. Emitted as the schema-additive "frontier"
/// block of BENCH JSON; absent for 1D figures.
struct Frontier {
  std::string x_label;
  std::string y_label;
  std::vector<double> xs;  ///< Grid node coordinates, ascending.
  std::vector<double> ys;
  std::vector<std::string> cells;  ///< Node labels ("" = unresolved).
  std::vector<bool> measured;      ///< Parallel to cells.
  std::uint64_t points_measured = 0;
  std::uint64_t points_dense = 0;  ///< xs.size() * ys.size().

  bool operator==(const Frontier&) const = default;
};

/// Complete record of one reproduced figure.
struct Figure {
  Figure(std::string id_, std::string title, std::string x_label,
         std::string y_label, std::string paper_claim_)
      : id(std::move(id_)),
        paper_claim(std::move(paper_claim_)),
        set(std::move(title), std::move(x_label), std::move(y_label)) {}

  std::string id;           ///< "Fig. 7 — ALU:Fetch Ratio for 16 Inputs".
  std::string paper_claim;  ///< The paper's qualitative expectation.
  SeriesSet set;            ///< The measured curves.
  std::vector<Finding> findings;
  std::vector<Degradation> degradations;
  /// Per-point profiles, present only when the run was profiled
  /// (AMDMB_PROF); sinks emit the additive "profile" block from these.
  std::vector<ProfileEntry> profiles;
  /// 2D classification map, present only for frontier-map figures.
  std::optional<Frontier> frontier;
  RunMeta meta;

  /// Filesystem-safe stem ("fig_7"); see FigureSlug.
  std::string Slug() const;
};

/// Stamps `figure.meta` with the process RunMeta and derives the
/// archs/modes lists from the figure's curve legend names.
void FinalizeMeta(Figure& figure);

}  // namespace amdmb::report
