#include "report/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/status.hpp"

namespace amdmb::report {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool JsonValue::AsBool() const {
  Require(type_ == Type::kBool, "JsonValue: not a boolean");
  return bool_;
}

double JsonValue::AsNumber() const {
  Require(type_ == Type::kNumber, "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::AsString() const {
  Require(type_ == Type::kString, "JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  Require(type_ == Type::kArray, "JsonValue: not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  Require(type_ == Type::kObject, "JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type_ == Type::kString ? v->string_
                                                   : std::move(fallback);
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type_ == Type::kNumber ? v->number_ : fallback;
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type_ == Type::kBool ? v->bool_ : fallback;
}

/// Recursive-descent parser over the full input.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    Require(pos_ == text_.size(),
            "JSON: trailing garbage at byte " + std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw ConfigError("JSON: " + what + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
      case 'f': return ParseBool();
      case 'n': {
        if (!Consume("null")) Fail("bad literal");
        return JsonValue{};
      }
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      value.object_.emplace_back(std::move(key.string_), ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_.push_back(ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  JsonValue ParseString() {
    Expect('"');
    JsonValue value;
    value.type_ = JsonValue::Type::kString;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.string_.push_back('"'); break;
        case '\\': value.string_.push_back('\\'); break;
        case '/': value.string_.push_back('/'); break;
        case 'n': value.string_.push_back('\n'); break;
        case 'r': value.string_.push_back('\r'); break;
        case 't': value.string_.push_back('\t'); break;
        case 'b': value.string_.push_back('\b'); break;
        case 'f': value.string_.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else Fail("bad \\u escape digit");
          }
          // Our writer only \u-escapes control characters (< 0x20);
          // encode anything in the BMP as UTF-8 for robustness.
          if (code < 0x80) {
            value.string_.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.string_.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.string_.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.string_.push_back(static_cast<char>(0xE0 | (code >> 12)));
            value.string_.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.string_.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: Fail("unknown escape");
      }
    }
  }

  JsonValue ParseBool() {
    JsonValue value;
    value.type_ = JsonValue::Type::kBool;
    if (Consume("true")) {
      value.bool_ = true;
    } else if (Consume("false")) {
      value.bool_ = false;
    } else {
      Fail("bad literal");
    }
    return value;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Fail("bad number");
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = number;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace amdmb::report
