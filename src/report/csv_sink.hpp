// CSV emission for reproduced figures.
//
// One `<slug>.csv` per figure, written next to the BENCH_<slug>.json
// document when AMDMB_JSON_DIR is set: the same x/curve grid as the
// stdout column block, but comma-separated and unpadded so spreadsheet
// tools ingest it directly.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "report/sink.hpp"

namespace amdmb::report {

/// The figure's curve grid as CSV text (title comment line, header row,
/// one row per x value; blank cells where a curve lacks that x).
std::string CsvText(const Figure& figure);

/// Writes `<slug>.csv` under `directory` (created if missing) and
/// returns the file path. Throws ConfigError on I/O failure.
std::filesystem::path WriteCsv(const Figure& figure,
                               const std::filesystem::path& directory);

class CsvSink : public FileSink {
 public:
  using FileSink::FileSink;

  std::string_view Label() const override { return "CSV results"; }

  void Write(const Figure& figure) override {
    written_.clear();
    if (figure.set.All().empty()) return;
    written_.push_back(WriteCsv(figure, directory_));
  }
};

}  // namespace amdmb::report
