#include "report/gnuplot_sink.hpp"

#include <fstream>
#include <sstream>

#include "common/status.hpp"

namespace amdmb {

std::string GnuplotScript(const SeriesSet& set, const std::string& dat_file,
                          const std::string& output_file) {
  std::ostringstream os;
  os << "set terminal svg size 900,600\n"
     << "set output '" << output_file << "'\n"
     << "set title \"" << set.Title() << "\"\n"
     << "set key outside right\n"
     << "set grid\n"
     << "plot";
  const auto& all = set.All();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i) os << ",";
    // Column 1 is x; series i is column i+2. Header lines in the .dat
    // are written as gnuplot comments.
    os << " \\\n  '" << dat_file << "' using 1:" << (i + 2)
       << " with linespoints title \"" << all[i].Name() << "\"";
  }
  os << "\n";
  return os.str();
}

std::filesystem::path WriteGnuplot(const SeriesSet& set,
                                   const std::filesystem::path& directory,
                                   const std::string& stem) {
  report::EnsureWritableDirectory(directory, "WriteGnuplot output directory");

  const std::filesystem::path dat = directory / (stem + ".dat");
  const std::filesystem::path gp = directory / (stem + ".gp");
  {
    std::ofstream out(dat);
    Require(out.good(), "WriteGnuplot: cannot open " + dat.string());
    // Comment the column-name line so gnuplot skips it like the title.
    const std::string columns = set.RenderColumns();
    const std::size_t first_newline = columns.find('\n');
    Check(first_newline != std::string::npos, "WriteGnuplot: empty figure");
    out << columns.substr(0, first_newline + 1) << "# "
        << columns.substr(first_newline + 1);
  }
  {
    std::ofstream out(gp);
    Require(out.good(), "WriteGnuplot: cannot open " + gp.string());
    out << GnuplotScript(set, dat.filename().string(), stem + ".svg");
  }
  return gp;
}

}  // namespace amdmb
