#include "report/gnuplot_sink.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/status.hpp"
#include "report/json.hpp"

namespace amdmb {

std::string GnuplotScript(const SeriesSet& set, const std::string& dat_file,
                          const std::string& output_file) {
  std::ostringstream os;
  os << "set terminal svg size 900,600\n"
     << "set output '" << output_file << "'\n"
     << "set title \"" << set.Title() << "\"\n"
     << "set key outside right\n"
     << "set grid\n"
     << "plot";
  const auto& all = set.All();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i) os << ",";
    // Column 1 is x; series i is column i+2. Header lines in the .dat
    // are written as gnuplot comments.
    os << " \\\n  '" << dat_file << "' using 1:" << (i + 2)
       << " with linespoints title \"" << all[i].Name() << "\"";
  }
  os << "\n";
  return os.str();
}

std::filesystem::path WriteGnuplot(const SeriesSet& set,
                                   const std::filesystem::path& directory,
                                   const std::string& stem) {
  report::EnsureWritableDirectory(directory, "WriteGnuplot output directory");

  const std::filesystem::path dat = directory / (stem + ".dat");
  const std::filesystem::path gp = directory / (stem + ".gp");
  {
    std::ofstream out(dat);
    Require(out.good(), "WriteGnuplot: cannot open " + dat.string());
    // Comment the column-name line so gnuplot skips it like the title.
    const std::string columns = set.RenderColumns();
    const std::size_t first_newline = columns.find('\n');
    Check(first_newline != std::string::npos, "WriteGnuplot: empty figure");
    out << columns.substr(0, first_newline + 1) << "# "
        << columns.substr(first_newline + 1);
  }
  {
    std::ofstream out(gp);
    Require(out.good(), "WriteGnuplot: cannot open " + gp.string());
    out << GnuplotScript(set, dat.filename().string(), stem + ".svg");
  }
  return gp;
}

std::filesystem::path WriteFrontierGnuplot(
    const report::Frontier& frontier, const std::filesystem::path& directory,
    const std::string& stem) {
  report::EnsureWritableDirectory(directory,
                                  "WriteFrontierGnuplot output directory");
  const std::size_t nx = frontier.xs.size();
  const std::size_t ny = frontier.ys.size();
  Require(nx > 0 && ny > 0 && frontier.cells.size() == nx * ny,
          "WriteFrontierGnuplot: malformed frontier grid");

  // Codes assigned to the sorted distinct labels; "" (unresolved under
  // a budget cap) stays -1 so it renders below the palette.
  std::vector<std::string> labels(frontier.cells);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  std::map<std::string, int> code;
  for (const std::string& label : labels) {
    if (label.empty()) {
      code[label] = -1;
    } else {
      code[label] = static_cast<int>(code.size()) - (code.count("") ? 1 : 0);
    }
  }

  const std::filesystem::path dat = directory / (stem + "_frontier.dat");
  const std::filesystem::path gp = directory / (stem + "_frontier.gp");
  {
    std::ofstream out(dat);
    Require(out.good(), "WriteFrontierGnuplot: cannot open " + dat.string());
    out << "# " << frontier.x_label << "  " << frontier.y_label
        << "  class\n";
    for (const auto& [label, value] : code) {
      out << "# class " << value << " = "
          << (label.empty() ? "(unresolved)" : label) << "\n";
    }
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        out << report::JsonNumber(frontier.xs[ix]) << " "
            << report::JsonNumber(frontier.ys[iy]) << " "
            << code.at(frontier.cells[iy * nx + ix]) << "\n";
      }
      out << "\n";  // pm3d scan break per grid row.
    }
  }
  {
    std::ofstream out(gp);
    Require(out.good(), "WriteFrontierGnuplot: cannot open " + gp.string());
    out << "set terminal svg size 900,600\n"
        << "set output '" << stem << "_frontier.svg'\n"
        << "set title \"" << frontier.x_label << " x " << frontier.y_label
        << " bottleneck frontier\"\n"
        << "set xlabel \"" << frontier.x_label << "\"\n"
        << "set ylabel \"" << frontier.y_label << "\"\n"
        << "set view map\n"
        << "unset key\n"
        << "set palette maxcolors "
        << std::max<std::size_t>(labels.size(), 1) << "\n"
        << "plot '" << dat.filename().string()
        << "' using 1:2:3 with image\n";
  }
  return gp;
}

}  // namespace amdmb
