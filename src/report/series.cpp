#include "report/series.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace amdmb {

std::vector<double> Series::Xs() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.x);
  return out;
}

std::vector<double> Series::Ys() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.y);
  return out;
}

std::optional<double> Series::At(double x) const {
  for (const auto& p : points_)
    if (p.x == x) return p.y;
  return std::nullopt;
}

Series& SeriesSet::Get(const std::string& name) {
  for (auto& s : series_)
    if (s.Name() == name) return s;
  series_.emplace_back(name);
  return series_.back();
}

const Series* SeriesSet::Find(const std::string& name) const {
  for (const auto& s : series_)
    if (s.Name() == name) return &s;
  return nullptr;
}

namespace {

std::string RenderGrid(const SeriesSet& set, const std::string& title,
                       const std::string& x_label, char sep, int precision,
                       bool pad) {
  // Union of x values across curves, ascending.
  std::map<double, std::vector<std::optional<double>>> grid;
  const auto& all = set.All();
  for (std::size_t si = 0; si < all.size(); ++si) {
    for (const auto& p : all[si].Points()) {
      auto& row = grid[p.x];
      row.resize(all.size());
      row[si] = p.y;
    }
  }
  for (auto& [x, row] : grid) row.resize(all.size());

  std::ostringstream os;
  os << "# " << title << "\n";
  std::vector<std::string> header;
  header.push_back(x_label);
  for (const auto& s : all) header.push_back(s.Name());

  std::vector<std::size_t> widths;
  if (pad) {
    for (const auto& h : header) widths.push_back(std::max<std::size_t>(h.size(), 10));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << sep;
      if (pad)
        os << std::left << std::setw(static_cast<int>(widths[i] + 2)) << cells[i];
      else
        os << cells[i];
    }
    os << "\n";
  };
  emit(header);
  for (const auto& [x, row] : grid) {
    std::vector<std::string> cells;
    std::ostringstream xs;
    xs << std::setprecision(precision) << x;
    cells.push_back(xs.str());
    for (const auto& y : row) {
      if (y.has_value()) {
        std::ostringstream ys;
        ys << std::fixed << std::setprecision(precision) << *y;
        cells.push_back(ys.str());
      } else {
        cells.push_back(pad ? "-" : "");
      }
    }
    emit(cells);
  }
  return os.str();
}

}  // namespace

std::string SeriesSet::RenderColumns(int precision) const {
  return RenderGrid(*this, title_ + "  [y: " + y_label_ + "]", x_label_, ' ',
                    precision, /*pad=*/true);
}

std::string SeriesSet::RenderCsv(int precision) const {
  return RenderGrid(*this, title_, x_label_, ',', precision, /*pad=*/false);
}

}  // namespace amdmb
