#include "report/load.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/status.hpp"
#include "prof/profile_json.hpp"
#include "report/json.hpp"
#include "report/json_sink.hpp"

namespace amdmb::report {

namespace {

std::vector<std::string> StringList(const JsonValue* value) {
  std::vector<std::string> out;
  if (value == nullptr) return out;
  for (const JsonValue& item : value->AsArray()) {
    out.push_back(item.AsString());
  }
  return out;
}

RunMeta MetaFrom(const JsonValue& doc) {
  RunMeta meta;
  const JsonValue* m = doc.Find("meta");
  if (m == nullptr) return meta;
  meta.suite_version = m->StringOr("suite_version", "unknown");
  meta.threads = static_cast<unsigned>(m->NumberOr("threads", 1.0));
  meta.quick = m->BoolOr("quick", false);
  meta.faults = m->StringOr("faults", "");
  meta.retry = m->StringOr("retry", "");
  meta.watchdog_cycles =
      static_cast<std::uint64_t>(m->NumberOr("watchdog_cycles", 0.0));
  meta.adaptive = m->BoolOr("adaptive", false);
  meta.archs = StringList(m->Find("archs"));
  meta.modes = StringList(m->Find("modes"));
  return meta;
}

std::vector<Finding> FindingsFrom(const JsonValue& doc) {
  std::vector<Finding> out;
  const JsonValue* list = doc.Find("findings");
  if (list == nullptr) return out;
  for (const JsonValue& item : list->AsArray()) {
    const auto kind = FindingKindFromString(item.StringOr("kind", ""));
    if (!kind.has_value()) continue;  // A newer writer's kind; skip.
    Finding f;
    f.kind = *kind;
    f.curve = item.StringOr("curve", "");
    f.label = item.StringOr("label", "");
    if (const JsonValue* v = item.Find("value");
        v != nullptr && v->type() == JsonValue::Type::kNumber) {
      f.value = v->AsNumber();
    }
    f.unit = item.StringOr("unit", "");
    f.detail = item.StringOr("detail", "");
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<Degradation> DegradationsFrom(const JsonValue& doc) {
  std::vector<Degradation> out;
  const JsonValue* list = doc.Find("degradations");
  if (list == nullptr) return out;
  for (const JsonValue& item : list->AsArray()) {
    Degradation d;
    d.curve = item.StringOr("curve", "");
    d.point = item.StringOr("point", "");
    d.status = item.StringOr("status", "");
    d.attempts = static_cast<unsigned>(item.NumberOr("attempts", 1.0));
    d.error = item.StringOr("error", "");
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<ProfileEntry> ProfilesFrom(const JsonValue& doc) {
  std::vector<ProfileEntry> out;
  const JsonValue* list = doc.Find("profile");
  if (list == nullptr) return out;
  for (const JsonValue& item : list->AsArray()) {
    ProfileEntry p;
    p.curve = item.StringOr("curve", "");
    p.point = item.StringOr("point", "");
    p.attributed = item.StringOr("attributed", "");
    p.heuristic = item.StringOr("heuristic", "");
    p.agree = item.BoolOr("agree", true);
    p.alu_score = item.NumberOr("alu_score", 0.0);
    p.fetch_score = item.NumberOr("fetch_score", 0.0);
    p.memory_score = item.NumberOr("memory_score", 0.0);
    p.dropped_events =
        static_cast<std::uint64_t>(item.NumberOr("dropped_events", 0.0));
    if (const JsonValue* counters = item.Find("counters")) {
      p.counters = prof::CounterSetFromJson(*counters);
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::optional<Frontier> FrontierFrom(const JsonValue& doc) {
  const JsonValue* f = doc.Find("frontier");
  if (f == nullptr) return std::nullopt;
  Frontier frontier;
  frontier.x_label = f->StringOr("x_label", "");
  frontier.y_label = f->StringOr("y_label", "");
  if (const JsonValue* xs = f->Find("xs")) {
    for (const JsonValue& v : xs->AsArray()) frontier.xs.push_back(v.AsNumber());
  }
  if (const JsonValue* ys = f->Find("ys")) {
    for (const JsonValue& v : ys->AsArray()) frontier.ys.push_back(v.AsNumber());
  }
  frontier.cells = StringList(f->Find("cells"));
  if (const JsonValue* measured = f->Find("measured")) {
    for (const JsonValue& v : measured->AsArray()) {
      frontier.measured.push_back(v.AsBool());
    }
  }
  frontier.points_measured =
      static_cast<std::uint64_t>(f->NumberOr("points_measured", 0.0));
  frontier.points_dense =
      static_cast<std::uint64_t>(f->NumberOr("points_dense", 0.0));
  return frontier;
}

std::vector<LoadedCurve> CurvesFrom(const JsonValue& doc) {
  std::vector<LoadedCurve> out;
  const JsonValue* list = doc.Find("curves");
  if (list == nullptr) return out;
  for (const JsonValue& item : list->AsArray()) {
    LoadedCurve curve;
    curve.name = item.StringOr("name", "");
    if (const JsonValue* points = item.Find("points")) {
      for (const JsonValue& p : points->AsArray()) {
        curve.points.push_back(
            {p.NumberOr("x", 0.0), p.NumberOr("sim_seconds", 0.0)});
      }
    }
    curve.median = item.NumberOr("sim_seconds_median", 0.0);
    curve.min = item.NumberOr("sim_seconds_min", 0.0);
    curve.max = item.NumberOr("sim_seconds_max", 0.0);
    out.push_back(std::move(curve));
  }
  return out;
}

}  // namespace

std::string LoadedFigure::Slug() const { return FigureSlug(id); }

LoadedFigure LoadFigureJson(std::string_view text,
                            std::filesystem::path source) {
  const JsonValue doc = JsonValue::Parse(text);
  const JsonValue* figure_id = doc.Find("figure");
  Require(figure_id != nullptr,
          "LoadFigureJson: missing \"figure\" key" +
              (source.empty() ? std::string()
                              : " in " + source.string()));

  // schema_version is optional (pre-v2 writers omitted it, meaning 1),
  // but when present it must be a number we know how to read. A v3 doc
  // may rename fields we silently default, so refusing is the only way
  // to keep "loaded" meaning "understood".
  int schema_version = 1;
  if (const JsonValue* v = doc.Find("schema_version")) {
    const std::string where =
        source.empty() ? std::string() : " in " + source.string();
    Require(v->type() == JsonValue::Type::kNumber,
            "LoadFigureJson: \"schema_version\" is not a number" + where);
    schema_version = static_cast<int>(v->AsNumber());
    Require(schema_version >= 1 && schema_version <= 2,
            "LoadFigureJson: unsupported schema_version " +
                std::to_string(schema_version) + " (supported: 1..2)" +
                where);
  }

  LoadedFigure figure;
  figure.source = std::move(source);
  figure.id = figure_id->AsString();
  figure.title = doc.StringOr("title", "");
  figure.paper_claim = doc.StringOr("paper_claim", "");
  figure.schema_version = schema_version;
  figure.meta = MetaFrom(doc);
  figure.notes = StringList(doc.Find("notes"));
  figure.findings = FindingsFrom(doc);
  figure.degradations = DegradationsFrom(doc);
  figure.profiles = ProfilesFrom(doc);
  figure.frontier = FrontierFrom(doc);
  figure.curves = CurvesFrom(doc);
  return figure;
}

std::vector<LoadedFigure> LoadFigureDirectory(
    const std::filesystem::path& directory, std::string_view slug) {
  Require(std::filesystem::is_directory(directory),
          "LoadFigureDirectory: '" + directory.string() +
              "' is not a directory");

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      // The writer names documents BENCH_<slug>.json, so the --figure
      // filter can skip non-matching files without parsing them.
      if (!slug.empty() &&
          name != "BENCH_" + std::string(slug) + ".json") {
        continue;
      }
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<LoadedFigure> figures;
  figures.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file);
    Require(in.good(), "LoadFigureDirectory: cannot open " + file.string());
    std::ostringstream text;
    text << in.rdbuf();
    try {
      figures.push_back(LoadFigureJson(text.str(), file));
    } catch (const ConfigError& e) {
      throw ConfigError(file.string() + ": " + e.what());
    }
  }
  return figures;
}

}  // namespace amdmb::report
