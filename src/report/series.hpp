// Named (x, y) data series, the unit of output for every figure
// reproduction. A SeriesSet holds all curves of one figure (e.g. the ten
// "<card> <mode> <type>" curves of Fig. 7) and can render them as the
// column layout gnuplot consumed in the original paper, or as CSV.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace amdmb {

struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
};

class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void Add(double x, double y) { points_.push_back({x, y}); }

  const std::string& Name() const { return name_; }
  const std::vector<SeriesPoint>& Points() const { return points_; }
  bool Empty() const { return points_.empty(); }

  std::vector<double> Xs() const;
  std::vector<double> Ys() const;

  /// y at the given x, if a point with that exact x exists.
  std::optional<double> At(double x) const;

 private:
  std::string name_;
  std::vector<SeriesPoint> points_;
};

/// A collection of curves sharing one x-axis (one paper figure).
class SeriesSet {
 public:
  SeriesSet(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  /// Returns the series with this name, creating it if absent. The
  /// reference stays valid across later Get calls (the deque never
  /// relocates existing series), so a bench may hold two curves' series
  /// while interleaving adds to both.
  Series& Get(const std::string& name);

  const Series* Find(const std::string& name) const;
  const std::deque<Series>& All() const { return series_; }
  const std::string& Title() const { return title_; }

  /// Renders "x  y1  y2 ..." columns with a header naming each curve —
  /// the layout the paper's gnuplot scripts consumed. Curves with
  /// different x grids render blank cells for missing points.
  std::string RenderColumns(int precision = 4) const;

  /// Comma-separated version of RenderColumns for machine consumption.
  std::string RenderCsv(int precision = 6) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::deque<Series> series_;
};

}  // namespace amdmb
