// Human-readable stdout report for one figure.
//
// Reproduces the pre-report-layer block byte for byte: figure banner,
// paper claim, the "x  y1  y2 ..." column grid, a "Measured:" list
// rendered from the typed findings, and — only when points degraded —
// a "Fault annotations" list rendered from the typed degradations.
#pragma once

#include <iostream>

#include "report/sink.hpp"

namespace amdmb::report {

class TextSink : public Sink {
 public:
  explicit TextSink(std::ostream& os = std::cout) : os_(os) {}

  void Write(const Figure& figure) override;

 private:
  std::ostream& os_;
};

}  // namespace amdmb::report
