#include "report/text_sink.hpp"

namespace amdmb::report {

void TextSink::Write(const Figure& figure) {
  os_ << "\n==== " << figure.id << " ====\n";
  os_ << "Paper claim: " << figure.paper_claim << "\n\n";
  os_ << figure.set.RenderColumns() << "\n";
  if (!figure.findings.empty()) {
    os_ << "Measured:\n";
    for (const Finding& f : figure.findings) {
      os_ << "  - " << f.Render() << "\n";
    }
  }
  if (!figure.degradations.empty()) {
    os_ << "Fault annotations (degraded sweep points):\n";
    for (const Degradation& d : figure.degradations) {
      os_ << "  - " << d.Render() << "\n";
    }
  }
}

}  // namespace amdmb::report
