#include "report/text_sink.hpp"

namespace amdmb::report {

void TextSink::Write(const Figure& figure) {
  os_ << "\n==== " << figure.id << " ====\n";
  os_ << "Paper claim: " << figure.paper_claim << "\n\n";
  os_ << figure.set.RenderColumns() << "\n";
  if (!figure.findings.empty()) {
    os_ << "Measured:\n";
    for (const Finding& f : figure.findings) {
      os_ << "  - " << f.Render() << "\n";
    }
  }
  if (!figure.degradations.empty()) {
    os_ << "Fault annotations (degraded sweep points):\n";
    for (const Degradation& d : figure.degradations) {
      os_ << "  - " << d.Render() << "\n";
    }
  }
  if (!figure.profiles.empty()) {
    std::size_t agreeing = 0;
    for (const ProfileEntry& p : figure.profiles) {
      if (p.agree) ++agreeing;
    }
    os_ << "Profiled points (counter-based attribution, " << agreeing
        << "/" << figure.profiles.size() << " agree with the heuristic):\n";
    for (const ProfileEntry& p : figure.profiles) {
      os_ << "  - " << p.Render() << "\n";
    }
  }
}

}  // namespace amdmb::report
