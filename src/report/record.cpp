#include "report/record.hpp"

#include <sstream>

#include "arch/gpu_arch.hpp"
#include "common/env.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "exec/run_report.hpp"
#include "exec/thread_pool.hpp"
#include "prof/profile.hpp"
#include "report/json_sink.hpp"

namespace amdmb::report {

std::string_view ToString(FindingKind kind) {
  switch (kind) {
    case FindingKind::kCrossover: return "crossover";
    case FindingKind::kSlope: return "slope";
    case FindingKind::kPlateau: return "plateau";
    case FindingKind::kRatio: return "ratio";
    case FindingKind::kEvent: return "event";
  }
  throw SimError("ToString(FindingKind): unknown value");
}

std::optional<FindingKind> FindingKindFromString(std::string_view name) {
  if (name == "crossover") return FindingKind::kCrossover;
  if (name == "slope") return FindingKind::kSlope;
  if (name == "plateau") return FindingKind::kPlateau;
  if (name == "ratio") return FindingKind::kRatio;
  if (name == "event") return FindingKind::kEvent;
  return std::nullopt;
}

std::string Finding::Render() const {
  std::ostringstream os;
  if (!curve.empty()) os << curve << ": ";
  os << label << " ";
  if (value.has_value()) {
    os << "= " << FormatDouble(*value, 3);
    if (!unit.empty()) os << " " << unit;
  } else {
    os << "not reached within the sweep";
  }
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

const Finding* FindFinding(const std::vector<Finding>& findings,
                           std::string_view label, std::string_view curve) {
  for (const Finding& f : findings) {
    if (f.label != label) continue;
    if (!curve.empty() && f.curve != curve) continue;
    return &f;
  }
  return nullptr;
}

std::string Degradation::Render() const {
  std::ostringstream os;
  os << curve << "/" << point << ": " << status << ", " << attempts
     << " attempt" << (attempts == 1 ? "" : "s");
  if (!error.empty()) os << " — " << error;
  return os.str();
}

std::vector<Degradation> DegradationsFrom(const exec::RunReport& run,
                                          const std::string& curve) {
  std::vector<Degradation> out;
  for (const exec::PointOutcome& p : run.points) {
    if (p.status == exec::PointStatus::kOk) continue;
    Degradation d;
    d.curve = curve;
    d.point = p.label.empty() ? "point " + std::to_string(p.index) : p.label;
    d.status = std::string(exec::ToString(p.status));
    d.attempts = p.attempts;
    d.error = p.error;
    out.push_back(std::move(d));
  }
  return out;
}

std::string ProfileEntry::Render() const {
  std::ostringstream os;
  os << curve << "/" << point << ": " << attributed;
  if (agree) {
    os << " (agrees with heuristic)";
  } else {
    os << " — DIVERGES from heuristic " << heuristic;
  }
  os << "  alu=" << FormatDouble(alu_score, 3)
     << " fetch=" << FormatDouble(fetch_score, 3)
     << " memory=" << FormatDouble(memory_score, 3);
  if (dropped_events > 0) {
    os << "  (" << dropped_events << " trace events dropped)";
  }
  return os.str();
}

ProfileEntry MakeProfileEntry(const std::string& curve,
                              const prof::Profile& profile,
                              std::string_view heuristic) {
  ProfileEntry entry;
  entry.curve = curve;
  entry.point = profile.point;
  entry.attributed = sim::ToString(profile.attribution.bottleneck);
  entry.heuristic = heuristic;
  entry.agree = entry.attributed == entry.heuristic;
  entry.alu_score = profile.attribution.alu_score;
  entry.fetch_score = profile.attribution.fetch_score;
  entry.memory_score = profile.attribution.memory_score;
  entry.counters = profile.counters;
  entry.dropped_events = profile.dropped_events;
  return entry;
}

RunMeta CollectRunMeta() {
  RunMeta meta;
  meta.suite_version = std::string(SuiteVersion());
  const env::Options& options = env::Get();
  meta.threads = exec::DefaultThreadCount();
  meta.quick = options.quick;
  meta.faults = options.faults.value_or("");
  meta.retry = options.retry.value_or("");
  meta.watchdog_cycles = options.watchdog_cycles;
  meta.adaptive = options.adapt;
  return meta;
}

std::string Figure::Slug() const { return FigureSlug(id); }

void FinalizeMeta(Figure& figure) {
  RunMeta meta = CollectRunMeta();
  // The legend names carry the GPU generation ("4870 Pixel Float") and
  // the shader mode; collect whichever of the known archs/modes appear.
  for (const GpuArch& arch : AllArchs()) {
    std::string card = arch.card;  // "Radeon HD 4870" -> "4870".
    if (const auto pos = card.rfind(' '); pos != std::string::npos) {
      card = card.substr(pos + 1);
    }
    for (const Curve& curve : figure.set.All()) {
      if (curve.Name().find(card) != std::string::npos) {
        meta.archs.push_back(arch.name + " (" + card + ")");
        break;
      }
    }
  }
  for (const std::string_view mode : {"Pixel", "Compute"}) {
    for (const Curve& curve : figure.set.All()) {
      if (curve.Name().find(mode) != std::string::npos) {
        std::string lower(mode);
        lower[0] = static_cast<char>(lower[0] - 'A' + 'a');
        meta.modes.push_back(lower);
        break;
      }
    }
  }
  figure.meta = std::move(meta);
}

}  // namespace amdmb::report
