// Paper expectations encoded as data.
//
// Each Expectation names one typed Finding the suite should produce
// (figure slug + curve substring + finding label) and the numeric range
// the paper's qualitative claims imply. The amdmb_report aggregator
// checks a directory of BENCH_*.json results against this table, so
// "does the reproduction still match the paper" is a data lookup, not a
// human re-reading EXPERIMENTS.md. Ranges are deliberately wide and
// scale-invariant (crossovers, ratios, R^2) so they hold for both
// AMDMB_QUICK=1 and full-domain runs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "report/load.hpp"

namespace amdmb::report {

/// One checkable claim about a Finding the suite should emit.
struct Expectation {
  std::string figure_slug;   ///< Slug of the figure ("fig_7").
  std::string curve_substr;  ///< First finding whose curve contains this.
  std::string label;         ///< Finding label ("alu_bound_crossover").
  std::optional<double> min;  ///< Inclusive lower bound (absent = -inf).
  std::optional<double> max;  ///< Inclusive upper bound (absent = +inf).
  /// True when the paper predicts the event does NOT occur within the
  /// sweep (the finding must be censored, i.e. carry no value).
  bool expect_censored = false;
  std::string paper_note;  ///< Where the claim comes from.
};

/// The built-in table of paper claims the suite checks by default.
std::vector<Expectation> PaperExpectations();

enum class ExpectationStatus {
  kPass,     ///< Finding present and inside the expected range.
  kFail,     ///< Finding present but outside the range (or censoring
             ///< mismatch).
  kMissing,  ///< No finding with that label/curve in the figure.
};

std::string_view ToString(ExpectationStatus status);

/// Outcome of checking one Expectation against one loaded figure.
struct ExpectationResult {
  Expectation expectation;
  ExpectationStatus status = ExpectationStatus::kMissing;
  std::string detail;  ///< Measured value / reason, human-readable.
};

/// Checks one expectation against the figure it names. The figure must
/// already be the right one (Slug() == expectation.figure_slug).
ExpectationResult CheckExpectation(const Expectation& expectation,
                                   const LoadedFigure& figure);

/// Checks every built-in expectation whose figure is present in
/// `figures`. Expectations for figures absent from the set are skipped
/// (a partial results directory is not a failure); expectations whose
/// figure is present but whose finding is absent report kMissing.
std::vector<ExpectationResult> CheckExpectations(
    const std::vector<LoadedFigure>& figures);

}  // namespace amdmb::report
