// Sink interface: one consumer of Figure records.
//
// The bench harness builds a Figure per reproduced figure and pushes it
// through every configured sink — Text (stdout report), Json
// (BENCH_<slug>.json), Csv (<slug>.csv), Gnuplot (<slug>.dat/.gp) —
// so every output format is a projection of the same typed record
// instead of a hand-formatted side channel.
#pragma once

#include <filesystem>
#include <string_view>
#include <vector>

#include "report/record.hpp"

namespace amdmb::report {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Emits one figure record. File sinks skip figures with no curves
  /// (nothing to plot); the text sink always prints the header block.
  virtual void Write(const Figure& figure) = 0;
};

/// A sink that writes files under one output directory. The directory
/// is validated up front (created if missing, probed for writability)
/// so a bad path fails before any sweep result is lost.
class FileSink : public Sink {
 public:
  explicit FileSink(std::filesystem::path directory)
      : directory_(std::move(directory)) {}

  /// Stdout label for the headline path ("JSON results").
  virtual std::string_view Label() const = 0;

  /// Paths written by the most recent Write call (empty when the figure
  /// was skipped). The last entry is the headline path.
  const std::vector<std::filesystem::path>& Written() const {
    return written_;
  }

 protected:
  std::filesystem::path directory_;
  std::vector<std::filesystem::path> written_;
};

/// Validates that `directory` exists (creating it if needed) and is
/// writable by actually creating and removing a probe file in it.
/// Throws ConfigError naming `label` (e.g. "AMDMB_JSON_DIR") with the
/// OS error detail — a bad output directory must fail loudly up front,
/// not silently drop results at the end of a long run.
void EnsureWritableDirectory(const std::filesystem::path& directory,
                             std::string_view label);

}  // namespace amdmb::report
