// Cross-figure aggregation: a directory of BENCH_*.json documents →
// one suite-wide markdown summary plus paper-expectation checks.
// This is the top of the measurement → record → sink pipeline: it only
// consumes typed LoadedFigure records (report/load.hpp), never raw
// bench stdout.
#pragma once

#include <string>
#include <vector>

#include "report/expectations.hpp"
#include "report/load.hpp"

namespace amdmb::report {

/// Renders the merged suite summary as markdown: run metadata, one
/// section per figure (paper claim, per-curve statistics, findings,
/// degradations), and the expectation-check table with a pass/fail
/// tally. Mirrors the hand-written EXPERIMENTS.md layout.
std::string SuiteSummaryMarkdown(const std::vector<LoadedFigure>& figures,
                                 const std::vector<ExpectationResult>& checks);

}  // namespace amdmb::report
