#include "report/csv_sink.hpp"

#include <fstream>

#include "common/status.hpp"

namespace amdmb::report {

std::string CsvText(const Figure& figure) { return figure.set.RenderCsv(); }

std::filesystem::path WriteCsv(const Figure& figure,
                               const std::filesystem::path& directory) {
  EnsureWritableDirectory(directory, "WriteCsv output directory");

  const std::filesystem::path file = directory / (figure.Slug() + ".csv");
  std::ofstream out(file);
  Require(out.good(), "WriteCsv: cannot open " + file.string());
  out << CsvText(figure);
  Require(out.good(), "WriteCsv: write failed for " + file.string());
  return file;
}

}  // namespace amdmb::report
