// Machine-readable figure records: the BENCH_<figure>.json writer.
//
// Mirrors the HPC-benchmark report layout referenced in SNIPPETS.md:
// every figure dumps one JSON document with its provenance (schema
// version + meta block), each curve's raw sweep points (x, simulated
// seconds), per-curve summary statistics, and the typed findings and
// degradations of the run. The bench binaries write
// `BENCH_<figure>.json` when AMDMB_JSON_DIR is set; report/load.hpp
// reads the documents back for the amdmb_report aggregator.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "report/sink.hpp"

namespace amdmb::report {

/// Filesystem-safe stem derived from a figure id. Lower-cases
/// alphanumerics, collapses every other character run to one underscore,
/// and stops at the em-dash separating a *numbered* id from its title —
/// so "Fig. 7 — ALU:Fetch" -> "fig_7" and "Figs. 11-12 — Read latency"
/// -> "figs_11_12", while unnumbered ids keep their full text
/// ("Ablation — Clause Usage Control" ->
/// "ablation_clause_usage_control") so distinct figures never share a
/// slug.
std::string FigureSlug(std::string_view id);

/// The figure record as schema-v2 JSON text. Keys of the v1 layout
/// (figure, title, paper_claim, notes, curves) keep their shape;
/// schema_version, meta, and findings are additive, and the typed
/// "degradations" array is only emitted when at least one point
/// degraded — so fault-free documents only gain the new keys.
std::string BenchJson(const Figure& figure);

/// Writes `BENCH_<slug>.json` under `directory` (created if missing)
/// and returns the file path. Throws ConfigError on I/O failure.
std::filesystem::path WriteBenchJson(const Figure& figure,
                                     const std::filesystem::path& directory);

class JsonSink : public FileSink {
 public:
  using FileSink::FileSink;

  std::string_view Label() const override { return "JSON results"; }

  void Write(const Figure& figure) override {
    written_.clear();
    // Curve-less figures (Table I) still carry findings worth merging.
    if (figure.set.All().empty() && figure.findings.empty() &&
        figure.degradations.empty()) {
      return;
    }
    written_.push_back(WriteBenchJson(figure, directory_));
  }
};

}  // namespace amdmb::report
