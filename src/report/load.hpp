// Reading BENCH_<figure>.json documents back into typed records.
//
// The inverse of report/json_sink.hpp, used by the amdmb_report
// aggregator: parse one document (or every BENCH_*.json in a results
// directory) into LoadedFigure records so cross-figure summaries and
// paper-expectation checks work on typed data — no regex scraping.
// Understands both schema v1 (pre-report-layer: no schema_version /
// meta / findings keys) and v2 documents.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "report/record.hpp"

namespace amdmb::report {

/// One curve as stored in the document: raw points plus the summary
/// statistics the writer derived from them.
struct LoadedCurve {
  std::string name;
  std::vector<Point> points;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One parsed BENCH_*.json document.
struct LoadedFigure {
  std::filesystem::path source;  ///< File it came from ("" when from text).
  std::string id;
  std::string title;
  std::string paper_claim;
  int schema_version = 1;  ///< 1 when the document predates the key.
  RunMeta meta;            ///< Default-constructed for v1 documents.
  std::vector<std::string> notes;
  std::vector<Finding> findings;
  std::vector<Degradation> degradations;
  /// The additive "profile" block; empty for unprofiled documents.
  std::vector<ProfileEntry> profiles;
  /// The additive "frontier" block; absent for 1D documents.
  std::optional<Frontier> frontier;
  std::vector<LoadedCurve> curves;

  /// Filesystem-safe stem derived from the id; see FigureSlug.
  std::string Slug() const;
};

/// Parses one document. Throws ConfigError on malformed JSON or a
/// document missing the required "figure" key. Findings with a kind
/// this reader does not know are skipped (forward compatibility).
LoadedFigure LoadFigureJson(std::string_view text,
                            std::filesystem::path source = {});

/// Loads every BENCH_*.json in `directory`, sorted by filename for
/// deterministic aggregation order. When `slug` is non-empty only the
/// figure whose Slug() matches is loaded (the amdmb_report --figure
/// filter). Throws ConfigError when the directory does not exist or any
/// document fails to parse.
std::vector<LoadedFigure> LoadFigureDirectory(
    const std::filesystem::path& directory, std::string_view slug = {});

}  // namespace amdmb::report
