#include "report/json_sink.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/status.hpp"
#include "prof/profile_json.hpp"
#include "report/json.hpp"

namespace amdmb::report {

namespace {

double MedianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

void EmitStringArray(std::ostringstream& os,
                     const std::vector<std::string>& items) {
  os << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << JsonEscape(items[i]) << "\"";
  }
  os << "]";
}

void EmitMeta(std::ostringstream& os, const RunMeta& meta) {
  os << "  \"meta\": {\n";
  os << "    \"suite_version\": \"" << JsonEscape(meta.suite_version)
     << "\",\n";
  os << "    \"threads\": " << meta.threads << ",\n";
  os << "    \"quick\": " << (meta.quick ? "true" : "false") << ",\n";
  os << "    \"faults\": \"" << JsonEscape(meta.faults) << "\",\n";
  os << "    \"retry\": \"" << JsonEscape(meta.retry) << "\",\n";
  os << "    \"watchdog_cycles\": " << meta.watchdog_cycles << ",\n";
  // Additive: only adaptive runs carry the key, so dense documents stay
  // byte-identical to pre-adapt writers.
  if (meta.adaptive) os << "    \"adaptive\": true,\n";
  os << "    \"archs\": ";
  EmitStringArray(os, meta.archs);
  os << ",\n";
  os << "    \"modes\": ";
  EmitStringArray(os, meta.modes);
  os << "\n  },\n";
}

void EmitFindings(std::ostringstream& os,
                  const std::vector<Finding>& findings) {
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? "," : "") << "\n    {";
    os << "\"kind\": \"" << ToString(f.kind) << "\", ";
    os << "\"curve\": \"" << JsonEscape(f.curve) << "\", ";
    os << "\"label\": \"" << JsonEscape(f.label) << "\", ";
    os << "\"value\": "
       << (f.value.has_value() ? JsonNumber(*f.value) : std::string("null"))
       << ", ";
    os << "\"unit\": \"" << JsonEscape(f.unit) << "\"";
    if (!f.detail.empty()) {
      os << ", \"detail\": \"" << JsonEscape(f.detail) << "\"";
    }
    os << "}";
  }
  os << (findings.empty() ? "]" : "\n  ]");
}

/// The additive schema-v2 "profile" block: emitted only when the run
/// was profiled, so unprofiled documents stay byte-identical to before
/// the profiler existed.
void EmitProfiles(std::ostringstream& os,
                  const std::vector<ProfileEntry>& profiles) {
  os << "  \"profile\": [";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const ProfileEntry& p = profiles[i];
    os << (i ? "," : "") << "\n    {";
    os << "\"curve\": \"" << JsonEscape(p.curve) << "\", ";
    os << "\"point\": \"" << JsonEscape(p.point) << "\", ";
    os << "\"attributed\": \"" << JsonEscape(p.attributed) << "\", ";
    os << "\"heuristic\": \"" << JsonEscape(p.heuristic) << "\", ";
    os << "\"agree\": " << (p.agree ? "true" : "false") << ", ";
    os << "\"alu_score\": " << JsonNumber(p.alu_score) << ", ";
    os << "\"fetch_score\": " << JsonNumber(p.fetch_score) << ", ";
    os << "\"memory_score\": " << JsonNumber(p.memory_score) << ", ";
    os << "\"dropped_events\": " << p.dropped_events << ", ";
    os << "\"counters\": " << prof::CounterSetJson(p.counters) << "}";
  }
  os << "\n  ],\n";
}

/// The additive "frontier" block for 2D classification-map figures;
/// 1D documents never carry the key.
void EmitFrontier(std::ostringstream& os, const Frontier& frontier) {
  os << "  \"frontier\": {\n";
  os << "    \"x_label\": \"" << JsonEscape(frontier.x_label) << "\",\n";
  os << "    \"y_label\": \"" << JsonEscape(frontier.y_label) << "\",\n";
  const auto emit_numbers = [&os](const std::vector<double>& values) {
    os << "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) os << ", ";
      os << JsonNumber(values[i]);
    }
    os << "]";
  };
  os << "    \"xs\": ";
  emit_numbers(frontier.xs);
  os << ",\n    \"ys\": ";
  emit_numbers(frontier.ys);
  os << ",\n    \"cells\": ";
  EmitStringArray(os, frontier.cells);
  os << ",\n    \"measured\": [";
  for (std::size_t i = 0; i < frontier.measured.size(); ++i) {
    if (i) os << ", ";
    os << (frontier.measured[i] ? "true" : "false");
  }
  os << "],\n";
  os << "    \"points_measured\": " << frontier.points_measured << ",\n";
  os << "    \"points_dense\": " << frontier.points_dense << "\n";
  os << "  },\n";
}

void EmitDegradations(std::ostringstream& os,
                      const std::vector<Degradation>& degradations) {
  os << "  \"degradations\": [";
  for (std::size_t i = 0; i < degradations.size(); ++i) {
    const Degradation& d = degradations[i];
    os << (i ? "," : "") << "\n    {";
    os << "\"curve\": \"" << JsonEscape(d.curve) << "\", ";
    os << "\"point\": \"" << JsonEscape(d.point) << "\", ";
    os << "\"status\": \"" << JsonEscape(d.status) << "\", ";
    os << "\"attempts\": " << d.attempts << ", ";
    os << "\"error\": \"" << JsonEscape(d.error) << "\"}";
  }
  os << "\n  ],\n";
}

}  // namespace

std::string FigureSlug(std::string_view id) {
  std::string slug;
  bool numbered = false;
  for (const char c : id) {
    // The em-dash (UTF-8 lead byte) separates a figure number from its
    // title: break there only once the prefix carried a number ("Fig. 7
    // — ..." -> "fig_7"). Unnumbered prefixes ("Ablation — ...") keep
    // the full id so distinct figures never collide on one slug.
    if (static_cast<unsigned char>(c) == 0xE2 && numbered) break;
    if (std::isalnum(static_cast<unsigned char>(c))) {
      numbered =
          numbered || std::isdigit(static_cast<unsigned char>(c)) != 0;
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? "figure" : slug;
}

std::string BenchJson(const Figure& figure) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"figure\": \"" << JsonEscape(figure.id) << "\",\n";
  os << "  \"title\": \"" << JsonEscape(figure.set.Title()) << "\",\n";
  os << "  \"paper_claim\": \"" << JsonEscape(figure.paper_claim) << "\",\n";
  os << "  \"schema_version\": " << kSchemaVersion << ",\n";
  EmitMeta(os, figure.meta);
  // The v1 "notes" array, rendered from the typed findings so old
  // consumers keep seeing one human-readable line per observation.
  std::vector<std::string> notes;
  notes.reserve(figure.findings.size());
  for (const Finding& f : figure.findings) notes.push_back(f.Render());
  os << "  \"notes\": ";
  EmitStringArray(os, notes);
  os << ",\n";
  EmitFindings(os, figure.findings);
  os << ",\n";
  if (!figure.degradations.empty()) {
    EmitDegradations(os, figure.degradations);
  }
  if (!figure.profiles.empty()) {
    EmitProfiles(os, figure.profiles);
  }
  if (figure.frontier.has_value()) {
    EmitFrontier(os, *figure.frontier);
  }
  os << "  \"curves\": [\n";
  const auto& all = figure.set.All();
  for (std::size_t s = 0; s < all.size(); ++s) {
    const Curve& series = all[s];
    const std::vector<double> ys = series.Ys();
    os << "    {\n";
    os << "      \"name\": \"" << JsonEscape(series.Name()) << "\",\n";
    os << "      \"points\": [";
    const auto& points = series.Points();
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (p) os << ", ";
      os << "{\"x\": " << JsonNumber(points[p].x)
         << ", \"sim_seconds\": " << JsonNumber(points[p].y) << "}";
    }
    os << "],\n";
    os << "      \"sim_seconds_median\": " << JsonNumber(MedianOf(ys))
       << ",\n";
    os << "      \"sim_seconds_min\": "
       << JsonNumber(ys.empty()
                         ? 0.0
                         : *std::min_element(ys.begin(), ys.end()))
       << ",\n";
    os << "      \"sim_seconds_max\": "
       << JsonNumber(ys.empty()
                         ? 0.0
                         : *std::max_element(ys.begin(), ys.end()))
       << "\n";
    os << "    }" << (s + 1 < all.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::filesystem::path WriteBenchJson(
    const Figure& figure, const std::filesystem::path& directory) {
  EnsureWritableDirectory(directory, "WriteBenchJson output directory");

  const std::filesystem::path file =
      directory / ("BENCH_" + figure.Slug() + ".json");
  std::ofstream out(file);
  Require(out.good(), "WriteBenchJson: cannot open " + file.string());
  out << BenchJson(figure);
  Require(out.good(), "WriteBenchJson: write failed for " + file.string());
  return file;
}

}  // namespace amdmb::report
