#include "report/sink.hpp"

#include <fstream>

#include "common/status.hpp"

namespace amdmb::report {

void EnsureWritableDirectory(const std::filesystem::path& directory,
                             std::string_view label) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    throw ConfigError(std::string(label) + ": cannot create directory '" +
                      directory.string() + "': " + ec.message());
  }
  // create_directories succeeds on an existing path even when it is not
  // a directory or not writable — probe with a real file.
  const std::filesystem::path probe =
      directory / ".amdmb_write_probe.tmp";
  {
    std::ofstream out(probe);
    if (!out.good()) {
      throw ConfigError(std::string(label) + ": directory '" +
                        directory.string() +
                        "' is not writable (cannot create files in it)");
    }
  }
  std::filesystem::remove(probe, ec);  // Best effort; the probe is empty.
}

}  // namespace amdmb::report
