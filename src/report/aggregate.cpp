#include "report/aggregate.hpp"

#include <sstream>

#include "common/table.hpp"

namespace amdmb::report {
namespace {

void EmitRunMeta(std::ostringstream& out,
                 const std::vector<LoadedFigure>& figures) {
  const LoadedFigure* v2 = nullptr;
  for (const LoadedFigure& figure : figures) {
    if (figure.schema_version >= 2) {
      v2 = &figure;
      break;
    }
  }
  if (v2 == nullptr) return;
  const RunMeta& m = v2->meta;
  out << "Run: suite " << (m.suite_version.empty() ? "unknown"
                                                   : m.suite_version)
      << ", " << m.threads << " sweep thread" << (m.threads == 1 ? "" : "s")
      << ", " << (m.quick ? "quick" : "full") << " domains";
  if (!m.faults.empty()) out << ", faults `" << m.faults << "`";
  if (!m.retry.empty()) out << ", retry `" << m.retry << "`";
  if (m.watchdog_cycles != 0) {
    out << ", watchdog " << m.watchdog_cycles << " cycles";
  }
  out << ".\n\n";
}

void EmitFigure(std::ostringstream& out, const LoadedFigure& figure) {
  out << "## " << figure.id;
  if (!figure.source.empty()) {
    out << " (`" << figure.source.filename().string() << "`)";
  }
  out << "\n\n";
  if (!figure.paper_claim.empty()) {
    out << "Paper claim: " << figure.paper_claim << "\n\n";
  }
  if (!figure.curves.empty()) {
    out << "| Curve | Points | Median (s) | Min (s) | Max (s) |\n"
        << "|---|---|---|---|---|\n";
    for (const LoadedCurve& curve : figure.curves) {
      out << "| " << curve.name << " | " << curve.points.size() << " | "
          << FormatDouble(curve.median, 3) << " | "
          << FormatDouble(curve.min, 3) << " | "
          << FormatDouble(curve.max, 3) << " |\n";
    }
    out << "\n";
  }
  if (!figure.findings.empty()) {
    out << "Measured:\n";
    for (const Finding& finding : figure.findings) {
      out << "- " << finding.Render() << "\n";
    }
    out << "\n";
  } else if (!figure.notes.empty()) {
    // v1 documents carry free-text notes only.
    out << "Notes:\n";
    for (const std::string& note : figure.notes) {
      out << "- " << note << "\n";
    }
    out << "\n";
  }
  if (!figure.degradations.empty()) {
    out << "Fault annotations (degraded sweep points):\n";
    for (const Degradation& d : figure.degradations) {
      out << "- " << d.Render() << "\n";
    }
    out << "\n";
  }
}

std::string RenderExpected(const Expectation& e) {
  if (e.expect_censored) return "censored (beyond sweep)";
  std::ostringstream os;
  os << (e.min ? FormatDouble(*e.min, 3) : std::string("-inf")) << " .. "
     << (e.max ? FormatDouble(*e.max, 3) : std::string("+inf"));
  return os.str();
}

void EmitChecks(std::ostringstream& out,
                const std::vector<ExpectationResult>& checks) {
  out << "## Paper-expectation checks\n\n";
  if (checks.empty()) {
    out << "No expectations apply to the loaded figures.\n";
    return;
  }
  out << "| Figure | Curve | Finding | Expected | Status | Detail |\n"
      << "|---|---|---|---|---|---|\n";
  unsigned pass = 0, fail = 0, missing = 0;
  for (const ExpectationResult& check : checks) {
    const Expectation& e = check.expectation;
    out << "| " << e.figure_slug << " | " << e.curve_substr << " | "
        << e.label << " | " << RenderExpected(e) << " | "
        << ToString(check.status) << " | " << check.detail << " |\n";
    switch (check.status) {
      case ExpectationStatus::kPass: ++pass; break;
      case ExpectationStatus::kFail: ++fail; break;
      case ExpectationStatus::kMissing: ++missing; break;
    }
  }
  out << "\n" << pass << " pass, " << fail << " fail, " << missing
      << " missing (of " << checks.size() << " applicable checks).\n";
}

}  // namespace

std::string SuiteSummaryMarkdown(
    const std::vector<LoadedFigure>& figures,
    const std::vector<ExpectationResult>& checks) {
  std::ostringstream out;
  out << "# AMD micro-benchmark suite — merged results\n\n"
      << "Aggregated from " << figures.size() << " BENCH_*.json document"
      << (figures.size() == 1 ? "" : "s")
      << ". Regenerate with `amdmb_report <json-dir>`.\n\n";
  EmitRunMeta(out, figures);
  for (const LoadedFigure& figure : figures) {
    EmitFigure(out, figure);
  }
  EmitChecks(out, checks);
  return out.str();
}

}  // namespace amdmb::report
