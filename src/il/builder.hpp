// Fluent construction of IL kernels with automatic virtual-register
// numbering. The suite's kernel generators (paper Figs. 3, 5, 6) are
// written against this interface.
#pragma once

#include "il/il.hpp"

namespace amdmb::il {

class Builder {
 public:
  Builder(std::string name, Signature sig);

  /// Fetch input `input_index` (SAMPLE or uav_load per the signature's
  /// read path); returns the virtual register holding the value.
  unsigned Fetch(unsigned input_index);

  /// Two-source ALU op; returns the defined virtual register.
  unsigned Alu(Opcode op, Operand a, Operand b);
  /// Single-source ALU op (mov/rcp/sin).
  unsigned Alu1(Opcode op, Operand a);
  /// dst = a * b + c.
  unsigned Mad(Operand a, Operand b, Operand c);

  unsigned Add(Operand a, Operand b) { return Alu(Opcode::kAdd, a, b); }
  unsigned Mul(Operand a, Operand b) { return Alu(Opcode::kMul, a, b); }

  /// Write virtual register `value` to output `output_index` (EXPORT or
  /// uav_store per the signature's write path).
  void Write(unsigned output_index, unsigned value);

  /// Forces an ALU clause boundary at this point (paper Fig. 5 control).
  void ClauseBreak();

  /// Finalizes and returns the kernel. The builder must not be reused.
  Kernel Build() &&;

  unsigned InstructionCount() const {
    return static_cast<unsigned>(kernel_.code.size());
  }

 private:
  unsigned Define(Inst inst);

  Kernel kernel_;
  unsigned next_reg_ = 0;
};

}  // namespace amdmb::il
