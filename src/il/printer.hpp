// Textual rendering of IL kernels (AMD IL-flavoured assembly listing).
#pragma once

#include <string>

#include "il/il.hpp"

namespace amdmb::il {

/// Renders a kernel as IL-style text: declarations followed by one
/// instruction per line, e.g.
///   il_ps_2_0 ; generic_16in
///   dcl_input  i0..i15 (float4, texture)
///   sample r0, i0
///   add    r2, r0, r1
///   export o0, r17
std::string Print(const Kernel& kernel);

}  // namespace amdmb::il
