// Parser for the IL text format emitted by il::Print — the inverse of
// the printer, so kernels can be stored, edited by hand, and fed back
// through the compiler and simulator (see kernel_explorer --il-file).
//
// Grammar (line-based):
//   il_ps_2_0 ; <name>          or  il_cs_2_0 ; <name>
//   ; type=<Float|Float4> read=<Texture|Global> write=<Stream|Global>
//   dcl_input i0[..iN]
//   dcl_cb cb0[K]
//   dcl_output o0[..oM]
//   <mnemonic> <dst>, <src>...  one instruction per line
//   ;; clause_break
//   end
// Operands: rN (virtual register), iN (input, fetch only), oN (output,
// write only), cb0[K] (constant), l(x.y) (literal).
#pragma once

#include <string>
#include <string_view>

#include "il/il.hpp"

namespace amdmb::il {

/// Parses kernel text; throws ConfigError with a line-numbered message
/// on malformed input. The returned kernel passes Verify() iff the text
/// described a valid kernel (parsing itself does not verify).
Kernel Parse(std::string_view text);

}  // namespace amdmb::il
