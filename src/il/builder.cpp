#include "il/builder.hpp"

#include "common/status.hpp"

namespace amdmb::il {

Builder::Builder(std::string name, Signature sig) {
  kernel_.name = std::move(name);
  kernel_.sig = sig;
}

unsigned Builder::Define(Inst inst) {
  inst.dst = next_reg_++;
  kernel_.code.push_back(std::move(inst));
  return kernel_.code.back().dst;
}

unsigned Builder::Fetch(unsigned input_index) {
  Require(input_index < kernel_.sig.inputs,
          "Builder::Fetch: input index out of range");
  Inst inst;
  inst.op = kernel_.sig.read_path == ReadPath::kTexture ? Opcode::kSample
                                                        : Opcode::kGlobalLoad;
  inst.resource = input_index;
  return Define(std::move(inst));
}

unsigned Builder::Alu(Opcode op, Operand a, Operand b) {
  Require(IsAlu(op) && SourceCount(op) == 2,
          "Builder::Alu: opcode must be a two-source ALU op");
  Inst inst;
  inst.op = op;
  inst.srcs = {a, b};
  return Define(std::move(inst));
}

unsigned Builder::Alu1(Opcode op, Operand a) {
  Require(IsAlu(op) && SourceCount(op) == 1,
          "Builder::Alu1: opcode must be a one-source ALU op");
  Inst inst;
  inst.op = op;
  inst.srcs = {a};
  return Define(std::move(inst));
}

unsigned Builder::Mad(Operand a, Operand b, Operand c) {
  Inst inst;
  inst.op = Opcode::kMad;
  inst.srcs = {a, b, c};
  return Define(std::move(inst));
}

void Builder::Write(unsigned output_index, unsigned value) {
  Require(output_index < kernel_.sig.outputs,
          "Builder::Write: output index out of range");
  Require(value < next_reg_, "Builder::Write: value register not defined");
  Inst inst;
  inst.op = kernel_.sig.write_path == WritePath::kStream
                ? Opcode::kExport
                : Opcode::kGlobalStore;
  inst.resource = output_index;
  inst.srcs = {Operand::Reg(value)};
  inst.dst = 0;  // Writes define no register.
  kernel_.code.push_back(std::move(inst));
}

void Builder::ClauseBreak() {
  Inst inst;
  inst.op = Opcode::kClauseBreak;
  kernel_.code.push_back(std::move(inst));
}

Kernel Builder::Build() && { return std::move(kernel_); }

}  // namespace amdmb::il
