// AMD IL-like kernel intermediate representation.
//
// The paper generates every micro-benchmark kernel in AMD's Intermediate
// Language (IL) and lets the CAL compiler lower it to clause-based VLIW
// ISA. We reproduce that split: this module is the IL level — a linear
// program over *virtual* registers — and src/compiler lowers it to the
// ISA level (clauses, VLIW bundles, physical GPRs, PV forwarding).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace amdmb::il {

enum class Opcode : std::uint8_t {
  // Fetch instructions (become TEX-clause or memory-clause entries).
  kSample,      ///< Texture fetch of input `resource` at the thread coord.
  kGlobalLoad,  ///< Uncached global-memory read of input `resource`.
  // ALU instructions.
  kAdd,
  kSub,
  kMul,
  kMad,  ///< dst = a * b + c.
  kMov,
  kRcp,  ///< Transcendental (t-lane only).
  kSin,  ///< Transcendental (t-lane only).
  // Write instructions.
  kExport,       ///< Streaming store to color buffer `resource` (pixel mode).
  kGlobalStore,  ///< Uncached global-memory write to output `resource`.
  // Meta instructions.
  kClauseBreak,  ///< Forces an ALU-clause boundary (stands in for the CAL
                 ///< compiler's clause-splitting heuristics; used by the
                 ///< paper's Fig. 5 clause-usage control kernel).
};

bool IsFetch(Opcode op);
bool IsAlu(Opcode op);
bool IsWrite(Opcode op);
/// True for ops that may only execute on the transcendental (t) core.
bool IsTranscendental(Opcode op);
/// True for scheduling markers that emit no hardware instruction.
bool IsMeta(Opcode op);
/// Number of source operands the opcode consumes.
unsigned SourceCount(Opcode op);
std::string_view Mnemonic(Opcode op);

/// What an ALU source operand refers to at the IL level.
enum class OperandKind : std::uint8_t {
  kVirtualReg,  ///< A virtual register defined earlier in the program.
  kConstBuf,    ///< Element of the constant buffer.
  kLiteral,     ///< Inline float literal.
};

struct Operand {
  OperandKind kind = OperandKind::kVirtualReg;
  unsigned index = 0;    ///< Virtual register id or constant-buffer slot.
  float literal = 0.0f;  ///< Value when kind == kLiteral.

  static Operand Reg(unsigned id) {
    return {OperandKind::kVirtualReg, id, 0.0f};
  }
  static Operand Const(unsigned slot) {
    return {OperandKind::kConstBuf, slot, 0.0f};
  }
  static Operand Lit(float v) { return {OperandKind::kLiteral, 0, v}; }
};

struct Inst {
  Opcode op = Opcode::kMov;
  unsigned dst = 0;       ///< Virtual register defined (fetch/ALU only).
  unsigned resource = 0;  ///< Input index (fetch) or output index (write).
  std::vector<Operand> srcs;
};

/// Declared interface of a kernel: what the paper calls the kernel
/// parameters (number of inputs, outputs, constants, data type) plus which
/// memory paths it uses.
struct Signature {
  unsigned inputs = 0;
  unsigned outputs = 0;
  unsigned constants = 0;
  DataType type = DataType::kFloat;
  ReadPath read_path = ReadPath::kTexture;
  WritePath write_path = WritePath::kStream;
};

/// A complete IL kernel: signature + linear instruction list over virtual
/// registers (SSA-like: each virtual register is defined exactly once).
struct Kernel {
  std::string name = "kernel";
  Signature sig;
  std::vector<Inst> code;

  unsigned CountFetchOps() const;
  unsigned CountAluOps() const;
  unsigned CountWriteOps() const;
};

}  // namespace amdmb::il
