// IL validity rules, mirroring the CAL compiler behaviours the paper has
// to work around (Sec. III): a kernel must have at least one output or
// the compiler optimizes it away entirely; every declared and sampled
// input must be used or the compiler removes the fetch; virtual registers
// are single-assignment and must be defined before use.
#pragma once

#include <string>
#include <vector>

#include "il/il.hpp"

namespace amdmb::il {

/// Result of verification: empty `problems` means the kernel is valid.
struct VerifyResult {
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
  /// All problems joined with "; " (empty string when valid).
  std::string Message() const;
};

VerifyResult Verify(const Kernel& kernel);

/// Throws ConfigError with the verification message if invalid.
void VerifyOrThrow(const Kernel& kernel);

}  // namespace amdmb::il
