#include "il/printer.hpp"

#include <iomanip>
#include <sstream>

namespace amdmb::il {

namespace {

void PrintOperand(std::ostringstream& os, const Operand& op) {
  switch (op.kind) {
    case OperandKind::kVirtualReg:
      os << "r" << op.index;
      break;
    case OperandKind::kConstBuf:
      os << "cb0[" << op.index << "]";
      break;
    case OperandKind::kLiteral:
      os << "l(" << op.literal << ")";
      break;
  }
}

}  // namespace

std::string Print(const Kernel& kernel) {
  std::ostringstream os;
  const bool pixel = kernel.sig.write_path == WritePath::kStream;
  os << (pixel ? "il_ps_2_0" : "il_cs_2_0") << " ; " << kernel.name << "\n";
  os << "; type=" << ToString(kernel.sig.type)
     << " read=" << ToString(kernel.sig.read_path)
     << " write=" << ToString(kernel.sig.write_path) << "\n";
  if (kernel.sig.inputs > 0) {
    os << "dcl_input i0";
    if (kernel.sig.inputs > 1) os << "..i" << (kernel.sig.inputs - 1);
    os << "\n";
  }
  if (kernel.sig.constants > 0) {
    os << "dcl_cb cb0[" << kernel.sig.constants << "]\n";
  }
  if (kernel.sig.outputs > 0) {
    os << "dcl_output o0";
    if (kernel.sig.outputs > 1) os << "..o" << (kernel.sig.outputs - 1);
    os << "\n";
  }

  for (const Inst& inst : kernel.code) {
    if (IsMeta(inst.op)) {
      os << "  " << Mnemonic(inst.op) << "\n";
      continue;
    }
    os << "  " << std::left << std::setw(10) << Mnemonic(inst.op);
    if (IsFetch(inst.op)) {
      os << "r" << inst.dst << ", i" << inst.resource;
    } else if (IsWrite(inst.op)) {
      os << "o" << inst.resource << ", ";
      PrintOperand(os, inst.srcs.front());
    } else {
      os << "r" << inst.dst;
      for (const Operand& src : inst.srcs) {
        os << ", ";
        PrintOperand(os, src);
      }
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

}  // namespace amdmb::il
