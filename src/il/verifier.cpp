#include "il/verifier.hpp"

#include <sstream>
#include <unordered_set>

#include "common/status.hpp"

namespace amdmb::il {

std::string VerifyResult::Message() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (i) os << "; ";
    os << problems[i];
  }
  return os.str();
}

VerifyResult Verify(const Kernel& kernel) {
  VerifyResult result;
  auto fail = [&](const std::string& msg) { result.problems.push_back(msg); };

  if (kernel.sig.outputs == 0) {
    fail("kernel declares no outputs; CAL would optimize it away");
  }

  std::unordered_set<unsigned> defined;
  std::unordered_set<unsigned> used_regs;
  std::vector<unsigned> input_fetch_count(kernel.sig.inputs, 0);
  std::vector<unsigned> output_write_count(kernel.sig.outputs, 0);

  for (std::size_t i = 0; i < kernel.code.size(); ++i) {
    const Inst& inst = kernel.code[i];
    const std::string at = "inst " + std::to_string(i);

    if (inst.srcs.size() != SourceCount(inst.op)) {
      fail(at + ": wrong source count for " + std::string(Mnemonic(inst.op)));
      continue;
    }
    for (const Operand& src : inst.srcs) {
      switch (src.kind) {
        case OperandKind::kVirtualReg:
          if (!defined.contains(src.index)) {
            fail(at + ": register r" + std::to_string(src.index) +
                 " used before definition");
          }
          used_regs.insert(src.index);
          break;
        case OperandKind::kConstBuf:
          if (src.index >= kernel.sig.constants) {
            fail(at + ": constant-buffer slot out of range");
          }
          break;
        case OperandKind::kLiteral:
          break;
      }
    }

    if (IsFetch(inst.op)) {
      if (inst.resource >= kernel.sig.inputs) {
        fail(at + ": fetch of undeclared input");
      } else {
        ++input_fetch_count[inst.resource];
      }
      const bool wants_texture =
          kernel.sig.read_path == ReadPath::kTexture;
      if (wants_texture != (inst.op == Opcode::kSample)) {
        fail(at + ": fetch opcode disagrees with signature read path");
      }
    }
    if (IsWrite(inst.op)) {
      if (inst.resource >= kernel.sig.outputs) {
        fail(at + ": write to undeclared output");
      } else {
        ++output_write_count[inst.resource];
      }
      const bool wants_stream = kernel.sig.write_path == WritePath::kStream;
      if (wants_stream != (inst.op == Opcode::kExport)) {
        fail(at + ": write opcode disagrees with signature write path");
      }
    }

    if (IsFetch(inst.op) || IsAlu(inst.op)) {
      if (defined.contains(inst.dst)) {
        fail(at + ": register r" + std::to_string(inst.dst) +
             " defined twice (IL is single-assignment)");
      }
      defined.insert(inst.dst);
    }
  }

  // Dead-code rules the paper's generators must respect.
  for (unsigned i = 0; i < kernel.sig.inputs; ++i) {
    if (input_fetch_count[i] == 0) {
      fail("input " + std::to_string(i) +
           " declared but never fetched; CAL would remove it");
    }
  }
  for (unsigned o = 0; o < kernel.sig.outputs; ++o) {
    if (output_write_count[o] == 0) {
      fail("output " + std::to_string(o) + " never written");
    }
    if (output_write_count[o] > 1) {
      fail("output " + std::to_string(o) + " written more than once");
    }
  }
  // Every fetched value must feed the computation, or CAL removes the
  // fetch ("Every input that is declared and sampled has to be used").
  for (const Inst& inst : kernel.code) {
    if (IsFetch(inst.op) && !used_regs.contains(inst.dst)) {
      fail("fetched value r" + std::to_string(inst.dst) +
           " (input " + std::to_string(inst.resource) +
           ") is never used; CAL would remove the fetch");
    }
  }
  return result;
}

void VerifyOrThrow(const Kernel& kernel) {
  const VerifyResult r = Verify(kernel);
  Require(r.ok(), "IL kernel '" + kernel.name + "' invalid: " + r.Message());
}

}  // namespace amdmb::il
