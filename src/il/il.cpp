#include "il/il.hpp"

#include "common/status.hpp"

namespace amdmb::il {

bool IsFetch(Opcode op) {
  return op == Opcode::kSample || op == Opcode::kGlobalLoad;
}

bool IsAlu(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kMad:
    case Opcode::kMov:
    case Opcode::kRcp:
    case Opcode::kSin:
      return true;
    default:
      return false;
  }
}

bool IsWrite(Opcode op) {
  return op == Opcode::kExport || op == Opcode::kGlobalStore;
}

bool IsTranscendental(Opcode op) {
  return op == Opcode::kRcp || op == Opcode::kSin;
}

bool IsMeta(Opcode op) { return op == Opcode::kClauseBreak; }

unsigned SourceCount(Opcode op) {
  switch (op) {
    case Opcode::kSample:
    case Opcode::kGlobalLoad:
      return 0;
    case Opcode::kMov:
    case Opcode::kRcp:
    case Opcode::kSin:
    case Opcode::kExport:
    case Opcode::kGlobalStore:
      return 1;
    case Opcode::kClauseBreak:
      return 0;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
      return 2;
    case Opcode::kMad:
      return 3;
  }
  throw SimError("SourceCount: unknown opcode");
}

std::string_view Mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kSample: return "sample";
    case Opcode::kGlobalLoad: return "uav_load";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kMad: return "mad";
    case Opcode::kMov: return "mov";
    case Opcode::kRcp: return "rcp";
    case Opcode::kSin: return "sin";
    case Opcode::kExport: return "export";
    case Opcode::kGlobalStore: return "uav_store";
    case Opcode::kClauseBreak: return ";; clause_break";
  }
  throw SimError("Mnemonic: unknown opcode");
}

unsigned Kernel::CountFetchOps() const {
  unsigned n = 0;
  for (const auto& inst : code) n += IsFetch(inst.op) ? 1u : 0u;
  return n;
}

unsigned Kernel::CountAluOps() const {
  unsigned n = 0;
  for (const auto& inst : code) n += IsAlu(inst.op) ? 1u : 0u;
  return n;
}

unsigned Kernel::CountWriteOps() const {
  unsigned n = 0;
  for (const auto& inst : code) n += IsWrite(inst.op) ? 1u : 0u;
  return n;
}

}  // namespace amdmb::il
