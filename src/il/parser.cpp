#include "il/parser.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/status.hpp"

namespace amdmb::il {

namespace {

/// Cursor over one line's text with error context.
class LineCursor {
 public:
  LineCursor(std::string_view text, unsigned line_no)
      : text_(text), line_no_(line_no) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_).starts_with(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void Expect(std::string_view token) {
    if (!Consume(token)) Fail("expected '" + std::string(token) + "'");
  }

  unsigned Number() {
    SkipSpace();
    unsigned value = 0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr == begin) Fail("expected a number");
    pos_ += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  float FloatNumber() {
    SkipSpace();
    // std::stof throws std::invalid_argument / std::out_of_range on
    // malformed or overflowing literals ("l(zz)", "l(1e99999)"); both
    // must surface as the parser's typed ConfigError — kernel text is
    // untrusted input (kerncap intake, fuzzing).
    std::size_t digits = 0;
    float value = 0.0f;
    try {
      value = std::stof(std::string(text_.substr(pos_)), &digits);
    } catch (const std::invalid_argument&) {
      Fail("expected a float literal");
    } catch (const std::out_of_range&) {
      Fail("float literal out of range");
    }
    pos_ += digits;
    return value;
  }

  /// Next bare word (letters, digits, '_').
  std::string Word() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a word");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Remainder of the line, trimmed.
  std::string Rest() {
    SkipSpace();
    std::string rest(text_.substr(pos_));
    while (!rest.empty() && (rest.back() == ' ' || rest.back() == '\r')) {
      rest.pop_back();
    }
    pos_ = text_.size();
    return rest;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    Require(false, "IL parse error at line " + std::to_string(line_no_) +
                       ": " + message + " in '" + std::string(text_) + "'");
    std::abort();  // Unreachable; Require throws.
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned line_no_;
};

Operand ParseOperand(LineCursor& cur) {
  if (cur.Consume("cb0[")) {
    const unsigned slot = cur.Number();
    cur.Expect("]");
    return Operand::Const(slot);
  }
  if (cur.Consume("l(")) {
    const float value = cur.FloatNumber();
    cur.Expect(")");
    return Operand::Lit(value);
  }
  if (cur.Consume("r")) {
    return Operand::Reg(cur.Number());
  }
  cur.Fail("expected an operand (rN, cb0[K] or l(x))");
}

Opcode OpcodeByMnemonic(const std::string& word, LineCursor& cur) {
  for (const Opcode op :
       {Opcode::kSample, Opcode::kGlobalLoad, Opcode::kAdd, Opcode::kSub,
        Opcode::kMul, Opcode::kMad, Opcode::kMov, Opcode::kRcp, Opcode::kSin,
        Opcode::kExport, Opcode::kGlobalStore}) {
    if (word == Mnemonic(op)) return op;
  }
  cur.Fail("unknown mnemonic '" + word + "'");
}

DataType ParseType(const std::string& word, LineCursor& cur) {
  if (word == "Float") return DataType::kFloat;
  if (word == "Float4") return DataType::kFloat4;
  cur.Fail("unknown data type '" + word + "'");
}

ReadPath ParseRead(const std::string& word, LineCursor& cur) {
  if (word == "Texture") return ReadPath::kTexture;
  if (word == "Global") return ReadPath::kGlobal;
  cur.Fail("unknown read path '" + word + "'");
}

WritePath ParseWrite(const std::string& word, LineCursor& cur) {
  if (word == "Stream") return WritePath::kStream;
  if (word == "Global") return WritePath::kGlobal;
  cur.Fail("unknown write path '" + word + "'");
}

/// `i0..i15` or `i0`; returns the declared count.
unsigned ParseRangeCount(LineCursor& cur, std::string_view prefix) {
  cur.Expect(prefix);
  const unsigned first = cur.Number();
  if (first != 0) cur.Fail("declaration ranges must start at 0");
  if (cur.Consume("..")) {
    cur.Expect(prefix);
    return cur.Number() + 1;
  }
  return 1;
}

}  // namespace

Kernel Parse(std::string_view text) {
  Kernel kernel;
  bool saw_header = false;
  bool saw_end = false;
  unsigned line_no = 0;

  std::istringstream stream{std::string(text)};
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    LineCursor cur(raw_line, line_no);
    if (cur.AtEnd()) continue;
    Require(!saw_end, "IL parse error: content after 'end'");

    if (cur.Consume(";; clause_break")) {
      Inst inst;
      inst.op = Opcode::kClauseBreak;
      kernel.code.push_back(inst);
      continue;
    }
    if (!saw_header) {
      if (cur.Consume("il_ps_2_0") || cur.Consume("il_cs_2_0")) {
        saw_header = true;
        if (cur.Consume(";")) kernel.name = cur.Rest();
        continue;
      }
      cur.Fail("kernel must start with il_ps_2_0 / il_cs_2_0");
    }
    if (cur.Consume("; type=")) {
      kernel.sig.type = ParseType(cur.Word(), cur);
      cur.Expect("read=");
      kernel.sig.read_path = ParseRead(cur.Word(), cur);
      cur.Expect("write=");
      kernel.sig.write_path = ParseWrite(cur.Word(), cur);
      continue;
    }
    if (cur.Consume(";")) continue;  // Other comments.
    if (cur.Consume("dcl_input")) {
      kernel.sig.inputs = ParseRangeCount(cur, "i");
      continue;
    }
    if (cur.Consume("dcl_cb")) {
      cur.Expect("cb0[");
      kernel.sig.constants = cur.Number();
      cur.Expect("]");
      continue;
    }
    if (cur.Consume("dcl_output")) {
      kernel.sig.outputs = ParseRangeCount(cur, "o");
      continue;
    }
    if (cur.Consume("end")) {
      saw_end = true;
      continue;
    }

    // Instruction line.
    const Opcode op = OpcodeByMnemonic(cur.Word(), cur);
    Inst inst;
    inst.op = op;
    if (IsFetch(op)) {
      cur.Expect("r");
      inst.dst = cur.Number();
      cur.Expect(",");
      cur.Expect("i");
      inst.resource = cur.Number();
    } else if (IsWrite(op)) {
      cur.Expect("o");
      inst.resource = cur.Number();
      cur.Expect(",");
      inst.srcs.push_back(ParseOperand(cur));
    } else {
      cur.Expect("r");
      inst.dst = cur.Number();
      for (unsigned s = 0; s < SourceCount(op); ++s) {
        cur.Expect(",");
        inst.srcs.push_back(ParseOperand(cur));
      }
    }
    if (!cur.AtEnd()) cur.Fail("trailing text after instruction");
    kernel.code.push_back(std::move(inst));
  }
  Require(saw_header, "IL parse error: missing il_ps_2_0 / il_cs_2_0 header");
  Require(saw_end, "IL parse error: missing 'end'");
  return kernel;
}

}  // namespace amdmb::il
