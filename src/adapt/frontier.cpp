#include "adapt/frontier.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/status.hpp"
#include "sim/gpu.hpp"
#include "suite/kernelgen.hpp"
#include "suite/microbench.hpp"

namespace amdmb::adapt {

namespace {

/// One quadrant under refinement: inclusive corner node bounds.
struct Cell {
  std::size_t x0 = 0;
  std::size_t y0 = 0;
  std::size_t x1 = 0;
  std::size_t y1 = 0;
};

}  // namespace

FrontierResult RefineGrid(
    std::size_t nx, std::size_t ny,
    const std::function<double(std::size_t)>& x_of,
    const std::function<double(std::size_t)>& y_of,
    const std::function<std::string(std::size_t ix, std::size_t iy,
                                    unsigned attempt)>& measure,
    const FrontierConfig& config) {
  Require(nx >= 2 && ny >= 2, "RefineGrid: grid needs at least 2x2 nodes");
  FrontierResult result;
  report::Frontier& frontier = result.frontier;
  for (std::size_t i = 0; i < nx; ++i) frontier.xs.push_back(x_of(i));
  for (std::size_t i = 0; i < ny; ++i) frontier.ys.push_back(y_of(i));
  const std::size_t total = nx * ny;
  frontier.cells.assign(total, "");
  frontier.measured.assign(total, false);
  frontier.points_dense = total;

  const exec::SweepExecutor& executor =
      exec::ExecutorOrDefault(config.executor);
  std::vector<std::optional<std::string>> labels(total);
  std::vector<char> attempted(total, 0);
  std::size_t spent = 0;
  std::size_t wave = 0;

  // Measures one sorted, deduplicated batch of node indices (iy * nx +
  // ix). Returns false once the budget refuses further points.
  const auto run_wave = [&](std::vector<std::size_t> nodes) {
    if (config.budget > 0) {
      const std::uint64_t left =
          config.budget > spent ? config.budget - spent : 0;
      if (nodes.size() > left) nodes.resize(left);
    }
    if (nodes.empty()) return false;
    exec::RunReport wave_report;
    auto slots = executor.MapWithPolicy(
        nodes.size(),
        [&](std::size_t k, unsigned attempt) {
          const std::size_t node = nodes[k];
          return measure(node % nx, node / nx, attempt);
        },
        config.retry, &wave_report, config.cancel);
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      attempted[nodes[k]] = 1;
      if (slots[k].has_value()) labels[nodes[k]] = std::move(*slots[k]);
    }
    for (exec::PointOutcome& point : wave_report.points) {
      const std::size_t node = nodes[point.index];
      point.index = node;
      point.label = "node_x" + std::to_string(node % nx) + "_y" +
                    std::to_string(node / nx);
    }
    result.report.points.insert(
        result.report.points.end(),
        std::make_move_iterator(wave_report.points.begin()),
        std::make_move_iterator(wave_report.points.end()));
    spent += nodes.size();
    const WaveInfo info{wave, nodes.size(), spent, total};
    ++wave;
    if (config.on_wave) config.on_wave(info);
    return true;
  };

  if (config.dense) {
    std::vector<std::size_t> all(total);
    std::iota(all.begin(), all.end(), 0);
    run_wave(std::move(all));
  } else {
    std::vector<Cell> active{{0, 0, nx - 1, ny - 1}};
    while (!active.empty()) {
      // One wave per refinement level: every corner any active cell
      // still needs, sorted and deduplicated across cells.
      std::vector<std::size_t> need;
      for (const Cell& c : active) {
        for (const std::size_t node :
             {c.y0 * nx + c.x0, c.y0 * nx + c.x1, c.y1 * nx + c.x0,
              c.y1 * nx + c.x1}) {
          if (!attempted[node]) need.push_back(node);
        }
      }
      std::sort(need.begin(), need.end());
      need.erase(std::unique(need.begin(), need.end()), need.end());
      const bool exhausted = !need.empty() && !run_wave(std::move(need));

      std::vector<Cell> next;
      for (const Cell& c : active) {
        const std::optional<std::string>* corners[4] = {
            &labels[c.y0 * nx + c.x0], &labels[c.y0 * nx + c.x1],
            &labels[c.y1 * nx + c.x0], &labels[c.y1 * nx + c.x1]};
        const bool complete = corners[0]->has_value() &&
                              corners[1]->has_value() &&
                              corners[2]->has_value() &&
                              corners[3]->has_value();
        if (complete && **corners[0] == **corners[1] &&
            **corners[0] == **corners[2] && **corners[0] == **corners[3]) {
          // Uniform quadrant: fill its interior from the corner label
          // (measured nodes keep their own values).
          for (std::size_t iy = c.y0; iy <= c.y1; ++iy) {
            for (std::size_t ix = c.x0; ix <= c.x1; ++ix) {
              if (!labels[iy * nx + ix].has_value()) {
                labels[iy * nx + ix] = **corners[0];
              }
            }
          }
          continue;
        }
        if (exhausted) continue;  // Budget spent; stop splitting.
        const std::size_t dx = c.x1 - c.x0;
        const std::size_t dy = c.y1 - c.y0;
        if (dx <= 1 && dy <= 1) continue;  // Minimal cell: resolved.
        const std::size_t mx = c.x0 + dx / 2;
        const std::size_t my = c.y0 + dy / 2;
        if (dx > 1 && dy > 1) {
          next.push_back({c.x0, c.y0, mx, my});
          next.push_back({mx, c.y0, c.x1, my});
          next.push_back({c.x0, my, mx, c.y1});
          next.push_back({mx, my, c.x1, c.y1});
        } else if (dx > 1) {
          next.push_back({c.x0, c.y0, mx, c.y1});
          next.push_back({mx, c.y0, c.x1, c.y1});
        } else {
          next.push_back({c.x0, c.y0, c.x1, my});
          next.push_back({c.x0, my, c.x1, c.y1});
        }
      }
      active = std::move(next);
      if (exhausted) break;
    }
  }

  frontier.points_measured = spent;
  for (std::size_t i = 0; i < total; ++i) {
    if (labels[i].has_value()) frontier.cells[i] = *labels[i];
    frontier.measured[i] = attempted[i] && labels[i].has_value();
  }
  return result;
}

report::Figure BuildFrontierFigure(const FrontierConfig& config) {
  Require(config.nx >= 2 && config.ratio_max > config.ratio_min,
          "BuildFrontierFigure: invalid ratio axis");
  // Every node must be generatable. The binding constraint is the
  // ladder kernel's first ALU segment: at step rows it gets alu_ops /
  // (step + 1) of the budget and must fold inputs - space * step
  // initial fetches (kernelgen PlanUsage); later segments each fold
  // `space` fetches. Validate the cheapest column (ratio_min) up front
  // so an infeasible grid fails with a named knob, not mid-sweep.
  const unsigned min_ops =
      suite::AluOpsForRatio(config.ratio_min, config.inputs);
  for (std::size_t iy = 0; iy < config.ny; ++iy) {
    const unsigned segments = static_cast<unsigned>(iy) + 1;
    const unsigned ladder = config.space * static_cast<unsigned>(iy);
    Require(config.inputs > ladder + 1,
            "BuildFrontierFigure: ny too large — space * step must leave "
            "at least two initial inputs at step " + std::to_string(iy));
    const unsigned per_segment = min_ops / segments;
    Require(per_segment >= config.inputs - ladder &&
                per_segment >= config.space + 1,
            "BuildFrontierFigure: ratio_min too low for the register "
            "ladder at step " + std::to_string(iy) +
            " (raise ratio_min or lower ny)");
  }
  const GpuArch arch = MakeRV770();
  const suite::Runner runner(arch);
  sim::LaunchConfig launch;
  launch.domain = config.domain;
  launch.mode = ShaderMode::kPixel;
  launch.repetitions = config.repetitions;

  const auto ratio_of = [&config](std::size_t ix) {
    return config.ratio_min + (config.ratio_max - config.ratio_min) *
                                  static_cast<double>(ix) /
                                  static_cast<double>(config.nx - 1);
  };
  const auto step_of = [](std::size_t iy) {
    return static_cast<double>(iy);
  };
  const auto measure = [&](std::size_t ix, std::size_t iy,
                           unsigned attempt) {
    suite::RegisterUsageSpec spec;
    spec.inputs = config.inputs;
    spec.space = config.space;
    spec.step = static_cast<unsigned>(iy);
    spec.alu_fetch_ratio = ratio_of(ix);
    spec.name =
        "frontier_x" + std::to_string(ix) + "_y" + std::to_string(iy);
    const suite::Measurement m = runner.Measure(
        suite::GenerateRegisterUsage(spec), launch, {spec.name, attempt});
    return std::string(sim::ToString(m.stats.bottleneck));
  };

  FrontierResult refined = RefineGrid(config.nx, config.ny, ratio_of,
                                      step_of, measure, config);
  refined.frontier.x_label = "ALU:Fetch Ratio";
  refined.frontier.y_label = "Register Ladder Step";

  report::Figure figure(
      "Frontier ALU:Fetch x GPR", "Bottleneck Frontier Map (4870 Pixel)",
      "ALU:Fetch Ratio", "Register Ladder Step",
      "The ALU-bound region should grow toward lower ratios as the "
      "register ladder frees GPRs and occupancy rises (Figs. 7 and 16 "
      "crossed)");

  // The boundary curve: per ladder step, the first ratio classified
  // ALU-bound (rows with no flip contribute no point).
  const std::string alu_label(sim::ToString(sim::Bottleneck::kAlu));
  Series& boundary = figure.set.Get("ALU-bound boundary");
  for (std::size_t iy = 0; iy < config.ny; ++iy) {
    std::vector<Sample> row;
    for (std::size_t ix = 0; ix < config.nx; ++ix) {
      const std::string& label =
          refined.frontier.cells[iy * config.nx + ix];
      if (!label.empty()) row.push_back({ratio_of(ix), label});
    }
    if (const auto t = FirstTransitionTo(row, alu_label)) {
      boundary.Add(t->upper_x, step_of(iy));
      figure.findings.push_back(
          {report::FindingKind::kCrossover, "ALU-bound boundary",
           "row_crossover_step" + std::to_string(iy), t->upper_x, "ratio",
           std::string(ToString(t->kind))});
    }
  }
  figure.findings.push_back(
      {report::FindingKind::kEvent, "ALU-bound boundary", "frontier_points",
       static_cast<double>(refined.frontier.points_measured), "points",
       "of " + std::to_string(refined.frontier.points_dense) +
           " dense nodes"});
  figure.degradations =
      report::DegradationsFrom(refined.report, "ALU-bound boundary");
  figure.frontier = std::move(refined.frontier);
  report::FinalizeMeta(figure);
  // Pinned like kerncap: the map must be byte-identical across thread
  // counts and fleet workers regardless of the host env.
  figure.meta.threads = 1;
  figure.meta.adaptive = !config.dense;
  figure.meta.archs = {"4870"};
  figure.meta.modes = {"Pixel"};
  return figure;
}

}  // namespace amdmb::adapt
