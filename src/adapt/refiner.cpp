#include "adapt/refiner.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/env.hpp"
#include "common/status.hpp"
#include "common/table.hpp"

namespace amdmb::adapt {

Settings Settings::FromEnv() {
  const env::Options& options = env::Get();
  Settings settings;
  settings.tol_steps = options.adapt_tol;
  settings.budget = options.adapt_budget;
  return settings;
}

double Outcome::SpendFraction() const {
  if (dense_points == 0) return 1.0;
  return static_cast<double>(points_spent) /
         static_cast<double>(dense_points);
}

Refiner::Refiner(Settings settings, const exec::SweepExecutor* executor,
                 exec::RetryPolicy retry, const exec::CancelToken* cancel)
    : settings_(std::move(settings)),
      executor_(executor),
      retry_(retry),
      cancel_(cancel) {
  Require(settings_.tol_steps >= 1, "Refiner: tol_steps must be >= 1");
  Require(settings_.coarse_points >= 2,
          "Refiner: coarse_points must be >= 2");
}

Outcome Refiner::Run(std::size_t dense_count, const XOfFn& x_of,
                     const MeasureFn& measure,
                     exec::RunReport* report) const {
  Outcome outcome;
  outcome.dense_points = dense_count;
  if (dense_count == 0) return outcome;

  const exec::SweepExecutor& executor = exec::ExecutorOrDefault(executor_);
  // labels[i] is set once index i was measured and classified; attempted
  // marks indices that ran (successfully or not) so no index is ever
  // measured twice and the loop terminates.
  std::vector<std::optional<std::string>> labels(dense_count);
  std::vector<char> attempted(dense_count, 0);

  const auto run_wave = [&](std::vector<std::size_t> indices) {
    if (settings_.budget > 0) {
      const std::uint64_t left =
          settings_.budget > outcome.points_spent
              ? settings_.budget - outcome.points_spent
              : 0;
      if (indices.size() > left) indices.resize(left);
    }
    if (indices.empty()) return false;
    exec::RunReport wave_report;
    auto slots = executor.MapWithPolicy(
        indices.size(),
        [&](std::size_t k, unsigned attempt) {
          return measure(indices[k], attempt);
        },
        retry_, report != nullptr ? &wave_report : nullptr, cancel_);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      attempted[indices[k]] = 1;
      if (slots[k].has_value()) labels[indices[k]] = std::move(*slots[k]);
    }
    if (report != nullptr) {
      for (exec::PointOutcome& point : wave_report.points) {
        point.index = indices[point.index];
        point.label = "point " + std::to_string(point.index);
      }
      report->points.insert(report->points.end(),
                            std::make_move_iterator(wave_report.points.begin()),
                            std::make_move_iterator(wave_report.points.end()));
    }
    outcome.points_spent += indices.size();
    const WaveInfo info{outcome.waves, indices.size(), outcome.points_spent,
                        dense_count};
    ++outcome.waves;
    if (settings_.on_wave) settings_.on_wave(info);
    return true;
  };

  // Coarse pass: coarse_points evenly spaced indices including both
  // endpoints (everything, for tiny grids).
  {
    std::vector<std::size_t> coarse;
    if (dense_count <= settings_.coarse_points) {
      for (std::size_t i = 0; i < dense_count; ++i) coarse.push_back(i);
    } else {
      for (std::size_t k = 0; k < settings_.coarse_points; ++k) {
        coarse.push_back(k * (dense_count - 1) /
                         (settings_.coarse_points - 1));
      }
      coarse.erase(std::unique(coarse.begin(), coarse.end()), coarse.end());
    }
    run_wave(std::move(coarse));
  }

  // Bisection waves: for every adjacent pair of classified indices with
  // differing labels and a gap wider than tol_steps, measure the
  // midpoint. The next wave's composition depends only on deterministic
  // prior labels, so the trajectory is scheduling-independent.
  for (;;) {
    std::vector<std::size_t> classified;
    for (std::size_t i = 0; i < dense_count; ++i) {
      if (labels[i].has_value()) classified.push_back(i);
    }
    std::vector<std::size_t> next;
    for (std::size_t k = 1; k < classified.size(); ++k) {
      const std::size_t lo = classified[k - 1];
      const std::size_t hi = classified[k];
      if (*labels[lo] == *labels[hi]) continue;
      if (hi - lo <= settings_.tol_steps) continue;
      const std::size_t mid = lo + (hi - lo) / 2;
      // A midpoint that already ran and failed leaves its interval
      // unrefined — re-measuring a deterministic failure cannot help.
      if (!attempted[mid]) next.push_back(mid);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (next.empty() || !run_wave(std::move(next))) break;
  }

  for (std::size_t i = 0; i < dense_count; ++i) {
    if (attempted[i]) outcome.measured.push_back(i);
    if (labels[i].has_value()) {
      outcome.samples.push_back(Sample{x_of(i), *labels[i]});
      outcome.sample_indices.push_back(i);
    }
  }
  outcome.transitions = DetectTransitions(outcome.samples);
  return outcome;
}

namespace {

std::string LowerCopy(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::vector<report::Finding> AdaptiveFindings(const Outcome& outcome,
                                              const std::string& curve,
                                              const std::string& unit) {
  std::vector<report::Finding> findings;
  for (const Transition& t : outcome.transitions) {
    report::Finding finding;
    finding.kind = report::FindingKind::kCrossover;
    finding.curve = curve;
    finding.label = "transition_to_" + LowerCopy(t.to);
    finding.value = t.upper_x;
    finding.unit = unit;
    finding.detail = "from '" + t.from + "' in [" +
                     FormatDouble(t.lower_x, 2) + ", " +
                     FormatDouble(t.upper_x, 2) + "] (" +
                     std::string(ToString(t.kind)) + ")";
    findings.push_back(std::move(finding));
  }
  report::Finding spent;
  spent.kind = report::FindingKind::kEvent;
  spent.curve = curve;
  spent.label = "adaptive_points";
  spent.value = static_cast<double>(outcome.points_spent);
  spent.unit = "points";
  spent.detail = "of " + std::to_string(outcome.dense_points) +
                 " dense points in " + std::to_string(outcome.waves) +
                 " wave(s)";
  findings.push_back(std::move(spent));
  return findings;
}

}  // namespace amdmb::adapt
