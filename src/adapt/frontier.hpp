// 2D bottleneck frontier maps via recursive quadrant refinement.
//
// The 1D figures each chase one crossover; the frontier map answers the
// 2D question "where does the bottleneck flip across ALU:Fetch ratio ×
// register-ladder step" (the Fig. 7 and Fig. 16 axes crossed). Dense
// resolution costs nx*ny simulated kernels; the quadrant refiner
// measures only cell corners, fills any cell whose four corners agree,
// and recursively splits disagreeing cells at their midpoints — the 2D
// analogue of the 1D bisection in adapt/refiner.hpp, with the same
// determinism argument: each level's corner batch is an index-ordered
// MapWithPolicy wave whose composition is a pure function of prior
// labels.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "adapt/refiner.hpp"
#include "common/types.hpp"
#include "exec/run_report.hpp"
#include "exec/sweep_executor.hpp"
#include "report/record.hpp"

namespace amdmb::adapt {

/// Knobs for one frontier map. Axis defaults cross the Fig. 7 ratio
/// sweep with the Fig. 16 register ladder on the 4870.
struct FrontierConfig {
  std::size_t nx = 9;          ///< Ratio grid nodes.
  std::size_t ny = 8;          ///< Register-ladder steps (0 .. ny-1).
  /// Lowest swept ratio. Every ladder row must leave its kernel a
  /// viable ALU budget — roughly inputs * 4 * ratio_min / (step + 1) >=
  /// inputs - space * step — which BuildFrontierFigure validates up
  /// front with a ConfigError naming the offending row.
  double ratio_min = 0.75;
  double ratio_max = 8.0;
  unsigned inputs = 64;        ///< RegisterUsageSpec inputs.
  unsigned space = 8;          ///< Fetches per late TEX clause.
  Domain domain{256, 256};
  unsigned repetitions = 100;
  bool dense = false;          ///< true = measure every node (the golden).
  std::uint64_t budget = 0;    ///< Max measured nodes (0 = unlimited).
  const exec::SweepExecutor* executor = nullptr;
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  const exec::CancelToken* cancel = nullptr;
  /// Streamed after each refinement level (wave = level).
  std::function<void(const WaveInfo&)> on_wave;
};

/// A measured frontier plus its per-node sweep report.
struct FrontierResult {
  report::Frontier frontier;
  exec::RunReport report;
};

/// Generic quadrant refinement over an nx × ny grid of labelled nodes.
/// `measure(ix, iy, attempt)` returns the node's label; `x_of`/`y_of`
/// give node coordinates. Exposed separately from the kernel-specific
/// builder so tests can drive it with synthetic label fields.
FrontierResult RefineGrid(
    std::size_t nx, std::size_t ny,
    const std::function<double(std::size_t)>& x_of,
    const std::function<double(std::size_t)>& y_of,
    const std::function<std::string(std::size_t ix, std::size_t iy,
                                    unsigned attempt)>& measure,
    const FrontierConfig& config);

/// Builds the ALU:Fetch × register-step bottleneck frontier on the
/// given arch (one Fig. 6 register-ladder kernel per node) and wraps it
/// as a report::Figure carrying the frontier block. Deterministic at
/// any AMDMB_THREADS.
report::Figure BuildFrontierFigure(const FrontierConfig& config);

}  // namespace amdmb::adapt
