// Coarse-to-fine adaptive sweep refinement.
//
// Every figure in the paper is a dense 1D sweep whose payoff is a
// handful of transition points — where the bottleneck classification
// flips, or a curve bends. The Refiner finds those transitions with a
// fraction of the dense point count: a coarse pass over a few evenly
// spaced grid indices, then repeated bisection of every bracketing
// interval whose endpoints disagree, until each bracket is at most
// `tol_steps` dense grid steps wide (or the point budget runs out).
//
// Determinism: each wave is an index-ordered batch run through
// exec::SweepExecutor::MapWithPolicy, and the composition of wave k+1
// is a pure function of the labels measured in waves 0..k. Labels are
// classifier outputs, which are themselves deterministic per point, so
// the full refinement trajectory — which points run, in which waves —
// is identical at any AMDMB_THREADS and under any scheduling. Fault
// retries draw their decisions from (site, "<point>#<attempt>") keys
// (src/fault), independent of which points the refiner selects, so a
// seeded retry changes attempt counts but never the selected points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "adapt/transition.hpp"
#include "exec/run_report.hpp"
#include "exec/sweep_executor.hpp"
#include "report/record.hpp"

namespace amdmb::adapt {

/// Progress snapshot handed to Settings::on_wave after each wave (the
/// serve layer streams these as `refine` events).
struct WaveInfo {
  std::size_t wave = 0;          ///< 0 = the coarse pass.
  std::size_t wave_points = 0;   ///< Points measured in this wave.
  std::size_t points_spent = 0;  ///< Cumulative points measured so far.
  std::size_t dense_points = 0;  ///< Size of the dense grid being avoided.
};

/// Refinement knobs. The env-backed defaults come from AMDMB_ADAPT_TOL
/// and AMDMB_ADAPT_BUDGET (src/common/env).
struct Settings {
  /// Stop refining an interval once its endpoints are at most this many
  /// dense grid steps apart (>= 1). The adaptive/dense agreement
  /// guarantee follows: a reported transition x is within `tol_steps`
  /// grid steps of the dense run's answer.
  unsigned tol_steps = 2;
  /// Hard cap on total points measured per refinement (0 = unlimited).
  /// When the cap bites, waves are truncated lowest-index-first, so the
  /// truncation itself is deterministic.
  std::uint64_t budget = 0;
  /// Points in the coarse pass (always includes both domain endpoints).
  std::size_t coarse_points = 3;
  /// Called after every completed wave, on the sweep thread.
  std::function<void(const WaveInfo&)> on_wave;

  /// tol_steps/budget from the centralized env snapshot (env::Get()).
  static Settings FromEnv();
};

/// What one adaptive refinement did and found.
struct Outcome {
  std::size_t dense_points = 0;  ///< Dense grid size this run replaced.
  std::size_t points_spent = 0;  ///< Points actually measured.
  std::size_t waves = 0;         ///< Coarse pass + bisection waves.
  /// Dense grid indices measured (attempted), ascending. The fault
  /// determinism test asserts this is identical with and without a
  /// seeded retry schedule.
  std::vector<std::size_t> measured;
  /// Successfully classified samples in grid order (skipped points are
  /// absent), and the dense index each sample came from.
  std::vector<Sample> samples;
  std::vector<std::size_t> sample_indices;
  /// Every label flip in `samples` (see DetectTransitions). Transition
  /// indices refer to positions in `samples`.
  std::vector<Transition> transitions;

  /// points_spent / dense_points (1.0 for an empty grid).
  double SpendFraction() const;
};

/// The adaptive executor. Stateless between runs; one Refiner can serve
/// many curves.
class Refiner {
 public:
  /// `executor` may be null (SweepExecutor::Default()); `cancel` may be
  /// null. Both must outlive the Refiner.
  Refiner(Settings settings, const exec::SweepExecutor* executor,
          exec::RetryPolicy retry, const exec::CancelToken* cancel = nullptr);

  /// Measures dense grid index `index` (attempt counter as in
  /// MapWithPolicy) and returns its classifier label. Callers stash the
  /// full measurement in their own slot vector keyed by index — waves
  /// touch distinct indices, so slot writes never race.
  using MeasureFn =
      std::function<std::string(std::size_t index, unsigned attempt)>;
  /// The x coordinate of dense grid index `index` (pure).
  using XOfFn = std::function<double(std::size_t index)>;

  /// Runs the coarse pass + bisection waves over a dense grid of
  /// `dense_count` indices. When `report` is non-null it receives one
  /// PointOutcome per measured point in wave order, with `index` mapped
  /// back to the dense grid (labels default to "point <dense index>";
  /// callers may rename them afterwards). Failure semantics per point
  /// match MapWithPolicy under the ctor's RetryPolicy; an interval
  /// whose midpoint was skipped is left unrefined rather than retried
  /// forever.
  Outcome Run(std::size_t dense_count, const XOfFn& x_of,
              const MeasureFn& measure,
              exec::RunReport* report = nullptr) const;

 private:
  Settings settings_;
  const exec::SweepExecutor* executor_;
  exec::RetryPolicy retry_;
  const exec::CancelToken* cancel_;
};

/// Renders an Outcome as typed findings for a figure record: one
/// kCrossover finding per detected transition (value = the transition's
/// upper x, detail = the bracketing interval) plus one kEvent
/// "adaptive_points" finding stating points spent vs dense. `unit` is
/// the x-axis unit ("ratio", "inputs", ...). Only adaptive runs emit
/// these, so dense documents stay byte-identical.
std::vector<report::Finding> AdaptiveFindings(const Outcome& outcome,
                                              const std::string& curve,
                                              const std::string& unit);

}  // namespace amdmb::adapt
