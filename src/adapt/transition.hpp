// Typed transition detection over labelled sweep samples.
//
// The suite runners classify every measured point with a bottleneck
// label ("ALU", "FETCH", ...); the interesting output of a sweep is
// where that label flips. This header replaces the ad-hoc
// first-point-with-label loops that used to live in src/suite with a
// typed detector that handles the edge cases those loops silently got
// wrong: a plateau (no flip anywhere) yields an empty result instead
// of a garbage index, multiple flips along one curve are all reported,
// and a flip at the domain boundary (the very first sample already
// carries the target label) is distinguished from an interior flip.
//
// Samples are assumed sorted by x. Detection is pure — no measurement
// happens here — so the same samples always yield the same transitions
// regardless of how they were gathered (dense grid or adaptive
// refinement, any AMDMB_THREADS).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace amdmb::adapt {

/// One classified sweep point: its x coordinate and the label the
/// classifier assigned (e.g. sim::ToString(bottleneck)).
struct Sample {
  double x = 0.0;
  std::string label;

  bool operator==(const Sample& other) const {
    return x == other.x && label == other.label;
  }
};

/// Where a transition sits relative to the sampled domain.
enum class TransitionKind {
  kInterior,         ///< Bracketed by two samples with different labels.
  kAtLowerBoundary,  ///< The first sample already carries the new label;
                     ///< the true flip is censored below the domain.
};

const char* ToString(TransitionKind kind);

/// One detected label flip. For an interior transition the true
/// crossover lies somewhere in (lower_x, upper_x]; the interval width
/// is the confidence interval the sampling resolution supports. For a
/// boundary transition lower_x == upper_x == the first sample's x and
/// `from` is empty.
struct Transition {
  std::size_t lower_index = 0;  ///< Sample index on the old-label side.
  std::size_t upper_index = 0;  ///< Sample index on the new-label side.
  double lower_x = 0.0;
  double upper_x = 0.0;
  std::string from;  ///< Label before the flip ("" at the boundary).
  std::string to;    ///< Label after the flip.
  TransitionKind kind = TransitionKind::kInterior;

  /// Width of the bracketing interval (0 for boundary transitions).
  double Width() const { return upper_x - lower_x; }

  bool operator==(const Transition& other) const {
    return lower_index == other.lower_index &&
           upper_index == other.upper_index && lower_x == other.lower_x &&
           upper_x == other.upper_x && from == other.from &&
           to == other.to && kind == other.kind;
  }
};

/// Every adjacent label flip in `samples`, in x order. A plateau (all
/// samples share one label, or zero/one samples) yields an empty
/// vector. Indices refer to positions in `samples`.
std::vector<Transition> DetectTransitions(const std::vector<Sample>& samples);

/// The legacy "first point that reaches `target`" semantic, typed.
/// Returns the transition whose `to` side is the first sample labelled
/// `target`: a boundary transition when that is the very first sample,
/// an interior one otherwise, and nullopt when no sample carries the
/// label (censored — the flip lies beyond the sampled domain, or the
/// curve never flips). Dense and adaptive runs that bracket the same
/// flip agree on `upper_x` to within the sampling resolution.
std::optional<Transition> FirstTransitionTo(const std::vector<Sample>& samples,
                                            const std::string& target);

/// Index of the knee of the curve (xs[i], ys[i]): the point with the
/// largest perpendicular distance from the chord joining the first and
/// last points. Returns nullopt for fewer than three points or a
/// degenerate (zero-length) chord. Used to aim refinement at curve
/// bends when there is no label flip to chase.
std::optional<std::size_t> KneeIndex(const std::vector<double>& xs,
                                     const std::vector<double>& ys);

}  // namespace amdmb::adapt
