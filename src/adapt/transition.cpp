#include "adapt/transition.hpp"

#include <cmath>

namespace amdmb::adapt {

const char* ToString(TransitionKind kind) {
  switch (kind) {
    case TransitionKind::kInterior: return "interior";
    case TransitionKind::kAtLowerBoundary: return "at_lower_boundary";
  }
  return "unknown";
}

std::vector<Transition> DetectTransitions(const std::vector<Sample>& samples) {
  std::vector<Transition> transitions;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].label == samples[i - 1].label) continue;
    Transition t;
    t.lower_index = i - 1;
    t.upper_index = i;
    t.lower_x = samples[i - 1].x;
    t.upper_x = samples[i].x;
    t.from = samples[i - 1].label;
    t.to = samples[i].label;
    t.kind = TransitionKind::kInterior;
    transitions.push_back(std::move(t));
  }
  return transitions;
}

std::optional<Transition> FirstTransitionTo(const std::vector<Sample>& samples,
                                            const std::string& target) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].label != target) continue;
    Transition t;
    t.upper_index = i;
    t.upper_x = samples[i].x;
    t.to = target;
    if (i == 0) {
      t.lower_index = 0;
      t.lower_x = samples[0].x;
      t.kind = TransitionKind::kAtLowerBoundary;
    } else {
      t.lower_index = i - 1;
      t.lower_x = samples[i - 1].x;
      t.from = samples[i - 1].label;
      t.kind = TransitionKind::kInterior;
    }
    return t;
  }
  return std::nullopt;
}

std::optional<std::size_t> KneeIndex(const std::vector<double>& xs,
                                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 3) return std::nullopt;
  const double dx = xs.back() - xs.front();
  const double dy = ys.back() - ys.front();
  const double chord = std::sqrt(dx * dx + dy * dy);
  if (chord == 0.0) return std::nullopt;
  std::size_t best = 0;
  double best_distance = 0.0;
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    // Perpendicular distance from (xs[i], ys[i]) to the chord.
    const double distance =
        std::abs(dy * (xs[i] - xs.front()) - dx * (ys[i] - ys.front())) /
        chord;
    if (distance > best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  if (best == 0) return std::nullopt;
  return best;
}

}  // namespace amdmb::adapt
