#include "prof/counters.hpp"

#include <sstream>

#include "common/status.hpp"
#include "common/table.hpp"

namespace amdmb::prof {

namespace {

struct CounterInfo {
  std::string_view name;
  std::string_view detail;
};

constexpr std::array<CounterInfo, kCounterCount> kCounterInfo{{
    {"cycles", "event clock at full drain, one launch (cycles)"},
    {"wavefronts", "wavefronts dispatched over the domain"},
    {"resident_wavefronts", "simultaneously resident wavefronts per SIMD"},
    {"simd_engines", "SIMD engines on the launched-on chip"},
    {"clause_switches", "clause-to-clause control-flow transitions"},
    {"alu_clauses", "ALU clause chunks issued to the pipelines"},
    {"alu_bundles", "VLIW bundles executed"},
    {"alu_slots_used", "micro-op slots issued across those bundles"},
    {"alu_slots_total", "available slots: bundles x VLIW width"},
    {"alu_busy_cycles_max", "busiest SIMD's ALU pipeline busy (cycles)"},
    {"tex_clauses", "TEX clauses served by the texture units"},
    {"tex_busy_cycles_max", "busiest SIMD's texture-unit busy (cycles)"},
    {"tex_miss_stall_instrs", "fetch instructions that stalled on a miss"},
    {"tex_cache_hits", "texture-cache line probes that hit"},
    {"tex_cache_misses", "texture-cache line probes that missed"},
    {"fetch_wait_cycles", "wavefront time inside fetch clauses (cycles)"},
    {"dram_batches", "request batches the memory controller served"},
    {"dram_read_bytes", "bytes read from off-chip memory"},
    {"dram_write_bytes", "bytes written to off-chip memory"},
    {"dram_busy_cycles", "controller occupancy: overhead + transfer (cycles)"},
    {"dram_fill_busy_cycles", "busy share filling texture lines (cycles)"},
    {"dram_transfer_cycles", "pure byte-moving cycles (burst numerator)"},
    {"dram_queue_cycles", "batch wait before the controller was free (cycles)"},
    {"dram_row_switches", "open-row switches across DRAM banks"},
}};

double RatioOf(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

std::string_view ToString(CounterId id) {
  const auto index = static_cast<std::size_t>(id);
  Check(index < kCounterCount, "ToString(CounterId): unknown value");
  return kCounterInfo[index].name;
}

std::string_view Describe(CounterId id) {
  const auto index = static_cast<std::size_t>(id);
  Check(index < kCounterCount, "Describe(CounterId): unknown value");
  return kCounterInfo[index].detail;
}

std::optional<CounterId> CounterIdFromString(std::string_view name) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (kCounterInfo[i].name == name) return static_cast<CounterId>(i);
  }
  return std::nullopt;
}

double CounterSet::AluSlotOccupancy() const {
  return RatioOf(Get(CounterId::kAluSlotsUsed),
                 Get(CounterId::kAluSlotsTotal));
}

double CounterSet::TexCacheHitRate() const {
  return RatioOf(Get(CounterId::kTexCacheHits),
                 Get(CounterId::kTexCacheHits) +
                     Get(CounterId::kTexCacheMisses));
}

double CounterSet::DramBurstEfficiency() const {
  return RatioOf(Get(CounterId::kDramTransferCycles),
                 Get(CounterId::kDramBusyCycles));
}

std::string CounterSet::Render() const {
  TextTable table({"counter", "value", "meaning"});
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto id = static_cast<CounterId>(i);
    table.AddRow({std::string(ToString(id)), std::to_string(Get(id)),
                  std::string(Describe(id))});
  }
  std::ostringstream os;
  os << table.Render();
  os << "derived: alu_slot_occupancy=" << FormatDouble(AluSlotOccupancy(), 3)
     << "  tex_cache_hit_rate=" << FormatDouble(TexCacheHitRate(), 3)
     << "  dram_burst_efficiency=" << FormatDouble(DramBurstEfficiency(), 3)
     << "\n";
  return os.str();
}

}  // namespace amdmb::prof
