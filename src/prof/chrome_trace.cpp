#include "prof/chrome_trace.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/status.hpp"
#include "report/json.hpp"

namespace amdmb::prof {

namespace {

/// One "X" (complete) slice per clause event: track = SIMD engine,
/// duration = service time, with the queueing delay kept in args so the
/// wait is inspectable without a second slice per event.
void AppendClauseSlice(std::ostringstream& os, const sim::TraceEvent& event,
                       bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << isa::ToString(event.type)
     << R"(","cat":"clause","ph":"X","pid":0,"tid":)" << event.simd
     << R"(,"ts":)" << event.start << R"(,"dur":)"
     << (event.complete - event.start) << R"(,"args":{"wave":)" << event.wave
     << R"(,"clause":)" << event.clause << R"(,"queue_cycles":)"
     << (event.start - event.issue) << "}}";
}

void AppendOccupancyCounter(std::ostringstream& os,
                            const OccupancySample& sample, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":"occupancy","ph":"C","pid":0,"tid":)" << sample.simd
     << R"(,"ts":)" << sample.t << R"(,"args":{"resident_wavefronts":)"
     << sample.resident << "}}";
}

void AppendThreadName(std::ostringstream& os, std::size_t simd,
                      bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << simd
     << R"(,"args":{"name":"SIMD )" << simd << R"("}})";
}

void AppendSanitized(std::string& out, std::string_view part) {
  if (part.empty()) return;
  if (!out.empty()) out.push_back('_');
  for (const char c : part) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) != 0
                      ? static_cast<char>(std::tolower(uc))
                      : '_');
  }
}

}  // namespace

std::string ChromeTraceJson(const Profile& profile) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Name every track that appears in either stream.
  std::size_t simd_count = profile.per_simd.size();
  for (const sim::TraceEvent& event : profile.events) {
    simd_count = std::max<std::size_t>(simd_count, event.simd + 1u);
  }
  for (std::size_t simd = 0; simd < simd_count; ++simd) {
    AppendThreadName(os, simd, first);
  }
  for (const sim::TraceEvent& event : profile.events) {
    AppendClauseSlice(os, event, first);
  }
  for (const OccupancySample& sample : profile.occupancy) {
    AppendOccupancyCounter(os, sample, first);
  }
  os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
     << R"("kernel":")" << report::JsonEscape(profile.kernel)
     << R"(","point":")" << report::JsonEscape(profile.point)
     << R"(","arch":")" << report::JsonEscape(profile.arch)
     << R"(","mode":")" << report::JsonEscape(profile.mode)
     << R"(","type":")" << report::JsonEscape(profile.type)
     << R"(","attempt":)" << profile.attempt << R"(,"dropped_events":)"
     << profile.dropped_events << R"(,"bottleneck":")"
     << sim::ToString(profile.attribution.bottleneck) << "\"}}\n";
  return os.str();
}

std::string TraceFileName(const Profile& profile) {
  std::string stem;
  AppendSanitized(stem, profile.arch);
  AppendSanitized(stem, profile.mode);
  AppendSanitized(stem, profile.type);
  AppendSanitized(stem, profile.point.empty() ? profile.kernel
                                              : profile.point);
  if (stem.empty()) stem = "launch";
  if (profile.attempt > 1) {
    stem += "_a" + std::to_string(profile.attempt);
  }
  return stem + ".trace.json";
}

std::string WriteChromeTrace(const Profile& profile,
                             const std::string& dir) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path += TraceFileName(profile);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  Require(out.good(),
          "AMDMB_TRACE_DIR: cannot open '" + path + "' for writing");
  out << ChromeTraceJson(profile);
  out.flush();
  Require(out.good(), "AMDMB_TRACE_DIR: short write to '" + path + "'");
  return path;
}

}  // namespace amdmb::prof
