// Hardware-counter registry for the profiler subsystem.
//
// The simulator's KernelStats aggregates answer "how utilised was each
// resource"; the counter registry answers "what did the hardware *do*":
// VLIW slot issue, clause switches, cache traffic per set, DRAM row
// activity, queueing vs. service time. Every counter is an integer
// sampled from simulated state, so a CounterSet is bit-identical across
// runs and thread counts — the determinism contract the sweep executor
// already guarantees for KernelStats extends to profiles.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace amdmb::prof {

/// Every per-launch counter the instrumentation hooks sample. Grouped by
/// the hardware block that produces it (see DESIGN.md §9 for what each
/// one measures in the R600/R700 model and which paper figure it
/// explains).
enum class CounterId : unsigned {
  // ---- Launch shape ----
  kCycles,               ///< Event clock at full drain (one launch).
  kWavefronts,           ///< Wavefronts dispatched over the domain.
  kResidentWavefronts,   ///< Simultaneously resident wavefronts per SIMD.
  kSimdEngines,          ///< SIMD engines of the launched-on chip.
  // ---- Control-flow processor ----
  kClauseSwitches,       ///< Clause-to-clause transitions (4-cycle each).
  // ---- ALU pipeline ----
  kAluClauses,           ///< ALU clause chunks issued.
  kAluBundles,           ///< VLIW bundles executed.
  kAluSlotsUsed,         ///< Micro-op slots issued across those bundles.
  kAluSlotsTotal,        ///< bundles x vliw_width (occupancy denominator).
  kAluBusyCyclesMax,     ///< Busiest SIMD's ALU pipeline busy cycles.
  // ---- Texture path ----
  kTexClauses,           ///< TEX clauses served.
  kTexBusyCyclesMax,     ///< Busiest SIMD's texture-unit busy cycles.
  kTexMissStallInstrs,   ///< Fetch instructions that stalled on a miss.
  kTexCacheHits,         ///< Texture-cache line probes that hit.
  kTexCacheMisses,       ///< Texture-cache line probes that missed.
  // ---- Wavefront latency exposure ----
  kFetchWaitCycles,      ///< Wavefront time spent inside fetch clauses.
  // ---- Memory controller / DRAM ----
  kDramBatches,          ///< Request batches the controller served.
  kDramReadBytes,
  kDramWriteBytes,
  kDramBusyCycles,       ///< Controller occupancy (overhead + transfer).
  kDramFillBusyCycles,   ///< Share of busy spent filling texture lines.
  kDramTransferCycles,   ///< Pure byte-moving cycles (burst numerator).
  kDramQueueCycles,      ///< Batch wait time before the controller served.
  kDramRowSwitches,      ///< Open-row switches (bank conflicts).

  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(CounterId::kCount);

/// Stable snake_case name used in JSON documents and counter tables.
std::string_view ToString(CounterId id);

/// One-line meaning (units included) for tables and DESIGN.md parity.
std::string_view Describe(CounterId id);

/// Inverse of ToString; nullopt for unknown names (forward compat: a
/// newer writer may emit counters this reader does not know).
std::optional<CounterId> CounterIdFromString(std::string_view name);

/// The per-launch counter vector. Plain integers, value semantics,
/// bitwise comparable — the profiler's determinism tests compare
/// CounterSets across thread counts with operator==.
class CounterSet {
 public:
  std::uint64_t Get(CounterId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  void Set(CounterId id, std::uint64_t v) {
    values_[static_cast<std::size_t>(id)] = v;
  }
  void Add(CounterId id, std::uint64_t v) {
    values_[static_cast<std::size_t>(id)] += v;
  }

  // ---- Derived metrics (doubles, computed on demand) ----
  /// Issued VLIW slots over available slots: the paper's "5 instructions
  /// per bundle" packing efficiency. Low values mean the dependency
  /// chain defeated the VLIW packer (the generator's intent, Sec. III).
  double AluSlotOccupancy() const;
  /// Texture-cache hit rate over line probes.
  double TexCacheHitRate() const;
  /// Byte-moving cycles over controller busy cycles: how close the
  /// DRAM path ran to pure streaming (1.0 = no overhead, no row misses).
  double DramBurstEfficiency() const;

  bool operator==(const CounterSet&) const = default;

  /// Rendered table of every non-zero counter plus the derived metrics.
  std::string Render() const;

 private:
  std::array<std::uint64_t, kCounterCount> values_{};
};

}  // namespace amdmb::prof
