// JSON round-trip for prof::Profile and prof::CounterSet, built on the
// report layer's dependency-free JSON utilities. Used by the
// amdmb_prof CLI (--json output, --diff input), by the report JSON sink
// for the additive "profile" block, and by the round-trip tests.
//
// The document carries the sampled aggregates (counters, per-clause
// queue/service, per-bank row switches, touched cache sets,
// attribution) but not the raw event or occupancy streams — those
// export as a Chrome trace instead (prof/chrome_trace.hpp).
#pragma once

#include <string>

#include "prof/profile.hpp"

namespace amdmb::report {
class JsonValue;
}  // namespace amdmb::report

namespace amdmb::prof {

/// `{"cycles": 1234, "wavefronts": 64, ...}` — every counter by its
/// snake_case registry name, zero or not, so diffs line up key-for-key.
std::string CounterSetJson(const CounterSet& counters);

/// Inverse of CounterSetJson. Unknown keys are ignored (forward
/// compat); missing counters stay zero. Throws ConfigError when a value
/// is not a number or `value` is not an object.
CounterSet CounterSetFromJson(const report::JsonValue& value);

/// The full profile document, one JSON object.
std::string ProfileJson(const Profile& profile);

/// Inverse of ProfileJson (modulo the event/occupancy streams, which
/// the document intentionally omits). Throws ConfigError on shape
/// errors.
Profile ProfileFromJson(const report::JsonValue& value);

/// Parses text with report::JsonValue::Parse and applies
/// ProfileFromJson.
Profile ParseProfileJson(const std::string& text);

}  // namespace amdmb::prof
