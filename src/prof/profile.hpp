// The per-launch profile record: what one kernel launch did, counter by
// counter, with enough structure to render a counter table, attribute
// the bottleneck from evidence, and export a Chrome trace.
//
// A Profile is produced by prof::Collector (attached to Gpu::Execute via
// the instrumentation hooks), travels inside cal::RunEvent /
// suite::Measurement readback, and lands in the report layer as the
// additive "profile" block of the schema-v2 BENCH JSON.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "prof/counters.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"

namespace amdmb::prof {

/// Number of isa::ClauseType values (kTex, kMemRead, kAlu, kExport,
/// kMemWrite) — the per-clause-type aggregation width.
inline constexpr std::size_t kClauseTypeCount = 5;

/// Queueing vs. service decomposition for one clause type: how long
/// wavefronts waited for the resource (start - issue) against how long
/// the resource actually served them (complete - start). The split the
/// text-only sim::Trace summary showed, now typed and exported.
struct ClauseAgg {
  std::uint64_t events = 0;
  std::uint64_t queue_cycles = 0;
  std::uint64_t service_cycles = 0;

  bool operator==(const ClauseAgg&) const = default;
};

/// Per-SIMD busy accumulation (the per-engine detail behind the
/// kAluBusyCyclesMax / kTexBusyCyclesMax counters).
struct SimdBusy {
  std::uint64_t alu_cycles = 0;
  std::uint64_t tex_cycles = 0;

  bool operator==(const SimdBusy&) const = default;
};

/// Hits/misses of one texture-cache set (320 sets on RV770's shared
/// model); the 2-D indexing split means a 64x1 access pattern leaves one
/// set group cold — visible here as untouched sets.
struct CacheSetStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  bool operator==(const CacheSetStats&) const = default;
};

/// One point of the per-SIMD wavefront-occupancy timeline, recorded
/// whenever a SIMD's resident count changes (admission at t=0, retires
/// without replacement later).
struct OccupancySample {
  Cycles t = 0;
  std::uint16_t simd = 0;
  std::uint32_t resident = 0;

  bool operator==(const OccupancySample&) const = default;
};

/// Counter-derived bottleneck attribution: the same three-way
/// classification as the heuristic in Gpu::Execute, but computed purely
/// from the sampled CounterSet — so agreement between the two is
/// evidence that the counter plumbing measures what the timing model
/// does (and divergence pinpoints which counter disagrees).
struct Attribution {
  sim::Bottleneck bottleneck = sim::Bottleneck::kAlu;
  double alu_score = 0.0;
  double fetch_score = 0.0;
  double memory_score = 0.0;

  bool operator==(const Attribution&) const = default;
};

/// Everything one profiled launch recorded.
struct Profile {
  // ---- Identity (filled by the CAL layer / Runner readback) ----
  std::string kernel;   ///< Kernel name ("alufetch_r2.00").
  std::string point;    ///< Sweep-point label; defaults to the kernel.
  std::string arch;     ///< Chip name ("RV770").
  std::string mode;     ///< "pixel" / "compute".
  std::string type;     ///< "Float" / "Float4".
  unsigned attempt = 1; ///< Retry attempt that produced this profile.

  // ---- Sampled state ----
  CounterSet counters;
  std::array<ClauseAgg, kClauseTypeCount> clauses{};
  std::vector<SimdBusy> per_simd;
  std::vector<std::uint64_t> row_switches_per_bank;
  std::vector<CacheSetStats> per_cache_set;
  std::vector<OccupancySample> occupancy;
  std::vector<sim::TraceEvent> events;  ///< Chrome-trace source, capped.
  std::uint64_t dropped_events = 0;     ///< Events past the trace cap.

  Attribution attribution;

  /// Texture-cache sets with at least one probe (the 2-D half-cache
  /// effect: 64x1 patterns touch only one set group).
  std::size_t TouchedCacheSets() const;

  /// Per-clause-type aggregate for rendering/tests.
  const ClauseAgg& Clause(isa::ClauseType type) const {
    return clauses[static_cast<std::size_t>(type)];
  }

  /// Counter table + clause decomposition + attribution, human-readable.
  std::string Render() const;
};

/// True when AMDMB_PROF enables profiling process-wide (launches may
/// also opt in explicitly via LaunchConfig::profile).
bool ProfilingEnabled();

/// The AMDMB_TRACE_DIR Chrome-trace output directory; empty when traces
/// are not requested. Only consulted when profiling is active.
std::string TraceDirectory();

}  // namespace amdmb::prof
