#include "prof/attribution.hpp"

#include <algorithm>

namespace amdmb::prof {

Attribution Attribute(const CounterSet& counters) {
  Attribution result;
  const auto total = static_cast<double>(counters.Get(CounterId::kCycles));
  if (total <= 0.0) return result;

  result.alu_score =
      static_cast<double>(counters.Get(CounterId::kAluBusyCyclesMax)) / total;

  const double fetch_util =
      static_cast<double>(counters.Get(CounterId::kTexBusyCyclesMax)) / total;
  // Latency exposure: wavefront slots stalled inside fetch clauses, as a
  // share of all slot-time in the launch (slots = SIMDs x occupancy).
  const double slot_time =
      total *
      static_cast<double>(counters.Get(CounterId::kSimdEngines)) *
      static_cast<double>(
          std::max<std::uint64_t>(1, counters.Get(
                                         CounterId::kResidentWavefronts)));
  const double stall_share =
      slot_time <= 0.0
          ? 0.0
          : static_cast<double>(counters.Get(CounterId::kFetchWaitCycles)) /
                slot_time;
  const double fill_share =
      static_cast<double>(counters.Get(CounterId::kDramFillBusyCycles)) /
      total;
  result.fetch_score = std::max({fetch_util, stall_share, fill_share});

  result.memory_score =
      static_cast<double>(counters.Get(CounterId::kDramBusyCycles) -
                          counters.Get(CounterId::kDramFillBusyCycles)) /
      total;

  if (result.alu_score >= result.fetch_score &&
      result.alu_score >= result.memory_score) {
    result.bottleneck = sim::Bottleneck::kAlu;
  } else if (result.fetch_score >= result.memory_score) {
    result.bottleneck = sim::Bottleneck::kFetch;
  } else {
    result.bottleneck = sim::Bottleneck::kMemory;
  }
  return result;
}

}  // namespace amdmb::prof
