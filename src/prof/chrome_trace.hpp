// Chrome trace_event exporter: renders a prof::Profile as the JSON
// format chrome://tracing and Perfetto load directly. Clause executions
// become "X" (complete) events on one track per SIMD engine, the
// wavefront-occupancy timeline becomes "C" (counter) events, and "M"
// metadata rows name the tracks. Timestamps are simulated cycles mapped
// 1:1 onto trace microseconds.
//
// Gated by AMDMB_PROF + AMDMB_TRACE_DIR; see prof::TraceDirectory().
#pragma once

#include <string>

#include "prof/profile.hpp"

namespace amdmb::prof {

/// The full trace_event document for one profiled launch.
std::string ChromeTraceJson(const Profile& profile);

/// Deterministic, filesystem-safe file name for a profile's trace:
/// "<arch>_<mode>_<type>_<point>[_aN].trace.json", lowercased, with
/// non-alphanumerics collapsed to '_'. The arch/mode/type prefix keeps
/// float and float4 curves (which share kernel names) from colliding
/// when sweeps write in parallel.
std::string TraceFileName(const Profile& profile);

/// Writes ChromeTraceJson(profile) to `dir`/TraceFileName(profile) and
/// returns the path. Throws ConfigError when the file cannot be written.
std::string WriteChromeTrace(const Profile& profile, const std::string& dir);

}  // namespace amdmb::prof
